"""Tests for ``repro.resilience``: fault injection, fallback chains,
deadline-bounded partitioning, and the resilience audit trail.

Layers:

* spec parsing and injector selection (env vs options, null-object off
  path with **zero** framework calls — mirrors ``test_sanitize.py``);
* typed spectral failure (:class:`SpectralConvergenceError`) raised by the
  eigensolvers and *not* masked by ``sbp_bisection``;
* every declared fallback chain driven by an injected fault: SBP → GGGP,
  initial retry-with-reseed and scheme exhaustion, coarsening stall,
  refinement degradation, deadline best-so-far recovery, dissection → MMD;
* deadline guard unit behaviour under a fake clock;
* degenerate inputs (empty / single-vertex / edgeless / disconnected)
  through every driver: valid result or a typed ``ReproError``;
* the report API and the CLI surface (``--deadline``, ``--max-retries``,
  resilience summary lines).
"""

import numpy as np
import pytest

from repro.core.coarsen import coarsen
from repro.core.initial import initial_bisection, sbp_bisection
from repro.core.kway import partition
from repro.core.multilevel import bisect
from repro.core.options import DEFAULT_OPTIONS, InitialScheme, RefinePolicy
from repro.graph import from_edge_list
from repro.matrices import grid2d
from repro.ordering import mlnd_ordering, snd_ordering
from repro.ordering.nested_dissection import nested_dissection_ordering
from repro.resilience.deadline import DeadlineGuard
from repro.resilience.faults import (
    NULL,
    FaultInjector,
    NullFaultInjector,
    fault_injector,
    faults_enabled,
    parse_fault_spec,
)
from repro.resilience.report import ResilienceReport
from repro.spectral.fiedler import fiedler_vector
from repro.spectral.lanczos import lanczos_smallest
from repro.utils.errors import (
    ConfigurationError,
    DeadlineExceededError,
    PartitionError,
    ReproError,
    SpectralConvergenceError,
)
from tests.conftest import path_graph, star_graph, two_triangles

pytestmark = pytest.mark.usefixtures("clean_fault_env")


@pytest.fixture
def clean_fault_env(monkeypatch):
    """Tests own REPRO_FAULTS; the CI leg may set it ambiently."""
    monkeypatch.delenv("REPRO_FAULTS", raising=False)


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t


def assert_valid_bisection(graph, bisection):
    where = np.asarray(bisection.where)
    assert where.shape == (graph.nvtxs,)
    assert set(np.unique(where)) <= {0, 1}
    assert (where == 0).any() and (where == 1).any()
    bisection.verify(graph)


# ---------------------------------------------------------------------------
# spec parsing
# ---------------------------------------------------------------------------
class TestFaultSpec:
    def test_single_site_defaults(self):
        plan = parse_fault_spec("lanczos")
        clause = plan.clauses["lanczos"]
        assert clause.count == 1 and clause.prob == 1.0
        assert plan.seed == 0

    def test_full_grammar(self):
        plan = parse_fault_spec("lanczos:2;refine:*@0.5,seed=7")
        assert plan.clauses["lanczos"].count == 2
        assert plan.clauses["refine"].count is None
        assert plan.clauses["refine"].prob == 0.5
        assert plan.seed == 7

    @pytest.mark.parametrize(
        "bad",
        [
            "bogus",  # unknown site
            "lanczos:0",  # zero count
            "lanczos@0.0",  # prob out of range
            "lanczos@1.5",
            "lanczos;lanczos",  # duplicate site
            "seed=7",  # no fault clause
            "seed=x;lanczos",  # bad seed
            "",
            "lanczos:*:*",
        ],
    )
    def test_invalid_specs_raise(self, bad):
        with pytest.raises(ConfigurationError):
            parse_fault_spec(bad)

    def test_options_validate_spec_eagerly(self):
        with pytest.raises(ConfigurationError):
            DEFAULT_OPTIONS.with_(faults="bogus")

    def test_options_validate_deadline_and_retries(self):
        with pytest.raises(ConfigurationError):
            DEFAULT_OPTIONS.with_(deadline=0.0)
        with pytest.raises(ConfigurationError):
            DEFAULT_OPTIONS.with_(max_init_retries=-1)


# ---------------------------------------------------------------------------
# injector selection and the disabled path
# ---------------------------------------------------------------------------
class TestSelection:
    def test_disabled_by_default(self):
        assert faults_enabled() is None
        assert fault_injector() is NULL
        assert fault_injector(DEFAULT_OPTIONS) is NULL
        assert not NULL

    def test_env_activates(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "matching")
        fi = fault_injector(DEFAULT_OPTIONS)
        assert isinstance(fi, FaultInjector) and fi
        assert fi.plan.spec == "matching"

    def test_options_take_precedence_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "matching")
        fi = fault_injector(DEFAULT_OPTIONS.with_(faults="lanczos"))
        assert fi.plan.spec == "lanczos"

    def test_counted_clause_exhausts(self):
        fi = FaultInjector("initial:2")
        fired = [fi.trip("initial") for _ in range(5)]
        assert fired == [True, True, False, False, False]
        assert fi.consulted["initial"] == 5 and fi.fired["initial"] == 2

    def test_unlisted_site_never_fires(self):
        fi = FaultInjector("initial")
        assert not fi.trip("lanczos")

    def test_probabilistic_clause_is_seed_deterministic(self):
        draws = []
        for _ in range(2):
            fi = FaultInjector("refine:*@0.5;seed=3")
            draws.append([fi.trip("refine") for _ in range(32)])
        assert draws[0] == draws[1]
        assert any(draws[0]) and not all(draws[0])

    def test_disabled_path_makes_zero_trip_calls(self, monkeypatch):
        calls = []

        def counting_trip(self, site):
            calls.append(site)
            return False

        monkeypatch.setattr(FaultInjector, "trip", counting_trip)
        monkeypatch.setattr(NullFaultInjector, "trip", counting_trip)
        g = grid2d(12, 12)
        bisect(g, DEFAULT_OPTIONS)
        partition(g, 4, DEFAULT_OPTIONS)
        mlnd_ordering(g, DEFAULT_OPTIONS)
        assert calls == []


# ---------------------------------------------------------------------------
# typed spectral failure
# ---------------------------------------------------------------------------
class TestSpectralConvergence:
    def test_non_finite_operator_raises_typed(self):
        def bad_matvec(x):
            return np.full_like(x, np.nan)

        with pytest.raises(SpectralConvergenceError):
            lanczos_smallest(bad_matvec, 16, rng=np.random.default_rng(0))

    def test_injected_fiedler_failure(self):
        g = grid2d(6, 6)
        with pytest.raises(SpectralConvergenceError) as exc_info:
            fiedler_vector(g, rng=np.random.default_rng(0), faults=FaultInjector("lanczos"))
        assert exc_info.value.injected
        assert isinstance(exc_info.value, ReproError)

    def test_sbp_bisection_does_not_mask(self):
        g = grid2d(6, 6)
        with pytest.raises(SpectralConvergenceError):
            sbp_bisection(g, faults=FaultInjector("lanczos"))

    def test_healthy_lanczos_unaffected(self):
        g = grid2d(20, 20)
        vec = fiedler_vector(g, rng=np.random.default_rng(0), force_lanczos=True)
        assert np.isfinite(vec).all() and vec.shape == (400,)


# ---------------------------------------------------------------------------
# initial-partition fallback chain
# ---------------------------------------------------------------------------
class TestInitialFallbacks:
    def test_sbp_falls_back_to_gggp(self):
        """Acceptance criterion: injected Lanczos failure on the coarsest
        graph still yields a valid, balanced bisection via GGGP."""
        g = grid2d(16, 16)
        options = DEFAULT_OPTIONS.with_(
            initial=InitialScheme.SBP, faults="lanczos"
        )
        result = bisect(g, options)
        assert_valid_bisection(g, result.bisection)
        assert max(result.bisection.pwgts) <= np.ceil(1.2 * g.total_vwgt() / 2)
        events = [e for e in result.resilience if e.kind == "fallback"]
        assert len(events) == 1
        assert "sbp" in events[0].detail and events[0].phase == "initial"

    def test_retry_with_reseed_recovers(self):
        g = grid2d(16, 16)
        result = bisect(g, DEFAULT_OPTIONS.with_(faults="initial:2"))
        assert_valid_bisection(g, result.bisection)
        assert result.resilience.count("retry", "initial") == 2
        assert result.resilience.count("fallback") == 0

    def test_chain_exhaustion_hits_last_resort(self):
        g = grid2d(16, 16)
        result = bisect(
            g, DEFAULT_OPTIONS.with_(faults="initial:*", max_init_retries=1)
        )
        assert_valid_bisection(g, result.bisection)
        rep = result.resilience
        # Both grower schemes report exhaustion, then the terminal split.
        assert rep.count("fallback", "initial") == 3
        assert "weighted-median" in rep.events[-1].detail

    def test_direct_initial_bisection_fallback(self):
        g = grid2d(8, 8)
        report = ResilienceReport()
        bis = initial_bisection(
            g,
            DEFAULT_OPTIONS.with_(initial=InitialScheme.SBP),
            np.random.default_rng(1),
            faults=FaultInjector("lanczos"),
            report=report,
        )
        assert_valid_bisection(g, bis)
        assert report.count("fallback", "initial") == 1

    def test_no_fault_path_identical_results(self):
        g = grid2d(16, 16)
        a = bisect(g, DEFAULT_OPTIONS)
        b = bisect(g, DEFAULT_OPTIONS)
        assert np.array_equal(a.bisection.where, b.bisection.where)
        assert len(a.resilience) == 0


# ---------------------------------------------------------------------------
# coarsening stall
# ---------------------------------------------------------------------------
class TestCoarseningStall:
    def test_injected_degenerate_matching_stalls(self):
        g = grid2d(16, 16)
        result = bisect(g, DEFAULT_OPTIONS.with_(faults="matching"))
        assert result.nlevels == 1  # stalled immediately, partitioned flat
        assert_valid_bisection(g, result.bisection)
        assert result.resilience.count("stall", "coarsen") == 1

    def test_natural_stall_is_recorded(self):
        g = star_graph(400)  # maximal matchings match one edge at a time
        report = ResilienceReport()
        hierarchy = coarsen(g, DEFAULT_OPTIONS, report=report)
        assert hierarchy.coarsest.nvtxs > DEFAULT_OPTIONS.coarsen_to
        assert report.count("stall", "coarsen") >= 1


# ---------------------------------------------------------------------------
# deadline guard
# ---------------------------------------------------------------------------
class TestDeadlineGuard:
    def test_rejects_bad_config(self):
        with pytest.raises(ConfigurationError):
            DeadlineGuard(0.0)
        with pytest.raises(ConfigurationError):
            DeadlineGuard(10.0, degrade_fraction=2.0)

    def test_lifecycle_with_fake_clock(self):
        clock = FakeClock()
        guard = DeadlineGuard(100.0, clock=clock)
        assert not guard.expired() and not guard.nearing()
        assert guard.remaining() == pytest.approx(100.0)
        clock.t = 80.0  # remaining 20 <= 0.25 * 100
        assert guard.nearing() and not guard.expired()
        clock.t = 100.0
        assert guard.expired() and guard.remaining() == 0.0
        with pytest.raises(DeadlineExceededError):
            guard.check(phase="refine")

    def test_force_expire_and_report(self):
        guard = DeadlineGuard(1000.0, clock=FakeClock())
        guard.force_expire()
        assert guard.expired() and guard.remaining() == 0.0
        report = ResilienceReport()
        with pytest.raises(DeadlineExceededError) as exc_info:
            guard.check(phase="initial", level=3, report=report)
        assert report.count("deadline") == 1
        assert exc_info.value.phase == "initial"
        assert exc_info.value.report is report

    def test_check_is_noop_before_expiry(self):
        guard = DeadlineGuard(100.0, clock=FakeClock())
        guard.check(phase="coarsen")  # must not raise


# ---------------------------------------------------------------------------
# deadline-bounded drivers
# ---------------------------------------------------------------------------
class TestDeadlineIntegration:
    OPTIONS = DEFAULT_OPTIONS.with_(faults="deadline", deadline=3600.0)

    def test_bisect_raises_with_best_so_far(self):
        g = grid2d(16, 16)
        with pytest.raises(DeadlineExceededError) as exc_info:
            bisect(g, self.OPTIONS)
        best = exc_info.value.best
        assert best is not None
        assert_valid_bisection(g, best)
        assert exc_info.value.report.count("deadline") == 1

    def test_kway_degrades_instead_of_raising(self):
        g = grid2d(16, 16)
        result = partition(g, 4, self.OPTIONS)
        assert sorted(np.unique(result.where)) == [0, 1, 2, 3]
        assert int(result.pwgts.sum()) == g.total_vwgt()
        assert result.resilience.count("degradation", "kway") >= 1

    def test_ordering_degrades_to_mmd(self):
        g = grid2d(20, 20)
        ordering = mlnd_ordering(g, self.OPTIONS)
        ordering.verify()
        rep = ordering.meta["resilience"]
        assert rep.count("degradation", "ordering") >= 1

    def test_nearing_degrades_refinement(self):
        g = grid2d(16, 16)
        clock = FakeClock(0.0)
        guard = DeadlineGuard(100.0, clock=clock)
        clock.t = 90.0  # inside the degradation window, never expires
        result = bisect(g, DEFAULT_OPTIONS, guard=guard)
        assert_valid_bisection(g, result.bisection)
        degradations = [
            e for e in result.resilience if e.kind == "degradation"
        ]
        assert degradations and all("nearing" in e.detail for e in degradations)

    def test_refine_fault_degrades_policy(self):
        g = grid2d(16, 16)
        result = bisect(g, DEFAULT_OPTIONS.with_(faults="refine:*"))
        assert_valid_bisection(g, result.bisection)
        assert result.resilience.count("degradation", "refine") == result.nlevels

    def test_refine_fault_noop_for_single_pass_policy(self):
        g = grid2d(16, 16)
        result = bisect(
            g, DEFAULT_OPTIONS.with_(faults="refine:*", refinement=RefinePolicy.BGR)
        )
        assert result.resilience.count("degradation") == 0


# ---------------------------------------------------------------------------
# nested dissection fallbacks
# ---------------------------------------------------------------------------
class TestOrderingResilience:
    def test_bisector_failure_falls_back_to_mmd(self):
        g = grid2d(20, 20)

        def exploding_bisector(subgraph, rng):
            raise PartitionError("synthetic bisector failure")

        ordering = nested_dissection_ordering(g, exploding_bisector)
        ordering.verify()
        rep = ordering.meta["resilience"]
        assert rep.count("fallback", "ordering") >= 1
        assert "MMD" in rep.events[0].detail

    def test_snd_survives_unlimited_lanczos_faults(self):
        g = grid2d(20, 20)
        ordering = snd_ordering(g, DEFAULT_OPTIONS.with_(faults="lanczos:*"))
        ordering.verify()
        assert ordering.meta["resilience"].count("fallback", "ordering") >= 1

    def test_mlnd_with_initial_faults_still_orders(self):
        g = grid2d(20, 20)
        ordering = mlnd_ordering(g, DEFAULT_OPTIONS.with_(faults="initial:3"))
        ordering.verify()
        assert ordering.meta["resilience"].count("retry", "initial") == 3

    def test_clean_run_has_empty_report(self):
        g = grid2d(14, 14)
        ordering = mlnd_ordering(g, DEFAULT_OPTIONS)
        assert not ordering.meta["resilience"]


# ---------------------------------------------------------------------------
# degenerate inputs: valid result or typed error, never a numpy crash
# ---------------------------------------------------------------------------
class TestDegenerateInputs:
    EMPTY = from_edge_list(0, [])
    SINGLE = from_edge_list(1, [])
    EDGELESS = from_edge_list(8, [])

    def test_bisect_rejects_tiny_graphs_typed(self):
        for g in (self.EMPTY, self.SINGLE):
            with pytest.raises(ReproError):
                bisect(g, DEFAULT_OPTIONS)

    def test_bisect_edgeless(self):
        result = bisect(self.EDGELESS, DEFAULT_OPTIONS)
        assert result.bisection.cut == 0
        assert sorted(result.bisection.pwgts.tolist()) == [4, 4]

    def test_bisect_disconnected(self):
        g = two_triangles()
        result = bisect(g, DEFAULT_OPTIONS)
        assert result.bisection.cut == 0
        assert_valid_bisection(g, result.bisection)

    def test_partition_degenerate(self):
        with pytest.raises(ReproError):
            partition(self.EMPTY, 1, DEFAULT_OPTIONS)
        single = partition(self.SINGLE, 1, DEFAULT_OPTIONS)
        assert single.where.tolist() == [0]
        edgeless = partition(self.EDGELESS, 4, DEFAULT_OPTIONS)
        assert sorted(edgeless.pwgts.tolist()) == [2, 2, 2, 2]
        disconnected = partition(two_triangles(), 2, DEFAULT_OPTIONS)
        assert disconnected.cut == 0

    def test_nested_dissection_degenerate(self):
        for g in (self.EMPTY, self.SINGLE, self.EDGELESS, two_triangles()):
            ordering = mlnd_ordering(g, DEFAULT_OPTIONS)
            ordering.verify()
            assert len(ordering) == g.nvtxs

    def test_degenerate_with_faults_active(self):
        options = DEFAULT_OPTIONS.with_(faults="lanczos:*;initial:*;matching:*")
        result = bisect(self.EDGELESS, options)
        assert result.bisection.cut == 0
        ordering = mlnd_ordering(two_triangles(), options)
        ordering.verify()


# ---------------------------------------------------------------------------
# report API
# ---------------------------------------------------------------------------
class TestReport:
    def test_record_count_iter_len_bool(self):
        report = ResilienceReport()
        assert not report and len(report) == 0
        report.record("fallback", "initial", "sbp failed", level=2)
        report.record("retry", "initial", "reseeded")
        report.record("stall", "coarsen", "stalled", level=0)
        assert report and len(report) == 3
        assert report.count() == 3
        assert report.count("retry") == 1
        assert report.count(phase="initial") == 2
        assert report.count("fallback", "coarsen") == 0
        assert [e.kind for e in report] == ["fallback", "retry", "stall"]

    def test_event_str_and_summary(self):
        report = ResilienceReport()
        event = report.record("fallback", "initial", "sbp failed", level=2)
        assert str(event) == "[fallback/initial@L2] sbp failed"
        report.record("retry", "initial", "reseeded")
        assert report.summary().splitlines() == [
            "[fallback/initial@L2] sbp failed",
            "[retry/initial] reseeded",
        ]

    def test_merge(self):
        a, b = ResilienceReport(), ResilienceReport()
        a.record("fallback", "initial", "x")
        b.record("stall", "coarsen", "y")
        a.merge(b)
        assert len(a) == 2
        a.merge(a)  # self-merge is a no-op
        assert len(a) == 2


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------
class TestCLI:
    @pytest.fixture
    def graph_file(self, tmp_path):
        from repro.graph import write_graph

        path = tmp_path / "grid.graph"
        write_graph(grid2d(10, 10), path)
        return str(path)

    def test_partition_accepts_deadline_flags(self, graph_file, capsys):
        from repro.cli import main

        code = main(
            ["partition", graph_file, "2", "--deadline", "3600",
             "--max-retries", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "edge-cut" in out
        assert "resilience" not in out  # clean run prints no events

    def test_partition_prints_resilience_events(self, graph_file, capsys,
                                                monkeypatch):
        from repro.cli import main

        monkeypatch.setenv("REPRO_FAULTS", "initial:2")
        assert main(["partition", graph_file, "2"]) == 0
        out = capsys.readouterr().out
        assert "resilience: 2 event(s)" in out
        assert "[retry/initial]" in out

    def test_order_prints_resilience_events(self, tmp_path, capsys,
                                            monkeypatch):
        from repro.cli import main
        from repro.graph import write_graph

        # Big enough that mlnd actually dissects (leaf_size is 120).
        path = tmp_path / "grid20.graph"
        write_graph(grid2d(20, 20), path)
        monkeypatch.setenv("REPRO_FAULTS", "initial:1")
        assert main(["order", str(path), "--method", "mlnd"]) == 0
        out = capsys.readouterr().out
        assert "resilience: 1 event(s)" in out
        assert "[retry/initial]" in out

    def test_bad_deadline_is_a_config_error(self, graph_file):
        from repro.cli import main

        with pytest.raises(ConfigurationError):
            main(["partition", graph_file, "2", "--deadline", "-1"])
