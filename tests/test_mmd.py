"""Tests for the multiple-minimum-degree ordering."""

import numpy as np
import pytest

from repro.ordering import factor_stats, minimum_degree_ordering, mmd_ordering
from tests.conftest import (
    complete_graph,
    cycle_graph,
    path_graph,
    random_graph,
    star_graph,
)


class TestValidity:
    @pytest.mark.parametrize(
        "graph",
        [
            path_graph(12),
            cycle_graph(9),
            star_graph(7),
            complete_graph(6),
            random_graph(40, 0.15, seed=1),
            random_graph(40, 0.02, seed=2),  # sparse, disconnected
        ],
        ids=["path", "cycle", "star", "clique", "random", "sparse"],
    )
    def test_produces_permutation(self, graph):
        mmd_ordering(graph).verify()

    def test_empty_graph(self):
        from repro.graph import from_edge_list

        o = mmd_ordering(from_edge_list(0, []))
        assert len(o) == 0

    def test_edgeless_graph(self):
        from repro.graph import from_edge_list

        o = mmd_ordering(from_edge_list(5, []))
        o.verify()

    def test_method_tag(self):
        assert mmd_ordering(path_graph(4)).method == "mmd"


class TestQuality:
    def test_tree_ordering_is_perfect(self):
        """Trees have perfect elimination orders; minimum degree finds one
        (always a leaf available), so MMD must produce zero fill."""
        rng = np.random.default_rng(3)
        n = 60
        edges = [(i, int(rng.integers(0, i))) for i in range(1, n)]
        from repro.graph import from_edge_list

        g = from_edge_list(n, edges)
        stats = factor_stats(g, mmd_ordering(g).perm)
        assert stats.fill == 0

    def test_path_no_fill(self):
        g = path_graph(30)
        stats = factor_stats(g, mmd_ordering(g).perm)
        assert stats.fill == 0

    def test_star_no_fill(self):
        """Leaves have degree 1 < centre, so MMD orders the centre last."""
        g = star_graph(20)
        o = mmd_ordering(g)
        assert o.perm[-1] == 0
        assert factor_stats(g, o.perm).fill == 0

    def test_cycle_minimal_fill(self):
        # Optimal fill of an n-cycle is n-3 (triangulation of a polygon).
        g = cycle_graph(12)
        stats = factor_stats(g, mmd_ordering(g).perm)
        assert stats.fill == 9

    def test_beats_natural_on_grid(self):
        from repro.matrices import grid2d

        g = grid2d(14, 14)
        natural = factor_stats(g, np.arange(g.nvtxs))
        md = factor_stats(g, mmd_ordering(g).perm)
        assert md.opcount < natural.opcount / 2

    def test_beats_random_ordering(self):
        g = random_graph(50, 0.1, seed=4, connected=True)
        rnd = factor_stats(g, np.random.default_rng(0).permutation(g.nvtxs))
        md = factor_stats(g, mmd_ordering(g).perm)
        assert md.opcount <= rnd.opcount

    def test_delta_variants_all_valid(self):
        g = random_graph(50, 0.1, seed=5, connected=True)
        for delta in (0, 1, 2):
            mmd_ordering(g, delta=delta).verify()

    def test_minimum_degree_alias(self):
        g = path_graph(10)
        minimum_degree_ordering(g).verify()

    def test_deterministic(self):
        g = random_graph(40, 0.15, seed=6)
        a = mmd_ordering(g)
        b = mmd_ordering(g)
        assert np.array_equal(a.perm, b.perm)

    def test_supervariables_on_clique_graph(self):
        """All vertices of a clique are indistinguishable after the first
        round; the ordering must still be a valid permutation and fill-free
        (cliques are already dense)."""
        g = complete_graph(8)
        o = mmd_ordering(g)
        o.verify()
        assert factor_stats(g, o.perm).fill == 0
