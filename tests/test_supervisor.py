"""Chaos tests for the supervised worker runtime (repro.resilience.supervisor).

The supervision contract: with ``workers=N`` and injected worker faults
(``worker_crash`` / ``worker_hang`` / ``worker_slow``), every driver entry
still *returns* — no hang, no unhandled ``BrokenProcessPool``, no leaked
child process — and the result is bit-identical to ``workers=1``, because
every retry and the sequential demotion re-run the branch from the same
pre-seeded RNG stream.  Every supervision decision must be auditable: a
``retry``/``degradation`` event (phase ``"worker"``) in the
``ResilienceReport`` and a ``worker.*`` event in the trace.

The suite is written to pass under the CI chaos leg, which sets ambient
``REPRO_FAULTS`` (a worker-site spec) and ``REPRO_WORKERS=2``: baselines
pin ``workers=1`` explicitly (worker sites are never consulted without a
pool), and tests that need a specific fault mix set ``options.faults``,
which takes precedence over the environment.
"""

import multiprocessing
import time

import numpy as np
import pytest

from repro.core import partition
from repro.core.options import DEFAULT_OPTIONS
from repro.matrices import grid2d, grid3d
from repro.obs import WORKER_EVENT_PREFIX, profile, read_trace
from repro.ordering import mlnd_ordering
from repro.resilience.deadline import DeadlineGuard
from repro.resilience.faults import (
    WORKER_FAULT_SITES,
    fault_injector,
    parse_fault_spec,
    worker_faults_only,
)
from repro.resilience.report import ResilienceReport
from repro.resilience.supervisor import BranchSupervisor


@pytest.fixture(autouse=True)
def _controlled_env(monkeypatch):
    # Worker timeout and tracing are owned by each test; ambient
    # REPRO_FAULTS / REPRO_WORKERS are deliberately left alone so the CI
    # chaos leg exercises the env-driven path through the same tests.
    monkeypatch.delenv("REPRO_WORKER_TIMEOUT", raising=False)
    monkeypatch.delenv("REPRO_TRACE", raising=False)


MESHES = {
    "mesh2d": lambda: grid2d(24, 23),
    "mesh3d": lambda: grid3d(9, 8, 8),
}

SEQ = DEFAULT_OPTIONS.with_(workers=1)


def _worker_events(report):
    return [e for e in report if e.phase == "worker"]


def _assert_no_orphans():
    deadline = time.monotonic() + 10.0
    while multiprocessing.active_children() and time.monotonic() < deadline:
        time.sleep(0.05)
    assert multiprocessing.active_children() == []


# -- fault grammar ------------------------------------------------------


class TestWorkerFaultSites:
    def test_sites_parse(self):
        plan = parse_fault_spec("worker_crash:2@0.5;worker_hang:1;seed=9")
        assert set(plan.clauses) == {"worker_crash", "worker_hang"}
        assert plan.seed == 9

    def test_worker_faults_only(self):
        only = fault_injector(DEFAULT_OPTIONS.with_(faults="worker_crash"))
        mixed = fault_injector(
            DEFAULT_OPTIONS.with_(faults="worker_crash;lanczos:1")
        )
        assert worker_faults_only(None)
        assert worker_faults_only(only)
        assert not worker_faults_only(mixed)
        assert WORKER_FAULT_SITES == {
            "worker_crash", "worker_hang", "worker_slow",
        }

    def test_mixed_spec_runs_sequentially_and_identically(self):
        graph = grid2d(20, 20)
        base = partition(graph, 4, SEQ, np.random.default_rng(3))
        opts = DEFAULT_OPTIONS.with_(workers=2, faults="worker_crash;lanczos:1")
        mixed = partition(graph, 4, opts, np.random.default_rng(3))
        # The in-process site forces the sequential path; the lanczos
        # fault itself is absorbed by the initial-partition fallback chain.
        assert np.array_equal(base.where, mixed.where)


# -- supervisor unit behaviour ------------------------------------------


def _square_job(value, *, guard=None):
    return value * value


def _guard_probe_job(value, *, guard=None):
    return value, (None if guard is None else type(guard).__name__)


def _marker_probe_job(value, *, guard=None):
    # Pool submissions never carry a guard; only the in-process demotion
    # path can see an attribute stamped on the parent's guard object.
    return value, getattr(guard, "test_marker", None)


class TestBranchSupervisor:
    def test_drain_preserves_submission_order(self):
        with BranchSupervisor(2) as sup:
            for i in range(5):
                sup.submit(_square_job, i, meta=f"m{i}")
            drained = list(sup.drain())
        assert drained == [(f"m{i}", i * i) for i in range(5)]
        _assert_no_orphans()

    def test_crash_demotion_builds_guard_from_timeout(self):
        faults = fault_injector(
            DEFAULT_OPTIONS.with_(faults="worker_crash:*@1.0;seed=1")
        )
        report = ResilienceReport()
        with BranchSupervisor(
            2, max_retries=0, timeout=30.0, report=report, faults=faults
        ) as sup:
            sup.submit(_guard_probe_job, 7, meta="m")
            [(meta, result)] = list(sup.drain())
        assert result == (7, "DeadlineGuard")
        kinds = [e.kind for e in _worker_events(report)]
        assert "degradation" in kinds
        _assert_no_orphans()

    def test_demoted_branch_shares_the_parent_guard(self):
        faults = fault_injector(
            DEFAULT_OPTIONS.with_(faults="worker_crash:*@1.0;seed=1")
        )
        guard = DeadlineGuard(60.0)
        guard.test_marker = "parent-guard"
        with BranchSupervisor(
            2, max_retries=0, guard=guard, faults=faults
        ) as sup:
            sup.submit(_marker_probe_job, 5, meta=None)
            [(meta, result)] = list(sup.drain())
        assert result == (5, "parent-guard")
        _assert_no_orphans()

    def test_abnormal_exit_kills_the_pool(self):
        with pytest.raises(RuntimeError):
            with BranchSupervisor(2) as sup:
                sup.submit(_square_job, 3, meta=None)
                raise RuntimeError("driver died before draining")
        _assert_no_orphans()


# -- driver chaos: crash ------------------------------------------------


@pytest.mark.parametrize("name", MESHES, ids=MESHES.keys())
class TestCrashRecovery:
    def test_partition_retries_and_matches_sequential(self, name):
        graph = MESHES[name]()
        base = partition(graph, 5, SEQ, np.random.default_rng(7))
        opts = DEFAULT_OPTIONS.with_(workers=2, faults="worker_crash;seed=3")
        chaotic = partition(graph, 5, opts, np.random.default_rng(7))
        assert np.array_equal(base.where, chaotic.where)
        assert chaotic.cut == base.cut
        events = _worker_events(chaotic.resilience)
        assert events and all(e.kind in ("retry", "degradation") for e in events)
        _assert_no_orphans()

    def test_mlnd_retries_and_matches_sequential(self, name):
        graph = MESHES[name]()
        base = mlnd_ordering(graph, SEQ, np.random.default_rng(13))
        opts = DEFAULT_OPTIONS.with_(workers=2, faults="worker_crash;seed=3")
        chaotic = mlnd_ordering(graph, opts, np.random.default_rng(13))
        assert np.array_equal(base.perm, chaotic.perm)
        assert _worker_events(chaotic.meta["resilience"])
        _assert_no_orphans()


class TestRetryExhaustion:
    def test_every_submission_crashing_degrades_to_sequential(self):
        graph = grid2d(24, 23)
        base = partition(graph, 4, SEQ, np.random.default_rng(7))
        opts = DEFAULT_OPTIONS.with_(
            workers=2, faults="worker_crash:*@1.0;seed=1", worker_retries=1
        )
        chaotic = partition(graph, 4, opts, np.random.default_rng(7))
        assert np.array_equal(base.where, chaotic.where)
        kinds = [e.kind for e in _worker_events(chaotic.resilience)]
        assert "degradation" in kinds
        _assert_no_orphans()

    def test_mlnd_degrades_to_sequential(self):
        graph = grid3d(9, 8, 8)
        base = mlnd_ordering(graph, SEQ, np.random.default_rng(13))
        opts = DEFAULT_OPTIONS.with_(
            workers=2, faults="worker_crash:*@1.0;seed=1", worker_retries=0
        )
        chaotic = mlnd_ordering(graph, opts, np.random.default_rng(13))
        assert np.array_equal(base.perm, chaotic.perm)
        kinds = [e.kind for e in _worker_events(chaotic.meta["resilience"])]
        assert "degradation" in kinds
        _assert_no_orphans()


# -- driver chaos: hang and slow ----------------------------------------


class TestHangAndSlow:
    def test_hung_worker_times_out_and_retries(self):
        graph = grid2d(24, 23)
        base = partition(graph, 4, SEQ, np.random.default_rng(7))
        opts = DEFAULT_OPTIONS.with_(
            workers=2, faults="worker_hang:1;seed=5", worker_timeout=0.5
        )
        t0 = time.monotonic()
        chaotic = partition(graph, 4, opts, np.random.default_rng(7))
        assert time.monotonic() - t0 < 60.0
        assert np.array_equal(base.where, chaotic.where)
        events = _worker_events(chaotic.resilience)
        assert events and events[0].kind == "retry"
        _assert_no_orphans()

    def test_hang_without_timeout_is_still_bounded(self):
        # No worker_timeout, no deadline: the supervisor's internal hang
        # fallback must keep an injected hang from stalling the run.
        graph = grid2d(24, 23)
        base = partition(graph, 4, SEQ, np.random.default_rng(7))
        opts = DEFAULT_OPTIONS.with_(workers=2, faults="worker_hang:1;seed=5")
        t0 = time.monotonic()
        chaotic = partition(graph, 4, opts, np.random.default_rng(7))
        assert time.monotonic() - t0 < 120.0
        assert np.array_equal(base.where, chaotic.where)
        _assert_no_orphans()

    def test_slow_worker_completes_without_supervision_events(self):
        graph = grid2d(24, 23)
        base = partition(graph, 4, SEQ, np.random.default_rng(7))
        opts = DEFAULT_OPTIONS.with_(workers=2, faults="worker_slow;seed=7")
        chaotic = partition(graph, 4, opts, np.random.default_rng(7))
        assert np.array_equal(base.where, chaotic.where)
        assert _worker_events(chaotic.resilience) == []
        _assert_no_orphans()


# -- clean path ----------------------------------------------------------


@pytest.mark.parametrize("name", MESHES, ids=MESHES.keys())
class TestCleanPath:
    def test_no_faults_no_timeout_bit_identical(self, name, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        graph = MESHES[name]()
        base = partition(graph, 5, SEQ, np.random.default_rng(7))
        fanned = partition(
            graph, 5, DEFAULT_OPTIONS.with_(workers=2), np.random.default_rng(7)
        )
        assert np.array_equal(base.where, fanned.where)
        assert _worker_events(fanned.resilience) == []
        _assert_no_orphans()

    def test_worker_timeout_alone_does_not_perturb(self, name, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        graph = MESHES[name]()
        base = partition(graph, 5, SEQ, np.random.default_rng(7))
        opts = DEFAULT_OPTIONS.with_(workers=2, worker_timeout=120.0)
        fanned = partition(graph, 5, opts, np.random.default_rng(7))
        assert np.array_equal(base.where, fanned.where)
        assert _worker_events(fanned.resilience) == []


# -- observability -------------------------------------------------------


class TestWorkerTraceEvents:
    def test_supervision_decisions_land_in_the_trace(self, tmp_path):
        graph = grid2d(24, 23)
        trace = tmp_path / "chaos.jsonl"
        opts = DEFAULT_OPTIONS.with_(
            workers=2,
            faults="worker_crash:*@1.0;seed=1",
            worker_retries=1,
            trace=str(trace),
        )
        partition(graph, 4, opts, np.random.default_rng(7))
        prof = profile(read_trace(trace))
        worker_events = {
            name: count
            for name, count in prof["events"].items()
            if name.startswith(WORKER_EVENT_PREFIX)
        }
        assert "worker.crash" in worker_events
        assert "worker.retry" in worker_events
        assert "worker.degrade" in worker_events
        # The rollup folds the same events into the worker bucket, next to
        # the demoted branches' worker.sequential spans.
        bucket = prof["rollup"]["worker"]
        assert bucket["events"] == worker_events
        assert "worker.sequential" in bucket["spans"]

    def test_clean_traced_run_reconciles_timers(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        graph = grid2d(24, 23)
        trace = tmp_path / "clean.jsonl"
        opts = DEFAULT_OPTIONS.with_(workers=2, trace=str(trace))
        result = partition(graph, 4, opts, np.random.default_rng(7))
        prof = profile(read_trace(trace))
        # Synthetic worker.phase spans splice pool-measured phase time
        # back into the span tree, so traced workers=N still reconciles.
        # Span and timer clocks are sampled independently, hence the
        # loose-but-meaningful tolerance.
        for phase, total in result.timers.items():
            assert prof["phases"][phase] == pytest.approx(
                total, rel=0.05, abs=5e-3
            )
