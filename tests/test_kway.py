"""Tests for k-way partitioning by recursive bisection."""

import numpy as np
import pytest

from repro.core import partition
from repro.core.options import DEFAULT_OPTIONS
from repro.graph import edge_cut, part_weights
from repro.utils.errors import PartitionError
from tests.conftest import path_graph, random_graph


class TestBasics:
    def test_k1_trivial(self, grid16):
        p = partition(grid16, 1)
        assert p.cut == 0
        assert np.all(p.where == 0)

    def test_k2_is_bisection(self, grid16):
        p = partition(grid16, 2, DEFAULT_OPTIONS, np.random.default_rng(0))
        assert set(np.unique(p.where)) == {0, 1}
        assert p.cut == edge_cut(grid16, p.where)

    @pytest.mark.parametrize("k", [2, 3, 4, 5, 7, 8, 16])
    def test_every_part_nonempty(self, grid16, k):
        p = partition(grid16, k, DEFAULT_OPTIONS, np.random.default_rng(1))
        assert p.nparts == k
        counts = np.bincount(p.where, minlength=k)
        assert np.all(counts > 0)

    @pytest.mark.parametrize("k", [3, 4, 8])
    def test_cut_consistent(self, grid16, k):
        p = partition(grid16, k, DEFAULT_OPTIONS, np.random.default_rng(2))
        assert p.cut == edge_cut(grid16, p.where)
        assert np.array_equal(p.pwgts, part_weights(grid16, p.where, k))

    @pytest.mark.parametrize("k", [2, 4, 8, 16])
    def test_balance_within_tolerance(self, grid16, k):
        p = partition(grid16, k, DEFAULT_OPTIONS, np.random.default_rng(3))
        # Granularity: ceil() at each bisection level can add one vertex
        # per part beyond the ubfactor, which matters when parts are tiny.
        granularity = 2.0 * k / grid16.total_vwgt()
        assert p.balance(grid16) <= DEFAULT_OPTIONS.ubfactor + granularity

    def test_nonpow2_balance(self, grid16):
        p = partition(grid16, 5, DEFAULT_OPTIONS, np.random.default_rng(4))
        ideal = grid16.total_vwgt() / 5
        assert p.pwgts.max() <= np.ceil(ideal * (DEFAULT_OPTIONS.ubfactor + 0.02))

    def test_cut_grows_with_k(self, grid16):
        cuts = [
            partition(grid16, k, DEFAULT_OPTIONS, np.random.default_rng(5)).cut
            for k in (2, 4, 8, 16)
        ]
        assert cuts == sorted(cuts)

    def test_deterministic_with_seed(self, grid16):
        a = partition(grid16, 8, DEFAULT_OPTIONS, np.random.default_rng(6))
        b = partition(grid16, 8, DEFAULT_OPTIONS, np.random.default_rng(6))
        assert np.array_equal(a.where, b.where)

    def test_k_equals_n(self):
        g = path_graph(6)
        p = partition(g, 6, DEFAULT_OPTIONS.with_(coarsen_to=2),
                      np.random.default_rng(7))
        assert sorted(p.where.tolist()) == list(range(6))
        assert p.cut == g.nedges  # every edge cut

    def test_errors(self, grid16):
        with pytest.raises(PartitionError):
            partition(grid16, 0)
        with pytest.raises(PartitionError):
            partition(path_graph(3), 4)

    def test_timers_merged(self, grid16):
        p = partition(grid16, 8, DEFAULT_OPTIONS, np.random.default_rng(8))
        assert p.timers.get("CTime", 0) > 0
        assert "RTime" in p.timers

    def test_disconnected_graph(self):
        g = random_graph(60, 0.05, seed=11)  # likely disconnected
        p = partition(g, 4, DEFAULT_OPTIONS.with_(coarsen_to=20),
                      np.random.default_rng(9))
        assert p.cut == edge_cut(g, p.where)
        assert np.bincount(p.where, minlength=4).min() > 0

    def test_weighted_vertices_balance_by_weight(self):
        from repro.graph import from_edge_list

        rng = np.random.default_rng(12)
        n = 64
        edges = [(i, i + 1) for i in range(n - 1)] + [(i, i + 2) for i in range(n - 2)]
        vwgt = rng.integers(1, 5, n)
        g = from_edge_list(n, edges, vwgt=vwgt)
        p = partition(g, 4, DEFAULT_OPTIONS, np.random.default_rng(0))
        ideal = g.total_vwgt() / 4
        assert p.pwgts.max() <= np.ceil(ideal * 1.25)  # weighted, coarse caps

    def test_custom_bisector_plugs_in(self, grid16):
        """The bisector hook must drive the recursion (spectral baselines
        rely on this)."""
        from repro.core.multilevel import MultilevelResult
        from repro.core.refine import PassStats
        from repro.graph import Bisection
        from repro.utils.timing import PhaseTimer

        calls = []

        def bisector(g, opts, rng, target0):
            calls.append(g.nvtxs)
            where = np.zeros(g.nvtxs, dtype=np.int8)
            where[: g.nvtxs // 2] = 0
            where[g.nvtxs // 2 :] = 1
            return MultilevelResult(
                bisection=Bisection.from_where(g, where),
                timers=PhaseTimer(),
                nlevels=1,
                coarsest_nvtxs=g.nvtxs,
                initial_cut=0,
                stats=PassStats(),
            )

        p = partition(grid16, 4, DEFAULT_OPTIONS, np.random.default_rng(0),
                      bisector=bisector)
        assert len(calls) == 3  # one root + two children
        assert np.bincount(p.where, minlength=4).min() > 0
