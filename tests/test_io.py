"""Tests for graph file I/O (Chaco/METIS .graph format, MatrixMarket)."""

import numpy as np
import pytest

from repro.graph import from_edge_list, read_graph, read_matrix_market, write_graph
from repro.utils.errors import GraphValidationError
from tests.conftest import complete_graph, path_graph


def roundtrip(g, tmp_path):
    path = tmp_path / "g.graph"
    write_graph(g, path)
    return read_graph(path)


class TestRoundtrip:
    def test_unweighted(self, tmp_path):
        g = path_graph(6)
        assert roundtrip(g, tmp_path).sorted_adjacency() == g.sorted_adjacency()

    def test_edge_weighted(self, tmp_path):
        g = from_edge_list(4, [(0, 1), (1, 2), (2, 3)], [5, 1, 9])
        assert roundtrip(g, tmp_path).sorted_adjacency() == g.sorted_adjacency()

    def test_vertex_weighted(self, tmp_path):
        g = from_edge_list(3, [(0, 1), (1, 2)], vwgt=[4, 5, 6])
        assert roundtrip(g, tmp_path).sorted_adjacency() == g.sorted_adjacency()

    def test_both_weighted(self, tmp_path):
        g = from_edge_list(3, [(0, 1), (1, 2)], [2, 3], vwgt=[4, 5, 6])
        assert roundtrip(g, tmp_path).sorted_adjacency() == g.sorted_adjacency()

    def test_isolated_vertices(self, tmp_path):
        g = from_edge_list(5, [(0, 1)])
        back = roundtrip(g, tmp_path)
        assert back.nvtxs == 5
        assert back.nedges == 1

    def test_complete_graph(self, tmp_path):
        g = complete_graph(7)
        assert roundtrip(g, tmp_path).sorted_adjacency() == g.sorted_adjacency()

    def test_empty_edge_graph(self, tmp_path):
        g = from_edge_list(3, [])
        back = roundtrip(g, tmp_path)
        assert back.nvtxs == 3 and back.nedges == 0


class TestHeaderFormats:
    def test_fmt_defaults_and_comments(self, tmp_path):
        path = tmp_path / "g.graph"
        path.write_text("% a comment\n3 2\n2\n1 3\n2\n")
        g = read_graph(path)
        assert g.nvtxs == 3 and g.nedges == 2

    def test_fmt_single_digit_1_means_edge_weights(self, tmp_path):
        path = tmp_path / "g.graph"
        path.write_text("2 1 1\n2 7\n1 7\n")
        g = read_graph(path)
        assert g.edge_weight(0, 1) == 7

    def test_fmt_10_vertex_weights(self, tmp_path):
        path = tmp_path / "g.graph"
        path.write_text("2 1 10\n5 2\n6 1\n")
        g = read_graph(path)
        assert g.vwgt.tolist() == [5, 6]

    def test_fmt_11_both(self, tmp_path):
        path = tmp_path / "g.graph"
        path.write_text("2 1 11\n5 2 9\n6 1 9\n")
        g = read_graph(path)
        assert g.vwgt.tolist() == [5, 6]
        assert g.edge_weight(0, 1) == 9


class TestMalformed:
    def test_empty_file(self, tmp_path):
        path = tmp_path / "g.graph"
        path.write_text("")
        with pytest.raises(GraphValidationError, match="empty"):
            read_graph(path)

    def test_short_header(self, tmp_path):
        path = tmp_path / "g.graph"
        path.write_text("5\n")
        with pytest.raises(GraphValidationError, match="header"):
            read_graph(path)

    def test_wrong_vertex_count(self, tmp_path):
        path = tmp_path / "g.graph"
        path.write_text("3 1\n2\n1\n")
        with pytest.raises(GraphValidationError, match="vertices"):
            read_graph(path)

    def test_wrong_edge_count(self, tmp_path):
        path = tmp_path / "g.graph"
        path.write_text("2 5\n2\n1\n")
        with pytest.raises(GraphValidationError, match="edges"):
            read_graph(path)

    def test_out_of_range_neighbor(self, tmp_path):
        path = tmp_path / "g.graph"
        path.write_text("2 1\n3\n1\n")
        with pytest.raises(GraphValidationError, match="out of range"):
            read_graph(path)


class TestMatrixMarket:
    def test_symmetric_pattern(self, tmp_path):
        path = tmp_path / "m.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "% comment\n"
            "3 3 4\n"
            "1 1 2.0\n"
            "2 1 -1.0\n"
            "3 2 -1.0\n"
            "2 2 2.0\n"
        )
        g = read_matrix_market(path)
        assert g.nvtxs == 3
        assert g.nedges == 2
        assert g.has_edge(0, 1) and g.has_edge(1, 2)

    def test_pattern_file_without_values(self, tmp_path):
        path = tmp_path / "m.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern symmetric\n"
            "2 2 1\n"
            "2 1\n"
        )
        g = read_matrix_market(path)
        assert g.nedges == 1

    def test_rejects_nonsquare(self, tmp_path):
        path = tmp_path / "m.mtx"
        path.write_text("%%MatrixMarket matrix coordinate real general\n2 3 1\n1 2 1.0\n")
        with pytest.raises(GraphValidationError, match="square"):
            read_matrix_market(path)

    def test_rejects_missing_header(self, tmp_path):
        path = tmp_path / "m.mtx"
        path.write_text("2 2 1\n1 2 1.0\n")
        with pytest.raises(GraphValidationError, match="header"):
            read_matrix_market(path)

    def test_rejects_array_format(self, tmp_path):
        path = tmp_path / "m.mtx"
        path.write_text("%%MatrixMarket matrix array real general\n2 2\n1.0\n")
        with pytest.raises(GraphValidationError, match="coordinate"):
            read_matrix_market(path)
