"""Tests for graph file I/O (Chaco/METIS .graph format, MatrixMarket)."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graph import from_edge_list, read_graph, read_matrix_market, write_graph
from repro.utils.errors import GraphValidationError
from tests.conftest import complete_graph, path_graph


def roundtrip(g, tmp_path):
    path = tmp_path / "g.graph"
    write_graph(g, path)
    return read_graph(path)


class TestRoundtrip:
    def test_unweighted(self, tmp_path):
        g = path_graph(6)
        assert roundtrip(g, tmp_path).sorted_adjacency() == g.sorted_adjacency()

    def test_edge_weighted(self, tmp_path):
        g = from_edge_list(4, [(0, 1), (1, 2), (2, 3)], [5, 1, 9])
        assert roundtrip(g, tmp_path).sorted_adjacency() == g.sorted_adjacency()

    def test_vertex_weighted(self, tmp_path):
        g = from_edge_list(3, [(0, 1), (1, 2)], vwgt=[4, 5, 6])
        assert roundtrip(g, tmp_path).sorted_adjacency() == g.sorted_adjacency()

    def test_both_weighted(self, tmp_path):
        g = from_edge_list(3, [(0, 1), (1, 2)], [2, 3], vwgt=[4, 5, 6])
        assert roundtrip(g, tmp_path).sorted_adjacency() == g.sorted_adjacency()

    def test_isolated_vertices(self, tmp_path):
        g = from_edge_list(5, [(0, 1)])
        back = roundtrip(g, tmp_path)
        assert back.nvtxs == 5
        assert back.nedges == 1

    def test_complete_graph(self, tmp_path):
        g = complete_graph(7)
        assert roundtrip(g, tmp_path).sorted_adjacency() == g.sorted_adjacency()

    def test_empty_edge_graph(self, tmp_path):
        g = from_edge_list(3, [])
        back = roundtrip(g, tmp_path)
        assert back.nvtxs == 3 and back.nedges == 0


class TestHeaderFormats:
    def test_fmt_defaults_and_comments(self, tmp_path):
        path = tmp_path / "g.graph"
        path.write_text("% a comment\n3 2\n2\n1 3\n2\n")
        g = read_graph(path)
        assert g.nvtxs == 3 and g.nedges == 2

    def test_fmt_single_digit_1_means_edge_weights(self, tmp_path):
        path = tmp_path / "g.graph"
        path.write_text("2 1 1\n2 7\n1 7\n")
        g = read_graph(path)
        assert g.edge_weight(0, 1) == 7

    def test_fmt_10_vertex_weights(self, tmp_path):
        path = tmp_path / "g.graph"
        path.write_text("2 1 10\n5 2\n6 1\n")
        g = read_graph(path)
        assert g.vwgt.tolist() == [5, 6]

    def test_fmt_11_both(self, tmp_path):
        path = tmp_path / "g.graph"
        path.write_text("2 1 11\n5 2 9\n6 1 9\n")
        g = read_graph(path)
        assert g.vwgt.tolist() == [5, 6]
        assert g.edge_weight(0, 1) == 9


class TestMalformed:
    def test_empty_file(self, tmp_path):
        path = tmp_path / "g.graph"
        path.write_text("")
        with pytest.raises(GraphValidationError, match="empty"):
            read_graph(path)

    def test_short_header(self, tmp_path):
        path = tmp_path / "g.graph"
        path.write_text("5\n")
        with pytest.raises(GraphValidationError, match="header"):
            read_graph(path)

    def test_wrong_vertex_count(self, tmp_path):
        path = tmp_path / "g.graph"
        path.write_text("3 1\n2\n1\n")
        with pytest.raises(GraphValidationError, match="vertices"):
            read_graph(path)

    def test_wrong_edge_count(self, tmp_path):
        path = tmp_path / "g.graph"
        path.write_text("2 5\n2\n1\n")
        with pytest.raises(GraphValidationError, match="edges"):
            read_graph(path)

    def test_out_of_range_neighbor(self, tmp_path):
        path = tmp_path / "g.graph"
        path.write_text("2 1\n3\n1\n")
        with pytest.raises(GraphValidationError, match="out of range"):
            read_graph(path)

    def test_asymmetric_adjacency(self, tmp_path):
        # Vertex 1 lists 2, but vertex 2's line is empty: the old reader
        # silently dropped the edge (and happened to fail only via the
        # edge-count check, if at all).
        path = tmp_path / "g.graph"
        path.write_text("3 1\n2\n\n\n")
        with pytest.raises(GraphValidationError, match="asymmetric"):
            read_graph(path)

    def test_asymmetric_reverse_only_side(self, tmp_path):
        # Only the u > v copy exists; the old v < u recording never saw it.
        path = tmp_path / "g.graph"
        path.write_text("3 1\n\n1\n\n")
        with pytest.raises(GraphValidationError, match="asymmetric"):
            read_graph(path)

    def test_edge_weight_mismatch_between_copies(self, tmp_path):
        path = tmp_path / "g.graph"
        path.write_text("2 1 1\n2 7\n1 8\n")
        with pytest.raises(GraphValidationError, match="weight"):
            read_graph(path)

    def test_dangling_weight_token(self, tmp_path):
        # fmt=1 means neighbour/weight pairs; a trailing lone neighbour
        # used to crash with IndexError on fields[pos + 1].
        path = tmp_path / "g.graph"
        path.write_text("2 1 1\n2 7\n1\n")
        with pytest.raises(GraphValidationError, match="without an edge weight"):
            read_graph(path)

    def test_non_integer_token(self, tmp_path):
        path = tmp_path / "g.graph"
        path.write_text("2 1\ntwo\n1\n")
        with pytest.raises(GraphValidationError, match="non-integer"):
            read_graph(path)

    def test_non_integer_header(self, tmp_path):
        path = tmp_path / "g.graph"
        path.write_text("2 x\n2\n1\n")
        with pytest.raises(GraphValidationError, match="non-integer"):
            read_graph(path)

    def test_missing_vertex_weight(self, tmp_path):
        path = tmp_path / "g.graph"
        path.write_text("2 1 10\n5 2\n\n")
        with pytest.raises(GraphValidationError, match="vertex weight"):
            read_graph(path)

    def test_self_loop(self, tmp_path):
        path = tmp_path / "g.graph"
        path.write_text("2 2\n1 2\n1\n")
        with pytest.raises(GraphValidationError, match="self-loop"):
            read_graph(path)

    def test_duplicate_neighbour(self, tmp_path):
        path = tmp_path / "g.graph"
        path.write_text("2 1\n2 2\n1\n")
        with pytest.raises(GraphValidationError, match="twice"):
            read_graph(path)

    def test_indented_comment_line(self, tmp_path):
        # A comment with leading whitespace escaped the startswith filter
        # and crashed the parse as a data line.
        path = tmp_path / "g.graph"
        path.write_text("  % indented comment\n3 2\n2\n1 3\n2\n")
        g = read_graph(path)
        assert g.nvtxs == 3 and g.nedges == 2

    def test_unsupported_fmt(self, tmp_path):
        path = tmp_path / "g.graph"
        path.write_text("2 1 7\n2\n1\n")
        with pytest.raises(GraphValidationError, match="fmt"):
            read_graph(path)


class TestMatrixMarket:
    def test_symmetric_pattern(self, tmp_path):
        path = tmp_path / "m.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "% comment\n"
            "3 3 4\n"
            "1 1 2.0\n"
            "2 1 -1.0\n"
            "3 2 -1.0\n"
            "2 2 2.0\n"
        )
        g = read_matrix_market(path)
        assert g.nvtxs == 3
        assert g.nedges == 2
        assert g.has_edge(0, 1) and g.has_edge(1, 2)

    def test_pattern_file_without_values(self, tmp_path):
        path = tmp_path / "m.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern symmetric\n"
            "2 2 1\n"
            "2 1\n"
        )
        g = read_matrix_market(path)
        assert g.nedges == 1

    def test_rejects_nonsquare(self, tmp_path):
        path = tmp_path / "m.mtx"
        path.write_text("%%MatrixMarket matrix coordinate real general\n2 3 1\n1 2 1.0\n")
        with pytest.raises(GraphValidationError, match="square"):
            read_matrix_market(path)

    def test_rejects_missing_header(self, tmp_path):
        path = tmp_path / "m.mtx"
        path.write_text("2 2 1\n1 2 1.0\n")
        with pytest.raises(GraphValidationError, match="header"):
            read_matrix_market(path)

    def test_rejects_array_format(self, tmp_path):
        path = tmp_path / "m.mtx"
        path.write_text("%%MatrixMarket matrix array real general\n2 2\n1.0\n")
        with pytest.raises(GraphValidationError, match="coordinate"):
            read_matrix_market(path)

    def test_truncated_after_header(self, tmp_path):
        # Missing size line used to hit ''.split() and unpack-crash.
        path = tmp_path / "m.mtx"
        path.write_text("%%MatrixMarket matrix coordinate real symmetric\n")
        with pytest.raises(GraphValidationError, match="truncated"):
            read_matrix_market(path)

    def test_truncated_entries(self, tmp_path):
        path = tmp_path / "m.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern symmetric\n3 3 2\n2 1\n"
        )
        with pytest.raises(GraphValidationError, match="truncated"):
            read_matrix_market(path)

    def test_short_entry_line(self, tmp_path):
        path = tmp_path / "m.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern symmetric\n2 2 1\n2\n"
        )
        with pytest.raises(GraphValidationError, match="row col"):
            read_matrix_market(path)

    def test_non_integer_size_line(self, tmp_path):
        path = tmp_path / "m.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern symmetric\n2 2 x\n"
        )
        with pytest.raises(GraphValidationError, match="non-integer"):
            read_matrix_market(path)

    def test_malformed_size_line(self, tmp_path):
        path = tmp_path / "m.mtx"
        path.write_text("%%MatrixMarket matrix coordinate pattern symmetric\n2 2\n")
        with pytest.raises(GraphValidationError, match="size line"):
            read_matrix_market(path)

    def test_out_of_range_entry(self, tmp_path):
        path = tmp_path / "m.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern symmetric\n2 2 1\n3 1\n"
        )
        with pytest.raises(GraphValidationError, match="out of range"):
            read_matrix_market(path)

    def test_indented_comment_before_size(self, tmp_path):
        path = tmp_path / "m.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern symmetric\n"
            "  % indented comment\n"
            "2 2 1\n"
            "2 1\n"
        )
        assert read_matrix_market(path).nedges == 1


# ---------------------------------------------------------------------------
# write_graph -> read_graph round-trip property: the format negotiation in
# write_graph (fmt 00/01/10/11, chosen from the weights actually present)
# must be lossless for every graph, including isolated vertices and int64
# weights beyond the 2^53 float-exactness cliff.
# ---------------------------------------------------------------------------
# Above 2^53 (catches any float round-trip in the writer) yet small enough
# that the validator's int64 sum-overflow guard accepts every draw.
_BIG = 2**55


@st.composite
def _io_graphs(draw):
    n = draw(st.integers(1, 10))
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(pairs), unique=True, max_size=len(pairs))
    ) if pairs else []
    weighted_edges = draw(st.booleans())
    weighted_vertices = draw(st.booleans())
    weights = (
        draw(
            st.lists(
                st.integers(1, _BIG), min_size=len(edges), max_size=len(edges)
            )
        )
        if weighted_edges
        else None
    )
    vwgt = (
        draw(st.lists(st.integers(1, _BIG), min_size=n, max_size=n))
        if weighted_vertices
        else None
    )
    return from_edge_list(n, edges, weights, vwgt)


@given(g=_io_graphs())
@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_roundtrip_property_all_fmt_combos(g, tmp_path_factory):
    path = tmp_path_factory.mktemp("io") / "g.graph"
    write_graph(g, path)
    back = read_graph(path)
    assert back.nvtxs == g.nvtxs
    assert back.nedges == g.nedges
    assert np.array_equal(back.vwgt, g.vwgt)
    assert back.sorted_adjacency() == g.sorted_adjacency()
