"""Regression tests for the cached CSR expansion arrays.

``CSRGraph.degrees()`` / ``CSRGraph.edge_sources()`` exist so hot paths
(gain seeding, boundary extraction, metrics) stop re-materialising
``np.diff(xadj)`` / ``np.repeat(arange, degrees)`` on every call.  These
tests pin the contract: one build per graph, ever — the lint rule RP011
keeps new inline rebuilds out of ``core/``, this keeps the cache itself
honest.
"""

import numpy as np

from repro.core.gains import external_internal_degrees
from repro.matrices import grid2d
from tests.conftest import random_graph


class TestCachedArrays:
    def test_degrees_cached_and_correct(self):
        g = grid2d(6, 5)
        first = g.degrees()
        assert np.array_equal(first, np.diff(g.xadj))
        assert g.degrees() is first

    def test_edge_sources_cached_and_correct(self):
        g = grid2d(6, 5)
        src = g.edge_sources()
        expected = np.repeat(
            np.arange(g.nvtxs, dtype=np.int64), np.diff(g.xadj)
        )
        assert np.array_equal(src, expected)
        assert g.edge_sources() is src

    def test_one_repeat_build_per_graph(self, monkeypatch):
        g = random_graph(40, 0.15, seed=2)
        calls = {"repeat": 0}
        real_repeat = np.repeat

        def counting_repeat(*args, **kwargs):
            calls["repeat"] += 1
            return real_repeat(*args, **kwargs)

        monkeypatch.setattr(np, "repeat", counting_repeat)
        g.edge_sources()
        g.edge_sources()
        where = np.zeros(g.nvtxs, dtype=np.int32)
        where[: g.nvtxs // 2] = 1
        external_internal_degrees(g, where)
        external_internal_degrees(g, where)
        assert calls["repeat"] == 1, (
            f"expected exactly one np.repeat build per graph, "
            f"saw {calls['repeat']}"
        )

    def test_gain_seeding_matches_bruteforce(self):
        g = random_graph(30, 0.2, seed=9)
        where = (np.arange(g.nvtxs) % 2).astype(np.int32)
        ed, idg = external_internal_degrees(g, where)
        for v in range(g.nvtxs):
            nbrs = g.adjncy[g.xadj[v]: g.xadj[v + 1]]
            wgts = g.adjwgt[g.xadj[v]: g.xadj[v + 1]]
            ext = int(wgts[where[nbrs] != where[v]].sum())
            int_ = int(wgts[where[nbrs] == where[v]].sum())
            assert ed[v] == ext
            assert idg[v] == int_
