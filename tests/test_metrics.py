"""Tests for communication metrics and graph permutation."""

import numpy as np
import pytest

from repro.graph import (
    communication_volume,
    edge_cut,
    from_edge_list,
    halo_sizes,
    part_weights,
    partition_report,
    permute_graph,
    subdomain_connectivity,
)
from repro.utils.errors import OrderingError
from tests.conftest import path_graph, random_graph, star_graph


class TestCommunicationVolume:
    def test_path_middle_cut(self):
        g = path_graph(4)
        where = np.array([0, 0, 1, 1])
        # Vertex 1 is sent to part 1, vertex 2 to part 0: volume 2.
        assert communication_volume(g, where) == 2

    def test_star_hub_counted_once_per_part(self):
        g = star_graph(7)  # center 0 + 6 leaves
        where = np.array([0, 1, 1, 1, 2, 2, 2])
        # Centre goes to parts 1 and 2 (2 sends); each leaf goes to part 0
        # (6 sends): volume 8 but cut is 6.
        assert edge_cut(g, where) == 6
        assert communication_volume(g, where) == 8

    def test_volume_le_twice_cut(self):
        g = random_graph(50, 0.15, seed=1)
        where = np.random.default_rng(0).integers(0, 4, g.nvtxs)
        # Each cut edge contributes at most 2 sends.
        assert communication_volume(g, where) <= 2 * edge_cut(g, where)

    def test_no_cut_no_volume(self):
        g = path_graph(5)
        assert communication_volume(g, np.zeros(5, dtype=int)) == 0


class TestHalos:
    def test_path_halos(self):
        g = path_graph(4)
        halos = halo_sizes(g, np.array([0, 0, 1, 1]))
        assert halos.tolist() == [1, 1]

    def test_part_without_boundary(self):
        g = from_edge_list(4, [(0, 1), (2, 3)])
        halos = halo_sizes(g, np.array([0, 0, 1, 1]), nparts=2)
        assert halos.tolist() == [0, 0]

    def test_dedup_remote_vertices(self):
        # Two vertices of part 0 both adjacent to the same remote vertex.
        g = from_edge_list(3, [(0, 2), (1, 2)])
        halos = halo_sizes(g, np.array([0, 0, 1]))
        assert halos.tolist() == [1, 2]


class TestConnectivity:
    def test_linear_parts(self):
        g = path_graph(6)
        where = np.array([0, 0, 1, 1, 2, 2])
        conn = subdomain_connectivity(g, where)
        assert conn.tolist() == [1, 2, 1]

    def test_empty_graph(self):
        g = from_edge_list(0, [])
        assert len(subdomain_connectivity(g, np.zeros(0, dtype=int), 0)) == 0


class TestPartitionReport:
    def test_report_fields(self):
        g = path_graph(6)
        where = np.array([0, 0, 1, 1, 2, 2])
        rep = partition_report(g, where)
        assert rep.nparts == 3
        assert rep.edge_cut == 2
        assert rep.communication_volume == 4
        assert rep.max_halo == 2
        assert rep.max_connectivity == 2
        assert rep.pwgts == (2, 2, 2)
        assert rep.balance == pytest.approx(1.0)


class TestPartWeights:
    def test_matches_bincount_on_small_weights(self):
        g = random_graph(30, p=0.2, seed=3)
        where = np.random.default_rng(0).integers(0, 3, g.nvtxs)
        got = part_weights(g, where, 3)
        want = np.bincount(where, weights=g.vwgt, minlength=3).astype(np.int64)
        assert got.dtype == np.int64
        assert np.array_equal(got, want)

    def test_exact_above_float64_limit(self):
        # Regression: float64 bincount loses ulps once partial sums pass
        # 2^53; the int64 accumulation path must stay exact.  Weights near
        # 2^60 plus a few odd units make any rounding visible.
        big = np.int64(1) << 60
        vwgt = np.array([big, 3, big, 5, big, 7], dtype=np.int64)
        g = from_edge_list(6, [(i, i + 1) for i in range(5)], vwgt=vwgt)
        where = np.array([0, 1, 0, 1, 1, 0])
        got = part_weights(g, where, 2)
        assert got.dtype == np.int64
        assert got[0] == 2 * big + 7
        assert got[1] == big + 8
        # The float64 path would round these totals to multiples of 256.
        assert got[0] % 2 == 1

    def test_empty_where(self):
        g = from_edge_list(2, [(0, 1)])
        assert np.array_equal(
            part_weights(g, np.array([], dtype=np.int64), 2), [0, 0]
        )


class TestPermuteGraph:
    def test_identity(self):
        g = random_graph(20, 0.2, seed=2)
        assert permute_graph(g, np.arange(20)).sorted_adjacency() == g.sorted_adjacency()

    def test_relabel_edge(self):
        g = from_edge_list(3, [(0, 1)], [7], vwgt=[1, 2, 3])
        out = permute_graph(g, np.array([2, 0, 1]))
        # new 0 = old 2 (isolated), new 1 = old 0, new 2 = old 1.
        assert out.vwgt.tolist() == [3, 1, 2]
        assert out.edge_weight(1, 2) == 7
        assert out.degree(0) == 0

    def test_roundtrip(self):
        g = random_graph(25, 0.2, seed=3)
        rng = np.random.default_rng(1)
        perm = rng.permutation(25)
        iperm = np.empty(25, dtype=np.int64)
        iperm[perm] = np.arange(25)
        back = permute_graph(permute_graph(g, perm), iperm)
        assert back.sorted_adjacency() == g.sorted_adjacency()

    def test_coords_carried(self):
        g = path_graph(3)
        g.coords = np.array([[0.0, 0], [1, 0], [2, 0]])
        out = permute_graph(g, np.array([2, 1, 0]))
        assert np.allclose(out.coords[:, 0], [2, 1, 0])

    def test_invalid_perm(self):
        g = path_graph(3)
        with pytest.raises(OrderingError):
            permute_graph(g, np.array([0, 0, 1]))

    def test_ordering_invariance_of_factor_under_relabel(self):
        """Permuting the graph then factoring naturally == factoring the
        original under the ordering (the whole point of perm/iperm)."""
        from repro.ordering import factor_stats, mmd_ordering

        g = random_graph(30, 0.15, seed=4, connected=True)
        o = mmd_ordering(g)
        direct = factor_stats(g, o.perm)
        relabeled = factor_stats(permute_graph(g, o.perm), np.arange(g.nvtxs))
        assert direct.opcount == relabeled.opcount
        assert direct.fill == relabeled.fill
