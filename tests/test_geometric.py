"""Tests for the geometric partitioning baselines."""

import numpy as np
import pytest

from repro.geometric import (
    coordinate_bisection,
    geometric_partition,
    inertial_bisection,
)
from repro.graph import edge_cut
from repro.utils.errors import PartitionError
from tests.conftest import assert_valid_bisection, path_graph


def embedded_path(n):
    g = path_graph(n)
    g.coords = np.column_stack([np.arange(n, dtype=float), np.zeros(n)])
    return g


class TestCoordinateBisection:
    def test_path_cut_once(self):
        g = embedded_path(10)
        b = coordinate_bisection(g)
        assert b.cut == 1
        assert_valid_bisection(g, b)

    def test_grid_along_long_axis(self):
        from repro.matrices import grid2d

        g = grid2d(20, 5)  # long in x: should cut a 5-vertex column
        b = coordinate_bisection(g)
        assert b.cut == 5

    def test_requires_coords(self):
        with pytest.raises(PartitionError, match="coordinates"):
            coordinate_bisection(path_graph(5))

    def test_target_respected(self):
        g = embedded_path(10)
        b = coordinate_bisection(g, target0=3)
        assert b.pwgts[0] == 3

    def test_too_small(self):
        g = embedded_path(1)
        with pytest.raises(PartitionError):
            coordinate_bisection(g)


class TestInertialBisection:
    def test_rotated_path_found(self):
        # A diagonal path: coordinate bisection on either axis works, but
        # inertial must find the diagonal principal axis exactly.
        n = 12
        g = path_graph(n)
        t = np.arange(n, dtype=float)
        g.coords = np.column_stack([t, t])  # 45° line
        b = inertial_bisection(g)
        assert b.cut == 1

    def test_requires_coords(self):
        with pytest.raises(PartitionError):
            inertial_bisection(path_graph(5))

    def test_weighted_centroid_used(self):
        g = embedded_path(4)
        g.vwgt[:] = [5, 1, 1, 5]
        b = inertial_bisection(g, target0=6)
        assert b.pwgts[0] == 6

    def test_3d_coords(self):
        from repro.matrices import grid3d

        g = grid3d(8, 3, 3)
        b = inertial_bisection(g)
        assert b.cut == 9  # cross-section of the long axis
        assert_valid_bisection(g, b)


class TestGeometricPartition:
    def test_kway_valid(self):
        from repro.matrices import grid2d

        g = grid2d(16, 16)
        p = geometric_partition(g, 4, rng=np.random.default_rng(0))
        assert p.cut == edge_cut(g, p.where)
        assert np.bincount(p.where, minlength=4).min() > 0

    def test_coordinate_variant(self):
        from repro.matrices import grid2d

        g = grid2d(16, 16)
        p = geometric_partition(g, 4, inertial=False)
        assert p.cut == edge_cut(g, p.where)

    def test_worse_than_multilevel_on_unstructured(self):
        """The paper's claim: geometric cuts more than multilevel on
        irregular meshes (here statistically, one seed, generous margin)."""
        import repro
        from repro.matrices import airfoil

        g = airfoil(1500, seed=2)
        ml = repro.partition(g, 8, seed=4)
        geo = geometric_partition(g, 8)
        assert ml.cut <= geo.cut * 1.2
