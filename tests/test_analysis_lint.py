"""Tests for the static lint pass (``repro.analysis``).

A synthetic fixture tree carries exactly one violation per rule; the engine
must find all of them (with the right ids, files and lines), honour
``# repro: noqa[...]`` suppressions, and exit cleanly on the shipped tree.
"""

from pathlib import Path

import pytest

from repro.analysis import Finding, default_rules, format_findings, lint_paths
from repro.analysis.engine import collect_suppressions, is_suppressed
from repro.analysis.cli import main as lint_main
from repro.analysis.sections import load_sections, section_tokens
from repro.cli import main as repro_main

REPO_ROOT = Path(__file__).resolve().parents[1]

#: One file per rule, each carrying exactly one violation of that rule.
VIOLATIONS = {
    "RP001": (
        "pkg/randomness.py",
        "import numpy as np\n"
        "\n"
        "\n"
        "def sample():\n"
        "    return np.random.default_rng().random()\n",
    ),
    "RP002": (
        "pkg/mutate.py",
        "def clear_weights(graph):\n"
        "    graph.adjwgt[:] = 0\n",
    ),
    "RP003": (
        "pkg/swallow.py",
        "def call(fn):\n"
        "    try:\n"
        "        return fn()\n"
        "    except Exception:\n"
        "        return None\n",
    ),
    "RP004": (
        "pkg/floatcmp.py",
        "def is_half(ratio):\n"
        "    return ratio == 0.5\n",
    ),
    "RP005": (
        "pkg/raises.py",
        "def check(n):\n"
        "    if n < 0:\n"
        "        raise ValueError('negative')\n",
    ),
    "RP006": (
        "pkg/chatty.py",
        "def report(cut):\n"
        "    print(cut)\n",
    ),
    "RP007": (
        "pkg/__init__.py",
        "from pkg.raises import check\n",
    ),
    "RP008": (
        "pkg/cites.py",
        '"""Implements the frobnication phase (§9.9).\n"""\n',
    ),
    # RP009 only fires inside core/ or ordering/ package paths.
    "RP009": (
        "pkg/core/fallback.py",
        "from repro.utils.errors import ReproError\n"
        "\n"
        "\n"
        "def run(fn, default):\n"
        "    try:\n"
        "        return fn()\n"
        "    except ReproError:\n"
        "        return default\n",
    ),
    # A bare span call leaks the span; RP010 flags it everywhere.
    "RP010": (
        "pkg/tracing.py",
        "def run(trc, graph):\n"
        "    trc.span('coarsen', nvtxs=graph.nvtxs)\n"
        "    return graph\n",
    ),
    # RP011 only fires inside core/ package paths: the cached CSR
    # expansion arrays must not be rebuilt inline on hot paths.
    "RP011": (
        "pkg/core/expand.py",
        "import numpy as np\n"
        "\n"
        "\n"
        "def degrees(graph):\n"
        "    return np.diff(graph.xadj)\n",
    ),
}


@pytest.fixture
def fixture_tree(tmp_path):
    """Write the violation files plus a PAPER.md declaring only §3.1."""
    (tmp_path / "PAPER.md").write_text(
        "# Paper\n\nThe coarsening phase (§3.1) is the only section.\n"
    )
    for _, (rel, source) in sorted(VIOLATIONS.items()):
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    return tmp_path


class TestFixtureTree:
    def test_every_rule_fires_once(self, fixture_tree):
        findings = lint_paths(
            [fixture_tree / "pkg"], paper=fixture_tree / "PAPER.md"
        )
        by_rule = {}
        for f in findings:
            by_rule.setdefault(f.rule_id, []).append(f)
        assert set(by_rule) == set(VIOLATIONS)
        for rule_id, (rel, _) in VIOLATIONS.items():
            hits = by_rule[rule_id]
            assert len(hits) == 1, f"{rule_id} fired {len(hits)} times"
            assert hits[0].path.endswith(rel.rsplit("/", 1)[-1])

    def test_output_format(self, fixture_tree):
        findings = lint_paths(
            [fixture_tree / "pkg"], paper=fixture_tree / "PAPER.md"
        )
        for line in format_findings(findings).splitlines():
            path, lineno, col, rest = line.split(":", 3)
            assert path.endswith(".py")
            assert int(lineno) >= 1
            assert int(col) >= 1
            assert rest.strip().startswith("RP")

    def test_cli_exits_nonzero_with_rule_ids(self, fixture_tree, capsys):
        code = lint_main(
            [str(fixture_tree / "pkg"), "--paper", str(fixture_tree / "PAPER.md")]
        )
        assert code == 1
        out = capsys.readouterr().out
        for rule_id in VIOLATIONS:
            assert rule_id in out

    def test_repro_lint_subcommand(self, fixture_tree, capsys):
        code = repro_main(
            [
                "lint",
                str(fixture_tree / "pkg"),
                "--paper",
                str(fixture_tree / "PAPER.md"),
            ]
        )
        assert code == 1
        assert "RP001" in capsys.readouterr().out

    def test_select_restricts_rules(self, fixture_tree, capsys):
        code = lint_main(
            [
                str(fixture_tree / "pkg"),
                "--paper",
                str(fixture_tree / "PAPER.md"),
                "--select",
                "RP005",
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "RP005" in out
        assert "RP001" not in out

    def test_select_unknown_rule_is_usage_error(self, fixture_tree, capsys):
        code = lint_main([str(fixture_tree / "pkg"), "--select", "RP999"])
        assert code == 2

    def test_syntax_error_reported_as_rp000(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        findings = lint_paths([bad])
        assert [f.rule_id for f in findings] == ["RP000"]


class TestSuppression:
    def test_noqa_with_id_suppresses(self, tmp_path):
        f = tmp_path / "mod.py"
        f.write_text(
            "def check(n):\n"
            "    # input validation stays a builtin on purpose (doctest API)\n"
            "    raise ValueError('x')  # repro: noqa[RP005]\n"
        )
        assert lint_paths([f]) == []

    def test_bare_noqa_suppresses_everything(self, tmp_path):
        f = tmp_path / "mod.py"
        f.write_text("def chatty():\n    print('x')  # repro: noqa\n")
        assert lint_paths([f]) == []

    def test_noqa_for_other_rule_does_not_suppress(self, tmp_path):
        f = tmp_path / "mod.py"
        f.write_text("def chatty():\n    print('x')  # repro: noqa[RP001]\n")
        assert [f_.rule_id for f_ in lint_paths([f])] == ["RP006"]

    def test_rp009_noqa_suppresses(self, tmp_path):
        f = tmp_path / "core" / "fb.py"
        f.parent.mkdir()
        f.write_text(
            "from repro.utils.errors import ReproError\n"
            "\n"
            "\n"
            "def run(fn, default):\n"
            "    try:\n"
            "        return fn()\n"
            "    # default is the caller's explicit degraded answer\n"
            "    except ReproError:  # repro: noqa[RP009]\n"
            "        return default\n"
        )
        assert lint_paths([f]) == []

    def test_rp010_event_nesting_in_core(self, tmp_path):
        f = tmp_path / "core" / "tr.py"
        f.parent.mkdir()
        f.write_text(
            "def run(trc, graph):\n"
            "    trc.event('loose', nvtxs=graph.nvtxs)\n"
        )
        assert [f_.rule_id for f_ in lint_paths([f])] == ["RP010"]

    def test_rp010_allows_nested_events_and_span_receivers(self, tmp_path):
        f = tmp_path / "core" / "ok.py"
        f.parent.mkdir()
        f.write_text(
            "def run(trc, span, graph):\n"
            "    with trc.span('coarsen') as sp:\n"
            "        trc.event('level', nvtxs=graph.nvtxs)\n"
            "        sp.event('level', nvtxs=graph.nvtxs)\n"
            "    if span:\n"
            "        span.event('pass', moves=0)\n"
        )
        assert lint_paths([f]) == []

    def test_rp010_event_outside_core_is_fine(self, tmp_path):
        f = tmp_path / "bench" / "tr.py"
        f.parent.mkdir()
        f.write_text(
            "def run(trc, graph):\n"
            "    trc.event('loose', nvtxs=graph.nvtxs)\n"
        )
        assert lint_paths([f]) == []

    def test_collect_suppressions_parsing(self):
        table = collect_suppressions(
            "a = 1\n"
            "b = 2  # repro: noqa\n"
            "c = 3  # repro: noqa[RP001, RP004]\n"
        )
        assert table == {2: {"*"}, 3: {"RP001", "RP004"}}

    def test_is_suppressed_case_insensitive_ids(self):
        f = Finding("x.py", 5, 1, "RP004", "msg")
        assert is_suppressed(f, {5: {"RP004"}})
        assert not is_suppressed(f, {4: {"RP004"}})


class TestSections:
    def test_section_tokens(self):
        assert section_tokens("coarsening (§3.1) and §2") == {"3.1", "2"}

    def test_load_sections_closes_ancestors(self, tmp_path):
        paper = tmp_path / "PAPER.md"
        paper.write_text("only §4.2 is mentioned\n")
        assert load_sections(paper) == {"4.2", "4"}


class TestShippedTree:
    def test_src_repro_is_clean(self):
        findings = lint_paths(
            [REPO_ROOT / "src" / "repro"], paper=REPO_ROOT / "PAPER.md"
        )
        assert findings == [], format_findings(findings)

    def test_default_rules_cover_rp001_to_rp018(self):
        ids = [r.id for r in default_rules()]
        assert ids == [f"RP{i:03d}" for i in range(1, 19)]
