"""Shared fixtures and graph-construction helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import CSRGraph, from_edge_list


# ---------------------------------------------------------------------------
# deterministic small graphs
# ---------------------------------------------------------------------------
def path_graph(n, weights=None):
    """0-1-2-…-(n-1)."""
    return from_edge_list(n, [(i, i + 1) for i in range(n - 1)], weights)


def cycle_graph(n):
    edges = [(i, (i + 1) % n) for i in range(n)]
    return from_edge_list(n, edges)


def star_graph(n):
    """Center 0 joined to 1..n-1."""
    return from_edge_list(n, [(0, i) for i in range(1, n)])


def complete_graph(n, weight=1):
    edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
    return from_edge_list(n, edges, [weight] * len(edges))


def dumbbell_graph(k=6, bridge_weight=1):
    """Two k-cliques joined by one bridge edge — the canonical 'obvious
    bisection' graph: the minimum cut is exactly the bridge."""
    edges = []
    for i in range(k):
        for j in range(i + 1, k):
            edges.append((i, j))
            edges.append((k + i, k + j))
    weights = [10] * len(edges)
    edges.append((k - 1, k))
    weights.append(bridge_weight)
    return from_edge_list(2 * k, edges, weights)


def two_triangles():
    """Two disjoint triangles (disconnected graph)."""
    return from_edge_list(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)])


def weighted_path(weights):
    """Path with the given edge weights."""
    n = len(weights) + 1
    return from_edge_list(n, [(i, i + 1) for i in range(n - 1)], weights)


def random_graph(n, p, seed=0, *, connected=False):
    """Erdős–Rényi G(n, p), optionally restricted to its largest component."""
    rng = np.random.default_rng(seed)
    mask = rng.random((n, n)) < p
    mask = np.triu(mask, 1)
    src, dst = np.nonzero(mask)
    g = from_edge_list(n, np.column_stack([src, dst]))
    if connected:
        from repro.graph import largest_component

        g, _ = largest_component(g)
    return g


@pytest.fixture
def grid8():
    from repro.matrices import grid2d

    return grid2d(8, 8)


@pytest.fixture
def grid16():
    from repro.matrices import grid2d

    return grid2d(16, 16)


@pytest.fixture
def dumbbell():
    return dumbbell_graph()


# ---------------------------------------------------------------------------
# brute-force oracles
# ---------------------------------------------------------------------------
def brute_force_cut(graph, where):
    """Edge-cut computed edge by edge, for cross-checking vectorised code."""
    cut = 0
    for u, v, w in graph.edges():
        if where[u] != where[v]:
            cut += w
    return cut


def brute_force_fill(graph, perm):
    """Fill and column counts by literal elimination simulation.

    Returns (counts, fill): counts[j] = off-diagonal nnz of column j of L
    in elimination order, via the 'add a clique on later neighbours' rule.
    """
    n = graph.nvtxs
    iperm = np.empty(n, dtype=np.int64)
    iperm[np.asarray(perm)] = np.arange(n)
    adj = [set(int(iperm[u]) for u in graph.neighbors(v)) for v in range(n)]
    # Re-index adjacency by elimination position.
    byposition = [set() for _ in range(n)]
    for v in range(n):
        byposition[iperm[v]] = adj[v]
    counts = np.zeros(n, dtype=np.int64)
    for j in range(n):
        later = {u for u in byposition[j] if u > j}
        counts[j] = len(later)
        for u in later:
            byposition[u] |= later
            byposition[u].discard(u)
    fill = int(counts.sum()) - graph.nedges
    return counts, fill


def assert_valid_bisection(graph, bisection):
    """Structural checks every bisection in the suite must pass."""
    assert len(bisection.where) == graph.nvtxs
    assert set(np.unique(bisection.where)).issubset({0, 1})
    bisection.verify(graph)


def assert_separator(graph, separator, where):
    """No edge may join a part-0 and a part-1 vertex once the separator
    is removed."""
    sep = set(int(s) for s in separator)
    for u, v, _ in graph.edges():
        if u in sep or v in sep:
            continue
        assert where[u] == where[v], (
            f"edge ({u},{v}) crosses parts but is not covered by the separator"
        )
