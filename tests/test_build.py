"""Tests for graph constructors (edge lists, dicts, scipy, networkx)."""

import numpy as np
import pytest

from repro.graph import (
    from_adjacency,
    from_edge_list,
    from_networkx,
    from_scipy_sparse,
    to_networkx,
    validate_graph,
)
from repro.utils.errors import GraphValidationError


class TestFromEdgeList:
    def test_basic(self):
        g = from_edge_list(3, [(0, 1), (1, 2)])
        assert g.nvtxs == 3
        assert g.nedges == 2
        validate_graph(g)

    def test_empty_edges(self):
        g = from_edge_list(4, [])
        assert g.nvtxs == 4
        assert g.nedges == 0

    def test_duplicate_edges_merge_weights(self):
        g = from_edge_list(2, [(0, 1), (0, 1)], [3, 4])
        assert g.nedges == 1
        assert g.edge_weight(0, 1) == 7

    def test_reversed_duplicates_merge(self):
        g = from_edge_list(2, [(0, 1), (1, 0)])
        assert g.nedges == 1
        assert g.edge_weight(0, 1) == 2

    def test_self_loops_dropped(self):
        g = from_edge_list(3, [(0, 0), (0, 1)])
        assert g.nedges == 1
        assert not g.has_edge(0, 0)

    def test_numpy_input(self):
        edges = np.array([[0, 1], [1, 2]])
        g = from_edge_list(3, edges)
        assert g.nedges == 2

    def test_out_of_range_rejected(self):
        with pytest.raises(GraphValidationError):
            from_edge_list(2, [(0, 2)])
        with pytest.raises(GraphValidationError):
            from_edge_list(2, [(-1, 0)])

    def test_weight_count_mismatch_rejected(self):
        with pytest.raises(GraphValidationError):
            from_edge_list(3, [(0, 1), (1, 2)], [1])

    def test_bad_shape_rejected(self):
        with pytest.raises(GraphValidationError):
            from_edge_list(3, np.zeros((2, 3)))

    def test_vertex_weights_pass_through(self):
        g = from_edge_list(2, [(0, 1)], vwgt=[7, 9])
        assert g.vwgt.tolist() == [7, 9]

    def test_isolated_vertices(self):
        g = from_edge_list(5, [(0, 1)])
        assert g.nvtxs == 5
        assert g.degree(4) == 0


class TestFromAdjacency:
    def test_dict_of_dicts(self):
        g = from_adjacency({0: {1: 5}, 1: {0: 5, 2: 2}, 2: {1: 2}})
        assert g.nedges == 2
        assert g.edge_weight(0, 1) == 5
        assert g.edge_weight(1, 2) == 2

    def test_dict_of_lists(self):
        g = from_adjacency({0: [1, 2], 1: [0], 2: [0]})
        assert g.nedges == 2
        assert np.all(g.adjwgt == 1)

    def test_one_sided_mention_kept(self):
        g = from_adjacency({0: {1: 4}, 1: {}})
        assert g.edge_weight(0, 1) == 4

    def test_empty(self):
        g = from_adjacency({})
        assert g.nvtxs == 0

    def test_missing_keys_become_isolated(self):
        g = from_adjacency({3: [0]})
        assert g.nvtxs == 4
        assert g.degree(1) == 0

    def test_self_loop_dropped(self):
        g = from_adjacency({0: [0, 1], 1: [0]})
        assert g.nedges == 1


class TestScipy:
    def test_pattern_of_symmetric_matrix(self):
        sparse = pytest.importorskip("scipy.sparse")
        m = sparse.csr_matrix(
            np.array([[2.0, -1.0, 0.0], [-1.0, 2.0, -1.0], [0.0, -1.0, 2.0]])
        )
        g = from_scipy_sparse(m)
        assert g.nvtxs == 3
        assert g.nedges == 2
        assert np.all(g.adjwgt == 1)  # pattern only
        validate_graph(g)

    def test_diagonal_dropped(self):
        sparse = pytest.importorskip("scipy.sparse")
        m = sparse.eye(4).tocsr()
        g = from_scipy_sparse(m)
        assert g.nedges == 0

    def test_triangular_storage_symmetrised(self):
        sparse = pytest.importorskip("scipy.sparse")
        m = sparse.csr_matrix((np.ones(2), ([0, 1], [1, 2])), shape=(3, 3))
        g = from_scipy_sparse(m)
        assert g.has_edge(1, 0)
        assert g.has_edge(2, 1)

    def test_use_values(self):
        sparse = pytest.importorskip("scipy.sparse")
        m = sparse.csr_matrix((np.array([2.4, 2.4]), ([0, 1], [1, 0])), shape=(2, 2))
        g = from_scipy_sparse(m, use_values=True)
        assert g.edge_weight(0, 1) >= 1


class TestNetworkx:
    def test_roundtrip(self):
        nx = pytest.importorskip("networkx")
        g0 = nx.Graph()
        g0.add_edge("a", "b", weight=3)
        g0.add_edge("b", "c")
        g = from_networkx(g0)
        assert g.nvtxs == 3
        assert g.nedges == 2
        # sorted labels: a->0, b->1, c->2
        assert g.edge_weight(0, 1) == 3
        assert g.edge_weight(1, 2) == 1

    def test_to_networkx(self):
        nx = pytest.importorskip("networkx")
        g = from_edge_list(3, [(0, 1), (1, 2)], [4, 5])
        back = to_networkx(g)
        assert back.number_of_nodes() == 3
        assert back[0][1]["weight"] == 4

    def test_self_loops_skipped(self):
        nx = pytest.importorskip("networkx")
        g0 = nx.Graph()
        g0.add_edge(0, 0)
        g0.add_edge(0, 1)
        g = from_networkx(g0)
        assert g.nedges == 1

    def test_vertex_weight_attribute(self):
        nx = pytest.importorskip("networkx")
        g0 = nx.Graph()
        g0.add_node(0, size=5)
        g0.add_node(1)
        g0.add_edge(0, 1)
        g = from_networkx(g0, vwgt_attr="size")
        assert g.vwgt.tolist() == [5, 1]
