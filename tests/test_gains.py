"""Tests for gain bookkeeping (ed/id arrays and the GainTable)."""

import numpy as np
import pytest

from repro.core.gains import GainTable, external_internal_degrees
from repro.graph import from_edge_list
from tests.conftest import path_graph, random_graph


class TestExternalInternalDegrees:
    def test_path_split_in_middle(self):
        g = path_graph(4)
        where = np.array([0, 0, 1, 1])
        ed, id_ = external_internal_degrees(g, where)
        assert ed.tolist() == [0, 1, 1, 0]
        assert id_.tolist() == [1, 1, 1, 1]

    def test_weighted(self):
        g = from_edge_list(3, [(0, 1), (1, 2)], [5, 7])
        where = np.array([0, 1, 1])
        ed, id_ = external_internal_degrees(g, where)
        assert ed.tolist() == [5, 5, 0]
        assert id_.tolist() == [0, 7, 7]

    def test_sum_identity(self):
        """ed[v] + id[v] must equal v's weighted degree; Σed = 2·cut."""
        from repro.graph import edge_cut

        g = random_graph(40, 0.2, seed=5)
        rng = np.random.default_rng(0)
        where = rng.integers(0, 2, g.nvtxs)
        ed, id_ = external_internal_degrees(g, where)
        src = np.repeat(np.arange(g.nvtxs), np.diff(g.xadj))
        wdeg = np.bincount(src, weights=g.adjwgt, minlength=g.nvtxs)
        assert np.array_equal(ed + id_, wdeg.astype(np.int64))
        assert ed.sum() == 2 * edge_cut(g, where)

    def test_all_same_side(self):
        g = path_graph(5)
        ed, id_ = external_internal_degrees(g, np.zeros(5, dtype=np.int8))
        assert ed.sum() == 0


class TestGainTable:
    def test_push_pop_max(self):
        t = GainTable()
        t.push(1, 5)
        t.push(2, 9)
        t.push(3, -2)
        assert t.pop_best() == (2, 9)
        assert t.pop_best() == (1, 5)
        assert t.pop_best() == (3, -2)
        assert t.pop_best() is None

    def test_update_replaces(self):
        t = GainTable()
        t.push(1, 5)
        t.update(1, 100)
        assert t.pop_best() == (1, 100)
        assert t.pop_best() is None

    def test_update_can_lower(self):
        t = GainTable()
        t.push(1, 100)
        t.push(2, 50)
        t.update(1, 10)
        assert t.pop_best() == (2, 50)
        assert t.pop_best() == (1, 10)

    def test_remove(self):
        t = GainTable()
        t.push(1, 5)
        t.push(2, 3)
        t.remove(1)
        assert 1 not in t
        assert t.pop_best() == (2, 3)
        assert t.pop_best() is None

    def test_remove_absent_is_noop(self):
        t = GainTable()
        t.remove(7)
        assert len(t) == 0

    def test_len_counts_live_entries(self):
        t = GainTable()
        t.push(1, 5)
        t.push(1, 6)  # replaces, still one live vertex
        t.push(2, 1)
        assert len(t) == 2
        t.pop_best()
        assert len(t) == 1

    def test_contains(self):
        t = GainTable()
        t.push(4, 0)
        assert 4 in t and 5 not in t

    def test_peek_best_gain(self):
        t = GainTable()
        assert t.peek_best_gain() is None
        t.push(1, 7)
        t.push(2, 3)
        assert t.peek_best_gain() == 7
        assert len(t) == 2  # peek does not remove

    def test_peek_skips_stale(self):
        t = GainTable()
        t.push(1, 100)
        t.update(1, 1)
        assert t.peek_best_gain() == 1

    def test_tie_break_insertion_order(self):
        t = GainTable()
        t.push(5, 3)
        t.push(2, 3)
        assert t.pop_best() == (5, 3)
        assert t.pop_best() == (2, 3)

    def test_many_operations_consistency(self):
        rng = np.random.default_rng(8)
        t = GainTable()
        reference = {}
        for _ in range(2000):
            op = rng.integers(3)
            v = int(rng.integers(50))
            if op == 0:
                gain = int(rng.integers(-100, 100))
                t.push(v, gain)
                reference[v] = gain
            elif op == 1:
                t.remove(v)
                reference.pop(v, None)
            else:
                got = t.pop_best()
                if reference:
                    best = max(reference.values())
                    assert got is not None and got[1] == best
                    reference.pop(got[0])
                else:
                    assert got is None
        assert len(t) == len(reference)
