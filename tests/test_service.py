"""Tests for the partitioning service (``repro.service``).

Covers the content-addressed cache (keys, LRU, TTL — with a fake clock),
the request/response schema, the bounded job queue, and the HTTP layer end
to end over real sockets: cache-hit bit-identity against a fresh in-process
run, single-flight coalescing under concurrent fan-in, deadline-exceeded
degradation (200 + resilience report, never a 500), ndjson progress
streaming, and the ``service.*`` trace events/counters the app emits.

The HTTP tests run against a :class:`~repro.service.app.BackgroundServer`
on an ephemeral port; they are written to pass unchanged under the chaos CI
leg (``REPRO_FAULTS="worker_crash;seed=1"`` only fires inside pool workers,
which only the explicit ``workers: 2`` test engages — and the library's
bit-identity guarantee is exactly what that test asserts).
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core import partition as local_partition
from repro.core.options import DEFAULT_OPTIONS, cache_key_payload
from repro.obs import read_trace
from repro.service import (
    BackgroundServer,
    JobQueue,
    ResultCache,
    ServiceRequestError,
    graph_digest,
    graph_from_request,
    parse_options,
    request_key,
    where_digest,
)
from repro.utils.errors import ConfigurationError
from tests.conftest import dumbbell_graph, path_graph


# --------------------------------------------------------------------------
# HTTP helpers
# --------------------------------------------------------------------------
def _request(addr, method, path, body=None):
    """One JSON request; returns (status, decoded-payload)."""
    host, port = addr
    data = None if body is None else json.dumps(body).encode()
    req = urllib.request.Request(
        f"http://{host}:{port}{path}", data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=60) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _stream_request(addr, body):
    """POST with ``stream: true`` over a raw socket; returns ndjson dicts."""
    raw = json.dumps({**body, "stream": True}).encode()
    with socket.create_connection(addr, timeout=60) as sock:
        sock.sendall(
            b"POST /partition HTTP/1.1\r\nHost: t\r\n"
            b"Content-Type: application/json\r\n"
            + f"Content-Length: {len(raw)}\r\n\r\n".encode()
            + raw
        )
        data = b""
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            data += chunk
    head, _, payload = data.partition(b"\r\n\r\n")
    assert b"200" in head.split(b"\r\n", 1)[0]
    assert b"application/x-ndjson" in head
    return [json.loads(line) for line in payload.strip().split(b"\n")]


def _inline(graph) -> dict:
    """A CSRGraph as the service's inline-graph request object."""
    return {
        "xadj": graph.xadj.tolist(),
        "adjncy": graph.adjncy.tolist(),
        "adjwgt": graph.adjwgt.tolist(),
        "vwgt": graph.vwgt.tolist(),
    }


@pytest.fixture()
def server(tmp_path):
    """A traced BackgroundServer on an ephemeral port."""
    srv = BackgroundServer(trace=str(tmp_path / "service.jsonl"))
    srv.start()
    yield srv
    srv.stop()


def _trace_records(srv: BackgroundServer, tmp_path):
    """Stop the server (flushes counters) and read its trace back."""
    srv.stop()
    return read_trace(str(tmp_path / "service.jsonl"))


# --------------------------------------------------------------------------
# ResultCache (fake clock)
# --------------------------------------------------------------------------
class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestResultCache:
    def test_roundtrip_and_miss(self):
        cache = ResultCache(maxsize=4)
        assert cache.get("k") is None
        cache.put("k", {"v": 1})
        assert cache.get("k") == {"v": 1}
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_ttl_expiry(self):
        clock = FakeClock()
        seen = []
        cache = ResultCache(
            maxsize=4, ttl=10.0, clock=clock,
            on_event=lambda name, **f: seen.append((name, f["key"])),
        )
        cache.put("k", 1)
        clock.now = 9.0
        assert cache.get("k") == 1
        clock.now = 20.0
        assert cache.get("k") is None
        assert cache.stats()["expirations"] == 1
        assert ("expire", "k") in seen

    def test_purge_expired(self):
        clock = FakeClock()
        cache = ResultCache(maxsize=4, ttl=5.0, clock=clock)
        cache.put("a", 1)
        clock.now = 3.0
        cache.put("b", 2)
        clock.now = 6.0
        assert cache.purge_expired() == 1
        assert "a" not in cache
        assert "b" in cache

    def test_lru_eviction_order(self):
        seen = []
        cache = ResultCache(
            maxsize=2, on_event=lambda name, **f: seen.append((name, f["key"]))
        )
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)  # evicts a (least recently used)
        assert "a" not in cache
        assert seen == [("evict", "a")]
        assert cache.stats()["evictions"] == 1

    def test_get_refreshes_recency(self):
        cache = ResultCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # a becomes most-recent
        cache.put("c", 3)  # so b is the victim
        assert "a" in cache
        assert "b" not in cache

    def test_zero_capacity_disables(self):
        cache = ResultCache(maxsize=0)
        cache.put("k", 1)
        assert cache.get("k") is None
        assert len(cache) == 0

    def test_clear(self):
        cache = ResultCache()
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.clear() == 2
        assert len(cache) == 0

    def test_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            ResultCache(maxsize=-1)
        with pytest.raises(ConfigurationError):
            ResultCache(ttl=0)


# --------------------------------------------------------------------------
# Content addressing
# --------------------------------------------------------------------------
class TestKeys:
    def test_graph_digest_stable_and_content_sensitive(self):
        g1, g2 = path_graph(6), path_graph(6)
        assert graph_digest(g1) == graph_digest(g2)
        assert graph_digest(g1) != graph_digest(path_graph(7))
        weighted = path_graph(6, weights=[2, 1, 1, 1, 1])
        assert graph_digest(g1) != graph_digest(weighted)

    def test_request_key_covers_parameters(self):
        g = path_graph(6)
        base = {"options": cache_key_payload(DEFAULT_OPTIONS), "nparts": 2}
        k1 = request_key("partition", g, base)
        assert k1 == request_key("partition", g, dict(base))
        assert k1 != request_key("order", g, base)
        assert k1 != request_key("partition", g, {**base, "nparts": 3})

    def test_cache_key_payload_excludes_execution_knobs(self):
        """workers/timeouts don't change result bits; seed does."""
        base = cache_key_payload(DEFAULT_OPTIONS)
        pooled = cache_key_payload(
            DEFAULT_OPTIONS.with_(workers=4, worker_timeout=1.0)
        )
        assert base == pooled
        assert base != cache_key_payload(DEFAULT_OPTIONS.with_(seed=99))
        assert base != cache_key_payload(DEFAULT_OPTIONS.with_(deadline=5.0))
        assert "workers" not in base
        assert "trace" not in base

    def test_cache_key_payload_resolves_kernel_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNELS", raising=False)
        assert cache_key_payload(DEFAULT_OPTIONS)["kernels"] is None
        monkeypatch.setenv("REPRO_KERNELS", "vectorized")
        assert cache_key_payload(DEFAULT_OPTIONS)["kernels"] == "vectorized"
        explicit = cache_key_payload(DEFAULT_OPTIONS.with_(kernels="loop"))
        assert explicit["kernels"] == "loop"

    def test_payload_is_json_stable(self):
        p1 = cache_key_payload(DEFAULT_OPTIONS)
        p2 = cache_key_payload(DEFAULT_OPTIONS.with_())
        assert json.dumps(p1, sort_keys=True) == json.dumps(p2, sort_keys=True)


# --------------------------------------------------------------------------
# Request schema
# --------------------------------------------------------------------------
class TestSchema:
    def test_parse_options_rejects_unknown_fields(self):
        with pytest.raises(ServiceRequestError, match="unknown option"):
            parse_options({"matchign": "hem"})

    def test_parse_options_rejects_trace(self):
        with pytest.raises(ServiceRequestError, match="unknown option"):
            parse_options({"trace": "/tmp/x.jsonl"})

    def test_parse_options_maps_invalid_values_to_400(self):
        exc = pytest.raises(
            ServiceRequestError, parse_options, {"deadline": -1}
        )
        assert exc.value.status == 400

    def test_graph_needs_exactly_one_source(self):
        with pytest.raises(ServiceRequestError, match="exactly one"):
            graph_from_request({})
        with pytest.raises(ServiceRequestError, match="exactly one"):
            graph_from_request(
                {"graph": {}, "workload": {"name": "4ELT"}}
            )

    def test_inline_graph_missing_arrays(self):
        with pytest.raises(ServiceRequestError, match="missing 'adjncy'"):
            graph_from_request({"graph": {"xadj": [0]}})

    def test_unknown_workload_is_404(self):
        exc = pytest.raises(
            ServiceRequestError,
            graph_from_request,
            {"workload": {"name": "NOPE"}},
        )
        assert exc.value.status == 404


# --------------------------------------------------------------------------
# Job queue
# --------------------------------------------------------------------------
class TestJobQueue:
    def test_saturation_rejects_with_503(self):
        async def main():
            queue = JobQueue(workers=1, backlog=0)
            release = threading.Event()
            first = asyncio.ensure_future(queue.run(release.wait, 30))
            await asyncio.sleep(0.05)  # let the first job occupy the pool
            with pytest.raises(ServiceRequestError) as exc:
                await queue.run(lambda: None)
            assert exc.value.status == 503
            release.set()
            assert await first is True
            stats = queue.stats()
            assert stats["rejected"] == 1
            assert stats["completed"] == 1
            queue.shutdown()

        asyncio.run(main())

    def test_job_exceptions_propagate(self):
        async def main():
            queue = JobQueue(workers=1)

            def boom():
                raise RuntimeError("kaput")

            with pytest.raises(RuntimeError, match="kaput"):
                await queue.run(boom)
            assert queue.stats()["failed"] == 1
            queue.shutdown()

        asyncio.run(main())

    def test_bad_parameters(self):
        with pytest.raises(ServiceRequestError):
            JobQueue(workers=0)
        with pytest.raises(ServiceRequestError):
            JobQueue(backlog=-1)


# --------------------------------------------------------------------------
# HTTP end to end
# --------------------------------------------------------------------------
class TestEndpoints:
    def test_healthz_and_stats(self, server):
        status, body = _request(server.address, "GET", "/healthz")
        assert status == 200 and body["status"] == "ok"
        status, body = _request(server.address, "GET", "/stats")
        assert status == 200
        assert body["cache"]["maxsize"] == 128
        assert body["queue"]["workers"] == 2
        assert body["inflight"] == 0

    def test_partition_inline_graph(self, server):
        g = dumbbell_graph()
        status, body = _request(
            server.address, "POST", "/partition",
            {"graph": _inline(g), "nparts": 2, "options": {"seed": 7}},
        )
        assert status == 200
        assert body["kind"] == "partition"
        assert body["cached"] is False
        assert body["cut"] == 1  # the dumbbell bridge
        assert sorted(body["pwgts"]) and len(body["where"]) == g.nvtxs
        assert body["where_sha256"] == where_digest(
            np.asarray(body["where"], dtype=np.int32)
        )

    def test_partition_named_workload(self, server):
        status, body = _request(
            server.address, "POST", "/partition",
            {"workload": {"name": "4ELT", "scale": 0.02, "seed": 0},
             "nparts": 4},
        )
        assert status == 200
        assert body["nparts"] == 4
        assert len(set(body["where"])) == 4
        assert body["timers"]  # phase timers came back

    def test_order_endpoint(self, server):
        g = dumbbell_graph()
        status, body = _request(
            server.address, "POST", "/order",
            {"graph": _inline(g), "method": "mmd"},
        )
        assert status == 200
        assert body["kind"] == "order" and body["method"] == "mmd"
        perm = body["perm"]
        assert sorted(perm) == list(range(g.nvtxs))
        iperm = body["iperm"]
        assert all(iperm[perm[i]] == i for i in range(g.nvtxs))
        status, again = _request(
            server.address, "POST", "/order",
            {"graph": _inline(g), "method": "mmd"},
        )
        assert again["cached"] is True
        assert again["perm"] == perm

    def test_error_mapping(self, server):
        addr = server.address
        g = _inline(path_graph(4))
        cases = [
            ("GET", "/nope", None, 404),
            ("POST", "/healthz", None, 405),
            ("GET", "/partition", None, 405),
            ("POST", "/partition", {"nparts": 2}, 400),  # no graph
            ("POST", "/partition", {"graph": g, "nparts": 9}, 400),
            ("POST", "/partition", {"graph": g, "nparts": 0}, 400),
            ("POST", "/partition",
             {"graph": g, "nparts": 2, "options": {"bogus": 1}}, 400),
            ("POST", "/partition",
             {"graph": {"xadj": [0, 5], "adjncy": [1]}, "nparts": 1}, 400),
            ("POST", "/partition",
             {"workload": {"name": "NOPE"}, "nparts": 2}, 404),
            ("POST", "/order", {"graph": g, "method": "amd"}, 400),
        ]
        for method, path, body, expected in cases:
            status, payload = _request(addr, method, path, body)
            assert status == expected, (method, path, payload)
            assert "error" in payload

    def test_invalid_json_body_is_400(self, server):
        host, port = server.address
        raw = b"{not json"
        with socket.create_connection((host, port), timeout=30) as sock:
            sock.sendall(
                b"POST /partition HTTP/1.1\r\nHost: t\r\n"
                + f"Content-Length: {len(raw)}\r\n\r\n".encode() + raw
            )
            data = sock.recv(65536)
        assert b"400" in data.split(b"\r\n", 1)[0]
        assert b"invalid JSON" in data

    def test_cache_clear_endpoint(self, server):
        body = {"graph": _inline(path_graph(6)), "nparts": 2}
        _request(server.address, "POST", "/partition", body)
        status, cleared = _request(server.address, "DELETE", "/cache")
        assert status == 200 and cleared["cleared"] == 1
        _, again = _request(server.address, "POST", "/partition", body)
        assert again["cached"] is False


class TestCaching:
    def test_cache_hit_is_bit_identical_and_traced(self, tmp_path):
        """The acceptance scenario: repeat request -> cache hit, same bits,
        no partitioner phase spans for the hit, counters in the trace."""
        g = dumbbell_graph()
        body = {
            "graph": _inline(g), "nparts": 2, "options": {"seed": 7},
        }
        srv = BackgroundServer(trace=str(tmp_path / "service.jsonl"))
        srv.start()
        try:
            _, fresh = _request(srv.address, "POST", "/partition", body)
            _, hit1 = _request(srv.address, "POST", "/partition", body)
            _, hit2 = _request(srv.address, "POST", "/partition", body)
        finally:
            records = _trace_records(srv, tmp_path)

        assert fresh["cached"] is False
        assert hit1["cached"] is True and hit2["cached"] is True
        for hit in (hit1, hit2):
            assert hit["where"] == fresh["where"]
            assert hit["where_sha256"] == fresh["where_sha256"]
            assert hit["cut"] == fresh["cut"]
            assert hit["key"] == fresh["key"]

        # Bit-identity against a fresh in-process run, not just replay.
        local = local_partition(g, 2, DEFAULT_OPTIONS.with_(seed=7))
        assert fresh["where"] == [int(p) for p in local.where]
        assert fresh["where_sha256"] == where_digest(local.where)
        assert fresh["cut"] == int(local.cut)

        # Trace: one job ran; the two hits re-ran nothing.
        events = [r for r in records if r.get("t") == "event"]
        assert sum(e["name"] == "service.job.run" for e in events) == 1
        assert sum(e["name"] == "service.cache.miss" for e in events) == 1
        assert sum(e["name"] == "service.cache.hit" for e in events) == 2
        phase_spans = [
            r for r in records
            if r.get("t") == "span" and r.get("name") == "job.phase"
        ]
        assert 1 <= len(phase_spans) <= 4  # one run's worth, not three
        counters = [r for r in records if r.get("t") == "counters"]
        assert counters, "tracer close flushes the counters record"
        values = counters[-1]["values"]
        assert values["service.cache.hits"] == 2
        assert values["service.cache.misses"] == 1
        assert values["service.job.runs"] == 1

    def test_different_options_miss(self, server):
        g = _inline(path_graph(8))
        _, a = _request(
            server.address, "POST", "/partition",
            {"graph": g, "nparts": 2, "options": {"seed": 1}},
        )
        _, b = _request(
            server.address, "POST", "/partition",
            {"graph": g, "nparts": 2, "options": {"seed": 2}},
        )
        assert a["key"] != b["key"]
        assert b["cached"] is False

    def test_concurrent_fan_in_single_flight(self, tmp_path):
        """N identical concurrent requests compute the result once."""
        body = {
            "workload": {"name": "4ELT", "scale": 0.05, "seed": 1},
            "nparts": 4, "options": {"seed": 13},
        }
        srv = BackgroundServer(trace=str(tmp_path / "service.jsonl"))
        srv.start()
        results, errors = [], []

        def worker():
            try:
                results.append(_request(srv.address, "POST", "/partition", body))
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        try:
            threads = [threading.Thread(target=worker) for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
        finally:
            records = _trace_records(srv, tmp_path)

        assert not errors
        assert len(results) == 8
        digests = {payload["where_sha256"] for _, payload in results}
        assert len(digests) == 1, "all callers saw identical bits"
        assert all(status == 200 for status, _ in results)
        events = [r for r in records if r.get("t") == "event"]
        assert sum(e["name"] == "service.job.run" for e in events) == 1

    def test_deadline_bypasses_cache_and_degrades(self, server):
        """An expired deadline -> 200 + resilience trail, never cached."""
        body = {
            "workload": {"name": "4ELT", "scale": 0.1, "seed": 2},
            "nparts": 8,
            "options": {"seed": 3, "deadline": 1e-6},
        }
        status, first = _request(server.address, "POST", "/partition", body)
        assert status == 200
        assert first["cached"] is False
        assert len(set(first["where"])) == 8  # degraded but complete
        assert first["resilience"], "deadline degradation must be audited"
        assert any(
            e["kind"] == "degradation" and "deadline" in e["detail"]
            for e in first["resilience"]
        )
        status, second = _request(server.address, "POST", "/partition", body)
        assert status == 200
        assert second["cached"] is False, "wall-clock results are not cached"

    def test_pooled_request_matches_sequential_bits(self, server):
        """workers: 2 fans branches across processes; bits must not move.

        Under the chaos CI leg (REPRO_FAULTS=worker_crash) this exercises
        supervisor crash-recovery behind the service without changing the
        assertion.
        """
        status, pooled = _request(
            server.address, "POST", "/partition",
            {"workload": {"name": "4ELT", "scale": 0.05, "seed": 4},
             "nparts": 4, "options": {"seed": 17, "workers": 2}},
        )
        assert status == 200
        from repro.matrices import suite

        g = suite.load("4ELT", scale=0.05, seed=4)
        local = local_partition(
            g, 4, DEFAULT_OPTIONS.with_(seed=17, workers=1)
        )
        assert pooled["where"] == [int(p) for p in local.where]
        assert pooled["cut"] == int(local.cut)


class TestStreaming:
    def test_stream_yields_progress_then_result(self, server):
        body = {
            "workload": {"name": "4ELT", "scale": 0.05, "seed": 6},
            "nparts": 4, "options": {"seed": 19},
        }
        lines = _stream_request(server.address, body)
        assert lines[0]["t"] == "accepted" and lines[0]["cached"] is False
        assert lines[-1]["t"] == "result"
        progress = [l for l in lines if l["t"] == "progress"]
        assert progress, "a fresh job streams its trace records"
        kinds = {p["record"].get("t") for p in progress}
        assert "span" in kinds
        result = lines[-1]["result"]
        assert result["cached"] is False
        assert len(set(result["where"])) == 4

        # The streamed job populated the cache: a JSON request hits.
        status, hit = _request(
            server.address, "POST", "/partition",
            {k: v for k, v in body.items()},
        )
        assert status == 200 and hit["cached"] is True
        assert hit["where_sha256"] == result["where_sha256"]

    def test_stream_cache_hit_short_circuits(self, server):
        body = {"graph": _inline(dumbbell_graph()), "nparts": 2}
        _request(server.address, "POST", "/partition", body)
        lines = _stream_request(server.address, body)
        assert lines[0] == {
            "t": "accepted", "key": lines[0]["key"], "cached": True,
        }
        assert [l["t"] for l in lines] == ["accepted", "result"]
        assert lines[-1]["result"]["cached"] is True

    def test_stream_prepare_error_is_plain_400(self, server):
        """Malformed streaming requests fail before the 200 header."""
        raw = json.dumps(
            {"workload": {"name": "4ELT", "scale": 0.02}, "nparts": 10_000,
             "stream": True}
        ).encode()
        host, port = server.address
        with socket.create_connection((host, port), timeout=30) as sock:
            sock.sendall(
                b"POST /partition HTTP/1.1\r\nHost: t\r\n"
                + f"Content-Length: {len(raw)}\r\n\r\n".encode() + raw
            )
            data = sock.recv(65536)
        assert b"400" in data.split(b"\r\n", 1)[0]
