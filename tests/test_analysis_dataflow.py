"""Tests for the whole-program dataflow checkers (RP012 … RP018).

One positive (seeded synthetic violation) and one negative (blessed
idiom) fixture per rule, plus the PR-4 regression demonstration: deleting
the int64 ``np.add.at`` path from ``part_weights``'s exact accumulation
makes RP012 fire with a call-path trace, while the shipped guarded code
stays clean.
"""

from pathlib import Path

import pytest

from repro.analysis import lint_paths
from repro.analysis.engine import format_findings
from repro.analysis.report import apply_baseline, find_baseline

REPO_ROOT = Path(__file__).resolve().parents[1]


def _lint(tmp_path, files, select=None):
    for rel, source in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    findings = lint_paths([tmp_path / "pkg"])
    if select:
        findings = [f for f in findings if f.rule_id == select]
    return findings


class TestRP012ExactAccumulation:
    def test_unguarded_weight_bincount_fires(self, tmp_path):
        findings = _lint(
            tmp_path,
            {
                "pkg/core/acc.py": (
                    "import numpy as np\n"
                    "\n"
                    "\n"
                    "def part_weights_bad(where, vwgt, k):\n"
                    "    return np.bincount(where, weights=vwgt, minlength=k)\n"
                ),
            },
            select="RP012",
        )
        assert len(findings) == 1
        assert "float64" in findings[0].message

    def test_guarded_bincount_is_clean(self, tmp_path):
        findings = _lint(
            tmp_path,
            {
                "pkg/core/acc.py": (
                    "import numpy as np\n"
                    "\n"
                    "\n"
                    "def part_weights_ok(where, vwgt, k, total):\n"
                    "    if total <= 2**53:\n"
                    "        return np.bincount(\n"
                    "            where, weights=vwgt, minlength=k\n"
                    "        ).astype(np.int64)\n"
                    "    out = np.zeros(k, dtype=np.int64)\n"
                    "    np.add.at(out, where, vwgt)\n"
                    "    return out\n"
                ),
            },
            select="RP012",
        )
        assert findings == []

    def test_float_weights_are_not_the_bug_class(self, tmp_path):
        # Weighted float centroids (graph.coords * vwgt) are genuine float
        # math, not the 2**53 overflow class.
        findings = _lint(
            tmp_path,
            {
                "pkg/graph/geom.py": (
                    "import numpy as np\n"
                    "\n"
                    "\n"
                    "def centroid(cmap, coords, vwgt, k):\n"
                    "    return np.bincount(\n"
                    "        cmap, weights=coords * vwgt, minlength=k\n"
                    "    )\n"
                ),
            },
            select="RP012",
        )
        assert findings == []

    def test_float_augassign_into_weight_fires(self, tmp_path):
        findings = _lint(
            tmp_path,
            {
                "pkg/core/acc2.py": (
                    "def accumulate(moves, w):\n"
                    "    cut = 0\n"
                    "    for m in moves:\n"
                    "        cut += 0.5 * w\n"
                    "    return cut\n"
                ),
            },
            select="RP012",
        )
        assert len(findings) == 1


class TestRP013NarrowingCast:
    def test_narrowing_weight_cast_fires(self, tmp_path):
        findings = _lint(
            tmp_path,
            {
                "pkg/core/cast.py": (
                    "import numpy as np\n"
                    "\n"
                    "\n"
                    "def shrink(vwgt):\n"
                    "    return vwgt.astype(np.int32)\n"
                ),
            },
            select="RP013",
        )
        assert len(findings) == 1
        assert "int32" in findings[0].message

    def test_int64_cast_and_nonweight_cast_are_clean(self, tmp_path):
        findings = _lint(
            tmp_path,
            {
                "pkg/core/cast.py": (
                    "import numpy as np\n"
                    "\n"
                    "\n"
                    "def widen(vwgt):\n"
                    "    return vwgt.astype(np.int64)\n"
                    "\n"
                    "\n"
                    "def labels(part):\n"
                    "    return part.astype(np.int32)\n"
                ),
            },
            select="RP013",
        )
        assert findings == []

    def test_float_allocated_weight_accumulator_fires(self, tmp_path):
        findings = _lint(
            tmp_path,
            {
                "pkg/core/alloc.py": (
                    "import numpy as np\n"
                    "\n"
                    "\n"
                    "def fresh(k):\n"
                    "    pwgts = np.zeros(k)\n"
                    "    return pwgts\n"
                ),
            },
            select="RP013",
        )
        assert len(findings) == 1

    def test_int64_allocated_weight_accumulator_is_clean(self, tmp_path):
        findings = _lint(
            tmp_path,
            {
                "pkg/core/alloc.py": (
                    "import numpy as np\n"
                    "\n"
                    "\n"
                    "def fresh(k):\n"
                    "    pwgts = np.zeros(k, dtype=np.int64)\n"
                    "    return pwgts\n"
                ),
            },
            select="RP013",
        )
        assert findings == []


class TestRP014RngThread:
    _ENTROPY_DEFAULTING = (
        "import numpy as np\n"
        "\n"
        "\n"
        "def as_generator(rng=None):\n"
        "    return np.random.default_rng(rng)\n"
        "\n"
        "\n"
        "def search(graph, rng=None):\n"
        "    gen = as_generator(rng)\n"
        "    return gen.random()\n"
        "\n"
        "\n"
    )

    def test_call_omitting_rng_fires(self, tmp_path):
        findings = _lint(
            tmp_path,
            {
                "pkg/core/seeds.py": self._ENTROPY_DEFAULTING
                + ("def driver(graph):\n" "    return search(graph)\n"),
            },
            select="RP014",
        )
        assert len(findings) == 1
        assert "omits rng" in findings[0].message

    def test_call_threading_rng_is_clean(self, tmp_path):
        findings = _lint(
            tmp_path,
            {
                "pkg/core/seeds.py": self._ENTROPY_DEFAULTING
                + (
                    "def driver(graph, rng=None):\n"
                    "    return search(graph, rng=rng)\n"
                ),
            },
            select="RP014",
        )
        # driver itself defaults rng=None but does not convert it to
        # entropy, so calling search with the threaded rng is the idiom.
        assert findings == []

    def test_seed_fallback_conditional_is_exempt(self, tmp_path):
        findings = _lint(
            tmp_path,
            {
                "pkg/core/seeds.py": (
                    "import numpy as np\n"
                    "\n"
                    "\n"
                    "def ordering(graph, seed, rng=None):\n"
                    "    gen = np.random.default_rng(\n"
                    "        rng if rng is not None else seed\n"
                    "    )\n"
                    "    return gen.random()\n"
                    "\n"
                    "\n"
                    "def driver(graph):\n"
                    "    return ordering(graph, 0)\n"
                ),
            },
            select="RP014",
        )
        assert findings == []

    def test_entropy_reachable_from_worker_fires_with_trace(self, tmp_path):
        findings = _lint(
            tmp_path,
            {
                "pkg/core/jobs.py": (
                    "import numpy as np\n"
                    "\n"
                    "\n"
                    "def _branch_job(graph):\n"
                    "    rng = np.random.default_rng()\n"
                    "    return rng.random()\n"
                    "\n"
                    "\n"
                    "def drive(par, graph):\n"
                    "    par.submit(_branch_job, graph)\n"
                ),
            },
            select="RP014",
        )
        assert len(findings) == 1
        assert "workers=N" in findings[0].message
        assert "_branch_job" in findings[0].trace

    def test_seeded_worker_is_clean(self, tmp_path):
        findings = _lint(
            tmp_path,
            {
                "pkg/core/jobs.py": (
                    "def _branch_job(graph, rng):\n"
                    "    return rng.random()\n"
                    "\n"
                    "\n"
                    "def drive(par, graph, rng):\n"
                    "    par.submit(_branch_job, graph, rng)\n"
                ),
            },
            select="RP014",
        )
        assert findings == []


class TestRP015WorkerPurity:
    def test_module_state_mutation_in_worker_fires(self, tmp_path):
        findings = _lint(
            tmp_path,
            {
                "pkg/core/jobs.py": (
                    "_CACHE = {}\n"
                    "\n"
                    "\n"
                    "def _branch_job(graph):\n"
                    "    _CACHE[id(graph)] = graph\n"
                    "    return graph\n"
                    "\n"
                    "\n"
                    "def drive(par, graph):\n"
                    "    par.submit(_branch_job, graph)\n"
                ),
            },
            select="RP015",
        )
        assert len(findings) == 1
        assert "_CACHE" in findings[0].message
        assert findings[0].trace  # carries the worker call path

    def test_mutator_method_on_module_list_fires(self, tmp_path):
        findings = _lint(
            tmp_path,
            {
                "pkg/core/jobs.py": (
                    "_EVENTS = []\n"
                    "\n"
                    "\n"
                    "def _branch_job(graph):\n"
                    "    _EVENTS.append(graph)\n"
                    "    return graph\n"
                    "\n"
                    "\n"
                    "def drive(par, graph):\n"
                    "    par.submit(_branch_job, graph)\n"
                ),
            },
            select="RP015",
        )
        assert len(findings) == 1

    def test_local_state_in_worker_is_clean(self, tmp_path):
        findings = _lint(
            tmp_path,
            {
                "pkg/core/jobs.py": (
                    "def _branch_job(graph):\n"
                    "    cache = {}\n"
                    "    cache[id(graph)] = graph\n"
                    "    events = []\n"
                    "    events.append(graph)\n"
                    "    return cache, events\n"
                    "\n"
                    "\n"
                    "def drive(par, graph):\n"
                    "    par.submit(_branch_job, graph)\n"
                ),
            },
            select="RP015",
        )
        assert findings == []

    def test_same_mutation_outside_worker_is_clean(self, tmp_path):
        findings = _lint(
            tmp_path,
            {
                "pkg/core/jobs.py": (
                    "_CACHE = {}\n"
                    "\n"
                    "\n"
                    "def memoize(graph):\n"
                    "    _CACHE[id(graph)] = graph\n"
                    "    return graph\n"
                ),
            },
            select="RP015",
        )
        assert findings == []


class TestRP016WorkerAmbientState:
    def test_environ_write_in_worker_fires(self, tmp_path):
        findings = _lint(
            tmp_path,
            {
                "pkg/core/jobs.py": (
                    "import os\n"
                    "\n"
                    "\n"
                    "def _branch_job(graph):\n"
                    "    os.environ['REPRO_WORKERS'] = '1'\n"
                    "    return graph\n"
                    "\n"
                    "\n"
                    "def drive(par, graph):\n"
                    "    par.submit(_branch_job, graph)\n"
                ),
            },
            select="RP016",
        )
        assert len(findings) == 1
        assert "os.environ" in findings[0].message

    def test_global_seed_in_worker_fires(self, tmp_path):
        findings = _lint(
            tmp_path,
            {
                "pkg/core/jobs.py": (
                    "import numpy as np\n"
                    "\n"
                    "\n"
                    "def _branch_job(graph):\n"
                    "    np.random.seed(0)\n"
                    "    return graph\n"
                    "\n"
                    "\n"
                    "def drive(par, graph):\n"
                    "    par.submit(_branch_job, graph)\n"
                ),
            },
            select="RP016",
        )
        assert len(findings) == 1
        assert "global RNG" in findings[0].message

    def test_environ_write_outside_worker_is_clean(self, tmp_path):
        findings = _lint(
            tmp_path,
            {
                "pkg/core/setup.py": (
                    "import os\n"
                    "\n"
                    "\n"
                    "def configure(workers):\n"
                    "    os.environ['REPRO_WORKERS'] = str(workers)\n"
                ),
            },
            select="RP016",
        )
        assert findings == []


class TestRP017KernelHygiene:
    def test_backend_import_outside_kernels_fires(self, tmp_path):
        findings = _lint(
            tmp_path,
            {
                "pkg/kernels/__init__.py": "__all__ = []\n",
                "pkg/kernels/vec_backend.py": "def kernel():\n    return 0\n",
                "pkg/core/coarsen.py": (
                    "from pkg.kernels.vec_backend import kernel\n"
                    "\n"
                    "\n"
                    "def coarsen(graph):\n"
                    "    return kernel()\n"
                ),
            },
            select="RP017",
        )
        assert len(findings) == 1
        assert "vec_backend" in findings[0].message
        assert findings[0].path.endswith("coarsen.py")

    def test_backend_submodule_from_import_fires(self, tmp_path):
        findings = _lint(
            tmp_path,
            {
                "pkg/kernels/__init__.py": "__all__ = []\n",
                "pkg/kernels/vec_backend.py": "def kernel():\n    return 0\n",
                "pkg/core/coarsen.py": (
                    "from pkg.kernels import vec_backend\n"
                    "\n"
                    "\n"
                    "def coarsen(graph):\n"
                    "    return vec_backend.kernel()\n"
                ),
            },
            select="RP017",
        )
        assert len(findings) == 1
        assert "vec_backend" in findings[0].message

    def test_registry_import_is_clean(self, tmp_path):
        findings = _lint(
            tmp_path,
            {
                "pkg/kernels/__init__.py": (
                    "__all__ = ['resolve']\n"
                    "\n"
                    "\n"
                    "def resolve():\n"
                    "    from pkg.kernels import vec_backend\n"
                    "\n"
                    "    return vec_backend.kernel\n"
                ),
                "pkg/kernels/vec_backend.py": "def kernel():\n    return 0\n",
                "pkg/core/coarsen.py": (
                    "from pkg.kernels import resolve\n"
                    "\n"
                    "\n"
                    "def coarsen(graph):\n"
                    "    return resolve()(graph)\n"
                ),
            },
            select="RP017",
        )
        assert findings == []

    def test_top_level_numba_import_fires(self, tmp_path):
        findings = _lint(
            tmp_path,
            {
                "pkg/kernels/__init__.py": "__all__ = []\n",
                "pkg/kernels/numba_backend.py": (
                    "from numba import njit\n"
                    "\n"
                    "\n"
                    "@njit\n"
                    "def kernel():\n"
                    "    return 0\n"
                ),
            },
            select="RP017",
        )
        assert len(findings) == 1
        assert "numba" in findings[0].message
        assert "lazily" in findings[0].message

    def test_lazy_numba_import_is_clean(self, tmp_path):
        findings = _lint(
            tmp_path,
            {
                "pkg/kernels/__init__.py": "__all__ = []\n",
                "pkg/kernels/numba_backend.py": (
                    "def compile_kernel(fn):\n"
                    "    from numba import njit\n"
                    "\n"
                    "    return njit(fn)\n"
                    "\n"
                    "\n"
                    "def available():\n"
                    "    try:\n"
                    "        import numba  # noqa: F401\n"
                    "    except ImportError:\n"
                    "        return False\n"
                    "    return True\n"
                ),
            },
            select="RP017",
        )
        assert findings == []

    def test_shipped_tree_has_no_top_level_numba_import(self):
        """No module under src/repro may import numba eagerly — the suite
        must run (with transparent fallback) on machines without it."""
        findings = [
            f
            for f in lint_paths(
                [REPO_ROOT / "src" / "repro"], paper=REPO_ROOT / "PAPER.md"
            )
            if f.rule_id == "RP017"
        ]
        assert findings == [], format_findings(findings)


class TestRP018WorkerException:
    _DRIVER = (
        "def drive(par, graph):\n"
        "    par.submit(_branch_job, graph)\n"
    )

    def test_unpicklable_exception_fires_with_trace(self, tmp_path):
        findings = _lint(
            tmp_path,
            {
                "pkg/core/jobs.py": (
                    "class BranchError(Exception):\n"
                    "    def __init__(self, msg, *, phase):\n"
                    "        super().__init__(msg)\n"
                    "        self.phase = phase\n"
                    "\n"
                    "\n"
                    "def _branch_job(graph):\n"
                    "    if graph is None:\n"
                    "        raise BranchError('no graph', phase='submit')\n"
                    "    return graph\n"
                    "\n"
                    "\n" + self._DRIVER
                ),
            },
            select="RP018",
        )
        assert len(findings) == 1
        assert "'phase'" in findings[0].message
        assert "__reduce__" in findings[0].message
        assert findings[0].trace == ("drive", "_branch_job")

    def test_reduce_in_base_chain_is_clean(self, tmp_path):
        # Mirrors repro.utils.errors: the base defines __reduce__, so a
        # subclass with required keyword-only parameters pickles fine.
        findings = _lint(
            tmp_path,
            {
                "pkg/core/jobs.py": (
                    "class BaseError(Exception):\n"
                    "    def __reduce__(self):\n"
                    "        return (type(self), self.args)\n"
                    "\n"
                    "\n"
                    "class BranchError(BaseError):\n"
                    "    def __init__(self, msg, *, phase):\n"
                    "        super().__init__(msg)\n"
                    "        self.phase = phase\n"
                    "\n"
                    "\n"
                    "def _branch_job(graph):\n"
                    "    if graph is None:\n"
                    "        raise BranchError('no graph', phase='submit')\n"
                    "    return graph\n"
                    "\n"
                    "\n" + self._DRIVER
                ),
            },
            select="RP018",
        )
        assert findings == []

    def test_builtin_raise_in_worker_code_fires(self, tmp_path):
        findings = _lint(
            tmp_path,
            {
                "pkg/core/jobs.py": (
                    "def _branch_job(graph):\n"
                    "    if graph is None:\n"
                    "        raise ValueError('no graph')\n"
                    "    return graph\n"
                    "\n"
                    "\n" + self._DRIVER
                ),
            },
            select="RP018",
        )
        assert len(findings) == 1
        assert "builtin ValueError" in findings[0].message

    def test_positional_only_exception_is_clean(self, tmp_path):
        # Plain message-style exceptions round-trip through the default
        # Exception reduction; only required keyword-only params break it.
        findings = _lint(
            tmp_path,
            {
                "pkg/core/jobs.py": (
                    "class BranchError(Exception):\n"
                    "    def __init__(self, msg, phase=None):\n"
                    "        super().__init__(msg)\n"
                    "        self.phase = phase\n"
                    "\n"
                    "\n"
                    "def _branch_job(graph):\n"
                    "    if graph is None:\n"
                    "        raise BranchError('no graph')\n"
                    "    return graph\n"
                    "\n"
                    "\n" + self._DRIVER
                ),
            },
            select="RP018",
        )
        assert findings == []

    def test_non_worker_code_is_not_policed(self, tmp_path):
        # The same raise outside the worker-reachable set is RP005's
        # business (builtin) but never RP018's.
        findings = _lint(
            tmp_path,
            {
                "pkg/core/jobs.py": (
                    "class BranchError(Exception):\n"
                    "    def __init__(self, msg, *, phase):\n"
                    "        super().__init__(msg)\n"
                    "        self.phase = phase\n"
                    "\n"
                    "\n"
                    "def sequential(graph):\n"
                    "    if graph is None:\n"
                    "        raise BranchError('no graph', phase='seq')\n"
                    "    return graph\n"
                ),
            },
            select="RP018",
        )
        assert findings == []

    def test_shipped_worker_set_is_exception_clean(self):
        findings = [
            f
            for f in lint_paths(
                [REPO_ROOT / "src" / "repro"], paper=REPO_ROOT / "PAPER.md"
            )
            if f.rule_id == "RP018"
        ]
        assert findings == [], format_findings(findings)


class TestPartWeightsRevertRegression:
    """Reverting PR 4's exact-accumulation fix must trip RP012.

    The shipped ``graph/partition.py`` guards its ``np.bincount`` with the
    2**53 exact limit and falls back to an int64 ``np.add.at`` path.  This
    test deletes that guarded path (recreating the pre-PR-4 code) in a
    fixture copy, adds a ``core/`` caller, and checks that RP012 fires on
    the naked bincount with a call path from the caller — while the real,
    guarded file stays clean.
    """

    REAL = REPO_ROOT / "src" / "repro" / "graph" / "partition.py"

    def _reverted_source(self):
        src = self.REAL.read_text()
        start = src.index("    if total <= _FLOAT64_EXACT_LIMIT:")
        end = src.index("def part_weights")
        naive = (
            "    return np.bincount(\n"
            "        idx, weights=weights, minlength=minlength\n"
            "    ).astype(np.int64)\n"
            "\n"
            "\n"
        )
        return src[:start] + naive + src[end:]

    def test_reverted_part_weights_fires_with_call_path(self, tmp_path):
        findings = _lint(
            tmp_path,
            {
                "pkg/graph/partition.py": self._reverted_source(),
                "pkg/core/kway_refine.py": (
                    "from pkg.graph.partition import part_weights\n"
                    "\n"
                    "\n"
                    "def refine(graph, where):\n"
                    "    return part_weights(graph, where, 2)\n"
                ),
            },
            select="RP012",
        )
        assert findings, "RP012 did not fire on the reverted part_weights"
        hit = findings[0]
        assert hit.path.endswith("partition.py")
        assert hit.trace, "finding carries no call-path trace"
        assert "exact_weight_bincount" in hit.trace
        assert "refine" in hit.trace or "part_weights" in hit.trace
        assert "call path:" in hit.format()

    def test_shipped_guarded_partition_is_clean(self):
        findings = [
            f
            for f in lint_paths([self.REAL], paper=REPO_ROOT / "PAPER.md")
            if f.rule_id == "RP012"
        ]
        assert findings == [], format_findings(findings)


class TestShippedTreeWholeProgram:
    def test_src_repro_clean_modulo_baseline(self):
        findings = lint_paths(
            [REPO_ROOT / "src" / "repro"], paper=REPO_ROOT / "PAPER.md"
        )
        baseline = find_baseline(REPO_ROOT / "src" / "repro")
        if baseline is not None:
            findings, _ = apply_baseline(findings, baseline)
        assert findings == [], format_findings(findings)

    def test_tests_and_benchmarks_clean_for_determinism_rules(self):
        findings = lint_paths(
            [REPO_ROOT / "benchmarks", REPO_ROOT / "tests"],
            paper=REPO_ROOT / "PAPER.md",
        )
        findings = [f for f in findings if f.rule_id in ("RP001", "RP014")]
        baseline = find_baseline(REPO_ROOT / "tests")
        if baseline is not None:
            findings, _ = apply_baseline(findings, baseline)
        assert findings == [], format_findings(findings)
