"""Test package for repro.

Present as a package so test modules can import shared helpers via
``from tests.conftest import ...`` regardless of how pytest is invoked
(``pytest`` or ``python -m pytest``).
"""
