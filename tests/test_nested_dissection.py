"""Tests for nested dissection orderings (MLND and SND)."""

import numpy as np
import pytest

from repro.core.options import DEFAULT_OPTIONS
from repro.ordering import factor_stats, mlnd_ordering, snd_ordering
from repro.ordering.nested_dissection import nested_dissection_ordering
from tests.conftest import complete_graph, path_graph, random_graph, two_triangles


class TestMLND:
    def test_valid_permutation(self, grid16):
        mlnd_ordering(grid16, rng=np.random.default_rng(0)).verify()

    def test_method_tag(self, grid16):
        assert mlnd_ordering(grid16, rng=np.random.default_rng(0)).method == "mlnd"

    def test_small_graph_delegates_to_mmd(self):
        g = path_graph(10)  # below leaf_size
        o = mlnd_ordering(g, rng=np.random.default_rng(0))
        o.verify()
        assert factor_stats(g, o.perm).fill == 0

    def test_beats_natural_ordering_on_grid(self):
        from repro.matrices import grid2d

        g = grid2d(20, 20)
        nd = factor_stats(g, mlnd_ordering(g, rng=np.random.default_rng(1)).perm)
        nat = factor_stats(g, np.arange(g.nvtxs))
        assert nd.opcount < nat.opcount / 2

    def test_grid_opcount_near_theory(self):
        """Nested dissection of a √n×√n grid gives O(n^{3/2}) factor ops;
        sanity-check the constant is not absurd."""
        from repro.matrices import grid2d

        g = grid2d(24, 24)
        nd = factor_stats(g, mlnd_ordering(g, rng=np.random.default_rng(2)).perm)
        n = g.nvtxs
        assert nd.opcount < 60 * n ** 1.5

    def test_separator_numbered_last(self, grid16):
        """Top-level separator property: the highest-numbered vertices must
        form a separator of the rest."""
        from repro.graph import connected_components, extract_subgraph

        o = mlnd_ordering(grid16, rng=np.random.default_rng(3))
        # Remove the last-numbered block (the top separator is ~√n ≈ 16
        # vertices on a 16×16 grid; drop 2√n to be safely past it); the
        # remainder must split into ≥ 2 components (the dissection halves).
        n = grid16.nvtxs
        keep = o.perm[: n - 32]
        sub, _ = extract_subgraph(grid16, np.sort(keep))
        ncomp = int(connected_components(sub).max()) + 1
        assert ncomp >= 2

    def test_disconnected_graph(self):
        g = two_triangles()
        o = mlnd_ordering(g, rng=np.random.default_rng(0))
        o.verify()
        assert factor_stats(g, o.perm).fill == 0

    def test_clique_degenerate_split_falls_back(self):
        g = complete_graph(6)
        o = mlnd_ordering(
            g, DEFAULT_OPTIONS, np.random.default_rng(0), leaf_size=2
        )
        o.verify()

    def test_leaf_size_respected(self, grid16):
        big_leaf = mlnd_ordering(
            grid16, DEFAULT_OPTIONS, np.random.default_rng(4), leaf_size=300
        )
        # leaf_size ≥ n means pure MMD.
        from repro.ordering import mmd_ordering

        assert np.array_equal(big_leaf.perm, mmd_ordering(grid16).perm)

    def test_deep_recursion_no_stack_overflow(self):
        g = path_graph(3000)
        o = mlnd_ordering(g, DEFAULT_OPTIONS, np.random.default_rng(5), leaf_size=4)
        o.verify()


class TestSND:
    def test_valid_permutation(self, grid16):
        snd_ordering(grid16, rng=np.random.default_rng(0)).verify()

    def test_method_tag(self, grid16):
        assert snd_ordering(grid16, rng=np.random.default_rng(0)).method == "snd"

    def test_quality_comparable_to_mlnd_on_grid(self, grid16):
        nd = factor_stats(
            grid16, mlnd_ordering(grid16, rng=np.random.default_rng(1)).perm
        )
        sd = factor_stats(
            grid16, snd_ordering(grid16, rng=np.random.default_rng(1)).perm
        )
        assert sd.opcount < 3 * nd.opcount


class TestGenericDriver:
    def test_custom_bisector(self, grid16):
        """The driver must accept any 0/1 bisector."""

        def half_split(sub, rng):
            where = np.zeros(sub.nvtxs, dtype=np.int8)
            where[sub.nvtxs // 2 :] = 1
            return where

        o = nested_dissection_ordering(
            grid16, half_split, np.random.default_rng(0), leaf_size=16
        )
        o.verify()

    def test_empty_graph(self):
        from repro.graph import from_edge_list

        o = nested_dissection_ordering(
            from_edge_list(0, []), lambda s, r: np.zeros(0), np.random.default_rng(0)
        )
        assert len(o) == 0
