"""Tests for the initial-partitioning algorithms (§3.2)."""

import numpy as np
import pytest

from repro.core.initial import (
    ggp_bisection,
    gggp_bisection,
    initial_bisection,
    sbp_bisection,
    split_at_weighted_median,
)
from repro.core.options import DEFAULT_OPTIONS, InitialScheme
from repro.graph import from_edge_list
from repro.utils.errors import PartitionError
from tests.conftest import (
    assert_valid_bisection,
    dumbbell_graph,
    path_graph,
    random_graph,
    two_triangles,
)

PARTITIONERS = {
    "ggp": lambda g, t, rng: ggp_bisection(g, t, rng, trials=10),
    "gggp": lambda g, t, rng: gggp_bisection(g, t, rng, trials=5),
    "sbp": lambda g, t, rng: sbp_bisection(g, t, rng),
}


@pytest.mark.parametrize("name", PARTITIONERS, ids=PARTITIONERS.keys())
class TestAllPartitioners:
    def test_valid_on_random_graph(self, name):
        g = random_graph(50, 0.15, seed=1, connected=True)
        b = PARTITIONERS[name](g, None, np.random.default_rng(0))
        assert_valid_bisection(g, b)
        assert 0 < b.pwgts[0] < g.total_vwgt()

    def test_target_respected_within_max_vertex(self, name):
        g = random_graph(50, 0.15, seed=2, connected=True)
        target = g.total_vwgt() // 3
        b = PARTITIONERS[name](g, target, np.random.default_rng(0))
        # Growth stops as soon as the target is reached, so the overshoot
        # is bounded by the largest vertex weight (1 here).
        assert target <= b.pwgts[0] <= target + 1

    def test_dumbbell_bridge_found(self, name):
        g = dumbbell_graph(k=5)
        b = PARTITIONERS[name](g, None, np.random.default_rng(0))
        assert b.cut == 1

    def test_disconnected_graph_handled(self, name):
        g = two_triangles()
        b = PARTITIONERS[name](g, None, np.random.default_rng(0))
        assert_valid_bisection(g, b)
        assert b.cut == 0  # component split is free
        assert b.pwgts.tolist() == [3, 3]

    def test_too_small_graph_rejected(self, name):
        g = from_edge_list(1, [])
        with pytest.raises(PartitionError):
            PARTITIONERS[name](g, None, np.random.default_rng(0))


class TestGrowthSpecifics:
    def test_gggp_not_worse_than_ggp_on_average(self):
        cuts_ggp, cuts_gggp = [], []
        for seed in range(6):
            g = random_graph(60, 0.12, seed=seed, connected=True)
            cuts_ggp.append(
                ggp_bisection(g, None, np.random.default_rng(seed), trials=10).cut
            )
            cuts_gggp.append(
                gggp_bisection(g, None, np.random.default_rng(seed), trials=5).cut
            )
        assert np.mean(cuts_gggp) <= np.mean(cuts_ggp) * 1.05

    def test_more_trials_no_worse(self):
        g = random_graph(60, 0.12, seed=11, connected=True)
        one = ggp_bisection(g, None, np.random.default_rng(3), trials=1).cut
        many = ggp_bisection(g, None, np.random.default_rng(3), trials=15).cut
        assert many <= one

    def test_weighted_vertices(self):
        g = from_edge_list(4, [(0, 1), (1, 2), (2, 3)], vwgt=[10, 1, 1, 10])
        b = gggp_bisection(g, 11, np.random.default_rng(0))
        assert b.pwgts[0] in (11, 12)


class TestSplitAtWeightedMedian:
    def test_basic_split(self):
        g = path_graph(4)
        b = split_at_weighted_median(g, np.array([0.4, 0.1, 0.9, 0.2]), 2)
        # Two smallest values (indices 1, 3) go to part 0.
        assert b.where.tolist() == [1, 0, 1, 0]

    def test_ties_broken_by_vertex_id(self):
        g = path_graph(4)
        b = split_at_weighted_median(g, np.zeros(4), 2)
        assert b.where.tolist() == [0, 0, 1, 1]

    def test_never_produces_empty_side(self):
        g = path_graph(3)
        b_lo = split_at_weighted_median(g, np.array([1.0, 2.0, 3.0]), 0)
        b_hi = split_at_weighted_median(g, np.array([1.0, 2.0, 3.0]), 3)
        assert 0 < b_lo.pwgts[0] < 3
        assert 0 < b_hi.pwgts[0] < 3

    def test_respects_vertex_weights(self):
        g = from_edge_list(3, [(0, 1), (1, 2)], vwgt=[5, 1, 1])
        b = split_at_weighted_median(g, np.array([3.0, 1.0, 2.0]), 2)
        # Cumulative by value order (1,2,0): vertex 1 (w=1), vertex 2
        # (w=1) reach the target of 2.
        assert b.where.tolist() == [1, 0, 0]


class TestDispatch:
    def test_dispatch_all_schemes(self):
        g = random_graph(40, 0.2, seed=3, connected=True)
        for scheme in InitialScheme:
            options = DEFAULT_OPTIONS.with_(initial=scheme)
            b = initial_bisection(g, options, np.random.default_rng(0))
            assert_valid_bisection(g, b)
