"""Tests for the CSR graph kernel."""

import numpy as np
import pytest

from repro.graph import CSRGraph, from_edge_list
from repro.utils.errors import GraphValidationError
from tests.conftest import complete_graph, path_graph, weighted_path


class TestBasicProperties:
    def test_empty_graph(self):
        g = from_edge_list(0, [])
        assert g.nvtxs == 0
        assert g.nedges == 0
        assert g.total_vwgt() == 0
        assert g.total_adjwgt() == 0

    def test_single_vertex(self):
        g = from_edge_list(1, [])
        assert g.nvtxs == 1
        assert g.nedges == 0
        assert g.degree(0) == 0

    def test_path_counts(self):
        g = path_graph(5)
        assert g.nvtxs == 5
        assert g.nedges == 4
        assert g.total_adjwgt() == 4

    def test_degrees(self):
        g = path_graph(4)
        assert g.degree(0) == 1
        assert g.degree(1) == 2
        assert g.degree(3) == 1
        assert g.degrees().tolist() == [1, 2, 2, 1]

    def test_neighbors(self):
        g = path_graph(3)
        assert set(g.neighbors(1).tolist()) == {0, 2}
        assert g.neighbors(0).tolist() == [1]

    def test_neighbor_weights_parallel_to_neighbors(self):
        g = weighted_path([3, 7])
        nbrs = g.neighbors(1).tolist()
        wgts = g.neighbor_weights(1).tolist()
        pairs = dict(zip(nbrs, wgts))
        assert pairs == {0: 3, 2: 7}

    def test_average_degree(self):
        g = complete_graph(5)
        assert g.average_degree() == pytest.approx(4.0)
        assert from_edge_list(0, []).average_degree() == 0.0

    def test_unit_weights_by_default(self):
        g = path_graph(4)
        assert np.all(g.vwgt == 1)
        assert np.all(g.adjwgt == 1)

    def test_total_weights_with_explicit_vwgt(self):
        g = from_edge_list(3, [(0, 1), (1, 2)], vwgt=[5, 2, 3])
        assert g.total_vwgt() == 10


class TestEdgeQueries:
    def test_has_edge(self):
        g = path_graph(4)
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 0)
        assert not g.has_edge(0, 2)
        assert not g.has_edge(0, 3)

    def test_edge_weight(self):
        g = weighted_path([3, 7, 2])
        assert g.edge_weight(0, 1) == 3
        assert g.edge_weight(1, 0) == 3
        assert g.edge_weight(2, 3) == 2
        assert g.edge_weight(0, 3) == 0

    def test_edges_iteration_each_once(self):
        g = complete_graph(4)
        edges = list(g.edges())
        assert len(edges) == 6
        assert all(u < v for u, v, _ in edges)

    def test_edge_array_matches_edges(self):
        g = weighted_path([3, 7, 2])
        arr = g.edge_array()
        listed = sorted((u, v, w) for u, v, w in g.edges())
        from_arr = sorted(map(tuple, arr.tolist()))
        assert listed == from_arr


class TestCopyAndEquality:
    def test_copy_is_deep(self):
        g = path_graph(4)
        h = g.copy()
        h.adjwgt[0] = 99
        assert g.adjwgt[0] == 1

    def test_equality(self):
        assert path_graph(4) == path_graph(4)
        assert path_graph(4) != path_graph(5)

    def test_equality_ignores_coords(self):
        g, h = path_graph(3), path_graph(3)
        g.coords = np.zeros((3, 2))
        assert g == h

    def test_not_hashable(self):
        with pytest.raises(TypeError):
            hash(path_graph(3))

    def test_copy_preserves_coords(self):
        g = path_graph(3)
        g.coords = np.arange(6, dtype=float).reshape(3, 2)
        h = g.copy()
        assert np.array_equal(h.coords, g.coords)
        h.coords[0, 0] = 42.0
        assert g.coords[0, 0] == 0.0


class TestCoords:
    def test_coords_default_none(self):
        assert path_graph(3).coords is None

    def test_coords_shape_enforced(self):
        g = path_graph(3)
        with pytest.raises(GraphValidationError):
            g.coords = np.zeros((2, 2))
        with pytest.raises(GraphValidationError):
            g.coords = np.zeros(3)

    def test_coords_settable_and_clearable(self):
        g = path_graph(3)
        g.coords = np.zeros((3, 2))
        assert g.coords.shape == (3, 2)
        g.coords = None
        assert g.coords is None


class TestSortedAdjacency:
    def test_sorted_adjacency_sorts(self):
        g = from_edge_list(4, [(0, 3), (0, 1), (0, 2)])
        s = g.sorted_adjacency()
        assert s.neighbors(0).tolist() == [1, 2, 3]

    def test_sorted_adjacency_keeps_weight_pairing(self):
        g = from_edge_list(3, [(0, 2), (0, 1)], [5, 9])
        s = g.sorted_adjacency()
        assert s.edge_weight(0, 1) == 9
        assert s.edge_weight(0, 2) == 5

    def test_sorted_adjacency_equal_graph(self):
        g = from_edge_list(4, [(0, 3), (0, 1), (2, 1)])
        assert g.sorted_adjacency() == g.sorted_adjacency()


class TestDirectConstruction:
    def test_explicit_arrays(self):
        g = CSRGraph(
            xadj=[0, 1, 2],
            adjncy=[1, 0],
            adjwgt=[4, 4],
            vwgt=[2, 3],
        )
        assert g.nvtxs == 2
        assert g.edge_weight(0, 1) == 4
        assert g.total_vwgt() == 5

    def test_repr_mentions_sizes(self):
        text = repr(path_graph(4))
        assert "nvtxs=4" in text and "nedges=3" in text
