"""Tests for direct k-way refinement (the paper's future-work extension)."""

import numpy as np
import pytest

from repro.core import partition, partition_refined, refine_kway
from repro.core.options import DEFAULT_OPTIONS
from repro.graph import KWayPartition, edge_cut, part_weights
from tests.conftest import random_graph


class TestRefineKway:
    def test_never_worsens(self, grid16):
        p = partition(grid16, 8, DEFAULT_OPTIONS, np.random.default_rng(0))
        before = p.cut
        refine_kway(grid16, p, DEFAULT_OPTIONS, np.random.default_rng(1))
        assert p.cut <= before
        assert p.cut == edge_cut(grid16, p.where)
        assert np.array_equal(p.pwgts, part_weights(grid16, p.where, 8))

    def test_improves_bad_partition(self, grid16):
        """A random assignment has massive positive-gain moves; greedy
        k-way refinement must slash the cut."""
        rng = np.random.default_rng(2)
        where = rng.integers(0, 4, grid16.nvtxs).astype(np.int32)
        p = KWayPartition.from_where(grid16, where, 4)
        before = p.cut
        refine_kway(grid16, p, DEFAULT_OPTIONS, np.random.default_rng(3))
        assert p.cut < before / 2

    def test_respects_balance_cap(self, grid16):
        rng = np.random.default_rng(4)
        where = rng.integers(0, 4, grid16.nvtxs).astype(np.int32)
        p = KWayPartition.from_where(grid16, where, 4)
        refine_kway(grid16, p, DEFAULT_OPTIONS, np.random.default_rng(5))
        cap = np.ceil(DEFAULT_OPTIONS.ubfactor * grid16.total_vwgt() / 4)
        assert p.pwgts.max() <= cap

    def test_repairs_overweight_part(self, grid16):
        where = np.zeros(grid16.nvtxs, dtype=np.int32)
        where[:10] = 1  # part 0 grossly overweight
        p = KWayPartition.from_where(grid16, where, 2)
        refine_kway(grid16, p, DEFAULT_OPTIONS, np.random.default_rng(6))
        cap = np.ceil(DEFAULT_OPTIONS.ubfactor * grid16.total_vwgt() / 2)
        # Greedy repair moves should at least reduce the overweight.
        assert p.pwgts.max() < grid16.nvtxs - 10

    def test_k1_noop(self, grid16):
        p = KWayPartition.from_where(grid16, np.zeros(grid16.nvtxs, dtype=np.int32), 1)
        refine_kway(grid16, p, DEFAULT_OPTIONS)
        assert p.cut == 0

    def test_partition_refined_wrapper(self, grid16):
        plain = partition(grid16, 8, DEFAULT_OPTIONS, np.random.default_rng(7))
        refined = partition_refined(grid16, 8, DEFAULT_OPTIONS, np.random.default_rng(7))
        assert refined.cut <= plain.cut
        assert refined.cut == edge_cut(grid16, refined.where)

    def test_helps_on_irregular_graph(self):
        g = random_graph(300, 0.04, seed=8, connected=True)
        rng = np.random.default_rng(9)
        where = rng.integers(0, 6, g.nvtxs).astype(np.int32)
        p = KWayPartition.from_where(g, where, 6)
        before = p.cut
        refine_kway(g, p, DEFAULT_OPTIONS, np.random.default_rng(10))
        assert p.cut < before

    def test_deterministic(self, grid16):
        rng_w = np.random.default_rng(11)
        where = rng_w.integers(0, 4, grid16.nvtxs).astype(np.int32)
        a = KWayPartition.from_where(grid16, where.copy(), 4)
        b = KWayPartition.from_where(grid16, where.copy(), 4)
        refine_kway(grid16, a, DEFAULT_OPTIONS, np.random.default_rng(12))
        refine_kway(grid16, b, DEFAULT_OPTIONS, np.random.default_rng(12))
        assert np.array_equal(a.where, b.where)
