"""Tests for the runtime invariant sanitizer (``repro.analysis.sanitize``).

Three layers:

* selection — environment variable and ``options.sanitize`` choose between
  the active and null sanitizer, and the null path performs **zero**
  checker calls (counted by monkeypatching every checker);
* fault injection — corrupted matchings, contracted graphs, degree arrays
  and separators raise :class:`SanitizerError` naming the right phase;
* end-to-end — the full pipeline runs clean under ``REPRO_SANITIZE=1``,
  and a fault injected *inside* the pipeline is caught at the phase
  boundary.
"""

import sys

import numpy as np
import pytest

from repro.analysis.sanitize import (
    ACTIVE,
    NULL,
    NullSanitizer,
    Sanitizer,
    sanitize_enabled,
    sanitizer,
)
from repro.core.coarsen import coarsen
from repro.core.gains import external_internal_degrees
from repro.core.kway_refine import refine_kway
from repro.core.matching import compute_matching
from repro.core.multilevel import bisect
from repro.core.options import DEFAULT_OPTIONS
from repro.graph import KWayPartition, edge_cut, part_weights
from repro.graph.contract import coarse_map_from_matching, contract
from repro.ordering import mlnd_ordering
from repro.utils.errors import ReproError, SanitizerError
from tests.conftest import path_graph, random_graph

CHECKERS = (
    "check_matching",
    "check_contraction",
    "check_bisection",
    "check_degrees",
    "check_kway",
    "check_separator",
)


@pytest.fixture
def san_off(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "0")


@pytest.fixture
def san_on(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")


@pytest.fixture
def counted(monkeypatch):
    """Replace every checker on both sanitizer classes with a counter."""
    calls = []

    def make_counter(name):
        def counter(self, *args, **kwargs):
            calls.append(name)

        return counter

    for name in CHECKERS:
        monkeypatch.setattr(Sanitizer, name, make_counter(name))
        monkeypatch.setattr(NullSanitizer, name, make_counter(name))
    return calls


class TestSelection:
    def test_disabled_by_default(self, san_off):
        assert not sanitize_enabled()
        assert sanitizer() is NULL
        assert not sanitizer()

    @pytest.mark.parametrize("value", ["", "0", "false", "no", "off", "OFF"])
    def test_falsy_env_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_SANITIZE", value)
        assert sanitizer() is NULL

    def test_env_enables(self, san_on):
        assert sanitize_enabled()
        assert sanitizer() is ACTIVE
        assert sanitizer()

    def test_options_enable_overrides_env(self, san_off):
        options = DEFAULT_OPTIONS.with_(sanitize=True)
        assert sanitizer(options) is ACTIVE

    def test_options_default_defers_to_env(self, san_on):
        assert sanitizer(DEFAULT_OPTIONS) is ACTIVE

    def test_null_sanitizer_methods_are_noops(self):
        null = NullSanitizer()
        assert null.check_matching("anything", "goes") is None
        assert not null

    def test_disabled_pipeline_makes_zero_checker_calls(
        self, san_off, counted, grid16
    ):
        bisect(grid16, DEFAULT_OPTIONS, np.random.default_rng(0))
        mlnd_ordering(grid16, DEFAULT_OPTIONS, np.random.default_rng(1))
        assert counted == []

    def test_enabled_pipeline_reaches_every_bisection_checker(
        self, san_on, counted, grid16
    ):
        bisect(grid16, DEFAULT_OPTIONS, np.random.default_rng(0))
        assert {"check_matching", "check_contraction", "check_bisection"} <= set(
            counted
        )
        assert "check_degrees" in counted  # refinement ran at least one pass


class TestFaultInjection:
    """Each corrupted structure must raise, naming the broken phase."""

    def _matching(self, g, seed=0):
        return compute_matching(g, DEFAULT_OPTIONS.matching, np.random.default_rng(seed))

    def test_valid_matching_passes(self):
        g = random_graph(60, 0.1, seed=3, connected=True)
        ACTIVE.check_matching(g, self._matching(g), level=0)

    def test_broken_involution_caught(self):
        g = random_graph(60, 0.1, seed=3, connected=True)
        match = self._matching(g).copy()
        # Duplicate mate: two vertices both claim the same partner.
        v = int(np.flatnonzero(match != np.arange(g.nvtxs))[0])
        others = np.flatnonzero(
            (match != np.arange(g.nvtxs)) & (np.arange(g.nvtxs) != v)
        )
        match[int(others[-1])] = match[v]
        with pytest.raises(SanitizerError, match="involution") as exc:
            ACTIVE.check_matching(g, match, level=2)
        assert exc.value.phase == "matching"
        assert exc.value.level == 2

    def test_matched_non_edge_caught(self):
        g = path_graph(6)  # 0-1-2-3-4-5: vertices 0 and 5 share no edge
        match = np.arange(6)
        match[0], match[5] = 5, 0
        with pytest.raises(SanitizerError, match="shares no edge") as exc:
            ACTIVE.check_matching(g, match, level=0)
        assert exc.value.phase == "matching"

    def test_non_maximal_matching_caught(self):
        g = path_graph(4)
        match = np.arange(4)  # empty matching, but edges exist
        with pytest.raises(SanitizerError, match="maximal") as exc:
            ACTIVE.check_matching(g, match)
        assert exc.value.phase == "matching"

    def _contraction(self, seed=5):
        g = random_graph(80, 0.08, seed=seed, connected=True)
        match = self._matching(g, seed)
        cmap, ncoarse = coarse_map_from_matching(match)
        return g, contract(g, cmap, ncoarse), cmap

    def test_valid_contraction_passes(self):
        fine, coarse, cmap = self._contraction()
        ACTIVE.check_contraction(fine, coarse, cmap, level=0)

    def test_dropped_vertex_weight_caught(self):
        fine, coarse, cmap = self._contraction()
        coarse.vwgt[0] += 1  # conservation now fails at multinode 0
        with pytest.raises(SanitizerError, match="vertex weight") as exc:
            ACTIVE.check_contraction(fine, coarse, cmap, level=1)
        assert exc.value.phase == "contraction"
        assert exc.value.level == 1

    def test_dropped_edge_weight_caught(self):
        fine, coarse, cmap = self._contraction()
        coarse.adjwgt[:] += 1  # total no longer W(E_fine) - collapsed
        with pytest.raises(SanitizerError, match="edge weight") as exc:
            ACTIVE.check_contraction(fine, coarse, cmap)
        assert exc.value.phase == "contraction"

    def test_bisection_cut_drift_caught(self, grid16):
        where = (np.arange(grid16.nvtxs) % 2).astype(np.int8)
        pwgts = part_weights(grid16, where, 2)
        cut = edge_cut(grid16, where)
        ACTIVE.check_bisection(grid16, where, pwgts, cut, phase="project")
        with pytest.raises(SanitizerError, match="cut drifted") as exc:
            ACTIVE.check_bisection(
                grid16, where, pwgts, cut - 1, phase="project", level=3
            )
        assert exc.value.phase == "project"
        assert exc.value.level == 3

    def test_bisection_empty_side_caught(self, grid16):
        where = np.zeros(grid16.nvtxs, dtype=np.int8)
        with pytest.raises(SanitizerError, match="empty") as exc:
            ACTIVE.check_bisection(
                grid16, where, part_weights(grid16, where, 2), 0, phase="initial"
            )
        assert exc.value.phase == "initial"

    def test_off_by_one_gain_caught(self, grid16):
        """A corrupted bucket gain == a corrupted ed/id entry."""
        where = (np.arange(grid16.nvtxs) % 2).astype(np.int8)
        ed, id_ = external_internal_degrees(grid16, where)
        cut = edge_cut(grid16, where)
        ACTIVE.check_degrees(grid16, where, ed, id_, cut)
        ed[7] += 1  # the gain of vertex 7 is now off by one
        with pytest.raises(SanitizerError, match="vertex 7") as exc:
            ACTIVE.check_degrees(grid16, where, ed, id_, cut, phase="refine")
        assert exc.value.phase == "refine"
        assert "gain off by 1" in str(exc.value)

    def test_running_cut_drift_caught(self, grid16):
        where = (np.arange(grid16.nvtxs) % 2).astype(np.int8)
        ed, id_ = external_internal_degrees(grid16, where)
        with pytest.raises(SanitizerError, match="running cut") as exc:
            ACTIVE.check_degrees(
                grid16, where, ed, id_, edge_cut(grid16, where) + 2, phase="refine"
            )
        assert exc.value.phase == "refine"

    def test_kway_weight_drift_caught(self, grid16):
        where = (np.arange(grid16.nvtxs) % 4).astype(np.int32)
        pwgts = part_weights(grid16, where, 4)
        cut = edge_cut(grid16, where)
        ACTIVE.check_kway(grid16, where, pwgts, cut, 4)
        pwgts = pwgts.copy()
        pwgts[2] -= 1
        with pytest.raises(SanitizerError, match="part 2") as exc:
            ACTIVE.check_kway(grid16, where, pwgts, cut, 4)
        assert exc.value.phase == "kway-refine"

    def test_non_separating_separator_caught(self):
        g = path_graph(4)  # 0-1-2-3
        with pytest.raises(SanitizerError, match="does not separate") as exc:
            ACTIVE.check_separator(g, [0, 1], [2, 3], [], level=1)
        assert exc.value.phase == "separator"
        assert exc.value.level == 1
        # With vertex 2 as the separator the same split is fine.
        ACTIVE.check_separator(g, [0, 1], [3], [2], level=1)

    def test_overlapping_separator_sets_caught(self):
        g = path_graph(4)
        with pytest.raises(SanitizerError, match="two of the A/B/separator"):
            ACTIVE.check_separator(g, [0, 1], [1, 3], [2])

    def test_incomplete_separator_sets_caught(self):
        g = path_graph(4)
        with pytest.raises(SanitizerError, match="none of the A/B/separator"):
            ACTIVE.check_separator(g, [0], [3], [2])

    def test_sanitizer_error_is_repro_error(self):
        err = SanitizerError("boom", phase="matching", level=4)
        assert isinstance(err, ReproError)
        assert "phase=matching" in str(err)
        assert "level=4" in str(err)


class TestEndToEnd:
    def test_full_bisection_clean_under_sanitizer(self, san_on, grid16):
        result = bisect(grid16, DEFAULT_OPTIONS, np.random.default_rng(0))
        assert result.bisection.cut == edge_cut(grid16, result.bisection.where)

    def test_full_ordering_clean_under_sanitizer(self, san_on, grid16):
        ordering = mlnd_ordering(
            grid16, DEFAULT_OPTIONS.with_(sanitize=True), np.random.default_rng(1)
        )
        assert sorted(ordering.perm) == list(range(grid16.nvtxs))

    def test_kway_refine_clean_under_sanitizer(self, san_on, grid16):
        rng = np.random.default_rng(2)
        where = rng.integers(0, 4, grid16.nvtxs).astype(np.int32)
        p = KWayPartition.from_where(grid16, where, 4)
        refine_kway(grid16, p, DEFAULT_OPTIONS, np.random.default_rng(3))
        assert p.cut == edge_cut(grid16, p.where)

    def test_pipeline_fault_caught_at_phase_boundary(self, san_on, grid16):
        """Corrupt the matching *inside* coarsening: the very next phase
        boundary must catch it and name the matching phase."""
        real = compute_matching

        def corrupted(graph, scheme, rng, cewgt=None):
            match = real(graph, scheme, rng, cewgt).copy()
            matched = np.flatnonzero(match != np.arange(graph.nvtxs))
            if len(matched) >= 2:
                match[int(matched[0])] = int(matched[0])  # break involution's mate
            return match

        # Coarsening pulls the matching kernel through the repro.kernels
        # registry; injecting into its kernel cache corrupts exactly what
        # the phase driver will run.
        import repro.kernels as kernels_mod

        with pytest.MonkeyPatch.context() as mp:
            mp.setitem(kernels_mod._KERNEL_CACHE, ("loop", "matching"), corrupted)
            with pytest.raises(SanitizerError) as exc:
                coarsen(grid16, DEFAULT_OPTIONS, np.random.default_rng(0))
        assert exc.value.phase == "matching"
        assert exc.value.level == 0

    def test_sanitize_option_round_trips_through_with_(self):
        options = DEFAULT_OPTIONS.with_(sanitize=True)
        assert options.sanitize is True
        assert DEFAULT_OPTIONS.sanitize is False
