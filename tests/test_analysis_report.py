"""Tests for the lint reporting layer (``repro.analysis.report``):
JSON output, SARIF 2.1.0 output + schema validation, baseline
suppression, and the generated rule table."""

import json
from pathlib import Path

import pytest

from repro.analysis import (
    Finding,
    findings_to_json,
    findings_to_sarif,
    lint_paths,
    rules_markdown_table,
    validate_sarif,
)
from repro.analysis.cli import main as lint_main
from repro.analysis.report import (
    Baseline,
    apply_baseline,
    find_baseline,
    write_baseline,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


def _finding(path="src/mod.py", line=3, rule="RP006", message="print call", trace=()):
    return Finding(path, line, 5, rule, message, trace=tuple(trace))


class TestJson:
    def test_round_trips_all_fields(self):
        f = _finding(trace=("driver", "leaf"))
        rows = json.loads(findings_to_json([f]))
        assert rows == [
            {
                "path": "src/mod.py",
                "line": 3,
                "col": 5,
                "rule": "RP006",
                "message": "print call",
                "trace": ["driver", "leaf"],
            }
        ]

    def test_empty_is_empty_array(self):
        assert json.loads(findings_to_json([])) == []


class TestSarif:
    def test_structure_and_rule_registry(self):
        doc = findings_to_sarif([_finding()])
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert rule_ids == [f"RP{i:03d}" for i in range(1, 19)]
        result = run["results"][0]
        assert result["ruleId"] == "RP006"
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region == {"startLine": 3, "startColumn": 5}

    def test_trace_becomes_related_locations(self):
        doc = findings_to_sarif([_finding(trace=("driver", "mid", "leaf"))])
        related = doc["runs"][0]["results"][0]["relatedLocations"]
        assert [loc["message"]["text"] for loc in related] == [
            "call path [0]: driver",
            "call path [1]: mid",
            "call path [2]: leaf",
        ]

    def test_validates_against_subset_schema(self):
        doc = findings_to_sarif([_finding(), _finding(trace=("a",))])
        assert validate_sarif(doc) == []

    def test_empty_log_validates(self):
        assert validate_sarif(findings_to_sarif([])) == []

    def test_validator_rejects_broken_docs(self):
        assert validate_sarif({"runs": []})  # missing version
        doc = findings_to_sarif([_finding()])
        doc["version"] = "9.9"
        assert any("not one of" in e for e in validate_sarif(doc))
        doc = findings_to_sarif([_finding()])
        region = doc["runs"][0]["results"][0]["locations"][0][
            "physicalLocation"
        ]["region"]
        region["startLine"] = 0
        assert any("below minimum" in e for e in validate_sarif(doc))

    def test_real_tree_sarif_validates_with_jsonschema_if_present(self):
        # The subset validator is the stdlib-only gate; when the full
        # jsonschema package happens to be importable, double-check the
        # structural envelope with it too.
        findings = lint_paths(
            [REPO_ROOT / "src" / "repro"], paper=REPO_ROOT / "PAPER.md"
        )
        doc = findings_to_sarif(findings)
        assert validate_sarif(doc) == []
        jsonschema = pytest.importorskip("jsonschema")
        from repro.analysis.report import SARIF_SUBSET_SCHEMA

        jsonschema.validate(doc, SARIF_SUBSET_SCHEMA)


class TestBaseline:
    def _write_tree(self, tmp_path):
        mod = tmp_path / "pkg" / "chatty.py"
        mod.parent.mkdir()
        mod.write_text("def report(cut):\n    print(cut)\n")
        return mod

    def test_write_then_filter_suppresses(self, tmp_path):
        self._write_tree(tmp_path)
        findings = lint_paths([tmp_path / "pkg"])
        assert [f.rule_id for f in findings] == ["RP006"]
        baseline_path = tmp_path / "lint-baseline.json"
        write_baseline(findings, baseline_path)
        new, baselined = apply_baseline(findings, baseline_path)
        assert new == []
        assert len(baselined) == 1

    def test_line_drift_does_not_resurrect(self, tmp_path):
        mod = self._write_tree(tmp_path)
        baseline_path = tmp_path / "lint-baseline.json"
        write_baseline(lint_paths([tmp_path / "pkg"]), baseline_path)
        # Insert lines above the finding: line number changes, text does not.
        mod.write_text(
            "import sys\n\n\ndef report(cut):\n    print(cut)\n"
        )
        findings = lint_paths([tmp_path / "pkg"])
        new, baselined = apply_baseline(findings, baseline_path)
        assert new == []
        assert len(baselined) == 1

    def test_editing_flagged_line_invalidates_entry(self, tmp_path):
        mod = self._write_tree(tmp_path)
        baseline_path = tmp_path / "lint-baseline.json"
        write_baseline(lint_paths([tmp_path / "pkg"]), baseline_path)
        mod.write_text("def report(cut):\n    print(cut, flush=True)\n")
        findings = lint_paths([tmp_path / "pkg"])
        new, _ = apply_baseline(findings, baseline_path)
        assert [f.rule_id for f in new] == ["RP006"]

    def test_count_is_a_multiset(self, tmp_path):
        mod = tmp_path / "pkg" / "chatty.py"
        mod.parent.mkdir()
        # Two identical print lines -> one fingerprint with count 2.
        mod.write_text(
            "def report(cut):\n    print(cut)\n    print(cut)\n"
        )
        baseline_path = tmp_path / "lint-baseline.json"
        findings = lint_paths([tmp_path / "pkg"])
        assert len(findings) == 2
        write_baseline(findings, baseline_path)
        rows = json.loads(baseline_path.read_text())["findings"]
        assert len(rows) == 1 and rows[0]["count"] == 2
        # A third identical violation exceeds the budget and is new.
        mod.write_text(
            "def report(cut):\n"
            "    print(cut)\n"
            "    print(cut)\n"
            "    print(cut)\n"
        )
        new, baselined = apply_baseline(
            lint_paths([tmp_path / "pkg"]), baseline_path
        )
        assert len(new) == 1 and len(baselined) == 2

    def test_find_baseline_walks_up(self, tmp_path):
        (tmp_path / "lint-baseline.json").write_text('{"findings": []}')
        deep = tmp_path / "a" / "b"
        deep.mkdir(parents=True)
        assert find_baseline(deep) == tmp_path / "lint-baseline.json"
        assert find_baseline("/nonexistent-root-for-test") is None or True

    def test_shipped_baseline_loads(self):
        baseline = Baseline.load(REPO_ROOT / "lint-baseline.json")
        assert isinstance(baseline, Baseline)


class TestCliFormats:
    def _fixture(self, tmp_path):
        mod = tmp_path / "pkg" / "chatty.py"
        mod.parent.mkdir()
        mod.write_text("def report(cut):\n    print(cut)\n")
        return tmp_path / "pkg"

    def test_json_flag(self, tmp_path, capsys):
        code = lint_main([str(self._fixture(tmp_path)), "--json"])
        assert code == 1
        rows = json.loads(capsys.readouterr().out)
        assert rows[0]["rule"] == "RP006"

    def test_sarif_flag_emits_valid_log(self, tmp_path, capsys):
        code = lint_main([str(self._fixture(tmp_path)), "--sarif"])
        assert code == 1
        doc = json.loads(capsys.readouterr().out)
        assert validate_sarif(doc) == []
        assert doc["runs"][0]["results"][0]["ruleId"] == "RP006"

    def test_write_baseline_then_clean_exit(self, tmp_path, capsys):
        pkg = self._fixture(tmp_path)
        baseline = tmp_path / "lint-baseline.json"
        code = lint_main(
            [str(pkg), "--baseline", str(baseline), "--write-baseline"]
        )
        assert code == 0 and baseline.is_file()
        # Baselined finding no longer fails the run...
        assert lint_main([str(pkg), "--baseline", str(baseline)]) == 0
        # ...unless the baseline is ignored.
        capsys.readouterr()
        code = lint_main([str(pkg), "--no-baseline"])
        assert code == 1
        assert "RP006" in capsys.readouterr().out

    def test_baseline_discovered_upward(self, tmp_path, capsys):
        pkg = self._fixture(tmp_path)
        assert lint_main([str(pkg), "--write-baseline",
                          "--baseline", str(tmp_path / "lint-baseline.json")]) == 0
        # No --baseline flag: discovery walks up from pkg/ to tmp_path.
        assert lint_main([str(pkg)]) == 0
        err = capsys.readouterr().err
        assert "baselined" not in err or "hidden" in err

    def test_rules_md_flag(self, capsys):
        assert lint_main(["--rules-md"]) == 0
        out = capsys.readouterr().out
        assert out.strip() == rules_markdown_table().strip()


class TestRuleTableDocs:
    def test_table_lists_every_rule(self):
        table = rules_markdown_table()
        for i in range(1, 19):
            assert f"RP{i:03d}" in table

    def test_docs_table_matches_generator(self):
        """docs/ANALYSIS.md carries the generated table between markers;
        regenerate with ``repro lint --rules-md`` when this fails."""
        doc = (REPO_ROOT / "docs" / "ANALYSIS.md").read_text()
        begin = "<!-- rule-table:begin (generated: repro lint --rules-md) -->"
        end = "<!-- rule-table:end -->"
        assert begin in doc and end in doc
        embedded = doc.split(begin, 1)[1].split(end, 1)[0].strip()
        assert embedded == rules_markdown_table().strip()
