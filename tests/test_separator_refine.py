"""Tests for greedy vertex-separator refinement."""

import numpy as np
import pytest

from repro.ordering import (
    build_labelling,
    is_valid_separator_labelling,
    refine_vertex_separator,
    separator_weight,
    vertex_separator_from_bisection,
)
from repro.ordering.separator_refine import SEPARATOR, SIDE_A, SIDE_B
from tests.conftest import path_graph, random_graph


def labelled_partition(graph, where, seed=0):
    sep = vertex_separator_from_bisection(graph, where)
    return build_labelling(graph, where, sep)


class TestInvariantChecker:
    def test_valid_labelling(self):
        g = path_graph(5)
        where3 = np.array([0, 0, 2, 1, 1])
        assert is_valid_separator_labelling(g, where3)

    def test_invalid_labelling(self):
        g = path_graph(3)
        assert not is_valid_separator_labelling(g, np.array([0, 1, 1]))

    def test_separator_weight(self):
        from repro.graph import from_edge_list

        g = from_edge_list(3, [(0, 1), (1, 2)], vwgt=[1, 5, 1])
        assert separator_weight(g, np.array([0, 2, 1])) == 5


class TestRefinement:
    def test_removes_redundant_separator_vertex(self):
        # Path 0-1-2-3-4 with separator {1, 2}: vertex 1 has no neighbour
        # on side B once 2 separates, so refinement must shrink to one.
        g = path_graph(5)
        where3 = np.array([0, 2, 2, 1, 1])
        refine_vertex_separator(g, where3, np.random.default_rng(0))
        assert is_valid_separator_labelling(g, where3)
        assert (where3 == SEPARATOR).sum() == 1

    def test_never_grows_separator(self):
        for seed in range(5):
            g = random_graph(60, 0.1, seed=seed, connected=True)
            rng = np.random.default_rng(seed)
            where = rng.integers(0, 2, g.nvtxs)
            where3 = labelled_partition(g, where)
            before = separator_weight(g, where3)
            refine_vertex_separator(g, where3, np.random.default_rng(1))
            assert separator_weight(g, where3) <= before
            assert is_valid_separator_labelling(g, where3)

    def test_respects_weight_caps(self):
        g = path_graph(10)
        # Separator at 5; everything left side A.
        where3 = np.full(10, SIDE_A, dtype=np.int8)
        where3[5] = SEPARATOR
        where3[6:] = SIDE_B
        cap = (5, 5)
        refine_vertex_separator(g, where3, np.random.default_rng(0), maxpwgt=cap)
        assert is_valid_separator_labelling(g, where3)
        assert int(g.vwgt[where3 == SIDE_A].sum()) <= 5

    def test_empty_separator_noop(self):
        from tests.conftest import two_triangles

        g = two_triangles()
        where3 = np.array([0, 0, 0, 1, 1, 1], dtype=np.int8)
        out = refine_vertex_separator(g, where3, np.random.default_rng(0))
        assert np.array_equal(out, [0, 0, 0, 1, 1, 1])

    def test_grid_separator_stays_near_row(self, grid8):
        where = np.zeros(64, dtype=np.int8)
        where[32:] = 1
        where3 = labelled_partition(grid8, where)
        refine_vertex_separator(grid8, where3, np.random.default_rng(0))
        assert is_valid_separator_labelling(grid8, where3)
        # A straight grid row (8 vertices) is already optimal.
        assert (where3 == SEPARATOR).sum() == 8

    def test_mlnd_with_refinement_not_worse(self):
        from repro.matrices import grid2d
        from repro.ordering import factor_stats, mlnd_ordering

        g = grid2d(18, 18)
        plain = mlnd_ordering(
            g, rng=np.random.default_rng(1), refine_separator=False
        )
        refined = mlnd_ordering(
            g, rng=np.random.default_rng(1), refine_separator=True
        )
        refined.verify()
        ops_plain = factor_stats(g, plain.perm).opcount
        ops_ref = factor_stats(g, refined.perm).opcount
        assert ops_ref <= ops_plain * 1.1
