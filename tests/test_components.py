"""Tests for connected components and subgraph extraction."""

import numpy as np

from repro.graph import (
    connected_components,
    extract_subgraph,
    from_edge_list,
    is_connected,
    largest_component,
    num_components,
)
from tests.conftest import path_graph, two_triangles


class TestComponents:
    def test_connected_path(self):
        g = path_graph(6)
        assert num_components(g) == 1
        assert is_connected(g)
        assert np.all(connected_components(g) == 0)

    def test_two_triangles(self):
        g = two_triangles()
        comp = connected_components(g)
        assert num_components(g) == 2
        assert comp[0] == comp[1] == comp[2] == 0
        assert comp[3] == comp[4] == comp[5] == 1

    def test_isolated_vertices(self):
        g = from_edge_list(4, [(0, 1)])
        assert num_components(g) == 3

    def test_empty_graph(self):
        g = from_edge_list(0, [])
        assert num_components(g) == 0
        assert is_connected(g)  # vacuously

    def test_component_ids_in_discovery_order(self):
        g = from_edge_list(4, [(2, 3)])
        comp = connected_components(g)
        assert comp[0] == 0 and comp[1] == 1 and comp[2] == comp[3] == 2

    def test_deep_path_no_recursion_error(self):
        g = path_graph(20000)
        assert is_connected(g)


class TestExtractSubgraph:
    def test_induced_edges_only(self):
        g = path_graph(5)
        sub, vmap = extract_subgraph(g, np.array([0, 1, 3]))
        assert sub.nvtxs == 3
        assert sub.nedges == 1  # only (0,1); 3 is isolated in the subgraph
        assert vmap.tolist() == [0, 1, 3]

    def test_weights_inherited(self):
        g = from_edge_list(3, [(0, 1), (1, 2)], [7, 8], vwgt=[1, 2, 3])
        sub, _ = extract_subgraph(g, np.array([1, 2]))
        assert sub.vwgt.tolist() == [2, 3]
        assert sub.edge_weight(0, 1) == 8

    def test_order_of_vertices_defines_renumbering(self):
        g = path_graph(3)
        sub, vmap = extract_subgraph(g, np.array([2, 1]))
        assert vmap.tolist() == [2, 1]
        assert sub.has_edge(0, 1)  # old (1,2) renumbered

    def test_coords_sliced(self):
        g = path_graph(3)
        g.coords = np.array([[0.0, 0], [1, 0], [2, 0]])
        sub, _ = extract_subgraph(g, np.array([2, 0]))
        assert np.array_equal(sub.coords, np.array([[2.0, 0], [0, 0]]))

    def test_empty_selection(self):
        g = path_graph(3)
        sub, vmap = extract_subgraph(g, np.array([], dtype=np.int64))
        assert sub.nvtxs == 0
        assert len(vmap) == 0

    def test_full_selection_is_identity(self):
        g = path_graph(4)
        sub, _ = extract_subgraph(g, np.arange(4))
        assert sub.sorted_adjacency() == g.sorted_adjacency()


class TestLargestComponent:
    def test_picks_largest(self):
        # Triangle + single edge.
        g = from_edge_list(5, [(0, 1), (1, 2), (0, 2), (3, 4)])
        sub, vmap = largest_component(g)
        assert sub.nvtxs == 3
        assert sorted(vmap.tolist()) == [0, 1, 2]

    def test_already_connected(self):
        g = path_graph(4)
        sub, vmap = largest_component(g)
        assert sub.nvtxs == 4
        assert sub.sorted_adjacency() == g.sorted_adjacency()
