"""Tests for symbolic factorization (elimination tree, fill, opcounts)."""

import numpy as np
import pytest

from repro.ordering import Ordering, elimination_tree, factor_stats, symbolic_factor
from repro.utils.errors import OrderingError
from tests.conftest import (
    brute_force_fill,
    complete_graph,
    cycle_graph,
    path_graph,
    random_graph,
    star_graph,
)


class TestEliminationTree:
    def test_path_natural_order_is_chain(self):
        g = path_graph(5)
        parent = elimination_tree(g, np.arange(5))
        assert parent.tolist() == [1, 2, 3, 4, -1]

    def test_star_center_last(self):
        g = star_graph(5)  # center 0
        perm = np.array([1, 2, 3, 4, 0])  # leaves first
        parent = elimination_tree(g, perm)
        assert parent.tolist() == [4, 4, 4, 4, -1]

    def test_roots_per_component(self):
        from tests.conftest import two_triangles

        g = two_triangles()
        parent = elimination_tree(g, np.arange(6))
        assert (parent == -1).sum() == 2

    def test_invalid_perm_rejected(self):
        g = path_graph(3)
        with pytest.raises(OrderingError):
            elimination_tree(g, np.array([0, 0, 2]))


class TestSymbolicFactor:
    @pytest.mark.parametrize("seed", range(5))
    def test_counts_match_brute_force(self, seed):
        g = random_graph(25, 0.2, seed=seed)
        rng = np.random.default_rng(seed)
        perm = rng.permutation(g.nvtxs)
        counts, _ = symbolic_factor(g, perm)
        brute_counts, _ = brute_force_fill(g, perm)
        assert np.array_equal(counts, brute_counts)

    def test_path_has_no_fill(self):
        g = path_graph(8)
        counts, _ = symbolic_factor(g, np.arange(8))
        assert counts.sum() == g.nedges  # factor = matrix, zero fill

    def test_star_center_last_no_fill(self):
        g = star_graph(6)
        perm = np.array([1, 2, 3, 4, 5, 0])
        counts, _ = symbolic_factor(g, perm)
        assert counts.sum() == g.nedges

    def test_star_center_first_fills_clique(self):
        g = star_graph(6)
        perm = np.array([0, 1, 2, 3, 4, 5])
        counts, _ = symbolic_factor(g, perm)
        # Eliminating the centre first connects all 5 leaves pairwise.
        assert counts.sum() == g.nedges + 10

    def test_parents_agree_with_elimination_tree(self):
        g = random_graph(30, 0.15, seed=7)
        perm = np.random.default_rng(1).permutation(g.nvtxs)
        _, parent_sym = symbolic_factor(g, perm)
        parent_liu = elimination_tree(g, perm)
        assert np.array_equal(parent_sym, parent_liu)


class TestFactorStats:
    def test_complete_graph_is_order_invariant(self):
        g = complete_graph(6)
        a = factor_stats(g, np.arange(6))
        b = factor_stats(g, np.random.default_rng(0).permutation(6))
        assert a.opcount == b.opcount
        assert a.fill == b.fill == 0

    def test_fill_nonnegative_and_consistent(self):
        g = random_graph(40, 0.1, seed=8)
        perm = np.random.default_rng(2).permutation(g.nvtxs)
        stats = factor_stats(g, perm)
        assert stats.fill >= 0
        assert stats.nnz_factor == stats.fill + g.nedges + g.nvtxs

    def test_path_stats_exact(self):
        g = path_graph(6)
        stats = factor_stats(g, np.arange(6))
        assert stats.fill == 0
        # Column counts 1,1,1,1,1,0 → ops = 5·4 + 1 = 21.
        assert stats.opcount == 5 * 4 + 1
        assert stats.tree_height == 6  # a chain
        assert stats.critical_path_ops == stats.opcount  # fully serial
        assert stats.available_parallelism == pytest.approx(1.0)

    def test_balanced_tree_has_parallelism(self):
        # A star eliminated leaves-first gives a flat tree: height 2.
        g = star_graph(9)
        perm = np.array([1, 2, 3, 4, 5, 6, 7, 8, 0])
        stats = factor_stats(g, perm)
        assert stats.tree_height == 2
        assert stats.available_parallelism > 2

    def test_cycle_natural(self):
        g = cycle_graph(6)
        stats = factor_stats(g, np.arange(6))
        # Eliminating around the cycle creates one fill edge per step
        # except at the ends: counts are 2,2,2,2,1,0.
        assert stats.fill == 3

    def test_better_ordering_fewer_ops(self):
        """Nested-dissection-style ordering of a grid must beat natural."""
        from repro.matrices import grid2d
        from repro.ordering import mlnd_ordering

        g = grid2d(12, 12)
        natural = factor_stats(g, np.arange(g.nvtxs))
        nd = mlnd_ordering(g, rng=np.random.default_rng(0))
        dissected = factor_stats(g, nd.perm)
        assert dissected.opcount < natural.opcount


class TestOrderingRecord:
    def test_from_perm_inverse(self):
        o = Ordering.from_perm([2, 0, 1], "x")
        assert o.iperm.tolist() == [1, 2, 0]
        o.verify()

    def test_identity(self):
        o = Ordering.identity(4)
        assert o.perm.tolist() == [0, 1, 2, 3]
        o.verify()
        assert len(o) == 4

    def test_invalid_perm_rejected(self):
        with pytest.raises(OrderingError):
            Ordering.from_perm([0, 0, 1])

    def test_verify_detects_tampering(self):
        o = Ordering.identity(3)
        o.iperm = np.array([0, 2, 2])
        with pytest.raises(OrderingError):
            o.verify()
