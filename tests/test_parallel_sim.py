"""Tests for the parallel factorization simulator."""

import numpy as np
import pytest

from repro.ordering import (
    factor_stats,
    mlnd_ordering,
    mmd_ordering,
    simulate_parallel_factorization,
)
from tests.conftest import path_graph, star_graph


class TestBasics:
    def test_single_processor_is_serial(self, grid16):
        stats = simulate_parallel_factorization(grid16, np.arange(256), 1)
        assert stats.parallel_time == stats.serial_ops
        assert stats.speedup == pytest.approx(1.0)

    def test_serial_ops_match_factor_stats(self, grid16):
        o = mmd_ordering(grid16)
        sim = simulate_parallel_factorization(grid16, o.perm, 4)
        assert sim.serial_ops == factor_stats(grid16, o.perm).opcount

    def test_speedup_bounded_by_processors(self, grid16):
        o = mlnd_ordering(grid16, rng=np.random.default_rng(0))
        for p in (2, 4, 8):
            sim = simulate_parallel_factorization(grid16, o.perm, p)
            assert 1.0 <= sim.speedup <= p + 1e-9
            assert sim.efficiency == pytest.approx(sim.speedup / p)

    def test_speedup_monotone_in_processors(self, grid16):
        o = mlnd_ordering(grid16, rng=np.random.default_rng(1))
        speeds = [
            simulate_parallel_factorization(grid16, o.perm, p).speedup
            for p in (1, 2, 4, 8)
        ]
        assert all(b >= a - 1e-9 for a, b in zip(speeds, speeds[1:]))

    def test_chain_has_no_parallelism(self):
        """A path ordered along itself is one long dependence chain: the
        only parallelism left is inside each (width-2) column, so the
        speedup is capped near 2 regardless of processor count."""
        g = path_graph(64)
        sim = simulate_parallel_factorization(g, np.arange(64), 8)
        assert sim.speedup < 2.5

    def test_flat_tree_parallelises(self):
        """A star ordered leaves-first is embarrassingly parallel."""
        g = star_graph(129)
        perm = np.concatenate([np.arange(1, 129), [0]])
        sim = simulate_parallel_factorization(g, perm, 8)
        assert sim.speedup > 4.0

    def test_invalid_processors(self, grid16):
        with pytest.raises(ValueError):
            simulate_parallel_factorization(grid16, np.arange(256), 0)

    def test_empty_graph(self):
        from repro.graph import from_edge_list

        sim = simulate_parallel_factorization(from_edge_list(0, []), [], 4)
        assert sim.serial_ops == 0


class TestPaperClaim:
    def test_mlnd_more_concurrent_than_mmd(self):
        """§4.3: nested-dissection orderings expose more concurrency than
        minimum-degree orderings on FE meshes."""
        from repro.matrices import fe_tet3d

        g = fe_tet3d(900, seed=3)
        nd = mlnd_ordering(g, rng=np.random.default_rng(2))
        md = mmd_ordering(g)
        p = 16
        s_nd = simulate_parallel_factorization(g, nd.perm, p)
        s_md = simulate_parallel_factorization(g, md.perm, p)
        assert s_nd.speedup > s_md.speedup
