"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.graph import write_graph
from repro.matrices import grid2d


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "grid.graph"
    write_graph(grid2d(10, 10), path)
    return str(path)


class TestPartition:
    def test_basic(self, graph_file, capsys):
        assert main(["partition", graph_file, "4"]) == 0
        out = capsys.readouterr().out
        assert "edge-cut:" in out
        assert "balance:" in out

    def test_writes_partition_vector(self, graph_file, tmp_path, capsys):
        out_file = tmp_path / "part.txt"
        assert main(["partition", graph_file, "4", "-o", str(out_file)]) == 0
        vec = np.loadtxt(out_file, dtype=int)
        assert len(vec) == 100
        assert set(np.unique(vec)) == {0, 1, 2, 3}

    def test_report_flag(self, graph_file, capsys):
        assert main(["partition", graph_file, "4", "--report"]) == 0
        out = capsys.readouterr().out
        assert "commvol:" in out
        assert "max halo:" in out

    def test_kway_refine_flag(self, graph_file, capsys):
        assert main(["partition", graph_file, "4", "--kway-refine"]) == 0
        out = capsys.readouterr().out
        assert "edge-cut:" in out

    def test_scheme_flags(self, graph_file, capsys):
        assert main([
            "partition", graph_file, "2",
            "--matching", "rm", "--initial", "ggp", "--refinement", "klr",
            "--seed", "7",
        ]) == 0

    def test_deterministic_output(self, graph_file, capsys):
        def quality_lines(text):
            return [ln for ln in text.splitlines()
                    if ln.startswith(("edge-cut", "balance"))]

        main(["partition", graph_file, "4", "--seed", "5"])
        first = quality_lines(capsys.readouterr().out)
        main(["partition", graph_file, "4", "--seed", "5"])
        second = quality_lines(capsys.readouterr().out)
        assert first == second and first


class TestOrder:
    @pytest.mark.parametrize("method", ["mlnd", "mmd", "snd"])
    def test_methods(self, graph_file, capsys, method):
        assert main(["order", graph_file, "--method", method]) == 0
        out = capsys.readouterr().out
        assert "opcount:" in out
        assert f"method:       {method}" in out

    def test_writes_perm(self, graph_file, tmp_path, capsys):
        out_file = tmp_path / "perm.txt"
        assert main(["order", graph_file, "-o", str(out_file)]) == 0
        perm = np.loadtxt(out_file, dtype=int)
        assert sorted(perm.tolist()) == list(range(100))


class TestGenerate:
    def test_generates_readable_graph(self, tmp_path, capsys):
        out_file = tmp_path / "gen.graph"
        assert main(["generate", "BCSPWR10", str(out_file), "--scale", "0.1"]) == 0
        assert main(["info", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "vertices:" in out


class TestInfo:
    def test_info_on_file(self, graph_file, capsys):
        assert main(["info", graph_file]) == 0
        out = capsys.readouterr().out
        assert "vertices:   100" in out
        assert "components: 1" in out

    def test_suite_listing(self, capsys):
        assert main(["info", "--suite"]) == 0
        out = capsys.readouterr().out
        assert "BCSSTK31" in out and "MEMPLUS" in out

    def test_info_without_args_errors(self, capsys):
        assert main(["info"]) == 2

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
