"""Tests for process-parallel recursive bisection (repro.perf.workers).

The contract is strict: ``workers=N`` must be *bit-identical* to
``workers=1`` for every driver entry — the RNG tree is pre-spawned per
branch before any branch runs, so fanning branches across a process pool
changes only where the arithmetic happens, never its result.
"""

import numpy as np
import pytest

from repro.core import partition
from repro.core.options import DEFAULT_OPTIONS
from repro.matrices import grid2d, grid3d
from repro.ordering import mlnd_ordering
from repro.perf.workers import (
    WORKERS_ENV,
    fan_depth_for,
    resolve_workers,
)
from repro.utils.errors import ConfigurationError


class TestResolveWorkers:
    def test_default_is_sequential(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers(DEFAULT_OPTIONS) == 1
        assert resolve_workers(None) == 1

    def test_options_take_precedence_over_env(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "8")
        assert resolve_workers(DEFAULT_OPTIONS.with_(workers=2)) == 2

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "3")
        assert resolve_workers(DEFAULT_OPTIONS) == 3

    @pytest.mark.parametrize("raw", ["0", "-2", "two"])
    def test_bad_env_rejected(self, monkeypatch, raw):
        monkeypatch.setenv(WORKERS_ENV, raw)
        with pytest.raises(ConfigurationError):
            resolve_workers(DEFAULT_OPTIONS)

    def test_options_validate_workers(self):
        with pytest.raises(ConfigurationError):
            DEFAULT_OPTIONS.with_(workers=0)


class TestFanDepth:
    def test_depths(self):
        assert fan_depth_for(1) == 0
        assert fan_depth_for(2) == 1
        assert fan_depth_for(3) == 2
        assert fan_depth_for(4) == 2
        assert fan_depth_for(8) == 3


MESHES = {
    "mesh2d": lambda: grid2d(24, 23),
    "mesh3d": lambda: grid3d(9, 8, 8),
}


@pytest.mark.parametrize("name", MESHES, ids=MESHES.keys())
class TestBitIdentity:
    def test_partition_workers_identical(self, name):
        graph = MESHES[name]()
        results = {}
        for workers in (1, 2):
            options = DEFAULT_OPTIONS.with_(workers=workers)
            results[workers] = partition(
                graph, 5, options, np.random.default_rng(7)
            )
        assert np.array_equal(results[1].where, results[2].where)
        assert results[1].cut == results[2].cut

    def test_mlnd_workers_identical(self, name):
        graph = MESHES[name]()
        perms = {}
        for workers in (1, 2):
            options = DEFAULT_OPTIONS.with_(workers=workers)
            perms[workers] = mlnd_ordering(
                graph, options, np.random.default_rng(13)
            ).perm
        assert np.array_equal(perms[1], perms[2])

    def test_env_selected_workers_identical(self, name, monkeypatch):
        graph = MESHES[name]()
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        base = partition(graph, 4, DEFAULT_OPTIONS, np.random.default_rng(3))
        monkeypatch.setenv(WORKERS_ENV, "2")
        fanned = partition(graph, 4, DEFAULT_OPTIONS, np.random.default_rng(3))
        assert np.array_equal(base.where, fanned.where)


class TestParallelAccounting:
    def test_timers_and_resilience_survive_fanout(self):
        graph = grid2d(20, 20)
        options = DEFAULT_OPTIONS.with_(workers=2)
        result = partition(graph, 4, options, np.random.default_rng(5))
        # Branch phase timers are merged back into the parent's totals.
        assert result.timers.get("CTime", 0.0) >= 0.0
        assert sum(result.timers.values()) > 0.0
        assert result.resilience is not None
