"""Tests for :mod:`repro.kernels` — registry, fallback, and equivalence.

Three layers of guarantees, from strongest to weakest:

* **bit-exactness** — the ``loop`` backend must reproduce the pre-registry
  pipeline byte for byte (golden cuts/hashes pinned below), and the
  ``vectorized``/``numba`` contraction and the ``numba`` HEM/LEM/HCM
  matching must be bit-identical to ``loop``;
* **move-for-move identity** — the jitted k-way sweep applies exactly the
  moves the Python sweep applies;
* **semantic equivalence** — backends whose tie-breaks legitimately differ
  (RM matching, the bucket-array FM pass) must still satisfy the same
  oracles: valid maximal matchings, exact cut accounting, balance.

The cross-backend sweep runs the full pipeline over a slice of the
:mod:`repro.matrices` suite with the sanitizer active for every backend, so
phase-boundary invariants are checked under each dispatch path.
"""

import hashlib
import os
import time

import numpy as np
import pytest

import repro.kernels as kernels_mod
from repro.core.kway import partition
from repro.core.kway_refine import _python_sweep
from repro.core.matching import (
    compute_matching,
    is_maximal_matching,
    is_valid_matching,
    loop_matching,
)
from repro.core.multilevel import bisect
from repro.core.options import DEFAULT_OPTIONS, MatchingScheme
from repro.core.refine import fm_pass
from repro.graph.contract import contract
from repro.graph.partition import edge_cut
from repro.kernels import (
    PHASES,
    KernelSelection,
    kway_kernel,
    matching_kernel_for,
    numba_available,
    register_backend,
    resolve_kernels,
)
from repro.kernels import numba_backend, vec_backend
from repro.matrices import load
from repro.matrices.mesh2d import grid2d
from repro.matrices.mesh3d import fe_tet3d
from repro.obs import read_trace
from repro.utils.errors import ConfigurationError


def _where_hash(where):
    return hashlib.sha256(
        np.asarray(where, dtype=np.int64).tobytes()
    ).hexdigest()[:16]


def _graphs_identical(a, b):
    return (
        np.array_equal(a.xadj, b.xadj)
        and np.array_equal(a.adjncy, b.adjncy)
        and np.array_equal(a.adjwgt, b.adjwgt)
        and np.array_equal(a.vwgt, b.vwgt)
    )


@pytest.fixture
def clean_registry(monkeypatch):
    """Snapshot the backend registry so tests may register throwaways."""
    monkeypatch.setattr(kernels_mod, "_BACKENDS", dict(kernels_mod._BACKENDS))
    monkeypatch.setattr(kernels_mod, "_KERNEL_CACHE", {})
    yield


class TestResolution:
    """Backend selection: precedence, fallback chains, errors."""

    def test_default_is_loop_everywhere(self):
        sel = resolve_kernels(None, env={})
        assert sel.requested == "loop"
        for phase in PHASES:
            assert sel.backend(phase) == "loop"
        assert sel.as_dict() == {
            "requested": "loop", "matching": "loop", "fm": "loop",
            "contract": "loop",
        }

    def test_env_knob_selects_backend(self):
        sel = resolve_kernels(None, env={"REPRO_KERNELS": "vectorized"})
        assert sel.requested == "vectorized"
        assert sel.backend("matching") == "vectorized"
        assert sel.backend("contract") == "vectorized"

    def test_options_beat_env(self):
        options = DEFAULT_OPTIONS.with_(kernels="loop")
        sel = resolve_kernels(options, env={"REPRO_KERNELS": "vectorized"})
        assert sel.requested == "loop"
        assert sel.backend("matching") == "loop"

    def test_legacy_matching_impl_is_matching_only(self):
        options = DEFAULT_OPTIONS.with_(matching_impl="vectorized")
        sel = resolve_kernels(options, env={})
        assert sel.backend("matching") == "vectorized"
        assert sel.backend("fm") == "loop"
        assert sel.backend("contract") == "loop"

    def test_vectorized_falls_back_to_loop_for_fm(self):
        sel = resolve_kernels(None, env={"REPRO_KERNELS": "vectorized"})
        assert sel.backend("fm") == "loop"
        fallbacks = sel.as_dict().get("fallbacks", {})
        assert "fm" in fallbacks

    def test_numba_unavailable_degrades_transparently(self):
        if numba_available():
            pytest.skip("numba installed: the degradation path is inert")
        sel = resolve_kernels(None, env={"REPRO_KERNELS": "numba"})
        assert sel.requested == "numba"
        # numba → vectorized for matching/contract, → loop for fm.
        assert sel.backend("matching") == "vectorized"
        assert sel.backend("contract") == "vectorized"
        assert sel.backend("fm") == "loop"
        fallbacks = sel.as_dict()["fallbacks"]
        assert set(fallbacks) == set(PHASES)
        for reason in fallbacks.values():
            assert "unavailable" in reason

    def test_numba_selected_when_available(self):
        if not numba_available():
            pytest.skip("numba not installed")
        sel = resolve_kernels(None, env={"REPRO_KERNELS": "numba"})
        for phase in PHASES:
            assert sel.backend(phase) == "numba"
        assert "fallbacks" not in sel.as_dict()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_kernels(None, env={"REPRO_KERNELS": "simd"})
        with pytest.raises(ConfigurationError):
            DEFAULT_OPTIONS.with_(kernels="simd").validate()
        with pytest.raises(ConfigurationError):
            matching_kernel_for("simd")

    def test_kway_kernel_only_for_numba(self):
        assert kway_kernel(resolve_kernels(None, env={})) is None
        sel = resolve_kernels(None, env={"REPRO_KERNELS": "vectorized"})
        assert kway_kernel(sel) is None
        numba_sel = resolve_kernels(None, env={"REPRO_KERNELS": "numba"})
        if numba_available():
            assert kway_kernel(numba_sel) is not None
        else:
            assert kway_kernel(numba_sel) is None

    def test_selection_is_immutable_metadata(self):
        sel = resolve_kernels(None, env={})
        assert isinstance(sel, KernelSelection)
        d1, d2 = sel.as_dict(), sel.as_dict()
        assert d1 == d2 and d1 is not d2  # fresh dict each call

    def test_register_backend_extends_chain(self, clean_registry):
        calls = []

        def fake_matching(graph, scheme, rng=None, cewgt=None):
            calls.append(graph.nvtxs)
            return loop_matching(graph, scheme, rng, cewgt)

        register_backend(
            "test-fake", {"matching": lambda: fake_matching},
            fallback="loop",
        )
        sel = resolve_kernels(None, env={"REPRO_KERNELS": "test-fake"})
        assert sel.backend("matching") == "test-fake"
        assert sel.backend("fm") == "loop"  # chain fills the gap
        g = grid2d(6, 6)
        sel.kernel("matching")(g, MatchingScheme.HEM, np.random.default_rng(0))
        assert calls == [36]

    def test_probe_gates_registration(self, clean_registry):
        register_backend(
            "test-gated", {"matching": lambda: loop_matching},
            probe=lambda: False, fallback="loop",
        )
        sel = resolve_kernels(None, env={"REPRO_KERNELS": "test-gated"})
        assert sel.backend("matching") == "loop"
        assert "matching" in sel.as_dict()["fallbacks"]


# Golden values captured from the pre-registry pipeline (PR 6 tree).  The
# ``loop`` backend is the bit-exact reference: any drift here means the
# refactor changed the default numerics, which is a regression by contract.
_GOLDEN_4ELT_CUT = 239
_GOLDEN_4ELT_PWGTS = [105, 100, 94, 98, 94, 100, 107, 102]
_GOLDEN_4ELT_BISECT = (48, "e6893ab610dab3c8")
_GOLDEN_BC31_CUT = 7553
_GOLDEN_BC31_PWGTS = [142, 144, 129, 139, 130, 130, 133, 133]
_GOLDEN_BC31_BISECT = (2636, "462ff37deb9d9719")


class TestLoopGolden:
    """The default (loop) pipeline is bit-identical to the pre-PR output."""

    def test_4elt_partition(self):
        g = load("4ELT", scale=0.2, seed=0)
        p = partition(g, 8, DEFAULT_OPTIONS, np.random.default_rng(1995))
        assert p.cut == _GOLDEN_4ELT_CUT
        assert list(p.pwgts) == _GOLDEN_4ELT_PWGTS

    def test_4elt_bisect_where_hash(self):
        g = load("4ELT", scale=0.2, seed=0)
        r = bisect(g, DEFAULT_OPTIONS, np.random.default_rng(7))
        cut, digest = _GOLDEN_4ELT_BISECT
        assert r.bisection.cut == cut
        assert _where_hash(r.bisection.where) == digest

    def test_bcsstk31_partition(self):
        g = load("BCSSTK31", scale=0.3, seed=0)
        p = partition(g, 8, DEFAULT_OPTIONS, np.random.default_rng(1995))
        assert p.cut == _GOLDEN_BC31_CUT
        assert list(p.pwgts) == _GOLDEN_BC31_PWGTS

    def test_bcsstk31_bisect_where_hash(self):
        g = load("BCSSTK31", scale=0.3, seed=0)
        r = bisect(g, DEFAULT_OPTIONS, np.random.default_rng(7))
        cut, digest = _GOLDEN_BC31_BISECT
        assert r.bisection.cut == cut
        assert _where_hash(r.bisection.where) == digest

    def test_grid_scheme_variants(self):
        g = grid2d(40, 30)
        p = partition(
            g, 5, DEFAULT_OPTIONS.with_(matching="rm"),
            np.random.default_rng(3),
        )
        assert p.cut == 121
        p = partition(
            g, 5, DEFAULT_OPTIONS.with_(matching="hcm", gain_table="bucket"),
            np.random.default_rng(3),
        )
        assert p.cut == 101

    def test_explicit_loop_request_matches_default(self):
        g = load("4ELT", scale=0.2, seed=0)
        p = partition(
            g, 8, DEFAULT_OPTIONS.with_(kernels="loop"),
            np.random.default_rng(1995),
        )
        assert p.cut == _GOLDEN_4ELT_CUT


def _backends_under_test():
    backends = ["loop", "vectorized"]
    if numba_available():
        backends.append("numba")
    return backends


class TestCrossBackendSweep:
    """Full-pipeline equivalence over a slice of the matrices suite.

    Every backend runs under the sanitizer, so degree/cut/partition-vector
    invariants are recomputed from scratch at each phase boundary; the test
    then re-verifies the reported cut against :func:`edge_cut` and checks
    balance.  Backends may differ in cut (tie-breaks), but none may be
    invalid.
    """

    SWEEP = [
        ("4ELT", 0.12),
        ("BCSSTK33", 0.12),
        ("LSHP3466", 0.3),
        ("MEMPLUS", 0.1),
    ]

    @pytest.mark.parametrize("name,scale", SWEEP)
    @pytest.mark.parametrize("backend", _backends_under_test())
    def test_pipeline_valid_per_backend(self, name, scale, backend):
        g = load(name, scale=scale, seed=0)
        options = DEFAULT_OPTIONS.with_(kernels=backend, sanitize=True)
        p = partition(g, 4, options, np.random.default_rng(42))
        assert p.cut == edge_cut(g, p.where)
        assert int(p.pwgts.sum()) == int(g.vwgt.sum())
        assert p.pwgts.min() > 0
        # Recursive-bisection balance: within the compounded tolerance.
        assert p.pwgts.max() <= np.ceil(
            float(DEFAULT_OPTIONS.ubfactor) ** 2 * g.vwgt.sum() / 4
        )

    @pytest.mark.parametrize("name,scale", SWEEP)
    def test_backends_are_deterministic(self, name, scale):
        g = load(name, scale=scale, seed=0)
        for backend in _backends_under_test():
            options = DEFAULT_OPTIONS.with_(kernels=backend)
            a = bisect(g, options, np.random.default_rng(11))
            b = bisect(g, options, np.random.default_rng(11))
            assert a.bisection.cut == b.bisection.cut, backend
            assert np.array_equal(a.bisection.where, b.bisection.where), backend

    def test_env_knob_reaches_pipeline(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "vectorized")
        g = grid2d(24, 24)
        r = bisect(g, DEFAULT_OPTIONS, np.random.default_rng(5))
        assert r.kernels["requested"] == "vectorized"
        assert r.kernels["matching"] == "vectorized"


class TestContractBackends:
    """Both alternative contraction kernels are bit-identical to reference."""

    def _cases(self):
        rng = np.random.default_rng(0)
        for g in (grid2d(17, 13), fe_tet3d(400, 3), load("4ELT", scale=0.1)):
            for seed in (0, 1):
                match = loop_matching(
                    g, MatchingScheme.HEM, np.random.default_rng(seed)
                )
                cmap = np.full(g.nvtxs, -1, dtype=np.int64)
                nxt = 0
                for v in range(g.nvtxs):
                    if cmap[v] < 0:
                        cmap[v] = cmap[match[v]] = nxt
                        nxt += 1
                yield g, cmap, nxt
        del rng

    def test_vectorized_bit_identical(self):
        for g, cmap, ncoarse in self._cases():
            ref = contract(g, cmap, ncoarse)
            vec = vec_backend.contract_vectorized(g, cmap, ncoarse)
            assert _graphs_identical(ref, vec)

    def test_numba_bit_identical(self):
        for g, cmap, ncoarse in self._cases():
            ref = contract(g, cmap, ncoarse)
            nb = numba_backend.contract_numba(g, cmap, ncoarse)
            assert _graphs_identical(ref, nb)


class TestMatchingBackends:
    """Jitted matching: bit-identical for deterministic schemes, oracle-
    equivalent for RM (whose uniform draws differ from the loop's)."""

    GRAPHS = [grid2d(20, 15), fe_tet3d(500, 7)]

    @pytest.mark.parametrize(
        "scheme", [MatchingScheme.HEM, MatchingScheme.LEM, MatchingScheme.HCM]
    )
    def test_deterministic_schemes_bit_identical(self, scheme):
        for g in self.GRAPHS:
            for seed in (0, 3):
                ref = loop_matching(g, scheme, np.random.default_rng(seed))
                nb = numba_backend.matching_numba(
                    g, scheme, np.random.default_rng(seed)
                )
                assert np.array_equal(ref, nb)

    def test_rm_valid_and_maximal(self):
        for g in self.GRAPHS:
            nb = numba_backend.matching_numba(
                g, MatchingScheme.RM, np.random.default_rng(2)
            )
            assert is_valid_matching(g, nb)
            assert is_maximal_matching(g, nb)

    def test_vectorized_valid_and_maximal(self):
        for g in self.GRAPHS:
            for scheme in MatchingScheme:
                m = vec_backend.vectorized_matching(
                    g, scheme, np.random.default_rng(1)
                )
                assert is_valid_matching(g, m)
                assert is_maximal_matching(g, m)

    def test_compute_matching_accepts_numba_impl(self):
        g = grid2d(10, 10)
        m = compute_matching(
            g, MatchingScheme.HEM, np.random.default_rng(0), impl="numba"
        )
        assert is_valid_matching(g, m)


class TestKwaySweepBackend:
    def test_move_for_move_identical(self):
        g = load("4ELT", scale=0.15, seed=0)
        k = 6
        rng = np.random.default_rng(9)
        where_py = rng.integers(0, k, size=g.nvtxs).astype(np.int32)
        where_nb = where_py.copy()
        pwgts_py = np.bincount(
            where_py, weights=g.vwgt, minlength=k
        ).astype(np.int64)
        pwgts_nb = pwgts_py.copy()
        maxpwgt = int(np.ceil(1.05 * g.vwgt.sum() / k))
        order = rng.permutation(g.nvtxs)

        moved_py, gain_py = _python_sweep(
            g, where_py, pwgts_py, maxpwgt, k, order
        )
        moved_nb, gain_nb = numba_backend.kway_sweep_numba(
            g, where_nb, pwgts_nb, maxpwgt, k, order
        )
        assert (moved_py, gain_py) == (moved_nb, gain_nb)
        assert np.array_equal(where_py, where_nb)
        assert np.array_equal(pwgts_py, pwgts_nb)
        assert moved_py > 0 and gain_py > 0


class TestFMNumba:
    """The bucket-array FM pass: exact accounting, never worse than start."""

    def _setup(self, g, seed):
        rng = np.random.default_rng(seed)
        where = (rng.random(g.nvtxs) < 0.5).astype(np.int32)
        pwgts = np.array(
            [int(g.vwgt[where == 0].sum()), int(g.vwgt[where == 1].sum())],
            dtype=np.int64,
        )
        total = int(g.vwgt.sum())
        half = total // 2
        maxpwgt = (int(np.ceil(1.05 * half)), int(np.ceil(1.05 * half)))
        return where, pwgts, maxpwgt, edge_cut(g, where)

    def test_cut_accounting_is_exact(self):
        g = grid2d(30, 25)
        where, pwgts, maxpwgt, cut = self._setup(g, 4)
        new_cut, improvement = numba_backend.fm_pass_numba(
            g, where, pwgts, maxpwgt, cut,
            boundary_only=False, early_exit=50,
        )
        assert new_cut == edge_cut(g, where)
        assert new_cut <= cut
        assert improvement >= 0
        assert pwgts[0] == int(g.vwgt[where == 0].sum())
        assert pwgts[1] == int(g.vwgt[where == 1].sum())

    def test_converges_comparably_to_reference(self):
        g = grid2d(30, 25)
        for impl in (fm_pass, numba_backend.fm_pass_numba):
            where, pwgts, maxpwgt, cut = self._setup(g, 4)
            for _ in range(12):
                cut, improvement = impl(
                    g, where, pwgts, maxpwgt, cut,
                    boundary_only=False, early_exit=50,
                )
                if improvement == 0:
                    break
            assert cut == edge_cut(g, where)
            # A random split of a 30×25 grid cuts ~half the edges; any
            # competent FM should land well under a quarter of that.
            assert cut < 300
            assert max(pwgts) <= max(maxpwgt)

    def test_respects_sanitizer(self):
        from repro.analysis.sanitize import Sanitizer

        g = grid2d(20, 20)
        where, pwgts, maxpwgt, cut = self._setup(g, 1)
        new_cut, _ = numba_backend.fm_pass_numba(
            g, where, pwgts, maxpwgt, cut,
            boundary_only=False, early_exit=50, san=Sanitizer(),
        )
        assert new_cut == edge_cut(g, where)


class TestResultMetadata:
    """Kernel decisions surface in results and trace spans."""

    def test_result_records_loop_selection(self):
        r = bisect(grid2d(16, 16), DEFAULT_OPTIONS, np.random.default_rng(0))
        assert r.kernels == {
            "requested": "loop", "matching": "loop", "fm": "loop",
            "contract": "loop",
        }

    def test_result_records_fallbacks(self):
        options = DEFAULT_OPTIONS.with_(kernels="vectorized")
        r = bisect(grid2d(16, 16), options, np.random.default_rng(0))
        assert r.kernels["requested"] == "vectorized"
        assert r.kernels["matching"] == "vectorized"
        assert r.kernels["fm"] == "loop"
        assert "fm" in r.kernels["fallbacks"]

    def test_spans_carry_kernel_fields(self, tmp_path):
        trace = str(tmp_path / "trace.jsonl")
        options = DEFAULT_OPTIONS.with_(kernels="vectorized", trace=trace)
        bisect(grid2d(16, 16), options, np.random.default_rng(0))
        spans = [r for r in read_trace(trace) if r["t"] == "span"]
        coarsen_spans = [s for s in spans if s["name"] == "coarsen"]
        refine_spans = [s for s in spans if s["name"] == "refine"]
        assert coarsen_spans and refine_spans
        for s in coarsen_spans:
            assert s["fields"]["matching_kernel"] == "vectorized"
            assert s["fields"]["contract_kernel"] == "vectorized"
            assert "fm" in s["fields"]["kernel_fallbacks"]
        for s in refine_spans:
            assert s["fields"]["kernel"] == "loop"  # vectorized has no fm


@pytest.mark.perf
@pytest.mark.skipif(
    not numba_available(), reason="numba not installed: no jitted FM to time"
)
class TestNumbaSpeedup:
    """Acceptance: ≥5× on the FM-dominated refinement of a large grid."""

    def test_fm_pass_speedup(self):
        g = grid2d(320, 320)
        rng = np.random.default_rng(0)
        where0 = (rng.random(g.nvtxs) < 0.5).astype(np.int32)
        total = int(g.vwgt.sum())
        maxpwgt = (
            int(np.ceil(1.05 * total / 2)), int(np.ceil(1.05 * total / 2)),
        )

        def run(impl):
            where = where0.copy()
            pwgts = np.array(
                [int(g.vwgt[where == 0].sum()),
                 int(g.vwgt[where == 1].sum())],
                dtype=np.int64,
            )
            cut = edge_cut(g, where)
            t0 = time.perf_counter()
            cut, _ = impl(
                g, where, pwgts, maxpwgt, cut,
                boundary_only=False, early_exit=100,
            )
            return time.perf_counter() - t0, cut

        # Warm the JIT outside the timed region.
        run(numba_backend.fm_pass_numba)
        t_numba, cut_numba = run(numba_backend.fm_pass_numba)
        t_loop, cut_loop = run(fm_pass)
        assert cut_numba < edge_cut(g, where0)
        assert t_loop / t_numba >= 5.0, (t_loop, t_numba)
