"""Tests for the whole-program project model and call graph
(``repro.analysis.project``, ``repro.analysis.callgraph``)."""

import ast
import time
from pathlib import Path

import pytest

from repro.analysis.callgraph import build_call_graph
from repro.analysis.engine import discover_python_files, lint_paths
from repro.analysis.project import build_project

REPO_ROOT = Path(__file__).resolve().parents[1]


def _tree(tmp_path, files):
    for rel, source in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    files_list, roots = discover_python_files([tmp_path / "pkg"])
    return build_project(files_list, roots)


class TestProjectModel:
    def test_dotted_module_names_without_init_markers(self, tmp_path):
        project = _tree(
            tmp_path,
            {
                "pkg/core/kway.py": "def go():\n    return 1\n",
                "pkg/top.py": "X = 1\n",
            },
        )
        assert set(project.modules) == {"pkg.core.kway", "pkg.top"}
        assert "pkg.core.kway.go" in project.functions

    def test_nested_functions_and_methods_registered(self, tmp_path):
        project = _tree(
            tmp_path,
            {
                "pkg/mod.py": (
                    "def outer():\n"
                    "    def inner():\n"
                    "        return 0\n"
                    "    return inner\n"
                    "\n"
                    "\n"
                    "class C:\n"
                    "    def method(self):\n"
                    "        return 1\n"
                ),
            },
        )
        assert "pkg.mod.outer" in project.functions
        assert "pkg.mod.outer.inner" in project.functions
        assert "pkg.mod.C.method" in project.functions
        assert project.functions["pkg.mod.outer"].children == (
            "pkg.mod.outer.inner",
        )

    def test_defaults_and_params_recorded(self, tmp_path):
        project = _tree(
            tmp_path,
            {
                "pkg/mod.py": "def f(a, rng=None, *, k=2):\n    return a\n",
            },
        )
        info = project.functions["pkg.mod.f"]
        assert info.params == ("a", "rng", "k")
        assert isinstance(info.defaults["rng"], ast.Constant)
        assert info.defaults["rng"].value is None

    def test_import_resolution_across_modules(self, tmp_path):
        project = _tree(
            tmp_path,
            {
                "pkg/a.py": "def helper():\n    return 1\n",
                "pkg/b.py": (
                    "from pkg.a import helper\n"
                    "\n"
                    "\n"
                    "def run():\n"
                    "    return helper()\n"
                ),
            },
        )
        graph = build_call_graph(project)
        assert "pkg.a.helper" in graph.edges.get("pkg.b.run", set())

    def test_reexport_chain_resolves(self, tmp_path):
        project = _tree(
            tmp_path,
            {
                "pkg/__init__.py": "from pkg.impl import helper\n\n__all__ = ['helper']\n",
                "pkg/impl.py": "def helper():\n    return 1\n",
                "pkg/user.py": (
                    "import pkg\n"
                    "\n"
                    "\n"
                    "def run():\n"
                    "    return pkg.helper()\n"
                ),
            },
        )
        info = project.resolve_dotted("pkg.helper")
        assert info is not None and info.qualname == "pkg.impl.helper"
        graph = build_call_graph(project)
        assert "pkg.impl.helper" in graph.edges.get("pkg.user.run", set())

    def test_syntax_error_lands_in_errors(self, tmp_path):
        project = _tree(tmp_path, {"pkg/bad.py": "def f(:\n"})
        assert len(project.errors) == 1
        assert "syntax error" in project.errors[0][3]


class TestCallGraph:
    def test_submit_target_is_worker_entry(self, tmp_path):
        project = _tree(
            tmp_path,
            {
                "pkg/core/jobs.py": (
                    "def _branch_job(graph):\n"
                    "    return helper(graph)\n"
                    "\n"
                    "\n"
                    "def helper(graph):\n"
                    "    return graph\n"
                    "\n"
                    "\n"
                    "def drive(par, graph):\n"
                    "    par.submit(_branch_job, graph)\n"
                ),
            },
        )
        graph = build_call_graph(project)
        assert "pkg.core.jobs._branch_job" in graph.worker_entries
        reach = graph.worker_reachable()
        assert "pkg.core.jobs.helper" in reach

    def test_partial_target_is_worker_entry(self, tmp_path):
        project = _tree(
            tmp_path,
            {
                "pkg/core/jobs.py": (
                    "from functools import partial\n"
                    "\n"
                    "\n"
                    "def job(graph, opts):\n"
                    "    return graph\n"
                    "\n"
                    "\n"
                    "def drive(graph):\n"
                    "    return partial(job, opts=1)\n"
                ),
            },
        )
        graph = build_call_graph(project)
        assert "pkg.core.jobs.job" in graph.worker_entries

    def test_entry_path_trace(self, tmp_path):
        project = _tree(
            tmp_path,
            {
                "pkg/mod.py": (
                    "def leaf():\n"
                    "    return 0\n"
                    "\n"
                    "\n"
                    "def mid():\n"
                    "    return leaf()\n"
                    "\n"
                    "\n"
                    "def entry():\n"
                    "    return mid()\n"
                ),
            },
        )
        graph = build_call_graph(project)
        assert graph.display_path("pkg.mod.leaf") == ["entry", "mid", "leaf"]


class TestParseOnce:
    def test_each_module_parsed_exactly_once(self, tmp_path, monkeypatch):
        files = {
            f"pkg/m{i}.py": f"def f{i}():\n    return {i}\n" for i in range(5)
        }
        for rel, source in files.items():
            target = tmp_path / rel
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(source)
        parsed = []
        real_parse = ast.parse

        def counting_parse(source, filename="<unknown>", *args, **kwargs):
            if str(filename).endswith(".py"):
                parsed.append(str(filename))
            return real_parse(source, filename, *args, **kwargs)

        monkeypatch.setattr(ast, "parse", counting_parse)
        lint_paths([tmp_path / "pkg"])
        py_parses = [p for p in parsed if f"{tmp_path}" in p]
        assert len(py_parses) == len(files)
        assert len(set(py_parses)) == len(py_parses)

    def test_full_tree_lint_under_three_seconds(self):
        t0 = time.perf_counter()
        lint_paths([REPO_ROOT / "src" / "repro"], paper=REPO_ROOT / "PAPER.md")
        elapsed = time.perf_counter() - t0
        assert elapsed < 3.0, f"full-tree lint took {elapsed:.2f}s"
