"""Tests for the parallel-formulation substrate (coloring, handshake
matching, level statistics, the α–β speedup model)."""

import numpy as np
import pytest

from repro.core.matching import is_maximal_matching, is_valid_matching
from repro.parallel import (
    MachineParameters,
    collect_level_stats,
    estimate_parallel_speedup,
    greedy_coloring,
    handshake_matching_rounds,
    is_proper_coloring,
    luby_coloring,
)
from repro.parallel.coloring import num_colors
from repro.parallel.model import scale_levels, speedup_curve
from tests.conftest import complete_graph, cycle_graph, path_graph, random_graph


class TestColoring:
    @pytest.mark.parametrize(
        "graph",
        [path_graph(30), cycle_graph(9), complete_graph(6),
         random_graph(80, 0.1, seed=1)],
        ids=["path", "odd-cycle", "clique", "random"],
    )
    def test_luby_proper(self, graph):
        color = luby_coloring(graph, np.random.default_rng(0))
        assert is_proper_coloring(graph, color)

    def test_luby_color_count_reasonable(self):
        g = random_graph(100, 0.08, seed=2)
        color = luby_coloring(g, np.random.default_rng(0))
        max_deg = int(g.degrees().max())
        assert num_colors(color) <= 2 * (max_deg + 1)

    def test_greedy_proper_and_bounded(self):
        g = random_graph(80, 0.1, seed=3)
        color = greedy_coloring(g)
        assert is_proper_coloring(g, color)
        assert num_colors(color) <= int(g.degrees().max()) + 1

    def test_clique_needs_n_colors(self):
        g = complete_graph(7)
        assert num_colors(greedy_coloring(g)) == 7
        assert num_colors(luby_coloring(g, np.random.default_rng(0))) == 7

    def test_improper_detected(self):
        g = path_graph(3)
        assert not is_proper_coloring(g, np.array([0, 0, 1]))
        assert not is_proper_coloring(g, np.array([0, -1, 0]))

    def test_empty_graph(self):
        from repro.graph import from_edge_list

        g = from_edge_list(0, [])
        assert len(luby_coloring(g)) == 0


class TestHandshakeMatching:
    def test_uncapped_reaches_maximal(self):
        g = random_graph(100, 0.08, seed=4)
        rounds, match = handshake_matching_rounds(g, np.random.default_rng(0))
        assert is_valid_matching(g, match)
        assert is_maximal_matching(g, match)
        assert rounds >= 1

    def test_rounds_logarithmic_ish(self):
        g = random_graph(400, 0.02, seed=5)
        rounds, _ = handshake_matching_rounds(g, np.random.default_rng(1))
        assert rounds <= 40  # far below n; expected O(log n)

    def test_cap_respected(self):
        g = random_graph(200, 0.05, seed=6)
        rounds, match = handshake_matching_rounds(
            g, np.random.default_rng(0), max_rounds=2
        )
        assert rounds <= 2
        assert is_valid_matching(g, match)  # valid even if not maximal

    def test_single_edge(self):
        from repro.graph import from_edge_list

        g = from_edge_list(2, [(0, 1)])
        rounds, match = handshake_matching_rounds(g, np.random.default_rng(0))
        assert rounds == 1
        assert match.tolist() == [1, 0]


class TestLevelStats:
    def test_collects_full_hierarchy(self, grid16):
        levels, result = collect_level_stats(grid16)
        assert levels[0].nvtxs == 256
        assert levels[-1].nvtxs == result.coarsest_nvtxs
        sizes = [lv.nvtxs for lv in levels]
        assert sizes == sorted(sizes, reverse=True)
        for lv in levels:
            assert 0 < lv.boundary <= lv.nvtxs
            assert 1 <= lv.rounds <= 4


class TestSpeedupModel:
    @pytest.fixture(scope="class")
    def levels(self):
        from repro.matrices import fe_tet3d

        g = fe_tet3d(2500, seed=0)
        levels, _ = collect_level_stats(g)
        return levels

    def test_single_processor_baseline(self, levels):
        e = estimate_parallel_speedup(levels, 1)
        assert e.speedup == pytest.approx(1.0)
        assert e.parallel_time == e.serial_time

    def test_speedup_rises_then_saturates(self, levels):
        # p=2 may dip below 1 on modest graphs (communication exceeds the
        # halved work — a real effect); from there the curve must rise,
        # and never superlinearly.
        curve = speedup_curve(levels, [1, 2, 4, 8, 16])
        assert curve[2] > curve[1]
        assert curve[-1] > 1.5
        assert all(s <= p for s, p in zip(curve, [1, 2, 4, 8, 16]))

    def test_larger_problems_scale_further(self, levels):
        small = estimate_parallel_speedup(levels, 128).speedup
        big = estimate_parallel_speedup(scale_levels(levels, 16.0), 128).speedup
        assert big > small

    def test_paper_scale_headline(self, levels):
        """At paper-scale problem size, p=128 speedup lands in the same
        order as the paper's reported 56×."""
        paper = scale_levels(levels, 20.0)
        speedup = estimate_parallel_speedup(paper, 128).speedup
        assert 15 <= speedup <= 110

    def test_slower_network_lowers_speedup(self, levels):
        fast = estimate_parallel_speedup(levels, 64)
        slow = estimate_parallel_speedup(
            levels, 64, MachineParameters(alpha=20000.0, beta=100.0)
        )
        assert slow.speedup < fast.speedup

    def test_invalid_inputs(self, levels):
        with pytest.raises(ValueError):
            estimate_parallel_speedup(levels, 0)
        with pytest.raises(ValueError):
            scale_levels(levels, 0.0)

    def test_phase_times_sum(self, levels):
        e = estimate_parallel_speedup(levels, 32)
        assert e.parallel_time == pytest.approx(
            e.coarsening_time + e.initial_time + e.uncoarsening_time
        )
