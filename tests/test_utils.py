"""Tests for utilities (RNG plumbing, timers, options, top-level API)."""

import time

import numpy as np
import pytest

import repro
from repro.core.options import (
    InitialScheme,
    MatchingScheme,
    MultilevelOptions,
    RefinePolicy,
)
from repro.utils import PhaseTimer, Stopwatch, as_generator, spawn_child


class TestRng:
    def test_none_gives_fresh_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_deterministic(self):
        a = as_generator(42).integers(0, 1000, 10)
        b = as_generator(42).integers(0, 1000, 10)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert as_generator(rng) is rng

    def test_spawn_child_independent(self):
        parent = np.random.default_rng(1)
        c1 = spawn_child(parent)
        c2 = spawn_child(parent)
        a = c1.integers(0, 10**9, 20)
        b = c2.integers(0, 10**9, 20)
        assert not np.array_equal(a, b)

    def test_spawn_child_deterministic_given_parent_state(self):
        a = spawn_child(np.random.default_rng(5)).integers(0, 10**9, 5)
        b = spawn_child(np.random.default_rng(5)).integers(0, 10**9, 5)
        assert np.array_equal(a, b)


class TestTimers:
    def test_stopwatch(self):
        sw = Stopwatch()
        time.sleep(0.01)
        assert sw.elapsed() >= 0.009
        sw.reset()
        assert sw.elapsed() < 0.01

    def test_phase_timer_accumulates(self):
        t = PhaseTimer()
        with t.phase("a"):
            time.sleep(0.005)
        with t.phase("a"):
            pass
        assert t.total("a") >= 0.004
        assert t.count("a") == 2
        assert t.total("missing") == 0.0

    def test_phase_timer_merge(self):
        a, b = PhaseTimer(), PhaseTimer()
        a.add("x", 1.0)
        b.add("x", 2.0)
        b.add("y", 3.0)
        a.merge(b)
        assert a.total("x") == pytest.approx(3.0)
        assert a.total("y") == pytest.approx(3.0)

    def test_totals_snapshot(self):
        t = PhaseTimer()
        t.add("x", 1.0)
        snap = t.totals()
        t.add("x", 1.0)
        assert snap["x"] == pytest.approx(1.0)

    def test_exception_still_recorded(self):
        t = PhaseTimer()
        with pytest.raises(RuntimeError):
            with t.phase("x"):
                raise RuntimeError
        assert t.count("x") == 1


class TestOptions:
    def test_defaults_match_paper(self):
        o = MultilevelOptions()
        assert o.matching is MatchingScheme.HEM
        assert o.initial is InitialScheme.GGGP
        assert o.refinement is RefinePolicy.BKLGR
        assert o.kl_early_exit == 50
        assert o.ggp_trials == 10
        assert o.gggp_trials == 5
        assert o.bklgr_boundary_fraction == pytest.approx(0.02)

    def test_with_returns_modified_copy(self):
        o = MultilevelOptions()
        o2 = o.with_(coarsen_to=50)
        assert o2.coarsen_to == 50
        assert o.coarsen_to == 100

    def test_frozen(self):
        with pytest.raises(AttributeError):
            MultilevelOptions().coarsen_to = 5

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"coarsen_to": 1},
            {"coarsen_stall_ratio": 0.0},
            {"coarsen_stall_ratio": 1.5},
            {"ubfactor": 0.9},
            {"kl_early_exit": 0},
            {"ggp_trials": 0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            MultilevelOptions(**kwargs)

    def test_string_coercion(self):
        o = MultilevelOptions(matching=MatchingScheme("rm"))
        assert o.matching is MatchingScheme.RM


class TestErrorPickling:
    """ReproError subclasses must survive the pool result pipe (RP018).

    The concurrent.futures result pipe pickles worker exceptions; the
    default reduction re-calls ``cls(*args)`` and explodes on required
    keyword-only parameters, so ``ReproError.__reduce__`` rebuilds
    instances from ``__dict__`` instead.
    """

    def test_sanitizer_error_round_trips(self):
        import pickle

        from repro.utils.errors import SanitizerError

        err = SanitizerError("ghost vertex", phase="separator", level=3)
        clone = pickle.loads(pickle.dumps(err))
        assert type(clone) is SanitizerError
        assert str(clone) == str(err)
        assert clone.phase == "separator"
        assert clone.level == 3

    def test_deadline_error_round_trips(self):
        import pickle

        from repro.utils.errors import DeadlineExceededError

        err = DeadlineExceededError(
            "budget exhausted", deadline=1.0, elapsed=2.5, phase="refine"
        )
        clone = pickle.loads(pickle.dumps(err))
        assert type(clone) is DeadlineExceededError
        assert clone.deadline == 1.0
        assert clone.elapsed == 2.5
        assert clone.phase == "refine"


class TestTopLevelApi:
    def test_bisect_wrapper(self, grid8):
        r = repro.bisect(grid8, seed=1, matching="rm")
        assert r.bisection.cut > 0

    def test_partition_wrapper(self, grid8):
        p = repro.partition(grid8, 4, seed=1)
        assert p.nparts == 4

    def test_nested_dissection_wrapper(self, grid8):
        o = repro.nested_dissection(grid8, seed=1)
        o.verify()

    def test_override_coercion_errors(self, grid8):
        with pytest.raises(ValueError):
            repro.partition(grid8, 2, matching="bogus")

    def test_lazy_subpackages(self):
        assert repro.matrices is not None
        assert repro.spectral is not None
        with pytest.raises(AttributeError):
            repro.nonexistent_subpackage

    def test_version(self):
        assert repro.__version__
