"""Tests for the graph contraction kernel and its paper invariants."""

import numpy as np
import pytest

from repro.core.matching import hem_matching, rm_matching
from repro.graph import (
    coarse_map_from_matching,
    contract,
    from_edge_list,
    matching_weight,
    validate_graph,
)
from repro.graph.contract import collapsed_edge_weight
from tests.conftest import complete_graph, path_graph, random_graph


class TestCoarseMap:
    def test_identity_matching(self):
        match = np.arange(4)
        cmap, ncoarse = coarse_map_from_matching(match)
        assert ncoarse == 4
        assert cmap.tolist() == [0, 1, 2, 3]

    def test_one_pair(self):
        match = np.array([1, 0, 2, 3])
        cmap, ncoarse = coarse_map_from_matching(match)
        assert ncoarse == 3
        assert cmap[0] == cmap[1]
        assert cmap[2] != cmap[0] and cmap[3] != cmap[2]

    def test_dense_numbering(self):
        match = np.array([3, 2, 1, 0])
        cmap, ncoarse = coarse_map_from_matching(match)
        assert ncoarse == 2
        assert set(cmap.tolist()) == {0, 1}


class TestContract:
    def test_collapse_path_pair(self):
        g = path_graph(3)  # 0-1-2
        cmap = np.array([0, 0, 1])  # merge 0,1
        coarse = contract(g, cmap, 2)
        assert coarse.nvtxs == 2
        assert coarse.nedges == 1
        assert coarse.vwgt.tolist() == [2, 1]
        assert coarse.edge_weight(0, 1) == 1
        validate_graph(coarse)

    def test_parallel_edges_merge(self):
        # Square 0-1-2-3-0; merging (0,1) and (2,3) creates two parallel
        # edges between the multinodes, which must merge to weight 2.
        g = from_edge_list(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        cmap = np.array([0, 0, 1, 1])
        coarse = contract(g, cmap, 2)
        assert coarse.nvtxs == 2
        assert coarse.nedges == 1
        assert coarse.edge_weight(0, 1) == 2

    def test_vertex_weight_conserved(self):
        g = random_graph(40, 0.2, seed=1)
        match = rm_matching(g, np.random.default_rng(0))
        cmap, nc = coarse_map_from_matching(match)
        coarse = contract(g, cmap, nc)
        assert coarse.total_vwgt() == g.total_vwgt()

    def test_edge_weight_identity(self):
        """W(E_{i+1}) = W(E_i) − W(M_i), the §3.1 identity."""
        g = random_graph(40, 0.2, seed=2)
        match = hem_matching(g, np.random.default_rng(0))
        cmap, nc = coarse_map_from_matching(match)
        coarse = contract(g, cmap, nc)
        assert coarse.total_adjwgt() == g.total_adjwgt() - matching_weight(g, match)

    def test_contract_to_single_vertex(self):
        g = complete_graph(4)
        coarse = contract(g, np.zeros(4, dtype=np.int64), 1)
        assert coarse.nvtxs == 1
        assert coarse.nedges == 0
        assert coarse.vwgt.tolist() == [4]

    def test_groups_larger_than_pairs(self):
        g = path_graph(6)
        cmap = np.array([0, 0, 0, 1, 1, 1])
        coarse = contract(g, cmap, 2)
        assert coarse.nvtxs == 2
        assert coarse.edge_weight(0, 1) == 1

    def test_edgeless_result(self):
        g = from_edge_list(2, [(0, 1)])
        coarse = contract(g, np.array([0, 0]), 1)
        assert coarse.nedges == 0

    def test_coords_become_weighted_centroids(self):
        g = path_graph(2)
        g.coords = np.array([[0.0, 0.0], [2.0, 0.0]])
        coarse = contract(g, np.array([0, 0]), 1)
        assert np.allclose(coarse.coords, [[1.0, 0.0]])

    def test_partition_cut_preserved_by_projection(self):
        """§3.1: a coarse partition's cut equals the projected fine cut."""
        from repro.graph import edge_cut

        g = random_graph(30, 0.25, seed=3)
        match = rm_matching(g, np.random.default_rng(1))
        cmap, nc = coarse_map_from_matching(match)
        coarse = contract(g, cmap, nc)
        rng = np.random.default_rng(2)
        coarse_where = rng.integers(0, 2, nc)
        fine_where = coarse_where[cmap]
        assert edge_cut(coarse, coarse_where) == edge_cut(g, fine_where)


class TestCollapsedEdgeWeight:
    def test_pair_merge_counts_inner_edge(self):
        g = path_graph(3)
        cmap = np.array([0, 0, 1])
        cew = collapsed_edge_weight(g, cmap, 2)
        assert cew.tolist() == [1, 0]

    def test_accumulates_across_levels(self):
        g = complete_graph(4)  # 6 edges
        cew1 = collapsed_edge_weight(g, np.array([0, 0, 1, 1]), 2)
        assert cew1.tolist() == [1, 1]
        coarse = contract(g, np.array([0, 0, 1, 1]), 2)
        cew2 = collapsed_edge_weight(coarse, np.array([0, 0]), 1, cew1)
        # All 6 original edges end up inside the single multinode.
        assert cew2.tolist() == [6]


class TestMatchingWeight:
    def test_weighted_pairs(self):
        g = from_edge_list(4, [(0, 1), (2, 3), (1, 2)], [5, 7, 1])
        match = np.array([1, 0, 3, 2])
        assert matching_weight(g, match) == 12

    def test_empty_matching(self):
        g = path_graph(4)
        assert matching_weight(g, np.arange(4)) == 0
