"""Unit tests for the observability layer (``repro.obs``).

Covers the tracer/span/counter machinery, the null objects and their
zero-overhead contract (enforced structurally via AST inspection of the FM
hot loop, plus a loose timing bound), the v1 JSONL schema validator, the
profile aggregation behind ``repro trace``, and the bench JSON export.
"""

import ast
import inspect
import io
import json
import time

import numpy as np
import pytest

from repro.obs import (
    NULL,
    NULL_SPAN,
    SCHEMA_VERSION,
    Tracer,
    bench_payload,
    format_profile,
    open_tracer,
    profile,
    read_trace,
    resolve_tracer,
    trace_target,
    tracer_from,
    validate_record,
    validate_trace_lines,
    write_bench_json,
)
from repro.utils.errors import TraceError


def records_from(buf: io.StringIO) -> list[dict]:
    return validate_trace_lines(buf.getvalue().splitlines())


# --------------------------------------------------------------------------
# Tracer
# --------------------------------------------------------------------------
class TestTracer:
    def test_meta_record_first(self):
        buf = io.StringIO()
        trc = Tracer(buf, run="unit", meta={"nvtxs": 10})
        trc.close()
        recs = records_from(buf)
        assert recs[0]["t"] == "meta"
        assert recs[0]["run"] == "unit"
        assert recs[0]["fields"] == {"nvtxs": 10}

    def test_span_nesting_and_parents(self):
        buf = io.StringIO()
        trc = Tracer(buf, run="unit")
        with trc.span("outer") as outer:
            with trc.span("inner") as inner:
                assert inner.parent == outer.id
        trc.close()
        spans = {r["name"]: r for r in records_from(buf) if r["t"] == "span"}
        # Inner exits first, so it is emitted first.
        assert spans["inner"]["parent"] == spans["outer"]["id"]
        assert spans["outer"]["parent"] is None
        assert spans["inner"]["dur"] >= 0

    def test_events_attach_to_innermost_span(self):
        buf = io.StringIO()
        trc = Tracer(buf, run="unit")
        trc.event("free")  # no open span
        with trc.span("phase") as sp:
            sp.event("via-span", k=1)
            trc.event("via-tracer")
        trc.close()
        events = {r["name"]: r for r in records_from(buf) if r["t"] == "event"}
        assert events["free"]["span"] is None
        assert events["via-span"]["span"] == events["via-tracer"]["span"]
        assert events["via-span"]["fields"] == {"k": 1}

    def test_span_set_merges_fields(self):
        buf = io.StringIO()
        trc = Tracer(buf, run="unit")
        with trc.span("refine", level=2) as sp:
            sp.set(cut_out=17)
        trc.close()
        (span,) = [r for r in records_from(buf) if r["t"] == "span"]
        assert span["fields"] == {"level": 2, "cut_out": 17}

    def test_counters_accumulate_and_emit_once(self):
        buf = io.StringIO()
        trc = Tracer(buf, run="unit")
        trc.counter("fm.moves", 3)
        trc.counter("fm.moves", 4)
        with trc.span("s") as sp:
            sp.counter("fm.kept")
        trc.close()
        (counters,) = [r for r in records_from(buf) if r["t"] == "counters"]
        assert counters["values"] == {"fm.moves": 7, "fm.kept": 1}

    def test_numpy_scalars_are_jsonable(self):
        buf = io.StringIO()
        trc = Tracer(buf, run="unit")
        with trc.span("s", nvtxs=np.int64(5)) as sp:
            sp.event("e", frac=np.float64(0.25), arr=[np.int32(1)])
        trc.close()
        recs = records_from(buf)  # would raise on non-JSON-safe values
        (event,) = [r for r in recs if r["t"] == "event"]
        assert event["fields"] == {"frac": 0.25, "arr": [1]}

    def test_close_is_idempotent_and_stops_emission(self):
        buf = io.StringIO()
        trc = Tracer(buf, run="unit")
        trc.counter("c", 1)
        trc.close()
        trc.close()
        trc.event("after-close")
        recs = records_from(buf)
        assert [r["t"] for r in recs] == ["meta", "counters"]

    def test_file_sink_appends_across_runs(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        for i in range(2):
            trc = open_tracer(path, run=f"run{i}")
            with trc.span("s"):
                pass
            trc.close()
        recs = read_trace(path)
        assert [r["run"] for r in recs if r["t"] == "meta"] == ["run0", "run1"]


# --------------------------------------------------------------------------
# null objects and resolution
# --------------------------------------------------------------------------
class TestNullObjects:
    def test_null_tracer_is_falsy_and_inert(self):
        assert not NULL
        assert not NULL.enabled
        NULL.event("x")
        NULL.counter("c", 5)
        NULL.close()

    def test_null_span_is_context_manager(self):
        with NULL.span("phase") as sp:
            assert sp is NULL_SPAN
            assert not sp
            sp.set(cut=1)
            sp.event("e")
            sp.counter("c")

    def test_tracer_from_returns_null_when_unconfigured(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        assert tracer_from(None) is NULL
        assert trace_target(None) is None

    def test_env_var_activates(self, tmp_path, monkeypatch):
        path = str(tmp_path / "t.jsonl")
        monkeypatch.setenv("REPRO_TRACE", path)
        trc = tracer_from(None, run="env")
        assert trc
        trc.close()
        assert read_trace(path)[0]["run"] == "env"

    def test_options_trace_beats_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", str(tmp_path / "env.jsonl"))

        class Opts:
            trace = str(tmp_path / "opt.jsonl")

        assert trace_target(Opts()) == Opts.trace

    def test_resolve_given_wins_and_is_not_owned(self, tmp_path):
        trc = open_tracer(str(tmp_path / "t.jsonl"), run="outer")
        try:
            got, owned = resolve_tracer(trc, None, run="inner")
            assert got is trc and owned is False
            # A threaded NULL also wins: recursion must not re-resolve.
            got, owned = resolve_tracer(NULL, None, run="inner")
            assert got is NULL and owned is False
        finally:
            trc.close()

    def test_resolve_owns_what_it_opens(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        got, owned = resolve_tracer(None, None, run="r")
        assert got is NULL and owned is False
        monkeypatch.setenv("REPRO_TRACE", str(tmp_path / "t.jsonl"))
        got, owned = resolve_tracer(None, None, run="r")
        assert got and owned is True
        got.close()


# --------------------------------------------------------------------------
# schema validation
# --------------------------------------------------------------------------
def _span_record(**overrides):
    record = {
        "v": SCHEMA_VERSION,
        "t": "span",
        "id": 0,
        "parent": None,
        "name": "coarsen",
        "t0": 0.0,
        "dur": 0.5,
        "fields": {"phase": "CTime"},
    }
    record.update(overrides)
    return record


class TestSchema:
    def test_valid_records_pass(self):
        validate_record(_span_record())
        validate_record(
            {"v": 1, "t": "meta", "run": "r", "time": "now", "fields": {}}
        )
        validate_record(
            {"v": 1, "t": "event", "name": "e", "span": None, "at": 0.1,
             "fields": {"free": True}}  # fields dicts are free-form
        )
        validate_record({"v": 1, "t": "counters", "values": {"c": 2}})

    @pytest.mark.parametrize(
        "record, fragment",
        [
            ([1, 2], "must be a JSON object"),
            ({"v": 99, "t": "span"}, "unsupported trace schema version"),
            ({"v": 1, "t": "bogus"}, "unknown record kind"),
            (_span_record(dur=None), "key 'dur' has type"),
            (_span_record(id=True), "key 'id' has type"),
            (_span_record(dur=-0.1), "non-negative"),
            (_span_record(extra=1), "unknown keys"),
            ({"v": 1, "t": "counters", "values": {"c": True}}, "non-numeric"),
            ({"v": 1, "t": "counters", "values": {"c": "x"}}, "non-numeric"),
        ],
    )
    def test_malformed_records_raise(self, record, fragment):
        with pytest.raises(TraceError, match=fragment):
            validate_record(record)

    def test_missing_key_raises(self):
        record = _span_record()
        del record["parent"]
        with pytest.raises(TraceError, match="missing key 'parent'"):
            validate_record(record)

    def test_line_numbers_in_errors(self):
        lines = [json.dumps(_span_record()), "not json"]
        with pytest.raises(TraceError, match="line 2"):
            validate_trace_lines(lines)

    def test_blank_lines_ignored(self):
        lines = ["", json.dumps(_span_record()), "   "]
        assert len(validate_trace_lines(lines)) == 1


# --------------------------------------------------------------------------
# profile aggregation
# --------------------------------------------------------------------------
class TestProfile:
    def _records(self):
        buf = io.StringIO()
        trc = Tracer(buf, run="agg", meta={"nvtxs": 4})
        with trc.span("coarsen", phase="CTime"):
            trc.event("coarsen.level")
            trc.event("coarsen.level")
        with trc.span("refine", phase="RTime"):
            pass
        with trc.span("refine", phase="RTime"):
            pass
        trc.counter("fm.moves", 12)
        trc.close()
        return records_from(buf)

    def test_profile_sums(self):
        prof = profile(self._records())
        assert [m["run"] for m in prof["runs"]] == ["agg"]
        assert prof["spans"]["refine"]["count"] == 2
        assert prof["events"] == {"coarsen.level": 2}
        assert prof["counters"] == {"fm.moves": 12}
        assert prof["phases"]["CTime"] == pytest.approx(
            prof["spans"]["coarsen"]["total"]
        )
        assert prof["phases"]["ITime"] == 0.0

    def test_format_profile(self):
        text = format_profile(profile(self._records()))
        assert "runs:     1" in text
        assert "CTime" in text and "UTime" in text
        assert "coarsen.level" in text
        assert "fm.moves" in text


# --------------------------------------------------------------------------
# bench export
# --------------------------------------------------------------------------
class TestBenchExport:
    def test_payload_roundtrip(self, tmp_path):
        from repro.bench import Row

        rows = [
            Row("4ELT", "hem", {"32EC": np.int64(123), "wall": 0.5}),
            {"matrix": "X", "scheme": "rm", "values": {"32EC": 1}},
        ]
        payload = bench_payload(
            "unit_table", rows, title="t", columns=["32EC"], extra={"k": 1}
        )
        path = tmp_path / "BENCH_unit_table.json"
        write_bench_json(path, payload)
        data = json.loads(path.read_text())
        assert data["schema"] == "repro-bench/1"
        assert data["table"] == "unit_table"
        assert data["columns"] == ["32EC"]
        assert data["rows"][0]["values"]["32EC"] == 123
        assert data["rows"][1]["matrix"] == "X"
        assert data["extra"] == {"k": 1}
        assert "python" in data["env"]

    def test_env_records_bench_knobs(self, monkeypatch):
        from repro.obs import bench_env

        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.25")
        assert bench_env()["knobs"]["REPRO_BENCH_SCALE"] == "0.25"


# --------------------------------------------------------------------------
# overhead guarantees
# --------------------------------------------------------------------------
class TestOverheadGuarantee:
    def test_fm_move_loop_has_no_tracer_calls(self):
        """Structural guarantee: the FM hot loop never touches the tracer.

        Events are per *pass*, never per move — the ``while since_best``
        loop must contain no ``.span``/``.event``/``.counter``/``.set``
        attribute calls at all.
        """
        from repro.core import refine

        tree = ast.parse(inspect.getsource(refine.fm_pass))
        loops = [
            node
            for node in ast.walk(tree)
            if isinstance(node, ast.While)
        ]
        assert loops, "fm_pass lost its move loop?"
        banned = {"span", "event", "counter", "set"}
        for loop in loops:
            calls = [
                node.func.attr
                for node in ast.walk(loop)
                if isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in banned
            ]
            assert calls == [], (
                f"tracer-ish calls inside the FM move loop: {calls}"
            )

    def test_null_tracer_span_is_cheap(self):
        """Loose timing bound: a null span entry/exit stays sub-microsecond
        scale (generous 10µs bound so CI noise cannot flake this)."""
        n = 20_000
        t0 = time.perf_counter()
        for _ in range(n):
            with NULL.span("x"):
                pass
        per_call = (time.perf_counter() - t0) / n
        assert per_call < 10e-6, f"null span costs {per_call * 1e6:.2f}µs"

    def test_tracing_disabled_is_bit_identical(self, tmp_path):
        """Tracing must never touch the RNG: traced and untraced runs of
        the same seed produce identical partitions."""
        from repro.core import bisect
        from repro.core.options import DEFAULT_OPTIONS
        from repro.matrices import grid2d

        g = grid2d(15, 14)
        plain = bisect(g, DEFAULT_OPTIONS, np.random.default_rng(3))
        traced_opts = DEFAULT_OPTIONS.with_(trace=str(tmp_path / "t.jsonl"))
        traced = bisect(g, traced_opts, np.random.default_rng(3))
        assert plain.bisection.cut == traced.bisection.cut
        assert np.array_equal(plain.bisection.where, traced.bisection.where)
        assert plain.stats.moves_tried == traced.stats.moves_tried
        assert read_trace(str(tmp_path / "t.jsonl"))  # and the trace exists
