"""Differential tests against external oracles (networkx / scipy).

These validate our substrate implementations against independent, widely
trusted code — the strongest correctness evidence available for graph
algorithms with many edge cases.  They are skipped when the optional test
dependencies are unavailable.
"""

import numpy as np
import pytest

nx = pytest.importorskip("networkx")
scipy = pytest.importorskip("scipy")

from repro.graph import edge_cut, from_edge_list, to_networkx
from repro.graph.components import connected_components, num_components
from repro.spectral import algebraic_connectivity, dense_laplacian, fiedler_vector
from tests.conftest import random_graph


def graphs_for_diff(count=6):
    out = []
    for seed in range(count):
        p = 0.04 + 0.03 * seed
        out.append(random_graph(40 + 10 * seed, p, seed=seed))
    return out


class TestComponentsVsNetworkx:
    @pytest.mark.parametrize("seed", range(6))
    def test_component_count(self, seed):
        g = graphs_for_diff()[seed]
        assert num_components(g) == nx.number_connected_components(to_networkx(g))

    @pytest.mark.parametrize("seed", range(3))
    def test_component_membership(self, seed):
        g = graphs_for_diff()[seed]
        ours = connected_components(g)
        theirs = list(nx.connected_components(to_networkx(g)))
        for comp_set in theirs:
            labels = {int(ours[v]) for v in comp_set}
            assert len(labels) == 1  # our labelling never splits an nx component


class TestCutVsNetworkx:
    @pytest.mark.parametrize("seed", range(5))
    def test_cut_size(self, seed):
        g = random_graph(50, 0.15, seed=seed)
        rng = np.random.default_rng(seed)
        where = rng.integers(0, 2, g.nvtxs)
        s = {v for v in range(g.nvtxs) if where[v] == 0}
        t = set(range(g.nvtxs)) - s
        expected = nx.cut_size(to_networkx(g), s, t, weight="weight")
        assert edge_cut(g, where) == expected

    def test_weighted_cut(self):
        g = from_edge_list(4, [(0, 1), (1, 2), (2, 3)], [5, 7, 11])
        where = np.array([0, 1, 1, 0])
        s, t = {0, 3}, {1, 2}
        assert edge_cut(g, where) == nx.cut_size(to_networkx(g), s, t, weight="weight")


class TestSpectralVsScipy:
    @pytest.mark.parametrize("seed", range(4))
    def test_laplacian_matches_scipy(self, seed):
        g = random_graph(30, 0.2, seed=seed)
        ours = dense_laplacian(g)
        m = scipy.sparse.csgraph.laplacian(
            scipy.sparse.csr_matrix(nx.to_numpy_array(to_networkx(g)))
        )
        assert np.allclose(ours, m.toarray())

    @pytest.mark.parametrize("seed", range(3))
    def test_fiedler_value_matches_scipy(self, seed):
        g = random_graph(60, 0.12, seed=seed, connected=True)
        lam_ours = algebraic_connectivity(g, np.random.default_rng(0))
        lap = dense_laplacian(g)
        vals = scipy.linalg.eigvalsh(lap)
        assert lam_ours == pytest.approx(vals[1], rel=1e-5, abs=1e-8)

    def test_fiedler_vector_is_scipy_eigvec(self):
        g = random_graph(80, 0.1, seed=7, connected=True)
        vec = fiedler_vector(g, np.random.default_rng(0), force_lanczos=True)
        lap = dense_laplacian(g)
        vals, vecs = scipy.linalg.eigh(lap)
        ref = vecs[:, 1]
        corr = abs(float(np.dot(vec, ref)) / (np.linalg.norm(vec) * np.linalg.norm(ref)))
        assert corr == pytest.approx(1.0, abs=1e-4)


class TestEtreeVsScipyFactor:
    @pytest.mark.parametrize("seed", range(3))
    def test_symbolic_counts_against_dense_cholesky(self, seed):
        """Column counts of our symbolic factorization must equal the
        nonzero counts of a *numeric* dense Cholesky of an SPD matrix
        with the same pattern (no cancellation for generic values)."""
        from repro.linalg import laplacian_system
        from repro.ordering import symbolic_factor

        g = random_graph(25, 0.2, seed=seed, connected=True)
        A, _, _ = laplacian_system(g, rng=np.random.default_rng(seed))
        perm = np.random.default_rng(seed).permutation(g.nvtxs)
        counts, _ = symbolic_factor(g, perm)
        dense = A.dense()[np.ix_(perm, perm)]
        L = np.linalg.cholesky(dense)
        numeric_counts = (np.abs(L) > 1e-12).sum(axis=0) - 1  # below diagonal
        assert np.array_equal(counts, numeric_counts)


class TestMatchingVsNetworkx:
    @pytest.mark.parametrize("seed", range(3))
    def test_hem_weight_within_half_of_max_weight_matching(self, seed):
        """Greedy matching is a 1/2-approximation of the maximum-weight
        matching — verify against networkx's exact algorithm."""
        from repro.core.matching import hem_matching
        from repro.graph import matching_weight

        g = random_graph(30, 0.2, seed=seed)
        rng = np.random.default_rng(seed)
        weights = rng.integers(1, 100, g.nedges)
        wg = from_edge_list(g.nvtxs, g.edge_array()[:, :2], weights)
        match = hem_matching(wg, np.random.default_rng(0))
        ours = matching_weight(wg, match)
        exact = nx.max_weight_matching(to_networkx(wg), weight="weight")
        exact_weight = sum(wg.edge_weight(u, v) for u, v in exact)
        assert ours >= 0.5 * exact_weight
