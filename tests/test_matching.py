"""Tests for the four matching schemes (§3.1)."""

import numpy as np
import pytest

from repro.core.matching import (
    compute_matching,
    hcm_matching,
    hem_matching,
    is_maximal_matching,
    is_valid_matching,
    lem_matching,
    rm_matching,
)
from repro.core.options import MatchingScheme
from repro.graph import from_edge_list, matching_weight
from tests.conftest import (
    complete_graph,
    cycle_graph,
    path_graph,
    random_graph,
    star_graph,
)

ALL_SCHEMES = [rm_matching, hem_matching, lem_matching, hcm_matching]
GRAPHS = {
    "path10": path_graph(10),
    "cycle9": cycle_graph(9),
    "star8": star_graph(8),
    "k6": complete_graph(6),
    "random": random_graph(60, 0.1, seed=4),
}


@pytest.mark.parametrize("scheme", ALL_SCHEMES, ids=lambda f: f.__name__)
@pytest.mark.parametrize("name", GRAPHS, ids=GRAPHS.keys())
class TestValidityAndMaximality:
    def test_valid(self, scheme, name):
        g = GRAPHS[name]
        match = scheme(g, np.random.default_rng(0))
        assert is_valid_matching(g, match)

    def test_maximal(self, scheme, name):
        g = GRAPHS[name]
        match = scheme(g, np.random.default_rng(1))
        assert is_maximal_matching(g, match)


class TestSchemeCharacteristics:
    def test_star_leaves_all_but_one_unmatched(self):
        g = star_graph(8)
        match = rm_matching(g, np.random.default_rng(0))
        matched = (match != np.arange(8)).sum()
        assert matched == 2  # exactly the centre and one leaf

    def test_hem_prefers_heavy_edges(self):
        # K4 whose heavy edges form a perfect matching: whichever vertex is
        # visited first picks its heavy partner, and the remaining pair is
        # forced onto the other heavy edge — so HEM's result is the heavy
        # perfect matching for every visiting order.
        g = from_edge_list(
            4,
            [(0, 1), (2, 3), (0, 2), (1, 3), (0, 3), (1, 2)],
            [100, 100, 1, 1, 1, 1],
        )
        for seed in range(8):
            match = hem_matching(g, np.random.default_rng(seed))
            assert matching_weight(g, match) == 200

    def test_lem_prefers_light_edges(self):
        g = from_edge_list(3, [(0, 1), (1, 2)], [100, 1])
        # Whenever vertex 1 is visited first, LEM must pick the light edge.
        hits = 0
        for seed in range(20):
            match = lem_matching(g, np.random.default_rng(seed))
            if match[1] == 2:
                hits += 1
        assert hits > 0  # happens for some visit orders
        # And in no case may vertex 1 remain unmatched.
        for seed in range(20):
            match = lem_matching(g, np.random.default_rng(seed))
            assert match[1] != 1

    def test_hem_weight_at_least_lem_weight_statistically(self):
        g = random_graph(80, 0.15, seed=7)
        rng_state = np.random.default_rng(3)
        g = from_edge_list(
            g.nvtxs,
            g.edge_array()[:, :2],
            rng_state.integers(1, 50, g.nedges),
        )
        hem_w = np.mean([
            matching_weight(g, hem_matching(g, np.random.default_rng(s)))
            for s in range(5)
        ])
        lem_w = np.mean([
            matching_weight(g, lem_matching(g, np.random.default_rng(s)))
            for s in range(5)
        ])
        assert hem_w > lem_w

    def test_hcm_on_flat_graph_equals_heavy_edge_choice(self):
        # On an uncoarsened unit-weight graph every matched pair is a
        # 2-clique, so density reduces to edge weight: HCM must also find
        # the heavy perfect matching of the K4 from the HEM test.
        g = from_edge_list(
            4,
            [(0, 1), (2, 3), (0, 2), (1, 3), (0, 3), (1, 2)],
            [100, 100, 1, 1, 1, 1],
        )
        for seed in range(8):
            match = hcm_matching(g, np.random.default_rng(seed))
            assert matching_weight(g, match) == 200

    def test_hcm_uses_contracted_edge_weight(self):
        # Coarse-level scenario: multinodes 0 and 1 are 2-vertex cliques
        # (vwgt=2, cewgt=1) joined by a contracted weight-4 edge, so
        # merging them forms a perfect 4-clique (density 1.0).  Vertices 2
        # and 3 are plain (density of (2,3) is also 1.0, of (0,2) only
        # 0.67).  The density-optimal matching {(0,1),(2,3)} is forced for
        # every visiting order.
        g = from_edge_list(
            4, [(0, 1), (0, 2), (2, 3)], [4, 1, 1], vwgt=[2, 2, 1, 1]
        )
        cewgt = np.array([1, 1, 0, 0], dtype=np.int64)
        for seed in range(8):
            match = hcm_matching(g, np.random.default_rng(seed), cewgt)
            assert match.tolist() == [1, 0, 3, 2]

    def test_empty_graph(self):
        g = from_edge_list(0, [])
        for scheme in ALL_SCHEMES:
            match = scheme(g, np.random.default_rng(0))
            assert len(match) == 0

    def test_edgeless_graph_all_unmatched(self):
        g = from_edge_list(5, [])
        for scheme in ALL_SCHEMES:
            match = scheme(g, np.random.default_rng(0))
            assert np.array_equal(match, np.arange(5))

    def test_single_edge(self):
        g = from_edge_list(2, [(0, 1)])
        for scheme in ALL_SCHEMES:
            match = scheme(g, np.random.default_rng(0))
            assert match.tolist() == [1, 0]


class TestDispatch:
    def test_compute_matching_by_enum_and_string(self):
        g = path_graph(6)
        for scheme in MatchingScheme:
            match = compute_matching(g, scheme, np.random.default_rng(0))
            assert is_valid_matching(g, match)
        match = compute_matching(g, "hem", np.random.default_rng(0))
        assert is_valid_matching(g, match)

    def test_unknown_scheme_rejected(self):
        g = path_graph(4)
        with pytest.raises(ValueError):
            compute_matching(g, "nope", np.random.default_rng(0))

    def test_determinism_with_fixed_seed(self):
        g = random_graph(50, 0.15, seed=9)
        a = hem_matching(g, np.random.default_rng(42))
        b = hem_matching(g, np.random.default_rng(42))
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        g = random_graph(50, 0.15, seed=9)
        a = rm_matching(g, np.random.default_rng(1))
        b = rm_matching(g, np.random.default_rng(2))
        assert not np.array_equal(a, b)


class TestMatchingValidators:
    def test_invalid_length(self):
        g = path_graph(4)
        assert not is_valid_matching(g, np.arange(3))

    def test_non_involution(self):
        g = path_graph(4)
        assert not is_valid_matching(g, np.array([1, 2, 1, 3]))

    def test_non_edge_pair(self):
        g = path_graph(4)  # 0-1-2-3; (0,3) is not an edge
        assert not is_valid_matching(g, np.array([3, 1, 2, 0]))

    def test_non_maximal_detected(self):
        g = path_graph(4)
        # Nothing matched although edges exist.
        assert not is_maximal_matching(g, np.arange(4))
