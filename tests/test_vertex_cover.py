"""Tests for minimum-vertex-cover separators (Hopcroft–Karp + König)."""

import numpy as np
import pytest

from repro.ordering import (
    boundary_bipartite,
    hopcroft_karp,
    minimum_vertex_cover,
    vertex_separator_from_bisection,
)
from repro.graph import from_edge_list
from tests.conftest import assert_separator, path_graph, random_graph


class TestHopcroftKarp:
    def test_perfect_matching(self):
        adj = [[0], [1], [2]]
        ml, mr = hopcroft_karp(3, 3, adj)
        assert sorted(ml) == [0, 1, 2]

    def test_star_matches_one(self):
        # Left {0,1,2} all adjacent only to right {0}.
        adj = [[0], [0], [0]]
        ml, mr = hopcroft_karp(3, 1, adj)
        assert sum(1 for x in ml if x != -1) == 1
        assert mr[0] != -1

    def test_augmenting_path_needed(self):
        # L0-{R0,R1}, L1-{R0}: greedy L0→R0 would block L1; HK must find
        # the size-2 matching via the augmenting path.
        adj = [[0, 1], [0]]
        ml, mr = hopcroft_karp(2, 2, adj)
        assert ml[1] == 0 and ml[0] == 1

    def test_empty(self):
        ml, mr = hopcroft_karp(0, 0, [])
        assert ml == [] and mr == []

    def test_matching_size_equals_cover_size(self):
        """König: |max matching| == |min vertex cover| on bipartite graphs."""
        rng = np.random.default_rng(3)
        for trial in range(10):
            nl, nr = int(rng.integers(1, 12)), int(rng.integers(1, 12))
            adj = [
                sorted(set(rng.integers(0, nr, rng.integers(0, 5)).tolist()))
                for _ in range(nl)
            ]
            ml, mr = hopcroft_karp(nl, nr, adj)
            msize = sum(1 for x in ml if x != -1)
            cl, cr = minimum_vertex_cover(nl, nr, adj, ml, mr)
            assert int(cl.sum() + cr.sum()) == msize
            # Cover property: every edge touched.
            for u in range(nl):
                for v in adj[u]:
                    assert cl[u] or cr[v]


class TestBoundaryBipartite:
    def test_extracts_cut_edges(self):
        g = path_graph(4)
        a, b, adj = boundary_bipartite(g, np.array([0, 0, 1, 1]))
        assert a.tolist() == [1]
        assert b.tolist() == [2]
        assert adj == [[0]]

    def test_no_cut(self):
        g = path_graph(4)
        a, b, adj = boundary_bipartite(g, np.zeros(4, dtype=int))
        assert len(a) == 0 and len(b) == 0


class TestVertexSeparator:
    def test_path_separator_single_vertex(self):
        g = path_graph(5)
        where = np.array([0, 0, 0, 1, 1])
        sep = vertex_separator_from_bisection(g, where)
        assert len(sep) == 1
        assert sep[0] in (2, 3)
        assert_separator(g, sep, where)

    def test_separator_never_larger_than_boundary_side(self):
        g = random_graph(60, 0.1, seed=5, connected=True)
        rng = np.random.default_rng(1)
        where = rng.integers(0, 2, g.nvtxs)
        sep = vertex_separator_from_bisection(g, where)
        a, b, _ = boundary_bipartite(g, where)
        assert len(sep) <= min(len(a), len(b)) or len(sep) <= max(len(a), len(b))
        assert_separator(g, sep, where)

    def test_grid_middle_split(self, grid8):
        where = np.zeros(64, dtype=int)
        where[32:] = 1  # split between rows 3 and 4
        sep = vertex_separator_from_bisection(grid8, where)
        assert len(sep) == 8  # one full grid row
        assert_separator(grid8, sep, where)

    def test_bipartite_structure_exploited(self):
        # K2,3: cut between sides; the cover picks the 2-side.
        g = from_edge_list(5, [(0, 2), (0, 3), (0, 4), (1, 2), (1, 3), (1, 4)])
        where = np.array([0, 0, 1, 1, 1])
        sep = vertex_separator_from_bisection(g, where)
        assert sorted(sep.tolist()) == [0, 1]

    def test_empty_cut_gives_empty_separator(self):
        from tests.conftest import two_triangles

        g = two_triangles()
        where = np.array([0, 0, 0, 1, 1, 1])
        sep = vertex_separator_from_bisection(g, where)
        assert len(sep) == 0

    @pytest.mark.parametrize("seed", range(5))
    def test_random_graphs_always_separate(self, seed):
        g = random_graph(50, 0.12, seed=seed, connected=True)
        rng = np.random.default_rng(seed)
        where = rng.integers(0, 2, g.nvtxs)
        sep = vertex_separator_from_bisection(g, where)
        assert_separator(g, sep, where)
