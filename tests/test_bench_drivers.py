"""Tests for the benchmark drivers (small-scale smoke of every table and
figure generator, plus harness plumbing)."""

import numpy as np
import pytest

from repro.bench import (
    Row,
    bench_matrices,
    bench_scale,
    bench_seed,
    cut_ratio_rows,
    format_table,
    ordering_rows,
    pivot,
    runtime_rows,
    table2_rows,
    table3_rows,
    table4_rows,
)

SMALL = ["LSHP3466"]
SCALE = 0.12


class TestHarness:
    def test_env_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        monkeypatch.delenv("REPRO_BENCH_SEED", raising=False)
        monkeypatch.delenv("REPRO_BENCH_MATRICES", raising=False)
        assert bench_scale() == 1.0
        assert bench_seed() == 1995
        assert bench_matrices(["A"], ["A", "B"]) == ["A"]

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.5")
        monkeypatch.setenv("REPRO_BENCH_SEED", "7")
        monkeypatch.setenv("REPRO_BENCH_MATRICES", "X, Y")
        assert bench_scale() == 0.5
        assert bench_seed() == 7
        assert bench_matrices(["A"], ["A", "B"]) == ["X", "Y"]

    def test_matrices_all(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_MATRICES", "all")
        assert bench_matrices(["A"], ["A", "B"]) == ["A", "B"]

    def test_format_table(self):
        rows = [Row("M1", "HEM", {"cut": 10, "t": 1.2345})]
        text = format_table(rows, ["cut", "t"], title="T")
        assert "T" in text and "HEM" in text and "1.234" in text

    def test_pivot(self):
        rows = [
            Row("M1", "A", {"cut": 1}),
            Row("M1", "B", {"cut": 2}),
            Row("M2", "A", {"cut": 3}),
        ]
        p = pivot(rows, "cut")
        assert p == {"M1": {"A": 1, "B": 2}, "M2": {"A": 3}}


class TestTableDrivers:
    def test_table2(self):
        rows = table2_rows(SMALL, nparts=4, scale=SCALE, seed=3)
        assert len(rows) == 4  # one per matching scheme
        schemes = {r.scheme for r in rows}
        assert schemes == {"RM", "HEM", "LEM", "HCM"}
        for r in rows:
            assert r.values["32EC"] > 0
            assert r.values["CTime"] >= 0

    def test_table3_norefine_worse_than_table2(self):
        # Refinement also rebalances and changes the recursion's split
        # points, so a per-scheme strict ordering does not hold on tiny
        # graphs; the aggregate over schemes must still favour refinement.
        t2 = table2_rows(SMALL, nparts=4, scale=SCALE, seed=3)
        t3 = table3_rows(SMALL, nparts=4, scale=SCALE, seed=3)
        total2 = sum(r.values["32EC"] for r in t2)
        total3 = sum(r.values["32EC"] for r in t3)
        assert total3 >= 0.9 * total2

    def test_table4(self):
        rows = table4_rows(SMALL, nparts=4, scale=SCALE, seed=3)
        assert {r.scheme for r in rows} == {"GR", "KLR", "BGR", "BKLR", "BKLGR"}
        for r in rows:
            assert r.values["32EC"] > 0
            assert r.values["RTime"] >= 0


class TestFigureDrivers:
    def test_cut_ratio_rows_msb(self):
        rows = cut_ratio_rows(SMALL, "msb", nparts_list=(4,), scale=SCALE, seed=3)
        assert len(rows) == 1
        v = rows[0].values
        assert v["ratio_4"] == pytest.approx(v["ml_cut_4"] / v["base_cut_4"])

    @pytest.mark.parametrize("baseline", ["msb-kl", "chaco-ml"])
    def test_other_baselines(self, baseline):
        rows = cut_ratio_rows(SMALL, baseline, nparts_list=(4,), scale=SCALE, seed=3)
        assert rows[0].values["base_cut_4"] > 0

    def test_unknown_baseline(self):
        with pytest.raises(ValueError):
            cut_ratio_rows(SMALL, "magic", nparts_list=(4,), scale=SCALE)

    def test_runtime_rows(self):
        rows = runtime_rows(SMALL, nparts=4, scale=SCALE, seed=3)
        v = rows[0].values
        assert v["ml_seconds"] > 0
        for key in ("chaco_ml_rel", "msb_rel", "msb_kl_rel"):
            assert v[key] > 0

    def test_ordering_rows(self):
        rows = ordering_rows(SMALL, scale=SCALE, seed=3)
        v = rows[0].values
        assert v["mlnd_ops"] > 0
        assert v["mmd_over_mlnd"] > 0
        assert v["snd_over_mlnd"] > 0
        assert v["mlnd_parallelism"] >= 1
