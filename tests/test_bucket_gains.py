"""Tests for the classical FM bucket gain structure."""

import numpy as np
import pytest

from repro.core.gains import BucketGainTable, GainTable, make_gain_tables
from tests.conftest import random_graph


class TestBucketBasics:
    def test_push_pop_max(self):
        t = BucketGainTable(10)
        t.push(1, 5)
        t.push(2, 9)
        t.push(3, -2)
        assert t.pop_best() == (2, 9)
        assert t.pop_best() == (1, 5)
        assert t.pop_best() == (3, -2)
        assert t.pop_best() is None

    def test_lifo_within_bucket(self):
        """Classic FM tie-breaking: last-touched vertex pops first."""
        t = BucketGainTable(5)
        t.push(1, 3)
        t.push(2, 3)
        t.push(3, 3)
        assert t.pop_best() == (3, 3)
        assert t.pop_best() == (2, 3)

    def test_update_moves_between_buckets(self):
        t = BucketGainTable(10)
        t.push(1, 5)
        t.update(1, -5)
        t.push(2, 0)
        assert t.pop_best() == (2, 0)
        assert t.pop_best() == (1, -5)
        assert len(t) == 0

    def test_remove(self):
        t = BucketGainTable(4)
        t.push(1, 2)
        t.remove(1)
        assert 1 not in t
        assert t.pop_best() is None
        t.remove(99)  # absent: no-op

    def test_peek(self):
        t = BucketGainTable(4)
        assert t.peek_best_gain() is None
        t.push(5, -3)
        assert t.peek_best_gain() == -3
        assert len(t) == 1

    def test_gain_range_enforced(self):
        t = BucketGainTable(3)
        t.push(0, 3)
        t.push(1, -3)
        with pytest.raises(ValueError):
            t.push(2, 4)
        with pytest.raises(ValueError):
            BucketGainTable(-1)

    def test_bulk_load(self):
        t = BucketGainTable(10)
        t.bulk_load([1, 2, 3], [5, -1, 7])
        assert len(t) == 3
        assert t.pop_best() == (3, 7)

    def test_differential_vs_heap(self):
        """Both structures must agree on the max gain at every point of a
        random operation sequence (pop identity may differ on ties)."""
        rng = np.random.default_rng(5)
        heap, bucket = GainTable(), BucketGainTable(100)
        live = {}
        for _ in range(3000):
            op = rng.integers(3)
            v = int(rng.integers(60))
            if op == 0:
                g = int(rng.integers(-100, 101))
                heap.push(v, g)
                bucket.push(v, g)
                live[v] = g
            elif op == 1:
                heap.remove(v)
                bucket.remove(v)
                live.pop(v, None)
            else:
                assert heap.peek_best_gain() == bucket.peek_best_gain()
                got_h = heap.pop_best()
                got_b = bucket.pop_best()
                if live:
                    best = max(live.values())
                    assert got_h[1] == got_b[1] == best
                    # Keep the two structures in sync: re-remove whichever
                    # vertex the other popped.
                    heap.remove(got_b[0])
                    bucket.remove(got_h[0])
                    live.pop(got_h[0], None)
                    live.pop(got_b[0], None)
                else:
                    assert got_h is None and got_b is None
            assert len(heap) == len(bucket) == len(live)


class TestFactory:
    def test_make_heap(self, grid8):
        import numpy as np

        ed = np.zeros(64, dtype=np.int64)
        id_ = np.zeros(64, dtype=np.int64)
        a, b = make_gain_tables("heap", grid8, ed, id_)
        assert isinstance(a, GainTable) and isinstance(b, GainTable)

    def test_make_bucket_sized_to_degree(self, grid8):
        from repro.core.gains import external_internal_degrees

        where = np.zeros(64, dtype=np.int8)
        where[32:] = 1
        ed, id_ = external_internal_degrees(grid8, where)
        a, b = make_gain_tables("bucket", grid8, ed, id_)
        bound = int((ed + id_).max())
        a.push(0, bound)
        a.push(1, -bound)
        with pytest.raises(ValueError):
            a.push(2, bound + 1)

    def test_unknown_kind(self, grid8):
        with pytest.raises(ValueError):
            make_gain_tables("splay", grid8, np.zeros(1), np.zeros(1))


class TestEndToEnd:
    def test_bucket_partition_quality_comparable(self):
        import repro

        g = random_graph(300, 0.04, seed=9, connected=True)
        heap_cut = repro.partition(g, 8, seed=4, gain_table="heap").cut
        bucket_cut = repro.partition(g, 8, seed=4, gain_table="bucket").cut
        assert bucket_cut <= 1.3 * heap_cut
        assert heap_cut <= 1.3 * bucket_cut

    def test_invalid_option_rejected(self):
        from repro.core.options import MultilevelOptions

        with pytest.raises(ValueError):
            MultilevelOptions(gain_table="splay")
