"""Property-based tests (hypothesis) over the core invariants.

These chase the invariants the whole system rests on, over arbitrary small
graphs and weights:

* constructors always produce valid CSR;
* matchings are valid and maximal for every scheme;
* contraction conserves vertex weight and satisfies
  ``W(E_{i+1}) = W(E_i) − W(M)``;
* refinement never worsens the (overweight, cut) state;
* multilevel bisection always yields two non-empty consistent sides;
* vertex covers actually separate;
* orderings are permutations and symbolic fill matches brute force;
* .graph round-trips are lossless.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import bisect
from repro.core.matching import (
    compute_matching,
    is_maximal_matching,
    is_valid_matching,
)
from repro.core.options import DEFAULT_OPTIONS, MatchingScheme, RefinePolicy
from repro.core.refine import refine_bisection
from repro.graph import (
    Bisection,
    coarse_map_from_matching,
    contract,
    edge_cut,
    from_edge_list,
    matching_weight,
    part_weights,
    read_graph,
    validate_graph,
    write_graph,
)
from repro.ordering import factor_stats, mmd_ordering, vertex_separator_from_bisection
from tests.conftest import assert_separator, brute_force_cut, brute_force_fill

# --------------------------------------------------------------------------
# strategies
# --------------------------------------------------------------------------


@st.composite
def graphs(draw, max_n=24, weighted=False, min_n=2):
    """Arbitrary simple undirected graph as (n, edges, weights)."""
    n = draw(st.integers(min_n, max_n))
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(possible), unique=True, max_size=min(60, len(possible)))
    ) if possible else []
    if weighted and edges:
        weights = draw(
            st.lists(
                st.integers(1, 20), min_size=len(edges), max_size=len(edges)
            )
        )
    else:
        weights = None
    return from_edge_list(n, edges, weights)


settings.register_profile(
    "repro", deadline=None, max_examples=40,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


# --------------------------------------------------------------------------
# graph substrate
# --------------------------------------------------------------------------
@given(graphs(weighted=True))
def test_constructed_graphs_always_valid(g):
    validate_graph(g)


@given(graphs(weighted=True), st.integers(0, 3))
def test_edge_cut_matches_brute_force(g, seed):
    rng = np.random.default_rng(seed)
    where = rng.integers(0, 2, g.nvtxs)
    assert edge_cut(g, where) == brute_force_cut(g, where)


@given(g=graphs())
def test_graph_file_roundtrip(g, tmp_path_factory):
    path = tmp_path_factory.mktemp("io") / "g.graph"
    write_graph(g, path)
    back = read_graph(path)
    assert back.sorted_adjacency() == g.sorted_adjacency()


# --------------------------------------------------------------------------
# matching + contraction
# --------------------------------------------------------------------------
@given(graphs(weighted=True), st.sampled_from(list(MatchingScheme)), st.integers(0, 5))
def test_matchings_valid_and_maximal(g, scheme, seed):
    match = compute_matching(g, scheme, np.random.default_rng(seed))
    assert is_valid_matching(g, match)
    assert is_maximal_matching(g, match)


@given(graphs(weighted=True), st.integers(0, 5))
def test_contraction_invariants(g, seed):
    match = compute_matching(g, MatchingScheme.HEM, np.random.default_rng(seed))
    cmap, nc = coarse_map_from_matching(match)
    coarse = contract(g, cmap, nc)
    validate_graph(coarse)
    assert coarse.total_vwgt() == g.total_vwgt()
    assert coarse.total_adjwgt() == g.total_adjwgt() - matching_weight(g, match)


@given(graphs(weighted=True), st.integers(0, 3))
def test_projection_preserves_cut(g, seed):
    rng = np.random.default_rng(seed)
    match = compute_matching(g, MatchingScheme.RM, rng)
    cmap, nc = coarse_map_from_matching(match)
    coarse = contract(g, cmap, nc)
    coarse_where = rng.integers(0, 2, nc)
    assert edge_cut(coarse, coarse_where) == edge_cut(g, coarse_where[cmap])


# --------------------------------------------------------------------------
# refinement
# --------------------------------------------------------------------------
@given(graphs(weighted=True), st.sampled_from(list(RefinePolicy)), st.integers(0, 3))
def test_refinement_consistency_and_monotonicity(g, policy, seed):
    rng = np.random.default_rng(seed)
    where = rng.integers(0, 2, g.nvtxs).astype(np.int8)
    b = Bisection.from_where(g, where)

    def state_key(bisection):
        # Refinement optimises lexicographically: repair overweight first,
        # then cut — so the cut alone may *rise* while balance is fixed.
        import math

        cap = int(math.ceil(DEFAULT_OPTIONS.ubfactor * g.total_vwgt() / 2))
        over = max(0, int(bisection.pwgts[0]) - cap) + max(
            0, int(bisection.pwgts[1]) - cap
        )
        return (over, bisection.cut)

    before = state_key(b)
    refine_bisection(g, b, policy, DEFAULT_OPTIONS)
    # Cached values must match recomputation.
    assert b.cut == edge_cut(g, b.where)
    assert np.array_equal(b.pwgts, part_weights(g, b.where, 2))
    if policy is not RefinePolicy.NONE:
        assert state_key(b) <= before


# --------------------------------------------------------------------------
# multilevel bisection
# --------------------------------------------------------------------------
@given(graphs(min_n=4, weighted=True), st.integers(0, 3))
def test_bisect_always_valid(g, seed):
    result = bisect(
        g, DEFAULT_OPTIONS.with_(coarsen_to=4), np.random.default_rng(seed)
    )
    b = result.bisection
    assert b.cut == edge_cut(g, b.where)
    counts = np.bincount(b.where, minlength=2)
    assert counts[0] > 0 and counts[1] > 0


#: The policies that actually move vertices (NONE would vacuously pass).
_MOVE_POLICIES = [
    RefinePolicy.GR,
    RefinePolicy.KLR,
    RefinePolicy.BGR,
    RefinePolicy.BKLR,
    RefinePolicy.BKLGR,
]


@given(
    graphs(min_n=4, weighted=True),
    st.sampled_from(_MOVE_POLICIES),
    st.sampled_from(["heap", "bucket"]),
    st.booleans(),
    st.integers(0, 3),
)
@settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
def test_bisect_cut_exact_across_engines(g, policy, table, eager, seed):
    """Returned cut == recomputed edge_cut for every refinement engine.

    Sweeps policy × gain-table structure × gain-update strategy: the cached
    cut the incremental FM machinery maintains must agree exactly with a
    from-scratch :func:`edge_cut` recount no matter which engine ran.
    """
    options = DEFAULT_OPTIONS.with_(
        refinement=policy, gain_table=table, eager_gains=eager, coarsen_to=4
    )
    result = bisect(g, options, np.random.default_rng(seed))
    b = result.bisection
    assert b.cut == edge_cut(g, b.where)
    assert np.array_equal(b.pwgts, part_weights(g, b.where, 2))
    b.verify(g)


def test_public_driver_verifies_under_sanitizer(monkeypatch):
    """The public drivers survive REPRO_SANITIZE=1 and verify exactly."""
    from repro.core import partition
    from repro.matrices.mesh2d import grid2d

    monkeypatch.setenv("REPRO_SANITIZE", "1")
    g = grid2d(12, 11)
    for policy in _MOVE_POLICIES:
        options = DEFAULT_OPTIONS.with_(refinement=policy)
        result = bisect(g, options, np.random.default_rng(7))
        result.bisection.verify(g)
        kway = partition(g, 4, options, np.random.default_rng(7))
        assert kway.cut == edge_cut(g, kway.where)


# --------------------------------------------------------------------------
# separators and orderings
# --------------------------------------------------------------------------
@given(graphs(), st.integers(0, 3))
def test_vertex_separator_separates(g, seed):
    rng = np.random.default_rng(seed)
    where = rng.integers(0, 2, g.nvtxs)
    sep = vertex_separator_from_bisection(g, where)
    assert_separator(g, sep, where)


@given(graphs())
def test_mmd_is_permutation_with_sane_fill(g):
    o = mmd_ordering(g)
    o.verify()
    stats = factor_stats(g, o.perm)
    assert stats.fill >= 0


@given(graphs(max_n=14), st.integers(0, 3))
def test_symbolic_factor_matches_brute_force(g, seed):
    from repro.ordering import symbolic_factor

    perm = np.random.default_rng(seed).permutation(g.nvtxs)
    counts, _ = symbolic_factor(g, perm)
    brute_counts, _ = brute_force_fill(g, perm)
    assert np.array_equal(counts, brute_counts)


@given(graphs(min_n=4), st.integers(0, 2))
def test_mlnd_is_permutation(g, seed):
    from repro.ordering import mlnd_ordering

    o = mlnd_ordering(
        g, DEFAULT_OPTIONS.with_(coarsen_to=4), np.random.default_rng(seed),
        leaf_size=5,
    )
    o.verify()


@given(graphs(), st.integers(0, 3))
def test_separator_refinement_preserves_invariant(g, seed):
    from repro.ordering import (
        build_labelling,
        is_valid_separator_labelling,
        refine_vertex_separator,
        separator_weight,
    )

    rng = np.random.default_rng(seed)
    where = rng.integers(0, 2, g.nvtxs)
    sep = vertex_separator_from_bisection(g, where)
    where3 = build_labelling(g, where, sep)
    assert is_valid_separator_labelling(g, where3)
    before = separator_weight(g, where3)
    refine_vertex_separator(g, where3, np.random.default_rng(1))
    assert is_valid_separator_labelling(g, where3)
    assert separator_weight(g, where3) <= before


@given(graphs(min_n=4, weighted=True), st.integers(2, 4), st.integers(0, 2))
def test_kway_refine_invariants(g, k, seed):
    from repro.core import refine_kway
    from repro.graph import KWayPartition

    rng = np.random.default_rng(seed)
    where = rng.integers(0, k, g.nvtxs).astype(np.int32)
    p = KWayPartition.from_where(g, where, k)
    before = p.cut
    cap = int(np.ceil(DEFAULT_OPTIONS.ubfactor * g.total_vwgt() / k))
    over_before = int(np.maximum(p.pwgts - cap, 0).sum())
    refine_kway(g, p, DEFAULT_OPTIONS, np.random.default_rng(1))
    assert p.cut == edge_cut(g, p.where)
    assert np.array_equal(p.pwgts, part_weights(g, p.where, k))
    over_after = int(np.maximum(p.pwgts - cap, 0).sum())
    if over_before == 0:
        # Balanced input: greedy refinement accepts positive-gain moves
        # only, so the cut never increases and balance is preserved.
        assert p.cut <= before
        assert over_after == 0
    else:
        # Overweight input: repair moves may trade cut for balance, but
        # the total overweight never increases.
        assert over_after <= over_before


@given(graphs(min_n=2), st.integers(0, 3))
def test_handshake_matching_property(g, seed):
    from repro.core.matching import is_maximal_matching, is_valid_matching
    from repro.parallel import handshake_matching_rounds

    rounds, match = handshake_matching_rounds(g, np.random.default_rng(seed))
    assert is_valid_matching(g, match)
    assert is_maximal_matching(g, match)


@given(graphs(min_n=2), st.integers(0, 3))
def test_luby_coloring_property(g, seed):
    from repro.parallel import is_proper_coloring, luby_coloring

    color = luby_coloring(g, np.random.default_rng(seed))
    assert is_proper_coloring(g, color)


@given(graphs(min_n=2, max_n=18), st.integers(0, 2))
def test_cholesky_solves_random_spd_systems(g, seed):
    from repro.linalg import laplacian_system, sparse_cholesky

    A, b, x_true = laplacian_system(g, rng=np.random.default_rng(seed))
    perm = np.random.default_rng(seed).permutation(g.nvtxs)
    x = sparse_cholesky(A, perm).solve(b)
    assert np.allclose(x, x_true, atol=1e-8)


@given(graphs(min_n=2, max_n=20), st.integers(0, 2))
def test_permute_roundtrip_property(g, seed):
    from repro.graph import permute_graph

    perm = np.random.default_rng(seed).permutation(g.nvtxs)
    iperm = np.empty(g.nvtxs, dtype=np.int64)
    iperm[perm] = np.arange(g.nvtxs)
    back = permute_graph(permute_graph(g, perm), iperm)
    assert back.sorted_adjacency() == g.sorted_adjacency()
