"""Tests for the KL/FM refinement pass and the five policies (§3.3)."""

import numpy as np
import pytest

from repro.core.options import DEFAULT_OPTIONS, RefinePolicy
from repro.core.refine import PassStats, fm_pass, refine_bisection
from repro.graph import Bisection, edge_cut, part_weights
from tests.conftest import (
    assert_valid_bisection,
    dumbbell_graph,
    path_graph,
    random_graph,
)


def make_state(graph, where):
    where = np.asarray(where, dtype=np.int8).copy()
    pwgts = part_weights(graph, where, 2)
    cut = edge_cut(graph, where)
    return where, pwgts, cut


def loose_caps(graph):
    cap = int(np.ceil(0.6 * graph.total_vwgt()))
    return (cap, cap)


class TestFmPass:
    def test_finds_dumbbell_bridge(self):
        """From a bad split, one pass must recover the bridge cut."""
        g = dumbbell_graph(k=5)
        # Bad split: one clique vertex stranded on the wrong side.
        where = np.array([1] + [0] * 4 + [1] * 5, dtype=np.int8)
        where, pwgts, cut = make_state(g, where)
        new_cut, improvement = fm_pass(
            g, where, pwgts, loose_caps(g), cut,
            boundary_only=False, early_exit=50,
        )
        assert improvement > 0
        assert new_cut == 1  # exactly the bridge
        assert edge_cut(g, where) == new_cut
        assert np.array_equal(part_weights(g, where, 2), pwgts)

    def test_no_move_when_optimal(self):
        g = dumbbell_graph(k=4)
        where = np.array([0] * 4 + [1] * 4, dtype=np.int8)
        where, pwgts, cut = make_state(g, where)
        new_cut, improvement = fm_pass(
            g, where, pwgts, loose_caps(g), cut,
            boundary_only=True, early_exit=50,
        )
        assert new_cut == cut == 1
        assert improvement == 0

    def test_never_worsens_state(self):
        g = random_graph(50, 0.15, seed=1)
        rng = np.random.default_rng(0)
        for trial in range(5):
            where = rng.integers(0, 2, g.nvtxs).astype(np.int8)
            where, pwgts, cut = make_state(g, where)
            before = cut
            new_cut, _ = fm_pass(
                g, where, pwgts, loose_caps(g), cut,
                boundary_only=False, early_exit=50,
            )
            assert new_cut <= before
            assert edge_cut(g, where) == new_cut

    def test_boundary_pass_consistent(self):
        g = random_graph(50, 0.15, seed=2)
        rng = np.random.default_rng(1)
        where = rng.integers(0, 2, g.nvtxs).astype(np.int8)
        where, pwgts, cut = make_state(g, where)
        new_cut, _ = fm_pass(
            g, where, pwgts, loose_caps(g), cut,
            boundary_only=True, early_exit=50,
        )
        assert edge_cut(g, where) == new_cut
        assert np.array_equal(part_weights(g, where, 2), pwgts)

    def test_respects_balance_caps(self):
        # Path with tight caps: no vertex may move if it would overload.
        g = path_graph(10)
        where = np.array([0] * 5 + [1] * 5, dtype=np.int8)
        where, pwgts, cut = make_state(g, where)
        maxp = (5, 5)  # exactly balanced; any move violates
        new_cut, improvement = fm_pass(
            g, where, pwgts, loose_caps(g), cut,
            boundary_only=False, early_exit=50,
        )
        # With loose caps moves may happen; with tight caps they must not.
        where2 = np.array([0] * 5 + [1] * 5, dtype=np.int8)
        where2, pwgts2, cut2 = make_state(g, where2)
        fm_pass(g, where2, pwgts2, maxp, cut2, boundary_only=False, early_exit=50)
        assert np.abs(pwgts2[0] - pwgts2[1]) <= 0  # still balanced
        assert max(pwgts2) <= 5

    def test_repairs_overweight_partition(self):
        """A pass must be able to fix a partition that starts unbalanced."""
        g = path_graph(12)
        where = np.zeros(12, dtype=np.int8)
        where[-1] = 1  # 11 vs 1
        where, pwgts, cut = make_state(g, where)
        maxp = (8, 8)
        fm_pass(g, where, pwgts, maxp, cut, boundary_only=True, early_exit=50)
        assert pwgts.max() <= 8

    def test_early_exit_limits_futile_moves(self):
        g = random_graph(80, 0.1, seed=3)
        rng = np.random.default_rng(2)
        where = rng.integers(0, 2, g.nvtxs).astype(np.int8)
        where, pwgts, cut = make_state(g, where)
        stats = PassStats()
        fm_pass(
            g, where, pwgts, loose_caps(g), cut,
            boundary_only=False, early_exit=3, stats=stats,
        )
        # All vertices were seeded but early exit must stop well short of
        # moving everyone.
        assert stats.moves_tried < g.nvtxs


class TestRefinePolicies:
    @pytest.mark.parametrize("policy", list(RefinePolicy))
    def test_policies_preserve_consistency(self, policy):
        g = random_graph(60, 0.12, seed=4)
        rng = np.random.default_rng(3)
        where = rng.integers(0, 2, g.nvtxs).astype(np.int8)
        b = Bisection.from_where(g, where)
        before = b.cut
        refine_bisection(g, b, policy, DEFAULT_OPTIONS)
        assert_valid_bisection(g, b)
        if policy is not RefinePolicy.NONE:
            assert b.cut <= before

    def test_none_is_identity(self):
        g = random_graph(40, 0.2, seed=5)
        rng = np.random.default_rng(4)
        where = rng.integers(0, 2, g.nvtxs).astype(np.int8)
        b = Bisection.from_where(g, where)
        snapshot = b.where.copy()
        refine_bisection(g, b, RefinePolicy.NONE, DEFAULT_OPTIONS)
        assert np.array_equal(b.where, snapshot)

    def test_klr_at_least_as_good_as_gr(self):
        g = random_graph(80, 0.1, seed=6)
        rng1 = np.random.default_rng(5)
        where = rng1.integers(0, 2, g.nvtxs).astype(np.int8)
        b_gr = Bisection.from_where(g, where.copy())
        b_klr = Bisection.from_where(g, where.copy())
        refine_bisection(g, b_gr, RefinePolicy.GR, DEFAULT_OPTIONS)
        refine_bisection(g, b_klr, RefinePolicy.KLR, DEFAULT_OPTIONS)
        assert b_klr.cut <= b_gr.cut

    def test_bklgr_switches_on_boundary_size(self):
        """With a huge boundary BKLGR must behave like single-pass BGR."""
        g = random_graph(60, 0.3, seed=7)
        rng = np.random.default_rng(6)
        where = rng.integers(0, 2, g.nvtxs).astype(np.int8)
        b_hybrid = Bisection.from_where(g, where.copy())
        b_bgr = Bisection.from_where(g, where.copy())
        options = DEFAULT_OPTIONS.with_(bklgr_boundary_fraction=0.0)
        refine_bisection(g, b_hybrid, RefinePolicy.BKLGR, options)
        refine_bisection(g, b_bgr, RefinePolicy.BGR, options)
        assert b_hybrid.cut == b_bgr.cut

    def test_bklgr_multi_pass_when_boundary_small(self):
        g = random_graph(60, 0.3, seed=8)
        rng = np.random.default_rng(7)
        where = rng.integers(0, 2, g.nvtxs).astype(np.int8)
        b_hybrid = Bisection.from_where(g, where.copy())
        b_bklr = Bisection.from_where(g, where.copy())
        options = DEFAULT_OPTIONS.with_(bklgr_boundary_fraction=1.0)
        refine_bisection(g, b_hybrid, RefinePolicy.BKLGR, options)
        refine_bisection(g, b_bklr, RefinePolicy.BKLR, options)
        assert b_hybrid.cut == b_bklr.cut

    def test_empty_graph_noop(self):
        from repro.graph import from_edge_list

        g = from_edge_list(0, [])
        b = Bisection.from_where(g, np.zeros(0, dtype=np.int8))
        refine_bisection(g, b, RefinePolicy.KLR, DEFAULT_OPTIONS)
        assert b.cut == 0

    def test_stats_accumulate(self):
        g = random_graph(60, 0.12, seed=9)
        rng = np.random.default_rng(8)
        where = rng.integers(0, 2, g.nvtxs).astype(np.int8)
        b = Bisection.from_where(g, where)
        stats = PassStats()
        refine_bisection(g, b, RefinePolicy.KLR, DEFAULT_OPTIONS, stats=stats)
        assert stats.moves_tried >= stats.moves_kept >= 0
        assert stats.improvement >= 0
