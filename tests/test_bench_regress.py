"""Tests for the perf-regression gate (repro.bench.regress + bench-diff)."""

import json

import pytest

from repro.bench.regress import (
    classify_column,
    diff_paths,
    diff_payloads,
    format_report,
)
from repro.cli import main as cli_main
from repro.utils.errors import ConfigurationError


def payload(table="fig4_runtime", **cells):
    values = {"time_seconds": 1.0, "cut": 500}
    values.update(cells)
    return {
        "schema": "repro-bench/1",
        "table": table,
        "rows": [
            {"matrix": "BCSSTK31", "scheme": "mlkp", "values": dict(values)},
        ],
    }


class TestClassify:
    @pytest.mark.parametrize(
        "name,kind",
        [
            ("time_seconds", "time"),
            ("CTime", "time"),
            ("wall", "info"),
            ("32EC", "info"),
            ("cut", "quality"),
            ("ml_cut_16", "quality"),
            ("opcount", "quality"),
            ("fill", "quality"),
            ("balance", "info"),
            ("msb_rel", "info"),
        ],
    )
    def test_kinds(self, name, kind):
        assert classify_column(name) == kind


class TestDiffPayloads:
    def test_identical_is_ok(self):
        report = diff_payloads(payload(), payload())
        assert report.ok
        assert len(report.cells) == 2

    def test_time_regression_detected(self):
        report = diff_payloads(payload(), payload(time_seconds=2.0))
        assert not report.ok
        (bad,) = report.regressions
        assert bad.column == "time_seconds"
        assert bad.ratio == pytest.approx(2.0)

    def test_time_within_tolerance_ok(self):
        report = diff_payloads(
            payload(), payload(time_seconds=1.2), time_tol=0.25
        )
        assert report.ok

    def test_quality_regression_detected(self):
        report = diff_payloads(payload(), payload(cut=600))
        assert not report.ok
        assert report.regressions[0].kind == "quality"

    def test_quality_improvement_ok(self):
        assert diff_payloads(payload(), payload(cut=400)).ok

    def test_noise_floor_skips_tiny_times(self):
        report = diff_payloads(
            payload(time_seconds=0.001), payload(time_seconds=0.01)
        )
        assert report.ok  # 10x, but both under min_time

    def test_missing_and_added_rows_reported_not_gating(self):
        old = payload()
        new = payload()
        new["rows"][0]["matrix"] = "4ELT"
        report = diff_payloads(old, new)
        assert report.ok
        assert report.missing_rows == [("fig4_runtime", "BCSSTK31", "mlkp")]
        assert report.added_rows == [("fig4_runtime", "4ELT", "mlkp")]

    def test_format_report_mentions_regressions(self):
        report = diff_payloads(payload(), payload(time_seconds=9.0))
        text = format_report(report)
        assert "REGRESS" in text and "time_seconds" in text


class TestDirMode:
    def _write(self, path, data):
        path.write_text(json.dumps(data))

    def test_directories_matched_by_table(self, tmp_path):
        old_dir = tmp_path / "old"
        new_dir = tmp_path / "new"
        old_dir.mkdir()
        new_dir.mkdir()
        self._write(old_dir / "BENCH_fig4_runtime.json", payload())
        self._write(old_dir / "BENCH_table2.json", payload(table="table2"))
        self._write(new_dir / "BENCH_fig4_runtime.json", payload())
        report = diff_paths(str(old_dir), str(new_dir))
        assert report.ok
        assert report.missing_tables == ["table2"]

    def test_empty_directory_rejected(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(ConfigurationError):
            diff_paths(str(tmp_path / "empty"), str(tmp_path / "empty"))


class TestCLIExitCodes:
    def _file(self, tmp_path, name, data):
        path = tmp_path / name
        path.write_text(json.dumps(data))
        return str(path)

    def test_identical_exits_zero(self, tmp_path, capsys):
        old = self._file(tmp_path, "old.json", payload())
        new = self._file(tmp_path, "new.json", payload())
        assert cli_main(["bench-diff", old, new, "--fail-on-regress"]) == 0
        assert "0 regression(s)" in capsys.readouterr().out

    def test_injected_regression_exits_nonzero(self, tmp_path, capsys):
        old = self._file(tmp_path, "old.json", payload())
        new = self._file(tmp_path, "new.json", payload(time_seconds=5.0))
        assert cli_main(["bench-diff", old, new, "--fail-on-regress"]) == 1
        assert "REGRESS" in capsys.readouterr().out

    def test_regression_without_flag_exits_zero(self, tmp_path, capsys):
        old = self._file(tmp_path, "old.json", payload())
        new = self._file(tmp_path, "new.json", payload(time_seconds=5.0))
        assert cli_main(["bench-diff", old, new]) == 0
        assert "REGRESS" in capsys.readouterr().out

    def test_wide_tolerance_accepts_slowdown(self, tmp_path, capsys):
        old = self._file(tmp_path, "old.json", payload())
        new = self._file(tmp_path, "new.json", payload(time_seconds=1.8))
        assert cli_main(
            ["bench-diff", old, new, "--fail-on-regress", "--time-tol", "1.0"]
        ) == 0
        capsys.readouterr()

    def test_missing_input_exits_two(self, tmp_path, capsys):
        old = self._file(tmp_path, "old.json", payload())
        assert cli_main(
            ["bench-diff", old, str(tmp_path / "absent.json")]
        ) == 2
        assert "error:" in capsys.readouterr().err
