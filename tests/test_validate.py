"""Tests for CSR structural validation — every failure mode."""

import numpy as np
import pytest

from repro.graph import CSRGraph
from repro.utils.errors import GraphValidationError


def make_raw(**overrides):
    """A valid 3-vertex path, fields overridable to inject defects."""
    fields = dict(
        xadj=np.array([0, 1, 3, 4]),
        adjncy=np.array([1, 0, 2, 1]),
        adjwgt=np.array([1, 1, 1, 1]),
        vwgt=np.array([1, 1, 1]),
    )
    fields.update(overrides)
    return fields


def build(**overrides):
    return CSRGraph(**make_raw(**overrides), validate=True)


def test_valid_graph_passes():
    build()


def test_xadj_must_start_at_zero():
    with pytest.raises(GraphValidationError, match="xadj\\[0\\]"):
        build(xadj=np.array([1, 2, 4, 5]))


def test_xadj_must_end_at_len_adjncy():
    with pytest.raises(GraphValidationError, match="xadj\\[-1\\]"):
        build(xadj=np.array([0, 1, 3, 3]))


def test_xadj_must_be_nondecreasing():
    with pytest.raises(GraphValidationError, match="non-decreasing"):
        build(xadj=np.array([0, 3, 1, 4]))


def test_adjwgt_length_mismatch():
    with pytest.raises(GraphValidationError, match="adjwgt length"):
        build(adjwgt=np.array([1, 1, 1]))


def test_vwgt_length_mismatch():
    with pytest.raises(GraphValidationError, match="vwgt length"):
        build(vwgt=np.array([1, 1]))


def test_out_of_range_neighbor():
    with pytest.raises(GraphValidationError, match="out-of-range"):
        build(adjncy=np.array([1, 0, 3, 1]))


def test_negative_neighbor():
    with pytest.raises(GraphValidationError, match="out-of-range"):
        build(adjncy=np.array([1, 0, -1, 1]))


def test_nonpositive_vertex_weight():
    with pytest.raises(GraphValidationError, match="vertex weights"):
        build(vwgt=np.array([1, 0, 1]))


def test_nonpositive_edge_weight():
    with pytest.raises(GraphValidationError, match="edge weights"):
        build(adjwgt=np.array([1, 1, 0, 1]))


def test_self_loop_rejected():
    with pytest.raises(GraphValidationError, match="self-loop"):
        CSRGraph(
            xadj=np.array([0, 1]),
            adjncy=np.array([0]),
            adjwgt=np.array([1]),
            vwgt=np.array([1]),
        )


def test_asymmetric_adjacency_rejected():
    # Edge 0->1 present, 1->0 missing.
    with pytest.raises(GraphValidationError, match="symmetric"):
        CSRGraph(
            xadj=np.array([0, 1, 1]),
            adjncy=np.array([1]),
            adjwgt=np.array([1]),
            vwgt=np.array([1, 1]),
        )


def test_asymmetric_weights_rejected():
    with pytest.raises(GraphValidationError, match="symmetric"):
        CSRGraph(
            xadj=np.array([0, 1, 2]),
            adjncy=np.array([1, 0]),
            adjwgt=np.array([2, 3]),
            vwgt=np.array([1, 1]),
        )


def test_duplicate_neighbor_rejected():
    with pytest.raises(GraphValidationError, match="duplicate"):
        CSRGraph(
            xadj=np.array([0, 2, 4]),
            adjncy=np.array([1, 1, 0, 0]),
            adjwgt=np.array([1, 1, 1, 1]),
            vwgt=np.array([1, 1]),
        )


def test_empty_graph_is_valid():
    CSRGraph(
        xadj=np.array([0]),
        adjncy=np.array([], dtype=np.int32),
        adjwgt=np.array([], dtype=np.int64),
        vwgt=np.array([], dtype=np.int64),
    )


def test_isolated_vertices_are_valid():
    CSRGraph(
        xadj=np.array([0, 0, 0]),
        adjncy=np.array([], dtype=np.int32),
        adjwgt=np.array([], dtype=np.int64),
        vwgt=np.array([1, 1]),
    )


def test_validate_false_skips_checks():
    # Deliberately broken graph accepted when validation is off; this is
    # the documented contract for trusted internal constructors.
    g = CSRGraph(
        xadj=np.array([0, 1, 1]),
        adjncy=np.array([1]),
        adjwgt=np.array([1]),
        vwgt=np.array([1, 1]),
        validate=False,
    )
    assert g.nvtxs == 2
