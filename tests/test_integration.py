"""End-to-end integration tests across the whole pipeline.

Each test walks one realistic scenario through several subsystems at once
(generate → partition → metrics → ordering → factorization analysis), the
way the examples and benches do, catching interface drift that unit tests
cannot.
"""

import numpy as np
import pytest

import repro
from repro.core import partition_refined
from repro.core.options import DEFAULT_OPTIONS
from repro.graph import (
    edge_cut,
    partition_report,
    permute_graph,
    read_graph,
    write_graph,
)
from repro.matrices import suite
from repro.ordering import factor_stats, mlnd_ordering, mmd_ordering


WORKLOADS = ["LSHP3466", "BCSPWR10", "4ELT", "MEMPLUS", "FINAN512", "BCSSTK28"]


@pytest.mark.parametrize("name", WORKLOADS)
def test_partition_pipeline_per_workload_class(name):
    """Every workload class must survive the full partition pipeline."""
    graph = suite.load(name, scale=0.15, seed=0)
    part = repro.partition(graph, 8, seed=11)
    assert part.cut == edge_cut(graph, part.where)
    assert np.bincount(part.where, minlength=8).min() > 0
    report = partition_report(graph, part.where)
    assert report.communication_volume >= 0
    assert report.max_connectivity <= 7


@pytest.mark.parametrize("name", ["LSHP3466", "BCSPWR10", "BCSSTK28"])
def test_ordering_pipeline_per_workload_class(name):
    graph = suite.load(name, scale=0.12, seed=0)
    nd = repro.nested_dissection(graph, seed=3)
    nd.verify()
    md = mmd_ordering(graph)
    s_nd = factor_stats(graph, nd.perm)
    s_md = factor_stats(graph, md.perm)
    natural = factor_stats(graph, np.arange(graph.nvtxs))
    # Both orderings must beat the natural ordering clearly.
    assert s_nd.opcount < natural.opcount
    assert s_md.opcount < natural.opcount


def test_file_roundtrip_through_partitioner(tmp_path):
    """generate → write → read → partition → same result as in-memory."""
    graph = suite.load("4ELT", scale=0.15, seed=0)
    path = tmp_path / "g.graph"
    write_graph(graph, path)
    back = read_graph(path)
    p1 = repro.partition(graph, 4, seed=5)
    p2 = repro.partition(back, 4, seed=5)
    assert p1.cut == p2.cut
    assert np.array_equal(p1.where, p2.where)


def test_ordering_consumed_by_permutation(tmp_path):
    """An MLND ordering applied via permute_graph yields a graph whose
    *natural* factorization equals the ordered factorization."""
    graph = suite.load("LSHP3466", scale=0.1, seed=0)
    nd = mlnd_ordering(graph, DEFAULT_OPTIONS, np.random.default_rng(0))
    reordered = permute_graph(graph, nd.perm)
    assert (
        factor_stats(graph, nd.perm).opcount
        == factor_stats(reordered, np.arange(graph.nvtxs)).opcount
    )


def test_kway_refined_pipeline(grid16):
    refined = partition_refined(grid16, 6, DEFAULT_OPTIONS, np.random.default_rng(2))
    plain = repro.partition(grid16, 6, seed=2)
    assert refined.cut <= plain.cut
    report = partition_report(grid16, refined.where)
    assert report.balance <= DEFAULT_OPTIONS.ubfactor + 0.1


def test_weighted_graph_through_everything():
    """Vertex and edge weights must flow through coarsening, partitioning
    and refinement without being silently dropped."""
    from repro.graph import from_edge_list

    rng = np.random.default_rng(4)
    n = 150
    edges = [(i, i + 1) for i in range(n - 1)]
    edges += [(int(rng.integers(n)), int(rng.integers(n))) for _ in range(120)]
    edges = [(u, v) for u, v in edges if u != v]
    g = from_edge_list(
        n,
        edges,
        rng.integers(1, 9, len(edges)),
        vwgt=rng.integers(1, 5, n),
    )
    result = repro.bisect(g, seed=6)
    total = g.total_vwgt()
    cap = np.ceil(DEFAULT_OPTIONS.ubfactor * total / 2) + g.vwgt.max()
    assert result.bisection.pwgts.max() <= cap
    result.bisection.verify(g)


def test_seeded_runs_are_fully_reproducible():
    graph = suite.load("BCSPWR10", scale=0.15, seed=0)
    a = repro.partition(graph, 8, seed=99)
    b = repro.partition(graph, 8, seed=99)
    assert np.array_equal(a.where, b.where)
    oa = repro.nested_dissection(graph, seed=99)
    ob = repro.nested_dissection(graph, seed=99)
    assert np.array_equal(oa.perm, ob.perm)


def test_all_refinement_policies_complete_on_irregular_graph():
    graph = suite.load("MEMPLUS", scale=0.1, seed=0)
    cuts = {}
    for policy in ("gr", "klr", "bgr", "bklr", "bklgr"):
        p = repro.partition(graph, 4, seed=3, refinement=policy)
        cuts[policy] = p.cut
    best = min(cuts.values())
    assert max(cuts.values()) <= 2.0 * best  # same ballpark, none broken
