"""Tests for the multilevel bisection driver and the coarsening phase."""

import numpy as np
import pytest

from repro.core import bisect, coarsen
from repro.core.options import (
    DEFAULT_OPTIONS,
    InitialScheme,
    MatchingScheme,
    MultilevelOptions,
    RefinePolicy,
)
from repro.graph import edge_cut, from_edge_list
from repro.utils.errors import PartitionError
from tests.conftest import (
    assert_valid_bisection,
    dumbbell_graph,
    path_graph,
    random_graph,
    star_graph,
)


class TestCoarsening:
    def test_hierarchy_shrinks(self, grid16):
        h = coarsen(grid16, DEFAULT_OPTIONS, np.random.default_rng(0))
        sizes = [g.nvtxs for g in h.graphs]
        assert sizes[0] == 256
        assert all(a > b for a, b in zip(sizes, sizes[1:]))
        assert sizes[-1] <= DEFAULT_OPTIONS.coarsen_to or len(sizes) == 1

    def test_total_vertex_weight_conserved_across_levels(self, grid16):
        h = coarsen(grid16, DEFAULT_OPTIONS, np.random.default_rng(0))
        totals = {g.total_vwgt() for g in h.graphs}
        assert totals == {grid16.total_vwgt()}

    def test_edge_weight_monotonically_decreases(self, grid16):
        h = coarsen(grid16, DEFAULT_OPTIONS, np.random.default_rng(0))
        weights = [g.total_adjwgt() for g in h.graphs]
        assert all(a >= b for a, b in zip(weights, weights[1:]))

    def test_stall_detection_on_star(self):
        # A maximal matching on a star collapses one edge per level;
        # the stall ratio must terminate coarsening early.
        g = star_graph(200)
        h = coarsen(g, DEFAULT_OPTIONS, np.random.default_rng(0))
        assert h.nlevels < 10

    def test_already_small_graph_is_single_level(self):
        g = path_graph(10)
        h = coarsen(g, DEFAULT_OPTIONS, np.random.default_rng(0))
        assert h.nlevels == 1

    def test_max_levels_cap(self, grid16):
        options = DEFAULT_OPTIONS.with_(max_coarsen_levels=2, coarsen_to=2)
        h = coarsen(grid16, options, np.random.default_rng(0))
        assert h.nlevels <= 3

    def test_all_matchings_coarsen(self, grid16):
        for scheme in MatchingScheme:
            h = coarsen(
                grid16,
                DEFAULT_OPTIONS.with_(matching=scheme),
                np.random.default_rng(0),
            )
            assert h.coarsest.nvtxs < grid16.nvtxs

    def test_project_to_finest(self, grid16):
        h = coarsen(grid16, DEFAULT_OPTIONS, np.random.default_rng(0))
        values = np.arange(h.coarsest.nvtxs)
        fine = h.project_to_finest(values)
        assert len(fine) == grid16.nvtxs
        # Every fine vertex carries its multinode's value.
        composed = np.arange(grid16.nvtxs)
        label = values
        for cmap in reversed(h.cmaps):
            label = label[cmap]
        assert np.array_equal(fine, label)


class TestBisect:
    def test_valid_result(self, grid16):
        result = bisect(grid16, DEFAULT_OPTIONS, np.random.default_rng(0))
        assert_valid_bisection(grid16, result.bisection)

    def test_cut_matches_recomputation(self, grid16):
        result = bisect(grid16, DEFAULT_OPTIONS, np.random.default_rng(1))
        assert result.bisection.cut == edge_cut(grid16, result.bisection.where)

    def test_balance_within_ubfactor(self, grid16):
        options = DEFAULT_OPTIONS.with_(ubfactor=1.05)
        result = bisect(grid16, options, np.random.default_rng(2))
        cap = np.ceil(1.05 * grid16.total_vwgt() / 2)
        assert result.bisection.pwgts.max() <= cap

    def test_deterministic_for_fixed_seed(self, grid16):
        a = bisect(grid16, DEFAULT_OPTIONS, np.random.default_rng(7))
        b = bisect(grid16, DEFAULT_OPTIONS, np.random.default_rng(7))
        assert np.array_equal(a.bisection.where, b.bisection.where)
        assert a.bisection.cut == b.bisection.cut

    def test_dumbbell_optimal(self):
        g = dumbbell_graph(k=8)
        result = bisect(g, DEFAULT_OPTIONS, np.random.default_rng(0))
        assert result.bisection.cut == 1

    def test_grid_cut_near_optimal(self, grid16):
        # Optimal bisection of a 16x16 grid cuts 16 edges; multilevel
        # should land within 50%.
        result = bisect(grid16, DEFAULT_OPTIONS, np.random.default_rng(3))
        assert result.bisection.cut <= 24

    def test_target0_controls_split(self, grid16):
        total = grid16.total_vwgt()
        target = total // 4
        result = bisect(
            grid16, DEFAULT_OPTIONS, np.random.default_rng(4), target0=target
        )
        assert result.bisection.pwgts[0] <= np.ceil(1.10 * target)

    def test_invalid_target_rejected(self, grid16):
        with pytest.raises(PartitionError):
            bisect(grid16, DEFAULT_OPTIONS, target0=0)
        with pytest.raises(PartitionError):
            bisect(grid16, DEFAULT_OPTIONS, target0=grid16.total_vwgt())

    def test_too_small_graph_rejected(self):
        with pytest.raises(PartitionError):
            bisect(from_edge_list(1, []))

    def test_timers_populated(self, grid16):
        result = bisect(grid16, DEFAULT_OPTIONS, np.random.default_rng(5))
        assert result.timers.total("CTime") > 0
        assert result.timers.total("ITime") > 0
        assert result.timers.count("RTime") == result.nlevels

    def test_refinement_improves_on_projection(self, grid16):
        """Final cut must be ≤ the coarsest graph's initial cut (the §3
        argument for refinement: finer graphs have more freedom)."""
        result = bisect(grid16, DEFAULT_OPTIONS, np.random.default_rng(6))
        assert result.bisection.cut <= result.initial_cut

    def test_hierarchy_reuse(self, grid16):
        h = coarsen(grid16, DEFAULT_OPTIONS, np.random.default_rng(8))
        r1 = bisect(grid16, DEFAULT_OPTIONS, np.random.default_rng(9), hierarchy=h)
        assert_valid_bisection(grid16, r1.bisection)
        assert r1.nlevels == h.nlevels

    @pytest.mark.parametrize("matching", list(MatchingScheme))
    @pytest.mark.parametrize("initial", list(InitialScheme))
    def test_all_phase_combinations(self, matching, initial):
        g = random_graph(120, 0.08, seed=10, connected=True)
        options = MultilevelOptions(
            matching=matching, initial=initial, coarsen_to=30
        )
        result = bisect(g, options, np.random.default_rng(0))
        assert_valid_bisection(g, result.bisection)

    @pytest.mark.parametrize("refinement", list(RefinePolicy))
    def test_all_refinement_policies(self, refinement, grid16):
        options = DEFAULT_OPTIONS.with_(refinement=refinement)
        result = bisect(grid16, options, np.random.default_rng(0))
        assert_valid_bisection(grid16, result.bisection)

    def test_weighted_graph(self):
        g = from_edge_list(
            6,
            [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)],
            [3, 1, 4, 1, 5, 9],
            vwgt=[2, 1, 2, 1, 2, 1],
        )
        result = bisect(g, DEFAULT_OPTIONS.with_(coarsen_to=4))
        assert_valid_bisection(g, result.bisection)
