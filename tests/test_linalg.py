"""Tests for the sparse linear algebra consumers (Cholesky, CG, cost model)."""

import numpy as np
import pytest

from repro.linalg import (
    conjugate_gradient,
    laplacian_system,
    simulate_parallel_matvec,
    sparse_cholesky,
)
from repro.linalg.cholesky import FactorizationError
from repro.linalg.system import SparseSPD
from repro.ordering import factor_stats, mlnd_ordering, mmd_ordering
from tests.conftest import path_graph, random_graph


@pytest.fixture
def system20():
    from repro.matrices import grid2d

    g = grid2d(8, 8)
    return (g, *laplacian_system(g, rng=np.random.default_rng(0)))


class TestSparseSPD:
    def test_matvec_matches_dense(self, system20):
        g, A, b, x_true = system20
        rng = np.random.default_rng(1)
        dense = A.dense()
        for _ in range(3):
            x = rng.standard_normal(A.n)
            assert np.allclose(A.matvec(x), dense @ x)

    def test_dense_symmetric(self, system20):
        _, A, _, _ = system20
        dense = A.dense()
        assert np.allclose(dense, dense.T)

    def test_b_consistent_with_x_true(self, system20):
        _, A, b, x_true = system20
        assert np.allclose(A.matvec(x_true), b)

    def test_permuted_matches_dense_permutation(self, system20):
        _, A, _, _ = system20
        perm = np.random.default_rng(2).permutation(A.n)
        Ap = A.permuted(perm)
        dense = A.dense()
        assert np.allclose(Ap.dense(), dense[np.ix_(perm, perm)])


class TestCholesky:
    def test_solves_exactly(self, system20):
        _, A, b, x_true = system20
        x = sparse_cholesky(A).solve(b)
        assert np.allclose(x, x_true, atol=1e-10)

    def test_solve_with_ordering(self, system20):
        g, A, b, x_true = system20
        o = mmd_ordering(g)
        x = sparse_cholesky(A, o.perm).solve(b)
        assert np.allclose(x, x_true, atol=1e-10)

    def test_factor_matches_dense_cholesky_nnz_free(self, system20):
        """L from the sparse code must reproduce dense numpy's factor on
        the permuted matrix (up to fill zeros)."""
        _, A, _, _ = system20
        F = sparse_cholesky(A)
        dense_L = np.linalg.cholesky(A.dense())
        assert np.allclose(F.diag, np.diag(dense_L))
        for j in range(A.n):
            assert np.allclose(F.values[j], dense_L[F.structs[j], j])

    def test_ordering_reduces_nnz(self):
        from repro.matrices import grid2d

        g = grid2d(14, 14)
        A, b, _ = laplacian_system(g, rng=np.random.default_rng(3))
        natural = sparse_cholesky(A)
        ordered = sparse_cholesky(A, mmd_ordering(g).perm)
        assert ordered.nnz() < natural.nnz()

    def test_nnz_matches_symbolic_prediction(self):
        from repro.matrices import grid2d

        g = grid2d(10, 10)
        A, _, _ = laplacian_system(g)
        o = mlnd_ordering(g, rng=np.random.default_rng(0))
        F = sparse_cholesky(A, o.perm)
        stats = factor_stats(g, o.perm)
        assert F.nnz() == stats.nnz_factor

    def test_log_determinant(self, system20):
        _, A, _, _ = system20
        F = sparse_cholesky(A)
        sign, logdet = np.linalg.slogdet(A.dense())
        assert sign > 0
        assert F.log_determinant() == pytest.approx(logdet, rel=1e-10)

    def test_indefinite_rejected(self):
        g = path_graph(3)
        A = SparseSPD(g, diag=np.array([1.0, -5.0, 1.0]),
                      offdiag=-np.ones(4))
        with pytest.raises(FactorizationError, match="positive definite"):
            sparse_cholesky(A)

    def test_disconnected_graph(self):
        from tests.conftest import two_triangles

        g = two_triangles()
        A, b, x_true = laplacian_system(g, rng=np.random.default_rng(4))
        x = sparse_cholesky(A).solve(b)
        assert np.allclose(x, x_true, atol=1e-10)


class TestCG:
    def test_converges_to_truth(self, system20):
        _, A, b, x_true = system20
        res = conjugate_gradient(A, b, tol=1e-12)
        assert res.converged
        assert np.allclose(res.x, x_true, atol=1e-8)

    def test_jacobi_preconditioning_converges(self, system20):
        _, A, b, x_true = system20
        res = conjugate_gradient(A, b, tol=1e-12, jacobi=True)
        assert res.converged
        assert np.allclose(res.x, x_true, atol=1e-8)

    def test_residual_history_decreasing_overall(self, system20):
        _, A, b, _ = system20
        res = conjugate_gradient(A, b, tol=1e-10)
        assert res.residual_history[-1] < res.residual_history[0]
        assert res.iterations + 1 == len(res.residual_history)

    def test_maxiter_respected(self, system20):
        _, A, b, _ = system20
        res = conjugate_gradient(A, b, tol=1e-16, maxiter=3)
        assert res.iterations == 3
        assert not res.converged

    def test_warm_start(self, system20):
        _, A, b, x_true = system20
        cold = conjugate_gradient(A, b, tol=1e-10)
        warm = conjugate_gradient(A, b, tol=1e-10, x0=x_true)
        assert warm.iterations <= cold.iterations


class TestMatvecModel:
    def test_serial_time_is_flops(self, grid16):
        where = np.zeros(grid16.nvtxs, dtype=np.int32)
        cost = simulate_parallel_matvec(grid16, where, 1)
        assert cost.comm_max == 0.0
        assert cost.step_time == cost.serial_time

    def test_better_partition_cheaper_step(self, grid16):
        """A contiguous partition must beat a random scatter."""
        import repro

        good = repro.partition(grid16, 4, seed=1)
        rng = np.random.default_rng(0)
        bad = rng.integers(0, 4, grid16.nvtxs)
        c_good = simulate_parallel_matvec(grid16, good.where, 4)
        c_bad = simulate_parallel_matvec(grid16, bad, 4)
        assert c_good.step_time < c_bad.step_time

    def test_communication_fraction_bounds(self, grid16):
        import repro

        p = repro.partition(grid16, 4, seed=2)
        cost = simulate_parallel_matvec(grid16, p.where, 4)
        assert 0.0 <= cost.communication_fraction <= 1.0

    def test_zero_comm_machine(self, grid16):
        import repro

        p = repro.partition(grid16, 4, seed=3)
        cost = simulate_parallel_matvec(
            grid16, p.where, 4, t_word=0.0, t_startup=0.0
        )
        assert cost.comm_max == 0.0
        assert cost.speedup > 3.0  # balanced compute only
