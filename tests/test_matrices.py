"""Tests for the synthetic workload generators (Table 1 analogues)."""

import numpy as np
import pytest

from repro.graph import is_connected, validate_graph
from repro.matrices import (
    airfoil,
    fe_tet3d,
    financial_lp,
    graded_lshape,
    grid2d,
    grid3d,
    highway_network,
    memory_circuit,
    power_network,
    process_matrix,
    sequential_circuit,
    stiffness3d,
)


ALL_GENERATORS = {
    "grid2d": lambda: grid2d(12, 9),
    "grid2d_9pt": lambda: grid2d(10, 10, nine_point=True),
    "lshape": lambda: graded_lshape(400),
    "airfoil": lambda: airfoil(600, seed=1),
    "grid3d": lambda: grid3d(5, 4, 3),
    "tet3d": lambda: fe_tet3d(500, seed=1),
    "stiffness": lambda: stiffness3d(150, dofs=3, seed=1),
    "power": lambda: power_network(800, seed=1),
    "highway": lambda: highway_network(900, seed=1),
    "circuit": lambda: sequential_circuit(700, seed=1),
    "memory": lambda: memory_circuit(600, seed=1),
    "finlp": lambda: financial_lp(800, seed=1),
    "process": lambda: process_matrix(800, seed=1),
}


@pytest.mark.parametrize("name", ALL_GENERATORS, ids=ALL_GENERATORS.keys())
class TestAllGenerators:
    def test_structurally_valid(self, name):
        g = ALL_GENERATORS[name]()
        validate_graph(g)

    def test_connected(self, name):
        assert is_connected(ALL_GENERATORS[name]())

    def test_simple_unweighted(self, name):
        """All Table 1 analogues are matrix patterns: unit weights."""
        g = ALL_GENERATORS[name]()
        assert np.all(g.adjwgt == 1)
        assert np.all(g.vwgt == 1)

    def test_deterministic(self, name):
        a = ALL_GENERATORS[name]()
        b = ALL_GENERATORS[name]()
        assert a.sorted_adjacency() == b.sorted_adjacency()


class TestGrid2d:
    def test_exact_structure(self):
        g = grid2d(3, 2)
        assert g.nvtxs == 6
        assert g.nedges == 7  # 4 horizontal + 3 vertical
        assert g.has_edge(0, 1) and g.has_edge(0, 3)

    def test_nine_point_more_edges(self):
        five = grid2d(6, 6)
        nine = grid2d(6, 6, nine_point=True)
        assert nine.nedges == five.nedges + 2 * 25  # two diagonals per cell

    def test_coords_attached(self):
        g = grid2d(4, 3)
        assert g.coords.shape == (12, 2)
        assert np.allclose(g.coords[5], [1.0, 1.0])

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            grid2d(0, 5)


class TestLShape:
    def test_quadrant_removed(self):
        g = graded_lshape(300)
        full = g.coords
        # No vertex strictly inside the (+,+) open quadrant.
        inside = (full[:, 0] > 1e-9) & (full[:, 1] > 1e-9)
        assert not inside.any()

    def test_size_close_to_target(self):
        g = graded_lshape(3466)
        assert abs(g.nvtxs - 3466) < 0.1 * 3466

    def test_grading_shrinks_spacing_near_corner(self):
        g = graded_lshape(400, grading=0.5)
        xs = np.unique(g.coords[:, 0])
        gaps = np.diff(xs)
        mid = len(gaps) // 2
        # Spacing near the corner (centre of the sorted axis) is smaller
        # than at the domain edge.
        assert gaps[mid] < gaps[0]


class TestClassCharacteristics:
    def test_power_degree_low(self):
        g = power_network(2000, seed=2)
        assert 1.2 <= g.average_degree() <= 3.5

    def test_highway_degree_roadlike(self):
        g = highway_network(2000, seed=2)
        assert 2.0 <= g.average_degree() <= 4.5

    def test_stiffness_degree_high(self):
        g = stiffness3d(300, dofs=3, seed=2)
        assert g.average_degree() > 20

    def test_stiffness_dof_cliques(self):
        g = stiffness3d(100, dofs=3, seed=3)
        # DOFs of node 0 are vertices 0,1,2 and must form a clique.
        assert g.has_edge(0, 1) and g.has_edge(0, 2) and g.has_edge(1, 2)

    def test_memory_has_hubs(self):
        # Word/bit-line drivers have degree ≈ √n while cells sit at ~7;
        # hub-to-average contrast grows with n, so use a modest multiple.
        g = memory_circuit(1500, seed=2)
        assert g.degrees().max() > 4 * g.average_degree()

    def test_circuit_skewed_degrees(self):
        g = sequential_circuit(1500, seed=2)
        assert g.degrees().max() > 4 * g.average_degree()

    def test_circuits_have_no_coords(self):
        assert sequential_circuit(400, seed=1).coords is None
        assert memory_circuit(400, seed=1).coords is None

    def test_meshes_have_coords(self):
        assert airfoil(400, seed=1).coords is not None
        assert fe_tet3d(300, seed=1).coords is not None

    def test_airfoil_density_gradient(self):
        g = airfoil(1200, seed=4)
        r = np.linalg.norm(g.coords, axis=1)
        near = (r < 0.4).sum()
        far = (r > 0.9).sum()
        assert near > far  # points concentrate at the airfoil

    def test_expand_dofs_validation(self):
        from repro.matrices.mesh3d import expand_dofs

        with pytest.raises(ValueError):
            expand_dofs(grid3d(2, 2, 2), 0)

    def test_tet3d_elongation(self):
        g = fe_tet3d(400, seed=5, elongation=(4.0, 1.0, 1.0))
        extents = g.coords.max(axis=0) - g.coords.min(axis=0)
        assert extents[0] > 2.5 * extents[1]
