"""Integration tests: tracing threaded through the real pipeline.

Runs the public drivers with a live tracer and checks the trace is
schema-valid, forms one well-nested span tree per driver entry, and that
the per-phase span totals reconcile with the ``PhaseTimer`` numbers the
result reports (the acceptance bar for the observability layer).
"""

import json

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.core import bisect, partition
from repro.core.options import DEFAULT_OPTIONS
from repro.graph import write_graph
from repro.matrices import grid2d
from repro.obs import PHASE_KEYS, profile, read_trace
from repro.ordering import mlnd_ordering


@pytest.fixture
def trace_path(tmp_path):
    return str(tmp_path / "trace.jsonl")


def phase_fields(records):
    """phase tag → summed span duration, from raw records."""
    return profile(records)["phases"]


class TestBisectTrace:
    def test_schema_valid_and_reconciles_with_timers(self, trace_path):
        g = grid2d(20, 19)
        options = DEFAULT_OPTIONS.with_(trace=trace_path)
        result = bisect(g, options, np.random.default_rng(1))
        records = read_trace(trace_path)  # validates every line

        kinds = {r["t"] for r in records}
        assert {"meta", "span", "event"} <= kinds
        meta = records[0]
        assert meta["t"] == "meta" and meta["run"] == "bisect"
        assert meta["fields"]["nvtxs"] == g.nvtxs

        # Span totals must reconcile with the result's phase timers: every
        # phase span is opened inside the matching ``timers.phase`` block,
        # so the span sum is bounded by the timer and accounts for almost
        # all of it (the gap is the with-statement bookkeeping itself).
        phases = phase_fields(records)
        for key in PHASE_KEYS:
            timer = result.timers.total(key)
            assert phases[key] <= timer + 1e-6, key
            assert timer - phases[key] < 0.05, (key, timer, phases[key])

    def test_span_tree_is_well_nested(self, trace_path):
        g = grid2d(12, 12)
        bisect(
            g, DEFAULT_OPTIONS.with_(trace=trace_path), np.random.default_rng(0)
        )
        spans = {r["id"]: r for r in read_trace(trace_path) if r["t"] == "span"}
        names = {s["name"] for s in spans.values()}
        assert {"coarsen", "initial", "refine", "project"} <= names
        for span in spans.values():
            if span["parent"] is not None:
                parent = spans[span["parent"]]
                assert parent["t0"] <= span["t0"] + 1e-9
            if span["name"] in ("coarsen", "initial", "refine", "project"):
                assert span["fields"]["phase"] in PHASE_KEYS

    def test_events_and_counters_reconcile_with_stats(self, trace_path):
        g = grid2d(16, 16)
        result = bisect(
            g, DEFAULT_OPTIONS.with_(trace=trace_path), np.random.default_rng(2)
        )
        records = read_trace(trace_path)
        events = [r for r in records if r["t"] == "event"]
        by_name = {}
        for e in events:
            by_name.setdefault(e["name"], []).append(e)
        # One coarsen.level event per contraction.
        assert len(by_name["coarsen.level"]) == result.nlevels - 1
        # FM pass events: the accounting satellite — moves executed and
        # rejected are reported separately and sum to the stats totals.
        passes = by_name["refine.pass"]
        assert sum(e["fields"]["moves"] for e in passes) == result.stats.moves_tried
        assert (
            sum(e["fields"]["rejected"] for e in passes)
            == result.stats.moves_rejected
        )
        assert sum(e["fields"]["kept"] for e in passes) == result.stats.moves_kept
        (counters,) = [r for r in records if r["t"] == "counters"]
        assert counters["values"]["fm.moves"] == result.stats.moves_tried
        assert counters["values"]["bisect.calls"] == 1

    def test_initial_attempt_events(self, trace_path):
        g = grid2d(10, 10)
        bisect(
            g, DEFAULT_OPTIONS.with_(trace=trace_path), np.random.default_rng(0)
        )
        records = read_trace(trace_path)
        attempts = [r for r in records if r["t"] == "event"
                    and r["name"] == "initial.attempt"]
        assert attempts
        assert attempts[-1]["fields"]["outcome"] == "accepted"


class TestDriverTraces:
    def test_kway_partition_single_tree(self, trace_path):
        g = grid2d(14, 14)
        result = partition(
            g, 4, DEFAULT_OPTIONS.with_(trace=trace_path),
            np.random.default_rng(0),
        )
        records = read_trace(trace_path)
        metas = [r for r in records if r["t"] == "meta"]
        # One tracer spans the whole recursive run — not one per bisect.
        assert len(metas) == 1 and metas[0]["run"] == "partition"
        roots = [
            r for r in records
            if r["t"] == "span" and r["parent"] is None
        ]
        assert [r["name"] for r in roots] == ["partition"]
        assert roots[0]["fields"]["cut"] == result.cut
        (counters,) = [r for r in records if r["t"] == "counters"]
        assert counters["values"]["bisect.calls"] == 3  # 4 parts → 3 bisects

    def test_ordering_trace(self, trace_path):
        g = grid2d(12, 12)
        mlnd_ordering(
            g, DEFAULT_OPTIONS.with_(trace=trace_path),
            np.random.default_rng(0),
        )
        records = read_trace(trace_path)
        assert records[0]["run"] == "mlnd"
        names = {r["name"] for r in records if r["t"] == "span"}
        assert "dissect" in names
        events = {r["name"] for r in records if r["t"] == "event"}
        assert "nd.separator" in events


class TestCLITrace:
    @pytest.fixture
    def graph_file(self, tmp_path):
        path = tmp_path / "grid.graph"
        write_graph(grid2d(10, 10), path)
        return str(path)

    def test_partition_trace_flag(self, graph_file, trace_path, capsys):
        assert cli_main(
            ["partition", graph_file, "4", "--trace", trace_path]
        ) == 0
        records = read_trace(trace_path)
        assert records[0]["run"] == "partition"

    def test_trace_subcommand_text(self, graph_file, trace_path, capsys):
        assert cli_main(
            ["partition", graph_file, "2", "--trace", trace_path]
        ) == 0
        capsys.readouterr()
        assert cli_main(["trace", trace_path]) == 0
        out = capsys.readouterr().out
        assert "runs:" in out and "CTime" in out and "spans" in out

    def test_trace_subcommand_json(self, graph_file, trace_path, capsys):
        assert cli_main(
            ["partition", graph_file, "2", "--trace", trace_path]
        ) == 0
        capsys.readouterr()
        assert cli_main(["trace", trace_path, "--json"]) == 0
        prof = json.loads(capsys.readouterr().out)
        assert set(prof) == {
            "runs", "phases", "spans", "rollup", "events", "counters",
        }
        assert "kway.branch" in prof["rollup"]["driver"]["spans"]

    def test_trace_subcommand_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        assert cli_main(["trace", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_trace_subcommand_missing_file(self, tmp_path, capsys):
        assert cli_main(["trace", str(tmp_path / "absent.jsonl")]) == 2

    def test_order_trace_flag(self, graph_file, trace_path, capsys):
        assert cli_main(
            ["order", graph_file, "--trace", trace_path]
        ) == 0
        assert read_trace(trace_path)[0]["run"] == "mlnd"

    def test_trace_to_stdout(self, graph_file, capsys):
        assert cli_main(["partition", graph_file, "2", "--trace", "-"]) == 0
        out = capsys.readouterr().out
        jsonl = [ln for ln in out.splitlines() if ln.startswith("{")]
        assert any('"t":"meta"' in ln for ln in jsonl)


class TestProfileRollup:
    """Kernel and recursion spans land in per-phase rollup buckets, not
    "other" (see SPAN_PHASES in repro.obs.export)."""

    def test_match_and_branch_spans_bucketed(self, trace_path):
        g = grid2d(40, 40)  # large enough that coarsening actually matches
        options = DEFAULT_OPTIONS.with_(trace=trace_path)
        partition(g, 4, options, np.random.default_rng(2))
        prof = profile(read_trace(trace_path))

        match_spans = prof["rollup"]["CTime"]["spans"]
        assert "coarsen.match" in match_spans
        assert match_spans["coarsen.match"] > 0.0

        driver_spans = prof["rollup"]["driver"]["spans"]
        assert "kway.branch" in driver_spans
        assert "partition" in driver_spans
        assert "coarsen.match" not in prof["rollup"]["other"]["spans"]
        assert "kway.branch" not in prof["rollup"]["other"]["spans"]

    def test_phases_totals_unchanged_by_rollup(self, trace_path):
        # The rollup is additional reporting: the ``phases`` reconciliation
        # numbers must not absorb the (nested, untagged) kernel spans.
        g = grid2d(40, 40)
        options = DEFAULT_OPTIONS.with_(trace=trace_path)
        result = partition(g, 2, options, np.random.default_rng(4))
        prof = profile(read_trace(trace_path))
        for key in PHASE_KEYS:
            assert prof["phases"][key] <= result.timers.get(key, 0.0) + 1e-6
