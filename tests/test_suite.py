"""Tests for the benchmark suite registry."""

import pytest

from repro.graph import is_connected, validate_graph
from repro.matrices import SUITE, load, suite_names
from repro.matrices.suite import (
    FIGURE_MATRICES,
    ORDERING_MATRICES,
    TABLE_MATRICES,
    _CACHE,
)


class TestRegistry:
    def test_all_24_table1_matrices_present(self):
        assert len(SUITE) == 24
        for must in ("BCSSTK31", "4ELT", "MAP", "MEMPLUS", "TROLL", "BCSPWR10"):
            assert must in SUITE

    def test_experiment_subsets_are_registered(self):
        for subset in (TABLE_MATRICES, FIGURE_MATRICES, ORDERING_MATRICES):
            for name in subset:
                assert name in SUITE

    def test_subset_sizes_match_paper(self):
        assert len(TABLE_MATRICES) == 12
        assert len(FIGURE_MATRICES) == 16
        assert len(ORDERING_MATRICES) == 18

    def test_suite_names_order(self):
        names = suite_names()
        assert names[0] == "BCSSTK28"
        assert len(names) == 24

    def test_entries_record_paper_orders(self):
        assert SUITE["BCSPWR10"].paper_order == 5300
        assert SUITE["MAP"].paper_order == 267241
        assert SUITE["LSHP3466"].description == "Graded L-shape pattern"


class TestLoad:
    def test_load_by_name_and_short(self):
        a = load("LSHP3466", scale=0.2)
        b = load("LS34", scale=0.2)
        assert a is b  # same cache entry

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown suite matrix"):
            load("NOPE")

    def test_scale_shrinks(self):
        small = load("4ELT", scale=0.1, cache=False)
        big = load("4ELT", scale=0.3, cache=False)
        assert small.nvtxs < big.nvtxs

    def test_cache_behaviour(self):
        _CACHE.clear()
        a = load("BCSPWR10", scale=0.1)
        b = load("BCSPWR10", scale=0.1)
        assert a is b
        c = load("BCSPWR10", scale=0.1, cache=False)
        assert c is not a

    @pytest.mark.parametrize("name", ["4ELT", "BCSPWR10", "MEMPLUS", "FINAN512",
                                      "BCSSTK28", "MAP"])
    def test_small_scale_loads_are_valid(self, name):
        g = load(name, scale=0.15, cache=False)
        validate_graph(g)
        assert is_connected(g)
        assert g.nvtxs >= 16
