"""Tests for the spectral substrate and baselines (Laplacian, Lanczos,
Fiedler, SBP, MSB, Chaco-ML)."""

import numpy as np
import pytest

from repro.spectral import (
    LaplacianOperator,
    algebraic_connectivity,
    chaco_ml_bisect,
    chaco_ml_partition,
    dense_laplacian,
    fiedler_vector,
    lanczos_smallest,
    msb_bisect,
    msb_partition,
    spectral_bisection,
    weighted_degrees,
)
from repro.spectral.msb import msb_fiedler
from repro.core.options import DEFAULT_OPTIONS
from repro.graph import edge_cut, from_edge_list
from tests.conftest import (
    assert_valid_bisection,
    cycle_graph,
    dumbbell_graph,
    path_graph,
    random_graph,
    two_triangles,
)


class TestLaplacian:
    def test_dense_rows_sum_to_zero(self):
        g = random_graph(20, 0.3, seed=1)
        lap = dense_laplacian(g)
        assert np.allclose(lap.sum(axis=1), 0)
        assert np.allclose(lap, lap.T)

    def test_dense_diagonal_is_weighted_degree(self):
        g = from_edge_list(3, [(0, 1), (1, 2)], [5, 7])
        lap = dense_laplacian(g)
        assert np.allclose(np.diag(lap), [5, 12, 7])
        assert lap[0, 1] == -5

    def test_operator_matches_dense(self):
        g = random_graph(30, 0.2, seed=2)
        lap = dense_laplacian(g)
        op = LaplacianOperator(g)
        rng = np.random.default_rng(0)
        for _ in range(3):
            x = rng.standard_normal(g.nvtxs)
            assert np.allclose(op.matvec(x), lap @ x)

    def test_weighted_degrees(self):
        g = from_edge_list(3, [(0, 1), (1, 2)], [2, 3])
        assert np.allclose(weighted_degrees(g), [2, 5, 3])

    def test_spectral_upper_bound(self):
        g = random_graph(25, 0.3, seed=3)
        op = LaplacianOperator(g)
        evals = np.linalg.eigvalsh(dense_laplacian(g))
        assert op.spectral_upper_bound() >= evals[-1]


class TestLanczos:
    def test_matches_dense_smallest(self):
        g = random_graph(80, 0.1, seed=4, connected=True)
        lap = dense_laplacian(g)
        # Smallest nontrivial eigenpair with the constant mode deflated.
        n = g.nvtxs
        ones = np.full(n, 1.0 / np.sqrt(n))
        op = LaplacianOperator(g)
        lam, vec = lanczos_smallest(
            op.matvec, n, rng=np.random.default_rng(0), deflate=[ones]
        )
        evals = np.linalg.eigvalsh(lap)
        assert lam == pytest.approx(evals[1], rel=1e-4, abs=1e-6)
        assert abs(np.dot(vec, np.ones(n))) < 1e-6
        # Residual small.
        assert np.linalg.norm(op.matvec(vec) - lam * vec) < 1e-4 * max(lam, 1)

    def test_warm_start_converges(self):
        g = random_graph(80, 0.1, seed=5, connected=True)
        n = g.nvtxs
        ones = np.full(n, 1.0 / np.sqrt(n))
        op = LaplacianOperator(g)
        _, exact = lanczos_smallest(
            op.matvec, n, rng=np.random.default_rng(1), deflate=[ones]
        )
        noisy = exact + 0.05 * np.random.default_rng(2).standard_normal(n)
        lam, vec = lanczos_smallest(
            op.matvec, n, rng=np.random.default_rng(3),
            start=noisy, deflate=[ones], krylov_dim=10, restarts=3,
        )
        assert abs(abs(np.dot(vec, exact)) - 1.0) < 1e-3

    def test_constant_start_recovers(self):
        """A start vector inside the deflation space must re-randomise."""
        g = path_graph(50)
        n = g.nvtxs
        ones = np.full(n, 1.0 / np.sqrt(n))
        op = LaplacianOperator(g)
        lam, vec = lanczos_smallest(
            op.matvec, n, rng=np.random.default_rng(4),
            start=np.ones(n), deflate=[ones],
        )
        assert np.linalg.norm(vec) == pytest.approx(1.0, rel=1e-6)
        assert lam > 0


class TestFiedler:
    def test_path_fiedler_is_monotone(self):
        """The Fiedler vector of a path is (a cosine) monotone along it."""
        g = path_graph(40)
        vec = fiedler_vector(g, np.random.default_rng(0))
        diffs = np.diff(vec)
        assert np.all(diffs > 0) or np.all(diffs < 0)

    def test_algebraic_connectivity_path_formula(self):
        g = path_graph(10)
        lam = algebraic_connectivity(g)
        expected = 2 * (1 - np.cos(np.pi / 10))
        assert lam == pytest.approx(expected, rel=1e-6)

    def test_disconnected_has_zero_connectivity(self):
        lam = algebraic_connectivity(two_triangles())
        assert lam == pytest.approx(0.0, abs=1e-9)

    def test_lanczos_path_agrees_with_dense(self):
        g = random_graph(60, 0.12, seed=6, connected=True)
        dense = fiedler_vector(g, np.random.default_rng(0))
        lanc = fiedler_vector(g, np.random.default_rng(0), force_lanczos=True)
        # Same 1-D eigenspace up to sign (λ2 simple for a random graph).
        corr = abs(np.dot(dense / np.linalg.norm(dense), lanc))
        assert corr == pytest.approx(1.0, abs=1e-4)

    def test_tiny_graphs(self):
        assert len(fiedler_vector(from_edge_list(0, []))) == 0
        assert len(fiedler_vector(from_edge_list(1, []))) == 1


class TestSpectralBisection:
    def test_dumbbell_bridge(self):
        g = dumbbell_graph(k=6)
        b = spectral_bisection(g, rng=np.random.default_rng(0))
        assert b.cut == 1

    def test_cycle_cuts_two(self):
        g = cycle_graph(20)
        b = spectral_bisection(g, rng=np.random.default_rng(0))
        assert b.cut == 2  # any contiguous halving of a cycle

    def test_respects_target(self):
        g = path_graph(10)
        b = spectral_bisection(g, target0=3, rng=np.random.default_rng(0))
        assert b.pwgts[0] == 3

    def test_too_small_rejected(self):
        from repro.utils.errors import PartitionError

        with pytest.raises(PartitionError):
            spectral_bisection(from_edge_list(1, []))


class TestMSB:
    def test_msb_fiedler_close_to_exact(self, grid16):
        # The 16x16 grid's λ₂ has multiplicity 2 (x/y symmetry), so compare
        # by Rayleigh quotient, which is what the bisection quality depends
        # on, rather than by correlation with one arbitrary eigenvector.
        vec = msb_fiedler(grid16, DEFAULT_OPTIONS, np.random.default_rng(0))
        op = LaplacianOperator(grid16)
        vec = vec / np.linalg.norm(vec)
        rq = float(vec @ op.matvec(vec))
        lam2 = 2 * (1 - np.cos(np.pi / 16))
        assert rq == pytest.approx(lam2, rel=0.05)

    def test_msb_bisect_valid(self, grid16):
        r = msb_bisect(grid16, DEFAULT_OPTIONS, np.random.default_rng(0))
        assert_valid_bisection(grid16, r.bisection)
        assert r.bisection.cut <= 40  # sane for a 16x16 grid (optimal 16)

    def test_msb_kl_no_worse(self, grid16):
        plain = msb_bisect(grid16, DEFAULT_OPTIONS, np.random.default_rng(2))
        kl = msb_bisect(
            grid16, DEFAULT_OPTIONS, np.random.default_rng(2), kl_refine=True
        )
        assert kl.bisection.cut <= plain.bisection.cut

    def test_msb_partition_kway(self, grid16):
        p = msb_partition(grid16, 4, DEFAULT_OPTIONS, np.random.default_rng(0))
        assert p.cut == edge_cut(grid16, p.where)
        assert np.bincount(p.where, minlength=4).min() > 0

    def test_dumbbell(self):
        g = dumbbell_graph(k=6)
        r = msb_bisect(g, DEFAULT_OPTIONS, np.random.default_rng(0))
        assert r.bisection.cut == 1


class TestChacoML:
    def test_bisect_valid(self, grid16):
        r = chaco_ml_bisect(grid16, DEFAULT_OPTIONS, np.random.default_rng(0))
        assert_valid_bisection(grid16, r.bisection)
        assert r.nlevels > 1

    def test_partition_kway(self, grid16):
        p = chaco_ml_partition(grid16, 4, DEFAULT_OPTIONS, np.random.default_rng(1))
        assert p.cut == edge_cut(grid16, p.where)
        assert np.bincount(p.where, minlength=4).min() > 0

    def test_dumbbell(self):
        g = dumbbell_graph(k=6)
        r = chaco_ml_bisect(g, DEFAULT_OPTIONS, np.random.default_rng(0))
        assert r.bisection.cut == 1
