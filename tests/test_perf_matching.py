"""Tests for the vectorized matching kernel (repro.perf.matching_vec).

The vectorized kernel is an alternative implementation of the §3.1
matchings, selected with ``MultilevelOptions.matching_impl``; it must
produce valid maximal matchings for every scheme, plug into the full
pipeline with cut quality in the same band as the loop kernel, and (the
point of its existence) beat the loop kernel by a wide margin on large
graphs — the last property is asserted by a ``perf``-marked test.
"""

import time

import numpy as np
import pytest

from repro.core import partition
from repro.core.matching import (
    compute_matching,
    is_maximal_matching,
    is_valid_matching,
)
from repro.core.options import DEFAULT_OPTIONS, MatchingScheme
from repro.matrices import grid2d, suite
from repro.perf.matching_vec import segment_max, vectorized_matching
from repro.utils.errors import ConfigurationError
from tests.conftest import random_graph

ALL_SCHEMES = [
    MatchingScheme.RM,
    MatchingScheme.HEM,
    MatchingScheme.LEM,
    MatchingScheme.HCM,
]


class TestSegmentMax:
    def test_basic_segments(self):
        values = np.array([3, 1, 4, 1, 5, 9, 2, 6], dtype=np.int64)
        xadj = np.array([0, 3, 5, 8], dtype=np.int64)
        out = segment_max(values, xadj, np.int64(-1))
        assert out.tolist() == [4, 5, 9]

    def test_empty_segments_get_sentinel(self):
        values = np.array([7, 2], dtype=np.int64)
        xadj = np.array([0, 0, 1, 1, 2, 2], dtype=np.int64)
        out = segment_max(values, xadj, np.int64(-5))
        assert out.tolist() == [-5, 7, -5, 2, -5]

    def test_trailing_empty_segment_keeps_last_value(self):
        # Regression guard for the classic reduceat pitfall: a trailing
        # empty segment must not swallow the final element of the last
        # non-empty segment.
        values = np.array([1, 9], dtype=np.int64)
        xadj = np.array([0, 2, 2], dtype=np.int64)
        out = segment_max(values, xadj, np.int64(0))
        assert out.tolist() == [9, 0]

    def test_float_values(self):
        values = np.array([0.5, -2.0, 3.25], dtype=np.float64)
        xadj = np.array([0, 1, 3], dtype=np.int64)
        out = segment_max(values, xadj, -np.inf)
        assert out.tolist() == [0.5, 3.25]

    def test_all_empty(self):
        values = np.empty(0, dtype=np.int64)
        xadj = np.zeros(4, dtype=np.int64)
        out = segment_max(values, xadj, np.int64(-1))
        assert out.tolist() == [-1, -1, -1]


@pytest.mark.parametrize("scheme", ALL_SCHEMES, ids=lambda s: s.name)
class TestPropertySweep:
    """Both kernels produce valid maximal matchings, 20 seeds per scheme."""

    GRAPHS = {
        "random": random_graph(70, 0.08, seed=3),
        "grid": grid2d(9, 8),
    }

    @pytest.mark.parametrize("impl", ["loop", "vectorized"])
    @pytest.mark.parametrize("name", GRAPHS, ids=GRAPHS.keys())
    def test_valid_and_maximal(self, scheme, impl, name):
        g = self.GRAPHS[name]
        for seed in range(20):
            match = compute_matching(
                g, scheme, np.random.default_rng(seed), impl=impl
            )
            assert is_valid_matching(g, match), (scheme, impl, seed)
            assert is_maximal_matching(g, match), (scheme, impl, seed)

    def test_vectorized_with_cewgt(self, scheme):
        # HCM keys depend on the coarse-vertex internal weights; make sure
        # the cewgt path works for every scheme.
        g = self.GRAPHS["random"]
        cewgt = np.arange(g.nvtxs, dtype=np.int64) % 5
        match = vectorized_matching(
            g, scheme, np.random.default_rng(11), cewgt=cewgt
        )
        assert is_valid_matching(g, match)
        assert is_maximal_matching(g, match)


class TestDispatch:
    def test_unknown_impl_rejected(self):
        g = random_graph(20, 0.2, seed=0)
        with pytest.raises(ConfigurationError):
            compute_matching(
                g, MatchingScheme.HEM, np.random.default_rng(0), impl="simd"
            )

    def test_options_validate_impl(self):
        with pytest.raises(ConfigurationError):
            DEFAULT_OPTIONS.with_(matching_impl="simd")


class TestPipelineQuality:
    """The vectorized kernel keeps end-to-end cut quality in the HEM band."""

    @pytest.mark.parametrize("name,scale", [("BCSSTK31", 0.3), ("4ELT", 0.2)])
    def test_cut_band_on_table2_matrices(self, name, scale):
        graph = suite.load(name, scale=scale, seed=0)
        cuts = {}
        for impl in ("loop", "vectorized"):
            options = DEFAULT_OPTIONS.with_(
                matching=MatchingScheme.HEM, matching_impl=impl
            )
            result = partition(
                graph, 8, options, np.random.default_rng(1995)
            )
            assert result.cut > 0
            cuts[impl] = result.cut
        # Different tie-breaking gives different (equally legitimate)
        # matchings; the refined cut must stay in the same quality band.
        assert cuts["vectorized"] <= cuts["loop"] * 1.5


@pytest.mark.perf
class TestKernelSpeed:
    def test_vectorized_hem_3x_on_100k_mesh(self):
        graph = grid2d(320, 320)  # 102 400 vertices
        assert graph.nvtxs >= 100_000

        def run(impl):
            rng = np.random.default_rng(7)
            best = float("inf")
            for _ in range(2):
                t0 = time.perf_counter()
                compute_matching(graph, MatchingScheme.HEM, rng, impl=impl)
                best = min(best, time.perf_counter() - t0)
            return best

        t_loop = run("loop")
        t_vec = run("vectorized")
        assert t_loop / t_vec >= 3.0, (
            f"vectorized HEM only {t_loop / t_vec:.2f}x faster "
            f"(loop {t_loop:.3f}s, vectorized {t_vec:.3f}s)"
        )
