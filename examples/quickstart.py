#!/usr/bin/env python
"""Quickstart: partition a graph and inspect the result.

Builds a 64×64 grid graph (the canonical finite-difference pattern),
computes an 8-way multilevel partition with the paper's recommended
configuration (heavy-edge matching + greedy graph growing + boundary
KL/greedy hybrid refinement), and prints the quality metrics the paper
reports.

Run:  python examples/quickstart.py
"""

import repro
from repro.graph import boundary_mask
from repro.matrices import grid2d


def main() -> None:
    graph = grid2d(64, 64)
    print(f"graph: {graph.nvtxs} vertices, {graph.nedges} edges")

    # --- one bisection, with full phase introspection -----------------
    result = repro.bisect(graph, seed=1)
    b = result.bisection
    print("\n2-way multilevel bisection")
    print(f"  coarsening levels : {result.nlevels}")
    print(f"  coarsest graph    : {result.coarsest_nvtxs} vertices")
    print(f"  initial cut       : {result.initial_cut} (on the coarsest graph)")
    print(f"  final cut         : {b.cut}")
    print(f"  part weights      : {b.pwgts.tolist()}")
    print(f"  refinement moves  : {result.stats.moves_kept} kept "
          f"of {result.stats.moves_tried} tried")

    # --- k-way partition ----------------------------------------------
    k = 8
    part = repro.partition(graph, k, seed=1)
    print(f"\n{k}-way partition (recursive bisection)")
    print(f"  edge-cut     : {part.cut}")
    print(f"  balance      : {part.balance(graph):.4f}  (1.0 = perfect)")
    print(f"  part weights : {part.pwgts.tolist()}")
    print(f"  boundary     : {int(boundary_mask(graph, part.where).sum())} vertices")

    # --- trying another configuration is one keyword away --------------
    rm = repro.partition(graph, k, seed=1, matching="rm", refinement="klr")
    print("\nsame partition with RM matching + full KL refinement")
    print(f"  edge-cut : {rm.cut}  (HEM+BKLGR above: {part.cut})")


if __name__ == "__main__":
    main()
