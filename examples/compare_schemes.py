#!/usr/bin/env python
"""Phase-by-phase study: what each multilevel design choice buys.

Walks one graph through the paper's §4.1 experiments at small scale:

1. matching schemes (Table 2/3): final cut, cut *before* refinement, and
   coarsening time for RM / HEM / LEM / HCM;
2. refinement policies (Table 4): cut and refinement time for
   GR / KLR / BGR / BKLR / BKLGR;
3. baselines (Figures 1–4): the multilevel default vs MSB, MSB-KL and
   Chaco-ML on cut and wall time.

Run:  python examples/compare_schemes.py
"""

import time

import numpy as np

from repro.core import partition
from repro.core.options import DEFAULT_OPTIONS, MatchingScheme, RefinePolicy
from repro.matrices import fe_tet3d
from repro.spectral import chaco_ml_partition, msb_partition

K = 16
SEED = 11


def run(graph, options):
    t0 = time.perf_counter()
    result = partition(graph, K, options, np.random.default_rng(SEED))
    return result, time.perf_counter() - t0


def main() -> None:
    graph = fe_tet3d(4000, seed=2)
    print(f"3-D FE mesh: {graph.nvtxs} vertices, {graph.nedges} edges; k={K}\n")

    print("1) matching schemes (GGGP + BKLGR fixed)")
    print(f"{'scheme':>6} {'cut':>8} {'no-refine cut':>14} {'CTime':>7}")
    for scheme in MatchingScheme:
        refined, _ = run(graph, DEFAULT_OPTIONS.with_(matching=scheme))
        raw, _ = run(
            graph,
            DEFAULT_OPTIONS.with_(matching=scheme, refinement=RefinePolicy.NONE),
        )
        print(f"{scheme.name:>6} {refined.cut:>8} {raw.cut:>14} "
              f"{refined.timers.get('CTime', 0):>7.2f}")
    print("   (LEM's no-refine cut should dwarf HEM's — Table 3's point)\n")

    print("2) refinement policies (HEM + GGGP fixed)")
    print(f"{'policy':>6} {'cut':>8} {'RTime':>7}")
    for policy in (RefinePolicy.GR, RefinePolicy.KLR, RefinePolicy.BGR,
                   RefinePolicy.BKLR, RefinePolicy.BKLGR):
        result, _ = run(graph, DEFAULT_OPTIONS.with_(refinement=policy))
        print(f"{policy.name:>6} {result.cut:>8} "
              f"{result.timers.get('RTime', 0):>7.2f}")
    print("   (boundary policies should be several times cheaper at ~equal cut)\n")

    print("3) baselines")
    ours, t_ours = run(graph, DEFAULT_OPTIONS)
    t0 = time.perf_counter()
    msb = msb_partition(graph, K, DEFAULT_OPTIONS, np.random.default_rng(SEED))
    t_msb = time.perf_counter() - t0
    t0 = time.perf_counter()
    msbkl = msb_partition(graph, K, DEFAULT_OPTIONS, np.random.default_rng(SEED),
                          kl_refine=True)
    t_msbkl = time.perf_counter() - t0
    t0 = time.perf_counter()
    chaco = chaco_ml_partition(graph, K, DEFAULT_OPTIONS, np.random.default_rng(SEED))
    t_chaco = time.perf_counter() - t0
    print(f"{'method':>10} {'cut':>8} {'seconds':>8} {'time vs ours':>13}")
    for name, res, secs in (("multilevel", ours, t_ours), ("msb", msb, t_msb),
                            ("msb-kl", msbkl, t_msbkl), ("chaco-ml", chaco, t_chaco)):
        print(f"{name:>10} {res.cut:>8} {secs:>8.2f} {secs / t_ours:>12.1f}x")


if __name__ == "__main__":
    main()
