#!/usr/bin/env python
"""Domain decomposition for a parallel sparse matrix-vector product.

The paper's motivating application (§1): solving ``Ax = b`` iteratively on
a parallel machine requires partitioning the graph of A so each processor
owns equal work (vertices) while the halo exchange (cut edges) is minimal.

This example decomposes an unstructured airfoil mesh for 4–64 processors
and reports, per processor count:

* the edge-cut (total communication volume proxy),
* the maximum per-processor halo (the actual per-step communication bound),
* the load balance,

and compares the multilevel partitioner against recursive inertial
(geometric) bisection — reproducing the paper's point that geometric
methods are fast but cut more edges.

Run:  python examples/mesh_decomposition.py
"""

import time

import numpy as np

import repro
from repro.geometric import geometric_partition
from repro.matrices import airfoil


def halo_sizes(graph, where, nparts):
    """Per-part halo: number of remote vertices each part must receive."""
    src = np.repeat(np.arange(graph.nvtxs, dtype=np.int64), np.diff(graph.xadj))
    dst = graph.adjncy
    cross = where[src] != where[dst]
    halos = np.zeros(nparts, dtype=np.int64)
    for p in range(nparts):
        # Remote endpoints of edges incident to part p.
        remote = np.unique(dst[cross & (where[src] == p)])
        halos[p] = len(remote)
    return halos


def main() -> None:
    graph = airfoil(6000, seed=3)
    print(f"airfoil mesh: {graph.nvtxs} vertices, {graph.nedges} edges")
    print(f"{'p':>4} {'method':>10} {'edge-cut':>9} {'max halo':>9} "
          f"{'balance':>8} {'seconds':>8}")

    for nparts in (4, 8, 16, 32, 64):
        t0 = time.perf_counter()
        ml = repro.partition(graph, nparts, seed=7)
        t_ml = time.perf_counter() - t0
        halos = halo_sizes(graph, ml.where, nparts)
        print(f"{nparts:>4} {'multilevel':>10} {ml.cut:>9} {halos.max():>9} "
              f"{ml.balance(graph):>8.3f} {t_ml:>8.2f}")

        t0 = time.perf_counter()
        geo = geometric_partition(graph, nparts)
        t_geo = time.perf_counter() - t0
        halos = halo_sizes(graph, geo.where, nparts)
        print(f"{nparts:>4} {'inertial':>10} {geo.cut:>9} {halos.max():>9} "
              f"{geo.balance(graph):>8.3f} {t_geo:>8.2f}")

    print("\nmultilevel should cut noticeably fewer edges at every p;")
    print("inertial is faster per partition but pays in communication volume.")


if __name__ == "__main__":
    main()
