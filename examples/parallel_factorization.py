#!/usr/bin/env python
"""Why concurrency, not opcount, is MLND's decisive advantage (§4.3).

The paper argues that MLND's win over MMD grows on parallel machines:
minimum-degree elimination trees are "long and slender" and unbalanced,
so parallel factorization starves, while nested-dissection trees are
short and balanced.  This example quantifies that with the package's
parallel multifrontal simulator: for one 3-D FE mesh it tabulates the
simulated factorization speedup of each ordering as the processor count
grows.

Watch two things:

* at p = 1, MMD may even need *fewer* operations;
* as p grows, MLND's simulated speedup keeps climbing while MMD's
  saturates — so the parallel-time ratio ends up far larger than the
  opcount ratio, exactly the paper's closing argument.

Run:  python examples/parallel_factorization.py
"""

import numpy as np

from repro.core.options import DEFAULT_OPTIONS
from repro.matrices import fe_tet3d
from repro.ordering import (
    factor_stats,
    mlnd_ordering,
    mmd_ordering,
    simulate_parallel_factorization,
    snd_ordering,
)


def main() -> None:
    graph = fe_tet3d(1800, seed=9)
    print(f"3-D FE mesh: {graph.nvtxs} vertices, {graph.nedges} edges\n")

    orderings = {
        "mmd": mmd_ordering(graph),
        "mlnd": mlnd_ordering(graph, DEFAULT_OPTIONS, np.random.default_rng(1)),
        "snd": snd_ordering(graph, DEFAULT_OPTIONS, np.random.default_rng(1)),
    }

    print(f"{'method':>6} {'serial ops':>14} {'tree height':>12}")
    for name, ordering in orderings.items():
        stats = factor_stats(graph, ordering.perm)
        print(f"{name:>6} {stats.opcount:>14,} {stats.tree_height:>12}")

    procs = (1, 2, 4, 8, 16, 32, 64)
    print(f"\nsimulated factorization speedup by processor count")
    header = " ".join(f"p={p:<5}" for p in procs)
    print(f"{'method':>6} {header}")
    for name, ordering in orderings.items():
        speeds = [
            simulate_parallel_factorization(graph, ordering.perm, p).speedup
            for p in procs
        ]
        print(f"{name:>6} " + " ".join(f"{s:>7.2f}" for s in speeds))

    s_md = simulate_parallel_factorization(graph, orderings["mmd"].perm, 64)
    s_nd = simulate_parallel_factorization(graph, orderings["mlnd"].perm, 64)
    ops_ratio = s_md.serial_ops / s_nd.serial_ops
    time_ratio = s_md.parallel_time / s_nd.parallel_time
    print(f"\nMMD/MLND opcount ratio:        {ops_ratio:.2f}")
    print(f"MMD/MLND parallel-time ratio:  {time_ratio:.2f} (at p=64)")
    print("the parallel ratio should exceed the serial one — the paper's point.")


if __name__ == "__main__":
    main()
