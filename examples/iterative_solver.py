#!/usr/bin/env python
"""End-to-end: both of the paper's motivating solver pipelines on one mesh.

§1 of the paper motivates graph partitioning with two solver families:

1. **Iterative** (CG): partition the matrix graph over p processors; every
   iteration is a matvec whose communication is governed by the partition.
   Here we solve an actual system with CG and use the machine model in
   :mod:`repro.linalg.model` to compare simulated per-iteration step times
   under a multilevel partition, a geometric partition, and a random
   scatter.
2. **Direct** (Cholesky): order the matrix with MLND / MMD / naturally,
   then *numerically factor it* and solve — reporting true factor
   nonzeros, solve accuracy, and how the symbolic opcount prediction
   tracks the numeric factorization.

Run:  python examples/iterative_solver.py
"""

import numpy as np

import repro
from repro.geometric import geometric_partition
from repro.linalg import (
    conjugate_gradient,
    laplacian_system,
    simulate_parallel_matvec,
    sparse_cholesky,
)
from repro.matrices import airfoil
from repro.ordering import factor_stats, mlnd_ordering, mmd_ordering


def main() -> None:
    graph = airfoil(3000, seed=7)
    A, b, x_true = laplacian_system(graph, rng=np.random.default_rng(0))
    print(f"mesh: {graph.nvtxs} vertices, {graph.nedges} edges; "
          f"system A = L + I\n")

    # ----- iterative pipeline -----------------------------------------
    cg = conjugate_gradient(A, b, tol=1e-10, jacobi=True)
    err = float(np.abs(cg.x - x_true).max())
    print(f"CG (Jacobi): {cg.iterations} iterations, max error {err:.2e}")

    nparts = 16
    ml = repro.partition(graph, nparts, seed=1)
    geo = geometric_partition(graph, nparts)
    rng = np.random.default_rng(2)
    scatter = rng.integers(0, nparts, graph.nvtxs)

    print(f"\nsimulated matvec step time on {nparts} processors "
          f"(t_word=30, t_startup=2000 flops):")
    print(f"{'partition':>12} {'cut':>7} {'step time':>12} {'speedup':>8} "
          f"{'comm %':>7}")
    for name, where, cut in (
        ("multilevel", ml.where, ml.cut),
        ("geometric", geo.where, geo.cut),
        ("random", scatter, None),
    ):
        from repro.graph import edge_cut

        cut = edge_cut(graph, where) if cut is None else cut
        cost = simulate_parallel_matvec(graph, where, nparts)
        print(f"{name:>12} {cut:>7} {cost.step_time:>12.0f} "
              f"{cost.speedup:>8.2f} {100 * cost.communication_fraction:>6.1f}%")

    # ----- direct pipeline ---------------------------------------------
    print("\nsparse Cholesky with each ordering:")
    print(f"{'ordering':>9} {'factor nnz':>11} {'sym. opcount':>13} "
          f"{'solve err':>10}")
    orderings = {
        "natural": np.arange(graph.nvtxs),
        "mmd": mmd_ordering(graph).perm,
        "mlnd": mlnd_ordering(graph, rng=np.random.default_rng(1)).perm,
    }
    for name, perm in orderings.items():
        factor = sparse_cholesky(A, perm)
        stats = factor_stats(graph, perm)
        x = factor.solve(b)
        err = float(np.abs(x - x_true).max())
        assert factor.nnz() == stats.nnz_factor  # symbolic = numeric
        print(f"{name:>9} {factor.nnz():>11,} {stats.opcount:>13,} {err:>10.2e}")

    print("\nboth orderings should slash the natural factor size; the better")
    print("ordering's advantage matches the symbolic opcount prediction.")


if __name__ == "__main__":
    main()
