#!/usr/bin/env python
"""The §5 story: how the parallel multilevel formulation scales.

The paper closes with "our parallel implementation of this multilevel
partitioning is able to get a speedup of as much as 56 on a 128-processor
Cray T3D for moderate size problems", crediting the boundary refinement
schemes for removing KL's parallelisation bottleneck.

This example rebuilds that claim from parts this repository implements:

1. run a real multilevel bisection on a BRACK2-class mesh and collect the
   per-level statistics (sizes, boundaries, handshake-matching rounds via
   actual simulation);
2. price the parallel formulation on a T3D-class α–β machine model;
3. print speedup curves at our scaled-down graph size and extrapolated to
   the paper's problem size (self-similar hierarchy scaling);
4. show what happens if refinement were NOT boundary-based — the paper's
   argument for BKLGR: charge refinement for all vertices instead of the
   boundary and watch the speedup collapse.

Run:  python examples/parallel_scalability.py
"""

import numpy as np

from repro.matrices import suite
from repro.parallel import collect_level_stats, estimate_parallel_speedup
from repro.parallel.model import MachineParameters, scale_levels
from repro.parallel.stats import LevelStats

PROCS = (1, 2, 4, 8, 16, 32, 64, 128, 256)


def curve(levels, machine=MachineParameters()):
    return [estimate_parallel_speedup(levels, p, machine).speedup for p in PROCS]


def fmt(values):
    return " ".join(f"{v:7.1f}" for v in values)


def main() -> None:
    graph = suite.load("BRACK2", scale=1.0, seed=0)
    levels, result = collect_level_stats(graph)
    print(f"BRACK2 analogue: {graph.nvtxs} vertices, {graph.nedges} edges, "
          f"{len(levels)} levels, final cut {result.bisection.cut}")
    print("\nper-level stats (finest first):")
    print(f"{'nvtxs':>7} {'nedges':>8} {'boundary':>9} {'rounds':>7}")
    for lv in levels:
        print(f"{lv.nvtxs:>7} {lv.nedges:>8} {lv.boundary:>9} {lv.rounds:>7}")

    header = " ".join(f"p={p:<5}" for p in PROCS)
    print(f"\nmodelled speedup           {header}")
    print(f"{'this graph':>23}    {fmt(curve(levels))}")

    factor = suite.SUITE["BRACK2"].paper_order / graph.nvtxs
    paper_levels = scale_levels(levels, factor)
    print(f"{'paper-size graph':>23}    {fmt(curve(paper_levels))}")
    print("  (the paper reports 56x at p=128 on a T3D for problems this size)")

    # What if refinement were not boundary-based?  Charge the refinement
    # phase for every vertex at each level instead of the boundary, and
    # compare *wall-clock* (same machine, same p) — speedup-vs-itself
    # would hide the slowdown because the serial baseline inflates too.
    non_boundary = [
        LevelStats(lv.nvtxs, lv.nedges, boundary=lv.nvtxs, rounds=lv.rounds)
        for lv in paper_levels
    ]
    ratios = []
    for p in PROCS:
        t_b = estimate_parallel_speedup(paper_levels, p).parallel_time
        t_nb = estimate_parallel_speedup(non_boundary, p).parallel_time
        ratios.append(t_nb / t_b)
    print(f"{'non-boundary KL slowdown':>23}    {fmt(ratios)}")
    print("  (wall-clock multiplier if refinement touched every vertex instead")
    print("   of the boundary — the §5 argument for the boundary policies)")


if __name__ == "__main__":
    main()
