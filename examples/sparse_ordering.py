#!/usr/bin/env python
"""Fill-reducing ordering for sparse Cholesky factorization.

Reproduces §4.3's experiment in miniature: order the graph of a 3-D
stiffness matrix with multilevel nested dissection (MLND), multiple
minimum degree (MMD), spectral nested dissection (SND) and the natural
ordering, then compare what each costs to factor:

* operation count (serial factorization work),
* fill-in,
* elimination-tree height and available parallelism — the paper's
  argument that MLND's advantage *grows* on a parallel machine because
  nested-dissection trees are short and balanced while minimum-degree
  trees are "long and slender".

Run:  python examples/sparse_ordering.py
"""

import time

import numpy as np

from repro.core.options import DEFAULT_OPTIONS
from repro.matrices import stiffness3d
from repro.ordering import (
    Ordering,
    factor_stats,
    mlnd_ordering,
    mmd_ordering,
    snd_ordering,
)


def main() -> None:
    graph = stiffness3d(700, dofs=3, seed=5)
    print(f"3-D stiffness graph: {graph.nvtxs} vertices, {graph.nedges} edges "
          f"(avg degree {graph.average_degree():.1f})")

    orderings = {}
    t0 = time.perf_counter()
    orderings["natural"] = (Ordering.identity(graph.nvtxs), 0.0)
    t0 = time.perf_counter()
    o = mmd_ordering(graph)
    orderings["mmd"] = (o, time.perf_counter() - t0)
    t0 = time.perf_counter()
    o = mlnd_ordering(graph, DEFAULT_OPTIONS, np.random.default_rng(5))
    orderings["mlnd"] = (o, time.perf_counter() - t0)
    t0 = time.perf_counter()
    o = snd_ordering(graph, DEFAULT_OPTIONS, np.random.default_rng(5))
    orderings["snd"] = (o, time.perf_counter() - t0)

    print(f"\n{'method':>8} {'opcount':>14} {'fill':>10} {'tree h':>7} "
          f"{'parallelism':>12} {'order time':>11}")
    baseline = None
    for name, (ordering, seconds) in orderings.items():
        stats = factor_stats(graph, ordering.perm)
        if name == "mlnd":
            baseline = stats.opcount
        print(f"{name:>8} {stats.opcount:>14,} {stats.fill:>10,} "
              f"{stats.tree_height:>7} {stats.available_parallelism:>12.1f} "
              f"{seconds:>10.2f}s")

    mmd_ops = factor_stats(graph, orderings["mmd"][0].perm).opcount
    print(f"\nMMD/MLND opcount ratio: {mmd_ops / baseline:.2f} "
          f"(the paper reports 2–3x for large 3-D stiffness problems)")


if __name__ == "__main__":
    main()
