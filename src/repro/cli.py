"""Command-line interface: ``python -m repro`` / ``repro-partition``.

Subcommands mirror what the METIS binaries of the era offered:

* ``partition GRAPH K`` — k-way partition a Chaco/METIS ``.graph`` file,
  print cut and balance, optionally write the partition vector;
* ``order GRAPH`` — compute a fill-reducing ordering (mlnd/mmd/snd),
  print the symbolic-factorization stats, optionally write the perm;
* ``generate NAME OUT`` — write a suite workload to a ``.graph`` file;
* ``info GRAPH`` — print basic statistics of a graph file;
* ``lint [PATHS]`` — run the repo's AST lint pass (see docs/ANALYSIS.md);
* ``trace FILE`` — pretty-print the profile of a JSONL trace written with
  ``--trace`` / ``REPRO_TRACE`` (see docs/OBSERVABILITY.md);
* ``serve`` — run the partitioning service: an HTTP/JSON API with a
  content-addressed result cache (see docs/SERVICE.md);
* ``bench-diff OLD NEW`` — compare two ``BENCH_<table>.json`` snapshots
  and flag per-cell regressions (see docs/PERFORMANCE.md).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _add_common_options(p):
    p.add_argument("--seed", type=int, default=4242, help="RNG seed (default 4242)")
    p.add_argument(
        "--matching",
        default="hem",
        choices=["rm", "hem", "lem", "hcm"],
        help="coarsening matching scheme (default hem)",
    )
    p.add_argument(
        "--initial",
        default="gggp",
        choices=["sbp", "ggp", "gggp"],
        help="coarsest-graph partitioner (default gggp)",
    )
    p.add_argument(
        "--refinement",
        default="bklgr",
        choices=["none", "gr", "klr", "bgr", "bklr", "bklgr"],
        help="refinement policy (default bklgr)",
    )
    p.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "wall-clock budget; refinement degrades near the limit and the "
            "remaining work falls back to cheap assignment once it expires "
            "(see docs/RESILIENCE.md)"
        ),
    )
    p.add_argument(
        "--max-retries",
        type=int,
        default=3,
        metavar="N",
        help="reseeded retries of an invalid initial bisection (default 3)",
    )
    p.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help=(
            "write a structured JSONL trace here ('-' for stdout); inspect "
            "it with 'repro trace FILE' (see docs/OBSERVABILITY.md)"
        ),
    )
    p.add_argument(
        "--kernels",
        default=None,
        choices=["loop", "vectorized", "numba"],
        help=(
            "kernel backend for the hot phases (matching, FM refinement, "
            "contraction): 'loop' is the bit-exact reference, "
            "'vectorized' the whole-array NumPy kernels, 'numba' the "
            "optional jitted kernels with per-phase fallback "
            "numba->vectorized->loop; overrides REPRO_KERNELS "
            "(see docs/PERFORMANCE.md)"
        ),
    )
    p.add_argument(
        "--matching-impl",
        default="loop",
        choices=["loop", "vectorized", "numba"],
        help=(
            "legacy matching-phase-only kernel switch, honoured when "
            "--kernels is unset: 'loop' reproduces the paper's sequential "
            "scan, 'vectorized' runs the batched proposal rounds "
            "(see docs/PERFORMANCE.md)"
        ),
    )
    p.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "fan independent recursion branches across N processes "
            "(bit-identical to N=1; overrides REPRO_WORKERS; see "
            "docs/PERFORMANCE.md)"
        ),
    )
    p.add_argument(
        "--worker-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "per-branch wall-clock budget for pool workers; a branch that "
            "exceeds it is retried and eventually demoted to in-process "
            "sequential execution (overrides REPRO_WORKER_TIMEOUT; see "
            "docs/RESILIENCE.md)"
        ),
    )
    p.add_argument(
        "--worker-retries",
        type=int,
        default=2,
        metavar="N",
        help=(
            "pool resubmissions of a crashed/timed-out branch before it "
            "degrades to in-process sequential execution (default 2; see "
            "docs/RESILIENCE.md)"
        ),
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Multilevel graph partitioning and sparse matrix ordering "
            "(Karypis & Kumar, ICPP 1995 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("partition", help="k-way partition a .graph file")
    p.add_argument("graph", help="input file in Chaco/METIS .graph format")
    p.add_argument("nparts", type=int, help="number of parts")
    p.add_argument("-o", "--output", help="write the partition vector here")
    p.add_argument(
        "--report", action="store_true",
        help="also print communication volume, halos and connectivity",
    )
    p.add_argument(
        "--kway-refine", action="store_true",
        help="apply direct k-way refinement after recursive bisection",
    )
    _add_common_options(p)

    p = sub.add_parser("order", help="compute a fill-reducing ordering")
    p.add_argument("graph", help="input file in Chaco/METIS .graph format")
    p.add_argument(
        "--method", default="mlnd", choices=["mlnd", "mmd", "snd"],
        help="ordering algorithm (default mlnd)",
    )
    p.add_argument("-o", "--output", help="write the permutation here")
    _add_common_options(p)

    p = sub.add_parser("generate", help="generate a suite workload")
    p.add_argument("name", help="suite matrix name, e.g. 4ELT (see 'repro info --suite')")
    p.add_argument("output", help="output .graph path")
    p.add_argument("--scale", type=float, default=1.0, help="order multiplier")
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("info", help="print statistics of a graph file")
    p.add_argument("graph", nargs="?", help="input .graph file")
    p.add_argument("--suite", action="store_true", help="list suite workloads")

    p = sub.add_parser(
        "lint",
        help="run the whole-program lint pass (RP001-RP018, docs/ANALYSIS.md)",
    )
    p.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    p.add_argument("--paper", help="explicit PAPER.md for the RP008 index")
    p.add_argument("--select", help="comma-separated rule ids to run")
    p.add_argument(
        "--list-rules", action="store_true", help="print the rule table and exit"
    )
    p.add_argument(
        "--rules-md", action="store_true",
        help="print the generated docs/ANALYSIS.md rule table and exit",
    )
    p.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit findings as a JSON array",
    )
    p.add_argument(
        "--sarif", action="store_true", dest="as_sarif",
        help="emit findings as a SARIF 2.1.0 log",
    )
    p.add_argument(
        "--baseline", help="explicit lint-baseline.json (default: discovered)"
    )
    p.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file; report every finding",
    )
    p.add_argument(
        "--write-baseline", action="store_true",
        help="write the current findings to the baseline file and exit 0",
    )

    p = sub.add_parser(
        "trace", help="pretty-print the profile of a JSONL trace file"
    )
    p.add_argument("file", help="trace file written via --trace / REPRO_TRACE")
    p.add_argument(
        "--json", action="store_true",
        help="print the aggregated profile as JSON instead of text",
    )

    p = sub.add_parser(
        "serve",
        help=(
            "run the partitioning service: HTTP/JSON API with a "
            "content-addressed result cache (docs/SERVICE.md)"
        ),
    )
    p.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=8157, help="bind port (default 8157)")
    p.add_argument(
        "--cache-size", type=int, default=128, metavar="N",
        help="result-cache capacity in entries; 0 disables caching (default 128)",
    )
    p.add_argument(
        "--cache-ttl", type=float, default=None, metavar="SECONDS",
        help="seconds a cached result stays servable (default: no expiry)",
    )
    p.add_argument(
        "--queue-workers", type=int, default=2, metavar="N",
        help="concurrently running jobs (default 2)",
    )
    p.add_argument(
        "--backlog", type=int, default=16, metavar="N",
        help="jobs allowed to wait beyond the running ones; past that the "
             "service answers 503 (default 16)",
    )
    p.add_argument(
        "--max-body", type=int, default=64 << 20, metavar="BYTES",
        help="request-body cap; larger posts answer 413 (default 64 MiB)",
    )
    p.add_argument(
        "--trace", default=None, metavar="FILE",
        help="service JSONL trace target ('-' for stdout); falls back to "
             "REPRO_TRACE (see docs/OBSERVABILITY.md)",
    )

    p = sub.add_parser(
        "bench-diff",
        help=(
            "compare two BENCH_<table>.json snapshots (files or "
            "directories) and report per-cell regressions"
        ),
    )
    p.add_argument("old", help="baseline snapshot: BENCH_*.json file or directory")
    p.add_argument("new", help="candidate snapshot: BENCH_*.json file or directory")
    p.add_argument(
        "--fail-on-regress", action="store_true",
        help="exit non-zero when any time/quality cell regressed",
    )
    p.add_argument(
        "--time-tol", type=float, default=None, metavar="FRAC",
        help="relative tolerance for time-like columns (default 0.25)",
    )
    p.add_argument(
        "--cut-tol", type=float, default=None, metavar="FRAC",
        help="relative tolerance for quality columns (default 0.05)",
    )
    p.add_argument(
        "--min-time", type=float, default=None, metavar="SECONDS",
        help="ignore time cells below this on both sides (default 0.05)",
    )
    p.add_argument(
        "--verbose", action="store_true",
        help="also list non-regressed cells",
    )
    p.add_argument(
        "--markdown", action="store_true",
        help=(
            "emit the report as a GitHub-flavored markdown table "
            "(for $GITHUB_STEP_SUMMARY)"
        ),
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "partition":
        return _cmd_partition(args)
    if args.command == "order":
        return _cmd_order(args)
    if args.command == "generate":
        return _cmd_generate(args)
    if args.command == "info":
        return _cmd_info(args)
    if args.command == "lint":
        from repro.analysis.cli import run_lint

        return run_lint(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "bench-diff":
        return _cmd_bench_diff(args)
    return 2  # pragma: no cover - argparse enforces the choices


def _options_from(args):
    from repro.core.options import DEFAULT_OPTIONS

    return DEFAULT_OPTIONS.with_(
        matching=args.matching,
        initial=args.initial,
        refinement=args.refinement,
        seed=args.seed,
        deadline=args.deadline,
        max_init_retries=args.max_retries,
        trace=args.trace,
        kernels=args.kernels,
        matching_impl=args.matching_impl,
        workers=args.workers,
        worker_timeout=args.worker_timeout,
        worker_retries=args.worker_retries,
    )


def _print_resilience(report) -> None:
    """Print the resilience audit trail (nothing on a clean run)."""
    if not report:
        return
    print(f"resilience: {len(report)} event(s)")
    for event in report:
        print(f"  {event}")


def _cmd_partition(args) -> int:
    from repro.core import partition
    from repro.graph import read_graph

    graph = read_graph(args.graph)
    options = _options_from(args)
    result = partition(graph, args.nparts, options, np.random.default_rng(args.seed))
    if args.kway_refine:
        from repro.core import refine_kway

        refine_kway(graph, result, options, np.random.default_rng(args.seed))
    print(f"graph:    {args.graph} ({graph.nvtxs} vertices, {graph.nedges} edges)")
    print(f"nparts:   {args.nparts}")
    print(f"edge-cut: {result.cut}")
    print(f"balance:  {result.balance(graph):.4f}")
    for phase in ("CTime", "ITime", "RTime", "PTime"):
        if phase in result.timers:
            print(f"{phase}:   {result.timers[phase]:.3f}s")
    _print_resilience(getattr(result, "resilience", None))
    if args.report:
        from repro.graph import partition_report

        report = partition_report(graph, result.where, args.nparts)
        print(f"commvol:  {report.communication_volume}")
        print(f"max halo: {report.max_halo}")
        print(f"max conn: {report.max_connectivity}")
    if args.output:
        np.savetxt(args.output, result.where, fmt="%d")
        print(f"partition vector written to {args.output}")
    return 0


def _cmd_order(args) -> int:
    from repro.graph import read_graph
    from repro.ordering import factor_stats, mlnd_ordering, mmd_ordering, snd_ordering

    graph = read_graph(args.graph)
    options = _options_from(args)
    rng = np.random.default_rng(args.seed)
    if args.method == "mmd":
        ordering = mmd_ordering(graph)
    elif args.method == "snd":
        ordering = snd_ordering(graph, options, rng)
    else:
        ordering = mlnd_ordering(graph, options, rng)
    stats = factor_stats(graph, ordering.perm)
    print(f"graph:        {args.graph} ({graph.nvtxs} vertices, {graph.nedges} edges)")
    print(f"method:       {ordering.method}")
    print(f"factor nnz:   {stats.nnz_factor}")
    print(f"fill:         {stats.fill}")
    print(f"opcount:      {stats.opcount}")
    print(f"tree height:  {stats.tree_height}")
    print(f"parallelism:  {stats.available_parallelism:.2f}")
    _print_resilience(ordering.meta.get("resilience"))
    if args.output:
        np.savetxt(args.output, ordering.perm, fmt="%d")
        print(f"permutation written to {args.output}")
    return 0


def _cmd_trace(args) -> int:
    import json

    from repro.obs import format_profile, profile, read_trace
    from repro.utils.errors import TraceError

    try:
        records = read_trace(args.file)
    except (OSError, TraceError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    prof = profile(records)
    if args.json:
        print(json.dumps(prof, indent=2, sort_keys=True))
    else:
        print(format_profile(prof))
    return 0


def _cmd_serve(args) -> int:
    from repro.service import serve

    print(
        f"repro service listening on http://{args.host}:{args.port} "
        f"(cache {args.cache_size} entries"
        + (f", ttl {args.cache_ttl:g}s" if args.cache_ttl else "")
        + f"; {args.queue_workers} workers, backlog {args.backlog})"
    )
    print("POST /partition | POST /order | GET /healthz | GET /stats | DELETE /cache")
    serve(
        args.host,
        args.port,
        cache_size=args.cache_size,
        cache_ttl=args.cache_ttl,
        queue_workers=args.queue_workers,
        backlog=args.backlog,
        max_body=args.max_body,
        trace=args.trace,
    )
    return 0


def _cmd_bench_diff(args) -> int:
    from repro.bench import regress
    from repro.utils.errors import ConfigurationError

    kwargs = {}
    if args.time_tol is not None:
        kwargs["time_tol"] = args.time_tol
    if args.cut_tol is not None:
        kwargs["cut_tol"] = args.cut_tol
    if args.min_time is not None:
        kwargs["min_time"] = args.min_time
    try:
        report = regress.diff_paths(args.old, args.new, **kwargs)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.markdown:
        print(regress.format_markdown(report, verbose=args.verbose))
    else:
        print(regress.format_report(report, verbose=args.verbose))
    if args.fail_on_regress and not report.ok:
        return 1
    return 0


def _cmd_generate(args) -> int:
    from repro.graph import write_graph
    from repro.matrices import suite

    graph = suite.load(args.name, scale=args.scale, seed=args.seed)
    write_graph(graph, args.output)
    print(
        f"wrote {args.name} analogue: {graph.nvtxs} vertices, "
        f"{graph.nedges} edges -> {args.output}"
    )
    return 0


def _cmd_info(args) -> int:
    if args.suite:
        from repro.matrices import suite

        print(f"{'name':12s} {'short':6s} {'paper |V|':>9s} {'default |V|':>11s}  description")
        for name in suite.suite_names():
            e = suite.SUITE[name]
            print(
                f"{e.name:12s} {e.short:6s} {e.paper_order:9d} "
                f"{e.default_order:11d}  {e.description}"
            )
        return 0
    if not args.graph:
        print("error: provide a graph file or --suite", file=sys.stderr)
        return 2
    from repro.graph import read_graph
    from repro.graph.components import num_components

    graph = read_graph(args.graph)
    degrees = graph.degrees()
    print(f"vertices:   {graph.nvtxs}")
    print(f"edges:      {graph.nedges}")
    print(f"components: {num_components(graph)}")
    print(f"degree:     min {degrees.min()} / avg {graph.average_degree():.2f} / max {degrees.max()}")
    print(f"vwgt total: {graph.total_vwgt()}")
    print(f"ewgt total: {graph.total_adjwgt()}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
