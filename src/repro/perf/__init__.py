"""Performance kernels and process-parallel execution helpers.

This package holds the "fast path" counterparts of the reference
implementations in :mod:`repro.core`:

* :mod:`repro.perf.matching_vec` — batched proposal-round rewrites of the
  four §3.1 matching schemes (RM/HEM/LEM/HCM).  Selected with
  ``MultilevelOptions.matching_impl = "vectorized"``; the legacy per-vertex
  loop stays the default for bit-exact reproduction of the paper's runs.
* :mod:`repro.perf.workers` — ``ProcessPoolExecutor`` plumbing for fanning
  the independent subgraph branches of recursive bisection and nested
  dissection across processes (``MultilevelOptions.workers`` /
  ``REPRO_WORKERS`` / ``--workers``), with per-branch child RNGs seeded so
  ``workers=N`` is bit-identical to ``workers=1``.

Everything here is *semantics-preserving by construction*: the vectorized
kernels satisfy the same validity/maximality oracles as the loop kernels
(:func:`repro.core.matching.is_valid_matching`,
:func:`repro.core.matching.is_maximal_matching`), and the worker fan-out
never changes a partition vector, cut value or ordering permutation.
"""

from repro.perf.matching_vec import vectorized_matching
from repro.perf.workers import branch_executor, fan_depth_for, resolve_workers

__all__ = [
    "vectorized_matching",
    "resolve_workers",
    "fan_depth_for",
    "branch_executor",
]
