"""Process-parallel execution helpers (and kernel back-compat shims).

* :mod:`repro.perf.workers` — ``ProcessPoolExecutor`` plumbing for fanning
  the independent subgraph branches of recursive bisection and nested
  dissection across processes (``MultilevelOptions.workers`` /
  ``REPRO_WORKERS`` / ``--workers``), with per-branch child RNGs seeded so
  ``workers=N`` is bit-identical to ``workers=1``.  Branch jobs run under
  the supervised runtime in :mod:`repro.resilience.supervisor` (per-branch
  timeouts via ``worker_timeout`` / ``REPRO_WORKER_TIMEOUT``, crash
  recovery, deadline propagation).
* :mod:`repro.perf.matching_vec` — back-compat shim: the vectorized
  matching kernel now lives in the :mod:`repro.kernels` registry (the
  ``vectorized`` backend), selected with ``options.kernels`` /
  ``REPRO_KERNELS`` / ``--kernels`` or the legacy
  ``matching_impl="vectorized"``.

Everything here is *semantics-preserving by construction*: the vectorized
kernels satisfy the same validity/maximality oracles as the loop kernels
(:func:`repro.core.matching.is_valid_matching`,
:func:`repro.core.matching.is_maximal_matching`), and the worker fan-out
never changes a partition vector, cut value or ordering permutation.
"""

from repro.kernels import vectorized_matching
from repro.perf.workers import (
    BranchDispatch,
    branch_executor,
    fan_depth_for,
    resolve_worker_timeout,
    resolve_workers,
)

__all__ = [
    "vectorized_matching",
    "resolve_workers",
    "resolve_worker_timeout",
    "fan_depth_for",
    "branch_executor",
    "BranchDispatch",
]
