"""Process-pool plumbing for parallel recursive bisection / dissection.

The recursion trees of :func:`repro.core.kway.partition` and nested
dissection split a graph into *independent* subgraphs: once the separator
(or bisection) of a node is fixed, the two sides never exchange
information.  The drivers therefore pre-spawn one child RNG per branch in
a fixed order (see :func:`repro.utils.rng.spawn_child`) and may evaluate
the branches in any order — or in other processes — without changing a
single bit of the result.  This module holds the shared plumbing:

* :func:`resolve_workers` — ``options.workers`` falling back to the
  ``REPRO_WORKERS`` environment variable, defaulting to 1;
* :func:`fan_depth_for` — how many top recursion levels to fan out so at
  least ``workers`` independent branch jobs exist;
* :func:`branch_executor` — a ``ProcessPoolExecutor`` on the cheapest
  start method the platform offers;
* :func:`resolve_worker_timeout` — ``options.worker_timeout`` falling
  back to the ``REPRO_WORKER_TIMEOUT`` environment variable, defaulting
  to ``None`` (no per-branch timeout);
* :class:`BranchDispatch` — collects submitted branch futures so drivers
  can merge child results (assignments, phase timers, resilience events)
  in deterministic submission order.

The drivers no longer dispatch through a bare pool: branch jobs run under
the supervised runtime in :mod:`repro.resilience.supervisor`, which slices
time budgets from the deadline guard, retries crashed or hung workers and
degrades stubborn branches to in-process sequential execution.
:func:`branch_executor` and :class:`BranchDispatch` remain the unmanaged
building blocks (the supervisor composes the former; the latter is kept
for callers that want raw fan-out without supervision).

Only two configurations still force the drivers sequential: a
caller-supplied bisector closure (unpicklable) and a fault spec naming
in-process phase sites (injector countdowns are process-local state; see
:func:`repro.resilience.faults.worker_faults_only`).  Results are
identical either way.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor

from repro.utils.errors import ConfigurationError

#: Environment variable consulted when ``options.workers`` is unset.
WORKERS_ENV = "REPRO_WORKERS"

#: Environment variable consulted when ``options.worker_timeout`` is unset.
WORKER_TIMEOUT_ENV = "REPRO_WORKER_TIMEOUT"


def resolve_workers(options=None) -> int:
    """Effective worker count: option field, else ``REPRO_WORKERS``, else 1."""
    if options is not None and getattr(options, "workers", None) is not None:
        return int(options.workers)
    raw = os.environ.get(WORKERS_ENV, "").strip()
    if not raw:
        return 1
    try:
        workers = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"{WORKERS_ENV} must be an integer, got {raw!r}"
        ) from None
    if workers < 1:
        raise ConfigurationError(f"{WORKERS_ENV} must be >= 1, got {workers}")
    return workers


def resolve_worker_timeout(options=None):
    """Per-branch timeout: option field, else ``REPRO_WORKER_TIMEOUT``, else None."""
    if options is not None and getattr(options, "worker_timeout", None) is not None:
        return float(options.worker_timeout)
    raw = os.environ.get(WORKER_TIMEOUT_ENV, "").strip()
    if not raw:
        return None
    try:
        timeout = float(raw)
    except ValueError:
        raise ConfigurationError(
            f"{WORKER_TIMEOUT_ENV} must be a number of seconds, got {raw!r}"
        ) from None
    if timeout <= 0:
        raise ConfigurationError(
            f"{WORKER_TIMEOUT_ENV} must be positive, got {timeout}"
        )
    return timeout


def fan_depth_for(workers: int) -> int:
    """Recursion depth to fan out so ≥ ``workers`` branch jobs exist.

    Depth ``d`` of a binary recursion tree exposes ``2**d`` independent
    branches; the smallest ``d`` with ``2**d >= workers`` keeps every
    worker busy with at most 2× oversubscription.
    """
    depth = 0
    while (1 << depth) < workers:
        depth += 1
    return depth


def branch_executor(workers: int) -> ProcessPoolExecutor:
    """A process pool using ``fork`` when available (cheap), else spawn."""
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
    return ProcessPoolExecutor(max_workers=workers, mp_context=ctx)


class BranchDispatch:
    """Collects branch-job futures for deterministic, ordered merging.

    ``submit`` mirrors ``executor.submit`` but records ``meta`` (whatever
    the driver needs to place the child's answer — a destination slice,
    a part offset, a vertex map) alongside the future; ``drain`` yields
    ``(meta, result)`` in submission order, so merged artefacts (timer
    totals, resilience events) are ordered the same way on every run.
    """

    __slots__ = ("executor", "fan_depth", "_pending")

    def __init__(self, executor, fan_depth: int):
        self.executor = executor
        self.fan_depth = fan_depth
        self._pending = []

    def submit(self, fn, /, *args, meta=None):
        future = self.executor.submit(fn, *args)
        self._pending.append((meta, future))
        return future

    def drain(self):
        """Yield ``(meta, result)`` per submitted job, in submission order.

        Blocks on each future in turn; a child exception propagates to the
        caller unchanged (the pool re-raises it here), which matches the
        sequential path's behaviour.
        """
        pending, self._pending = self._pending, []
        for meta, future in pending:
            yield meta, future.result()


__all__ = [
    "WORKERS_ENV",
    "WORKER_TIMEOUT_ENV",
    "resolve_workers",
    "resolve_worker_timeout",
    "fan_depth_for",
    "branch_executor",
    "BranchDispatch",
]
