"""Back-compat shim: the vectorized matching kernel moved to the registry.

PR 5 introduced the batched proposal-round matching kernel here; PR 7
migrated it to :mod:`repro.kernels.vec_backend`, where it is one phase
kernel of the ``vectorized`` backend in the :mod:`repro.kernels`
registry (selected via ``options.kernels`` / ``REPRO_KERNELS`` /
``--kernels``, or the legacy ``matching_impl="vectorized"``).

This module keeps the old import surface alive by re-exporting through
the registry package — the blessed entry point (lint rule RP017 forbids
importing ``repro.kernels.vec_backend`` directly from outside the
``kernels`` package).
"""

from __future__ import annotations

from repro.kernels import UNMATCHED, segment_max, vectorized_matching

__all__ = ["vectorized_matching", "segment_max", "UNMATCHED"]
