"""repro — a reproduction of "Multilevel Graph Partitioning Schemes"
(George Karypis & Vipin Kumar, ICPP 1995), the work that became METIS.

The library provides:

* **multilevel k-way graph partitioning** (:func:`repro.partition`,
  :func:`repro.bisect`) with all of the paper's coarsening schemes
  (RM/HEM/LEM/HCM), initial partitioners (SBP/GGP/GGGP) and refinement
  policies (GR/KLR/BGR/BKLR/BKLGR);
* **fill-reducing sparse matrix ordering** via multilevel nested dissection
  (:func:`repro.nested_dissection`), with MMD and spectral nested
  dissection baselines;
* the **spectral baselines** the paper compares against (MSB, MSB-KL,
  Chaco-ML);
* a synthetic **workload suite** standing in for the paper's Table 1
  matrices (:mod:`repro.matrices`).

Quickstart::

    import repro
    graph = repro.matrices.grid2d(64, 64)
    result = repro.partition(graph, 8, seed=1)
    print(result.cut, result.pwgts)
"""

from __future__ import annotations

import numpy as np

from repro import graph as graph  # noqa: PLC0414 - re-export subpackage
from repro.core import (
    DEFAULT_OPTIONS,
    InitialScheme,
    MatchingScheme,
    MultilevelOptions,
    RefinePolicy,
)
from repro.core import bisect as _ml_bisect
from repro.core import partition as _ml_partition
from repro.graph import CSRGraph, from_edge_list, read_graph, write_graph

__version__ = "1.0.0"


def bisect(g, options=None, seed=None, target0=None, **option_overrides):
    """Multilevel 2-way partition of ``g`` (friendly top-level wrapper).

    ``option_overrides`` are :class:`MultilevelOptions` field names, e.g.
    ``bisect(g, matching="rm", refinement="klr")``.
    """
    options = _resolve_options(options, option_overrides)
    rng = np.random.default_rng(seed if seed is not None else options.seed)
    return _ml_bisect(g, options, rng, target0=target0)


def partition(g, nparts, options=None, seed=None, **option_overrides):
    """Multilevel k-way partition of ``g`` by recursive bisection."""
    options = _resolve_options(options, option_overrides)
    rng = np.random.default_rng(seed if seed is not None else options.seed)
    return _ml_partition(g, nparts, options, rng)


def nested_dissection(g, options=None, seed=None, **option_overrides):
    """Fill-reducing ordering of ``g`` by multilevel nested dissection.

    Returns a :class:`repro.ordering.Ordering` with ``perm`` (new→old) and
    ``iperm`` (old→new) arrays.
    """
    from repro.ordering import mlnd_ordering

    options = _resolve_options(options, option_overrides)
    rng = np.random.default_rng(seed if seed is not None else options.seed)
    return mlnd_ordering(g, options, rng)


def _resolve_options(options, overrides):
    if options is None:
        options = DEFAULT_OPTIONS
    if overrides:
        # Let string shorthands through ("hem" → MatchingScheme.HEM, etc.).
        coerced = {}
        for key, value in overrides.items():
            if key == "matching":
                value = MatchingScheme(value)
            elif key == "initial":
                value = InitialScheme(value)
            elif key == "refinement":
                value = RefinePolicy(value)
            coerced[key] = value
        options = options.with_(**coerced)
    return options


__all__ = [
    "__version__",
    "bisect",
    "partition",
    "nested_dissection",
    "CSRGraph",
    "from_edge_list",
    "read_graph",
    "write_graph",
    "MultilevelOptions",
    "DEFAULT_OPTIONS",
    "MatchingScheme",
    "InitialScheme",
    "RefinePolicy",
]


def __getattr__(name):
    # Lazy subpackage access (repro.matrices, repro.spectral, repro.ordering,
    # repro.geometric, repro.bench) without importing them eagerly — the
    # ordering stack pulls in more code than a plain partition call needs.
    import importlib

    if name in {"matrices", "spectral", "ordering", "geometric", "bench", "linalg", "parallel", "resilience"}:
        module = importlib.import_module(f"repro.{name}")
        globals()[name] = module
        return module
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
