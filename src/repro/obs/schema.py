"""The versioned JSONL trace schema (``repro-trace`` v1) and its validator.

Every line a :class:`~repro.obs.tracer.Tracer` writes is one JSON object
carrying the schema version (``"v"``) and a record kind (``"t"``):

``meta``
    Run header, written once per tracer: ``run`` (driver entry name),
    ``time`` (UTC ISO timestamp) and free-form ``fields``.
``span``
    A finished timed region: ``id``, ``parent`` (span id or null),
    ``name``, ``t0`` (seconds since the tracer's epoch), ``dur``
    (seconds) and ``fields``.  Phase spans carry ``fields.phase`` —
    one of the paper's CTime/ITime/RTime/PTime keys — which is what
    reconciles span totals with ``result.timers``.
``event``
    A point-in-time record: ``name``, ``span`` (enclosing span id or
    null), ``at`` (seconds since epoch) and ``fields``.  Event names are
    free-form; the ``worker.`` prefix (:data:`WORKER_EVENT_PREFIX`) is
    reserved for branch-supervision decisions
    (:mod:`repro.resilience.supervisor`) — ``worker.crash``,
    ``worker.timeout``, ``worker.retry``, ``worker.degrade``,
    ``worker.rebuild``, ``worker.fault`` — which ``repro trace`` rolls
    up into the profile's ``worker`` bucket.  The ``service.`` prefix
    (:data:`SERVICE_EVENT_PREFIX`) is reserved for the partitioning
    service (:mod:`repro.service`) — ``service.request``,
    ``service.cache.hit``, ``service.cache.miss``,
    ``service.cache.evict``, ``service.cache.expire``,
    ``service.job.run``, ``service.job.rejected`` — rolled up into the
    profile's ``service`` bucket.  Fresh (non-cached) service jobs also
    splice their phase wall-clock back as ``job.phase`` spans tagged
    with the phase key, the same device the branch supervisor uses for
    ``worker.phase``.
``counters``
    Accumulated totals, written once when the tracer closes: ``values``
    mapping counter name to number.

The validator is deliberately strict — unknown record kinds, missing or
mistyped keys, and *extra* top-level keys all raise
:class:`~repro.utils.errors.TraceError` — so a passing
:func:`validate_trace` genuinely pins the shape consumers can rely on.
Schema evolution bumps :data:`SCHEMA_VERSION`; readers reject versions
they do not know rather than guessing.
"""

from __future__ import annotations

import json

from repro.utils.errors import TraceError

__all__ = [
    "SCHEMA_VERSION",
    "RECORD_KINDS",
    "PHASE_KEYS",
    "WORKER_EVENT_PREFIX",
    "SERVICE_EVENT_PREFIX",
    "validate_record",
    "validate_trace_lines",
]

#: Current trace schema version; every record carries it as ``"v"``.
SCHEMA_VERSION = 1

#: The recognised record kinds (the ``"t"`` key).
RECORD_KINDS = ("meta", "span", "event", "counters")

#: The paper's per-phase accounting keys a phase span may be tagged with.
PHASE_KEYS = ("CTime", "ITime", "RTime", "PTime")

#: Event-name prefix reserved for worker-supervision decisions.
WORKER_EVENT_PREFIX = "worker."

#: Event-name prefix reserved for the partitioning service
#: (:mod:`repro.service`): request accounting and result-cache decisions.
SERVICE_EVENT_PREFIX = "service."

#: kind → {key: allowed types}; every key is required, no extras allowed.
_SHAPES = {
    "meta": {"run": (str,), "time": (str,), "fields": (dict,)},
    "span": {
        "id": (int,),
        "parent": (int, type(None)),
        "name": (str,),
        "t0": (int, float),
        "dur": (int, float),
        "fields": (dict,),
    },
    "event": {
        "name": (str,),
        "span": (int, type(None)),
        "at": (int, float),
        "fields": (dict,),
    },
    "counters": {"values": (dict,)},
}


def validate_record(record, *, line=None) -> dict:
    """Validate one trace record against the schema; return it unchanged.

    Raises
    ------
    repro.utils.errors.TraceError
        Naming the offending key (and ``line`` when given).
    """
    if not isinstance(record, dict):
        raise TraceError(
            f"trace record must be a JSON object, got {type(record).__name__}",
            line=line,
        )
    version = record.get("v")
    if version != SCHEMA_VERSION:
        raise TraceError(
            f"unsupported trace schema version {version!r} "
            f"(this reader knows v{SCHEMA_VERSION})",
            line=line,
        )
    kind = record.get("t")
    if kind not in RECORD_KINDS:
        raise TraceError(
            f"unknown record kind {kind!r}; expected one of {RECORD_KINDS}",
            line=line,
        )
    shape = _SHAPES[kind]
    for key, types in shape.items():
        if key not in record:
            raise TraceError(f"{kind} record missing key {key!r}", line=line)
        value = record[key]
        # bool is an int subclass; never a valid value for these keys.
        if isinstance(value, bool) or not isinstance(value, types):
            raise TraceError(
                f"{kind} record key {key!r} has type "
                f"{type(value).__name__}, expected "
                f"{' or '.join(t.__name__ for t in types)}",
                line=line,
            )
    extras = set(record) - set(shape) - {"v", "t"}
    if extras:
        raise TraceError(
            f"{kind} record carries unknown keys {sorted(extras)}", line=line
        )
    if kind == "span" and record["dur"] < 0:
        raise TraceError("span duration must be non-negative", line=line)
    if kind == "counters":
        for name, value in record["values"].items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise TraceError(
                    f"counter {name!r} has non-numeric value {value!r}",
                    line=line,
                )
    return record


def validate_trace_lines(lines) -> list[dict]:
    """Parse and validate an iterable of JSONL lines; return the records.

    Blank lines are ignored.  Raises
    :class:`~repro.utils.errors.TraceError` on the first malformed line.
    """
    records = []
    for lineno, raw in enumerate(lines, start=1):
        text = raw.strip()
        if not text:
            continue
        try:
            record = json.loads(text)
        except json.JSONDecodeError as exc:
            raise TraceError(f"invalid JSON: {exc}", line=lineno) from None
        records.append(validate_record(record, line=lineno))
    return records
