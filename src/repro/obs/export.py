"""Trace readers, the run-profile aggregation, and the bench JSON export.

Two consumers live here:

* ``repro trace FILE`` — :func:`read_trace` + :func:`profile` +
  :func:`format_profile` turn a JSONL trace into the per-phase /
  per-span / counter summary the CLI prints;
* the benchmark harness — :func:`bench_payload` +
  :func:`write_bench_json` persist every benchmark table as
  ``BENCH_<table>.json`` (machine-readable rows, environment, knobs),
  which is what starts the repository's performance trajectory.  The
  payload schema is versioned independently of the trace schema
  (:data:`BENCH_SCHEMA`).
"""

from __future__ import annotations

import json
import os
import platform
import sys
from datetime import datetime, timezone

from repro.obs.schema import (
    PHASE_KEYS,
    SERVICE_EVENT_PREFIX,
    WORKER_EVENT_PREFIX,
    validate_trace_lines,
)

__all__ = [
    "read_trace",
    "profile",
    "format_profile",
    "SPAN_PHASES",
    "BENCH_SCHEMA",
    "bench_env",
    "bench_payload",
    "write_bench_json",
]


def read_trace(path) -> list[dict]:
    """Read and schema-validate a JSONL trace file.

    Raises :class:`~repro.utils.errors.TraceError` on the first
    malformed record.
    """
    with open(path, encoding="utf-8") as fh:
        return validate_trace_lines(fh)


#: Phase affiliation for spans that carry no ``fields.phase`` tag.  Nested
#: kernel spans (``coarsen.match``) are deliberately *not* phase-tagged —
#: tagging them would double-count their wall-clock inside the already
#: phase-tagged parent span in ``phases`` — and driver-level recursion
#: spans (``partition`` / ``dissect`` / ``kway.branch``) enclose whole
#: subtrees.  The rollup buckets both kinds by this table instead of
#: dumping them in "other".
SPAN_PHASES = {
    "coarsen.match": "CTime",
    "kway-refine": "RTime",
    "kway.branch": "driver",
    "partition": "driver",
    "dissect": "driver",
    "worker.sequential": "worker",
}

#: Rollup bucket order: the paper's phase keys, then driver, then the
#: branch-supervision bucket, then the service bucket, then other.
#: (Synthetic ``worker.phase`` / ``job.phase`` spans are phase-tagged and
#: land in the phase buckets — they carry pool workers' and service jobs'
#: CTime/ITime/RTime/PTime back into the reconciliation; the ``worker``
#: bucket holds supervision itself — demoted sequential re-runs and the
#: ``worker.*`` decision events — and the ``service`` bucket holds the
#: partitioning service's request accounting and cache decisions.)
ROLLUP_BUCKETS = (*PHASE_KEYS, "driver", "worker", "service", "other")


def _rollup_bucket(name: str, fields: dict) -> str:
    """Which rollup bucket a span belongs to."""
    phase = fields.get("phase")
    if phase in PHASE_KEYS:
        return phase
    return SPAN_PHASES.get(name, "other")


def profile(records) -> dict:
    """Aggregate trace records into a run profile.

    Returns a dict with:

    * ``runs`` — the meta records, in order;
    * ``phases`` — summed span durations per CTime/ITime/RTime/PTime tag
      (a span contributes to the phase named by its ``fields.phase``);
    * ``spans`` — per span name: ``count`` and ``total`` seconds;
    * ``rollup`` — spans grouped by phase affiliation: ``fields.phase``
      when tagged, else the :data:`SPAN_PHASES` table (this is what puts
      the nested ``coarsen.match`` kernel under CTime and the recursion
      spans under "driver" instead of "other").  Per bucket: ``total``,
      ``count`` and a per-span-name ``spans`` breakdown.  Nested spans
      appear under their own name *and* inside their parent's duration,
      so rollup buckets overlap with ``phases`` by design — ``phases``
      stays the reconciliation against ``result.timers``.  The
      ``worker`` bucket additionally carries an ``events`` breakdown —
      the ``worker.*`` supervision decisions (crashes, timeouts,
      retries, degradations) of the run;
    * ``events`` — per event name: occurrence count;
    * ``counters`` — summed counter values across all counters records.
    """
    runs: list[dict] = []
    phases = {key: 0.0 for key in PHASE_KEYS}
    spans: dict[str, dict] = {}
    rollup = {
        bucket: {"total": 0.0, "count": 0, "spans": {}, "events": {}}
        for bucket in ROLLUP_BUCKETS
    }
    events: dict[str, int] = {}
    counters: dict[str, float] = {}
    for record in records:
        kind = record.get("t")
        if kind == "meta":
            runs.append(record)
        elif kind == "span":
            name = record["name"]
            dur = float(record["dur"])
            agg = spans.setdefault(name, {"count": 0, "total": 0.0})
            agg["count"] += 1
            agg["total"] += dur
            fields = record.get("fields", {})
            phase = fields.get("phase")
            if phase in phases:
                phases[phase] += dur
            bucket = rollup[_rollup_bucket(name, fields)]
            bucket["total"] += dur
            bucket["count"] += 1
            bucket["spans"][name] = bucket["spans"].get(name, 0.0) + dur
        elif kind == "event":
            name = record["name"]
            events[name] = events.get(name, 0) + 1
            if name.startswith(WORKER_EVENT_PREFIX):
                worker_events = rollup["worker"]["events"]
                worker_events[name] = worker_events.get(name, 0) + 1
            elif name.startswith(SERVICE_EVENT_PREFIX):
                service_events = rollup["service"]["events"]
                service_events[name] = service_events.get(name, 0) + 1
        elif kind == "counters":
            for name, value in record["values"].items():
                counters[name] = counters.get(name, 0) + value
    return {
        "runs": runs,
        "phases": phases,
        "spans": spans,
        "rollup": rollup,
        "events": events,
        "counters": counters,
    }


def format_profile(prof: dict) -> str:
    """Human-readable rendering of a :func:`profile` result."""
    lines = []
    runs = prof["runs"]
    lines.append(f"runs:     {len(runs)}")
    for meta in runs[:10]:
        fields = meta.get("fields", {})
        extra = (
            " (" + ", ".join(f"{k}={v}" for k, v in sorted(fields.items())) + ")"
            if fields
            else ""
        )
        lines.append(f"  {meta['run']}{extra}  at {meta['time']}")
    if len(runs) > 10:
        lines.append(f"  … and {len(runs) - 10} more")
    utime = sum(prof["phases"][k] for k in ("ITime", "RTime", "PTime"))
    lines.append("phases:")
    for key in PHASE_KEYS:
        lines.append(f"  {key}:  {prof['phases'][key]:9.4f}s")
    lines.append(f"  UTime: {utime:9.4f}s (ITime + RTime + PTime)")
    if prof["spans"]:
        lines.append("spans (by total time):")
        ranked = sorted(
            prof["spans"].items(), key=lambda kv: kv[1]["total"], reverse=True
        )
        for name, agg in ranked:
            mean = agg["total"] / agg["count"] if agg["count"] else 0.0
            lines.append(
                f"  {name:18s} ×{agg['count']:<6d} total {agg['total']:9.4f}s"
                f"  mean {mean * 1e3:8.3f}ms"
            )
    rollup = prof.get("rollup") or {}
    if any(
        bucket["count"] or bucket.get("events")
        for bucket in rollup.values()
    ):
        lines.append("rollup (span time by phase affiliation):")
        for key in ROLLUP_BUCKETS:
            bucket = rollup.get(key)
            if not bucket or not (bucket["count"] or bucket.get("events")):
                continue
            lines.append(
                f"  {key}:  {bucket['total']:9.4f}s  ×{bucket['count']}"
            )
            for name in sorted(
                bucket["spans"], key=bucket["spans"].get, reverse=True
            ):
                lines.append(
                    f"    {name:18s} {bucket['spans'][name]:9.4f}s"
                )
            for name in sorted(bucket.get("events") or {}):
                lines.append(
                    f"    {name:18s} ×{bucket['events'][name]}"
                )
    if prof["events"]:
        lines.append("events:")
        for name in sorted(prof["events"]):
            lines.append(f"  {name:24s} ×{prof['events'][name]}")
    if prof["counters"]:
        lines.append("counters:")
        for name in sorted(prof["counters"]):
            value = prof["counters"][name]
            rendered = f"{value:g}" if isinstance(value, float) else str(value)
            lines.append(f"  {name:24s} {rendered}")
    return "\n".join(lines)


#: Versioned identifier of the benchmark JSON payload shape.
BENCH_SCHEMA = "repro-bench/1"


def bench_env() -> dict:
    """The environment block every ``BENCH_*.json`` payload records."""
    env = {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "argv": list(sys.argv),
    }
    try:
        import numpy

        env["numpy"] = numpy.__version__
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        env["numpy"] = None
    knobs = {
        key: value
        for key, value in os.environ.items()
        if key.startswith("REPRO_BENCH_") or key in ("REPRO_TRACE",)
    }
    if knobs:
        env["knobs"] = knobs
    return env


def _row_dict(row) -> dict:
    """Serialise a bench ``Row`` (or mapping) into plain JSON-safe data."""
    from repro.obs.tracer import _jsonable

    if isinstance(row, dict):
        return _jsonable(row)
    return {
        "matrix": row.matrix,
        "scheme": row.scheme,
        "values": _jsonable(dict(row.values)),
    }


def bench_payload(table: str, rows, *, title: str = "", columns=None,
                  extra=None) -> dict:
    """Build the versioned JSON payload for one benchmark table."""
    payload = {
        "schema": BENCH_SCHEMA,
        "table": table,
        "title": title,
        "columns": list(columns) if columns is not None else None,
        "written": datetime.now(timezone.utc).isoformat(),
        "env": bench_env(),
        "rows": [_row_dict(row) for row in rows],
    }
    if extra:
        from repro.obs.tracer import _jsonable

        payload["extra"] = _jsonable(dict(extra))
    return payload


def write_bench_json(path, payload: dict) -> None:
    """Write a :func:`bench_payload` dict to ``path`` (pretty-printed)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
