"""Structured tracing for the multilevel pipeline.

The paper's entire evaluation is per-phase accounting — CTime/ITime/RTime/
PTime splits, per-level cut trajectories, per-pass FM behaviour — and this
module is the layer that makes those quantities observable on any run, not
just inside a benchmark.  A :class:`Tracer` records three things:

* **spans** — nested, timed regions opened with ``with trc.span(name):``.
  The pipeline opens one span per phase entry (coarsen/initial/refine/
  project), tagged with the phase key its wall-clock is accounted under,
  so span totals reconcile with ``result.timers``.
* **events** — point-in-time records attached to the innermost open span:
  one per coarsening level (|V|, |E|, matched fraction, heavy-edge share),
  one per FM pass (moves, rejections, undo depth, boundary size), one per
  initial-partition attempt/fallback (joined with the
  :class:`~repro.resilience.report.ResilienceReport`).
* **counters** — monotonically accumulated totals, emitted once when the
  tracer closes.

Activation mirrors :mod:`repro.resilience.faults`: the ``REPRO_TRACE``
environment variable (a file path, or ``-`` for stdout) or
``MultilevelOptions.trace``; :func:`tracer_from` returns a falsy null
object when neither is set.  Disabled call sites guard with ``if trc:`` /
``if span:`` so the happy path stays bit-identical — tracing never touches
the RNG — and the FM move loop itself contains **no** tracer calls at all
(events are per pass, never per move), which is the overhead guarantee
``docs/OBSERVABILITY.md`` documents and the test suite enforces.

Records are written as JSONL with a versioned schema; see
:mod:`repro.obs.schema` for the exact shapes and
:mod:`repro.obs.export` for readers and the profile aggregation behind
``repro trace``.
"""

from __future__ import annotations

import json
import os
import sys
import time
from contextlib import contextmanager
from datetime import datetime, timezone

from repro.obs.schema import SCHEMA_VERSION

__all__ = [
    "ENV_VAR",
    "Span",
    "Tracer",
    "NullSpan",
    "NullTracer",
    "NULL",
    "NULL_SPAN",
    "trace_target",
    "tracer_from",
    "open_tracer",
    "resolve_tracer",
]

#: Environment variable holding the ambient trace target (path or ``-``).
ENV_VAR = "REPRO_TRACE"


def _jsonable(value):
    """Coerce numpy scalars (and anything else odd) to JSON-safe values."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return str(value)


class Span:
    """One open (or finished) timed region; yielded by :meth:`Tracer.span`.

    Truthy, so workers handed a span can guard per-pass instrumentation
    with ``if span:`` exactly like the tracer itself.
    """

    __slots__ = ("tracer", "id", "parent", "name", "t0", "fields")

    def __init__(self, tracer, span_id, parent, name, t0, fields):
        self.tracer = tracer
        self.id = span_id
        self.parent = parent
        self.name = name
        self.t0 = t0
        self.fields = fields

    def __bool__(self) -> bool:
        return True

    def set(self, **fields) -> None:
        """Attach extra fields to the span record (emitted at exit)."""
        self.fields.update(fields)

    def event(self, name: str, **fields) -> None:
        """Emit an event attached to this span."""
        self.tracer._emit_event(self.id, name, fields)

    def counter(self, name: str, inc=1) -> None:
        """Accumulate into the owning tracer's counters."""
        self.tracer.counter(name, inc)

    def child(self, name: str, **fields):
        """Open a nested kernel span (context manager) under this span.

        Lets pipeline code holding only a phase span time an inner kernel
        (``coarsen.match``, ``kway.branch``) without being handed the
        tracer itself; the returned context manager must be entered, same
        as ``Tracer.span``.
        """
        owner = self.tracer
        return owner.span(name, **fields)

    def record(self, name: str, dur: float, **fields) -> None:
        """Emit a pre-timed child span under this span.

        For work whose wall-clock was measured elsewhere — a branch that
        ran in a pool worker reports its phase-timer totals back, and the
        parent records them here as synthetic spans (``worker.phase``,
        tagged with the phase key) so traced ``workers=N`` runs still
        reconcile span totals against ``result.timers``.
        """
        self.tracer.record_span(name, dur, parent=self.id, **fields)


class Tracer:
    """Span/event/counter recorder writing JSONL records to a sink.

    One tracer spans one driver entry (``bisect``, ``partition``, an
    ordering, a benchmark); recursive drivers thread a single tracer
    through so the whole run forms one span tree.  Not thread-safe — the
    pipeline is single-threaded by design.
    """

    enabled = True

    def __init__(self, sink, *, run: str = "run", owns_sink: bool = False,
                 meta=None):
        self._sink = sink
        self._owns_sink = owns_sink
        self._epoch = time.perf_counter()
        self._next_id = 0
        self._stack: list[Span] = []
        self._closed = False
        #: name → accumulated value; emitted as one record at close.
        self.counters: dict[str, float] = {}
        self.run = run
        self._emit(
            {
                "v": SCHEMA_VERSION,
                "t": "meta",
                "run": run,
                "time": datetime.now(timezone.utc).isoformat(),
                "fields": _jsonable(dict(meta or {})),
            }
        )

    def __bool__(self) -> bool:
        return True

    # -- low-level emission -------------------------------------------

    def _now(self) -> float:
        return time.perf_counter() - self._epoch

    def _emit(self, record: dict) -> None:
        if self._closed:
            return
        self._sink.write(json.dumps(record, separators=(",", ":")) + "\n")

    def _emit_event(self, span_id, name, fields) -> None:
        self._emit(
            {
                "v": SCHEMA_VERSION,
                "t": "event",
                "name": name,
                "span": span_id,
                "at": self._now(),
                "fields": _jsonable(fields),
            }
        )

    # -- public API ----------------------------------------------------

    @contextmanager
    def span(self, name: str, **fields):
        """Open a nested span; the record is emitted when the block exits."""
        span_id = self._next_id
        self._next_id += 1
        parent = self._stack[-1].id if self._stack else None
        sp = Span(self, span_id, parent, name, self._now(), fields)
        self._stack.append(sp)
        try:
            yield sp
        finally:
            self._stack.pop()
            self._emit(
                {
                    "v": SCHEMA_VERSION,
                    "t": "span",
                    "id": sp.id,
                    "parent": sp.parent,
                    "name": sp.name,
                    "t0": sp.t0,
                    "dur": self._now() - sp.t0,
                    "fields": _jsonable(sp.fields),
                }
            )

    def event(self, name: str, **fields) -> None:
        """Emit an event attached to the innermost open span (if any)."""
        parent = self._stack[-1].id if self._stack else None
        self._emit_event(parent, name, fields)

    def record_span(self, name: str, dur: float, *, parent=None, **fields):
        """Emit a finished span whose duration was measured elsewhere.

        The record is stamped as ending *now* (``t0 = now - dur``), under
        ``parent`` (default: the innermost open span).  Used to splice
        worker-measured branch timings into the parent's span tree.
        """
        span_id = self._next_id
        self._next_id += 1
        if parent is None and self._stack:
            parent = self._stack[-1].id
        now = self._now()
        self._emit(
            {
                "v": SCHEMA_VERSION,
                "t": "span",
                "id": span_id,
                "parent": parent,
                "name": name,
                "t0": max(0.0, now - dur),
                "dur": dur,
                "fields": _jsonable(fields),
            }
        )

    def counter(self, name: str, inc=1) -> None:
        """Accumulate ``inc`` into counter ``name``."""
        self.counters[name] = self.counters.get(name, 0) + inc

    def close(self) -> None:
        """Emit the counters record and release the sink.  Idempotent."""
        if self._closed:
            return
        if self.counters:
            self._emit(
                {
                    "v": SCHEMA_VERSION,
                    "t": "counters",
                    "values": {k: _jsonable(v) for k, v in self.counters.items()},
                }
            )
        try:
            self._sink.flush()
        finally:
            if self._owns_sink:
                self._sink.close()
            self._closed = True


class NullSpan:
    """Falsy no-op span handed out by :class:`NullTracer`.

    Workers guard with ``if span:``, so the disabled path never calls any
    of these; they exist so an unguarded call is still harmless.
    """

    __slots__ = ()

    def __bool__(self) -> bool:
        return False

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **fields) -> None:
        pass

    def event(self, name: str, **fields) -> None:
        pass

    def counter(self, name: str, inc=1) -> None:
        pass

    def child(self, name: str, **fields) -> "NullSpan":
        return self

    def record(self, name: str, dur: float, **fields) -> None:
        pass


#: Shared null span: also what ``NULL.span(...)`` returns, so phase
#: boundaries can write ``with trc.span(...) as sp:`` unconditionally.
NULL_SPAN = NullSpan()


class NullTracer:
    """Falsy stand-in used when tracing is disabled.

    Mirrors :class:`Tracer`'s surface; ``span`` returns the shared
    :data:`NULL_SPAN` (usable directly as a context manager, no allocation
    beyond the call itself), everything else is a no-op.
    """

    enabled = False

    def __bool__(self) -> bool:
        return False

    def span(self, name: str, **fields):
        return NULL_SPAN

    def event(self, name: str, **fields) -> None:
        pass

    def record_span(self, name: str, dur: float, *, parent=None, **fields):
        pass

    def counter(self, name: str, inc=1) -> None:
        pass

    def close(self) -> None:
        pass


#: Shared null singleton handed out by :func:`tracer_from` when off.
NULL = NullTracer()


def trace_target(options=None) -> str | None:
    """The configured trace target: ``options.trace`` else ``REPRO_TRACE``.

    Returns a path, ``-`` for stdout, or ``None`` when tracing is off.
    """
    target = getattr(options, "trace", None) if options is not None else None
    if target is None:
        target = os.environ.get(ENV_VAR, "").strip() or None
    return target


def open_tracer(target: str, *, run: str = "run", **meta) -> Tracer:
    """Open a :class:`Tracer` writing to ``target`` (path, or ``-``).

    File targets are opened in append mode so successive runs accumulate
    in one trace, each delimited by its own ``meta`` record.
    """
    if target == "-":
        return Tracer(sys.stdout, run=run, owns_sink=False, meta=meta)
    return Tracer(
        open(target, "a", encoding="utf-8"), run=run, owns_sink=True, meta=meta
    )


def tracer_from(options=None, *, run: str = "run", **meta):
    """Build the tracer selected by ``options`` and the environment.

    Returns the falsy :data:`NULL` singleton when neither
    ``options.trace`` nor ``REPRO_TRACE`` requests tracing, so disabled
    call sites perform no framework calls at all.
    """
    target = trace_target(options)
    if not target:
        return NULL
    return open_tracer(target, run=run, **meta)


def resolve_tracer(given, options=None, *, run: str = "run", **meta):
    """Resolve a driver entry's tracer: ``(tracer, owned)``.

    ``given`` wins when a caller (a recursive driver) already threads one
    through; otherwise the options/environment decide.  ``owned`` is True
    exactly when this entry created a live tracer and must close it.
    """
    if given is not None:
        return given, False
    trc = tracer_from(options, run=run, **meta)
    return trc, bool(trc)
