"""repro.obs — structured tracing and metrics for the multilevel pipeline.

See ``docs/OBSERVABILITY.md`` for the full story.  In one paragraph: a
:class:`~repro.obs.tracer.Tracer` (enabled by ``REPRO_TRACE=<path|->`` or
``MultilevelOptions.trace``) records nested phase spans, per-level
coarsening events, per-pass FM events and initial-partition attempt
events as schema-versioned JSONL (:mod:`repro.obs.schema`); the readers
and the ``BENCH_*.json`` benchmark export live in
:mod:`repro.obs.export`.  When disabled, :func:`~repro.obs.tracer.tracer_from`
returns a falsy null object — mirroring :mod:`repro.resilience.faults` —
so results are bit-identical and the FM hot loop carries zero overhead.
"""

from repro.obs.export import (
    BENCH_SCHEMA,
    SPAN_PHASES,
    bench_env,
    bench_payload,
    format_profile,
    profile,
    read_trace,
    write_bench_json,
)
from repro.obs.schema import (
    PHASE_KEYS,
    RECORD_KINDS,
    SCHEMA_VERSION,
    SERVICE_EVENT_PREFIX,
    WORKER_EVENT_PREFIX,
    validate_record,
    validate_trace_lines,
)
from repro.obs.tracer import (
    ENV_VAR,
    NULL,
    NULL_SPAN,
    NullSpan,
    NullTracer,
    Span,
    Tracer,
    open_tracer,
    resolve_tracer,
    trace_target,
    tracer_from,
)

__all__ = [
    "Tracer",
    "Span",
    "NullTracer",
    "NullSpan",
    "NULL",
    "NULL_SPAN",
    "ENV_VAR",
    "trace_target",
    "tracer_from",
    "open_tracer",
    "resolve_tracer",
    "SCHEMA_VERSION",
    "RECORD_KINDS",
    "PHASE_KEYS",
    "WORKER_EVENT_PREFIX",
    "SERVICE_EVENT_PREFIX",
    "validate_record",
    "validate_trace_lines",
    "read_trace",
    "profile",
    "format_profile",
    "SPAN_PHASES",
    "BENCH_SCHEMA",
    "bench_env",
    "bench_payload",
    "write_bench_json",
]
