"""Initial bisection of the coarsest graph (§3.2).

Three algorithms, matching the paper's implementation:

* **GGP** — graph growing: pick a random vertex, grow a region around it in
  breadth-first order until the region holds half the vertex weight.  Ten
  random seeds are tried and the best cut wins.
* **GGGP** — greedy graph growing: grow from a random vertex, but at each
  step absorb the frontier vertex whose move *least increases* (most
  decreases) the cut — i.e. the highest-gain vertex in FM terms.  Five
  seeds are tried.  The paper found GGGP consistently best, and it is the
  default.
* **SBP** — spectral bisection: split at the weighted median of the Fiedler
  vector.  The coarsest graph has ≲ 100 vertices, so a dense symmetric
  eigensolve is exact and cheap.

All three take an explicit target weight for part 0 so recursive bisection
can request unequal splits (⌈k/2⌉ : ⌊k/2⌋ for odd k).  Disconnected coarse
graphs are handled by re-seeding growth in an untouched component.
"""

from __future__ import annotations

import numpy as np

from repro.core.options import DEFAULT_OPTIONS, InitialScheme
from repro.graph.partition import Bisection, edge_cut, part_weights
from repro.utils.errors import PartitionError, SpectralConvergenceError
from repro.utils.rng import as_generator, spawn_child


def _grown_bisection(graph, where) -> Bisection:
    return Bisection.from_where(graph, where)


def ggp_bisection(graph, target0=None, rng=None, trials=10) -> Bisection:
    """Graph-growing bisection (GGP): BFS region growth, best of ``trials``."""
    rng = as_generator(rng)
    n = graph.nvtxs
    if n < 2:
        raise PartitionError("cannot bisect a graph with fewer than 2 vertices")
    total = graph.total_vwgt()
    if target0 is None:
        target0 = total // 2
    xadj, adjncy, vwgt = graph.xadj, graph.adjncy, graph.vwgt

    best = None
    for _ in range(trials):
        where = np.ones(n, dtype=np.int8)
        visited = np.zeros(n, dtype=bool)
        pwgt0 = 0
        queue: list[int] = []
        head = 0
        while pwgt0 < target0 and pwgt0 < total:
            if head >= len(queue):  # (re)seed in an untouched component
                candidates = np.flatnonzero(~visited)
                seed = int(candidates[rng.integers(len(candidates))])
                visited[seed] = True
                queue.append(seed)
            v = queue[head]
            head += 1
            if pwgt0 + int(vwgt[v]) >= total:
                break  # absorbing v would empty part 1
            where[v] = 0
            pwgt0 += int(vwgt[v])
            for u in adjncy[xadj[v] : xadj[v + 1]]:
                if not visited[u]:
                    visited[u] = True
                    queue.append(int(u))
        cand = _grown_bisection(graph, where)
        if best is None or cand.cut < best.cut:
            best = cand
    return best


def gggp_bisection(graph, target0=None, rng=None, trials=5) -> Bisection:
    """Greedy graph-growing bisection (GGGP): gain-ordered growth."""
    rng = as_generator(rng)
    n = graph.nvtxs
    if n < 2:
        raise PartitionError("cannot bisect a graph with fewer than 2 vertices")
    total = graph.total_vwgt()
    if target0 is None:
        target0 = total // 2
    xadj, adjncy, adjwgt, vwgt = graph.xadj, graph.adjncy, graph.adjwgt, graph.vwgt

    # gain[v] = (edge weight from v into the region) − (edge weight to the
    # rest): moving the max-gain frontier vertex grows the region with the
    # least increase in cut.  The coarsest graph is tiny (≲ a few hundred
    # vertices), so a dense argmax over the frontier beats heap upkeep.
    # Accumulate in int64 (bincount's float64 weights round past 2**53).
    wdeg = np.zeros(n, dtype=np.int64)
    np.add.at(wdeg, graph.edge_sources(), adjwgt)
    neg_inf = np.iinfo(np.int64).min

    best = None
    for _ in range(trials):
        where = np.ones(n, dtype=np.int8)
        in_region = np.zeros(n, dtype=bool)
        frontier = np.zeros(n, dtype=bool)
        gain = -wdeg.copy()
        pwgt0 = 0
        while pwgt0 < target0 and pwgt0 < total:
            if frontier.any():
                masked = np.where(frontier, gain, neg_inf)
                v = int(np.argmax(masked))
            else:  # frontier empty: seed a fresh component
                candidates = np.flatnonzero(~in_region)
                v = int(candidates[rng.integers(len(candidates))])
            if pwgt0 + int(vwgt[v]) >= total:
                break  # absorbing v would empty part 1
            in_region[v] = True
            frontier[v] = False
            where[v] = 0
            pwgt0 += int(vwgt[v])
            nbrs = adjncy[xadj[v] : xadj[v + 1]]
            w = adjwgt[xadj[v] : xadj[v + 1]]
            outside = ~in_region[nbrs]
            touched = nbrs[outside]
            # Each edge into the region flips external→internal: +2w.
            np.add.at(gain, touched, 2 * w[outside])
            frontier[touched] = True
        cand = _grown_bisection(graph, where)
        if best is None or cand.cut < best.cut:
            best = cand
    return best


def sbp_bisection(graph, target0=None, rng=None, *, faults=None) -> Bisection:
    """Spectral bisection (SBP) of a small graph via the dense Fiedler vector.

    Intended for coarsest graphs (the dense eigensolve is O(n³)); for large
    graphs use :mod:`repro.spectral` which provides a Lanczos path.

    Raises
    ------
    repro.utils.errors.SpectralConvergenceError
        Propagated unmasked from the eigensolver — the caller
        (:func:`initial_bisection`) owns the fallback decision.
    """
    from repro.spectral.fiedler import fiedler_vector

    n = graph.nvtxs
    if n < 2:
        raise PartitionError("cannot bisect a graph with fewer than 2 vertices")
    total = graph.total_vwgt()
    if target0 is None:
        target0 = total // 2
    fiedler = fiedler_vector(graph, rng=rng, faults=faults)
    return split_at_weighted_median(graph, fiedler, target0)


def split_at_weighted_median(graph, values, target0) -> Bisection:
    """Bisect by thresholding ``values``: the lowest-valued vertices whose
    weight first reaches ``target0`` form part 0.

    Shared by spectral and geometric bisection.  Ties in value are broken
    by vertex id (via stable argsort), which keeps results deterministic.
    """
    order = np.argsort(values, kind="stable")
    cum = np.cumsum(graph.vwgt[order])
    # First prefix whose weight reaches the target (always ≥ 1 vertex,
    # always leaves ≥ 1 vertex when target0 < total).
    k = int(np.searchsorted(cum, target0, side="left")) + 1
    k = min(max(k, 1), graph.nvtxs - 1)
    where = np.ones(graph.nvtxs, dtype=np.int8)
    where[order[:k]] = 0
    return Bisection.from_where(graph, where)


#: Scheme order tried on failure: spectral falls back to the combinatorial
#: growers (which cannot fail to converge), and each grower falls back to
#: the other before the terminal weighted-median split.
FALLBACK_CHAINS = {
    InitialScheme.SBP: (InitialScheme.SBP, InitialScheme.GGGP, InitialScheme.GGP),
    InitialScheme.GGGP: (InitialScheme.GGGP, InitialScheme.GGP),
    InitialScheme.GGP: (InitialScheme.GGP, InitialScheme.GGGP),
}


def _run_scheme(scheme, graph, options, rng, target0, faults):
    if scheme is InitialScheme.GGP:
        return ggp_bisection(graph, target0, rng, options.ggp_trials)
    if scheme is InitialScheme.GGGP:
        return gggp_bisection(graph, target0, rng, options.gggp_trials)
    return sbp_bisection(graph, target0, rng, faults=faults)


def _corrupt_bisection(graph) -> Bisection:
    """The injected ``initial`` fault: everything on one side but the single
    lightest vertex — a grossly unbalanced (but structurally well-formed)
    bisection, the shape of failure a buggy or degenerate scheme produces."""
    where = np.ones(graph.nvtxs, dtype=np.int8)
    where[int(np.argmin(graph.vwgt))] = 0
    return Bisection.from_where(graph, where)


def initial_defect(graph, bisection, target0, ubfactor) -> str | None:
    """Validate an initial bisection; return a defect description or None.

    The balance cap is deliberately loose — ``ubfactor × the larger target
    plus one maximum vertex weight`` — so every legitimate scheme output
    passes (coarse vertices are heavy, exact balance is unattainable) while
    the pathological all-on-one-side shapes are caught.
    """
    n = graph.nvtxs
    where = np.asarray(bisection.where)
    if where.shape != (n,):
        return f"a where array of length {where.shape} for {n} vertices"
    if n and not np.isin(where, (0, 1)).all():
        return "part labels outside {0, 1}"
    pwgts = part_weights(graph, where, 2)
    if not np.array_equal(pwgts, np.asarray(bisection.pwgts)):
        return (
            f"part-weight drift (recorded {np.asarray(bisection.pwgts).tolist()}, "
            f"actual {pwgts.tolist()})"
        )
    if edge_cut(graph, where) != bisection.cut:
        return "edge-cut drift between the record and the assignment"
    if n >= 2 and (pwgts == 0).any():
        return "an empty side"
    total = int(graph.total_vwgt())
    target1 = total - target0
    cap = int(np.ceil(ubfactor * max(target0, target1))) + int(graph.vwgt.max())
    if int(pwgts.max()) > cap:
        return f"gross imbalance (pwgts={pwgts.tolist()}, cap={cap})"
    return None


def initial_bisection(
    graph,
    options=DEFAULT_OPTIONS,
    rng=None,
    target0=None,
    *,
    faults=None,
    report=None,
    span=None,
):
    """Dispatch to the configured initial-partitioning scheme, resiliently.

    Walks the scheme's :data:`FALLBACK_CHAINS` entry.  Each scheme gets
    ``1 + options.max_init_retries`` attempts; an attempt that raises
    :class:`~repro.utils.errors.SpectralConvergenceError` skips straight to
    the next scheme, and one that produces an invalid bisection (see
    :func:`initial_defect`) is retried with a fresh child seed.  The
    terminal fallback — a weighted-median split by vertex id — cannot fail
    and is accepted unconditionally.  Every fallback and retry is recorded
    to ``report`` when one is supplied, and mirrored as ``initial.*``
    events on ``span`` when tracing is enabled — the joined view (which
    scheme ran, how often it was reseeded, what it fell back to) is the
    per-attempt record the :class:`~repro.resilience.report.ResilienceReport`
    summarises.

    The first attempt consumes ``rng`` exactly as the pre-resilience
    dispatch did, so results on the no-failure path are bit-identical.
    """
    rng = as_generator(rng if rng is not None else options.seed)
    n = graph.nvtxs
    if n < 2:
        raise PartitionError("cannot bisect a graph with fewer than 2 vertices")
    total = graph.total_vwgt()
    if target0 is None:
        target0 = total // 2

    chain = FALLBACK_CHAINS[InitialScheme(options.initial)]
    first_attempt = True
    for scheme in chain:
        for attempt in range(options.max_init_retries + 1):
            attempt_rng = rng if first_attempt else spawn_child(rng)
            first_attempt = False
            try:
                bisection = _run_scheme(
                    scheme, graph, options, attempt_rng, target0, faults
                )
            except SpectralConvergenceError as exc:
                if report is not None:
                    report.record(
                        "fallback",
                        "initial",
                        f"{scheme.value} failed ({exc}); trying next scheme",
                    )
                if span:
                    span.event(
                        "initial.fallback",
                        scheme=scheme.value,
                        reason="convergence",
                    )
                break  # retrying a deterministic solver is pointless
            if faults and faults.trip("initial"):
                bisection = _corrupt_bisection(graph)
            defect = initial_defect(graph, bisection, target0, options.ubfactor)
            if defect is None:
                if span:
                    span.event(
                        "initial.attempt",
                        scheme=scheme.value,
                        attempt=attempt + 1,
                        cut=int(bisection.cut),
                        outcome="accepted",
                    )
                return bisection
            if attempt < options.max_init_retries:
                if report is not None:
                    report.record(
                        "retry",
                        "initial",
                        f"{scheme.value} produced {defect}; "
                        f"reseeding (attempt {attempt + 2})",
                    )
                if span:
                    span.event(
                        "initial.retry",
                        scheme=scheme.value,
                        attempt=attempt + 1,
                        defect=defect,
                    )
            else:
                if report is not None:
                    report.record(
                        "fallback",
                        "initial",
                        f"{scheme.value} still invalid after "
                        f"{options.max_init_retries} reseeds ({defect}); "
                        "trying next scheme",
                    )
                if span:
                    span.event(
                        "initial.fallback",
                        scheme=scheme.value,
                        reason="defect",
                        defect=defect,
                    )
    if report is not None:
        report.record(
            "fallback",
            "initial",
            "all schemes failed; weighted-median split by vertex id",
        )
    if span:
        span.event("initial.fallback", scheme="median", reason="exhausted")
    return split_at_weighted_median(graph, np.arange(n), target0)
