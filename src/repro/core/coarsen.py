"""The coarsening phase (§3.1): repeated match-and-contract.

Produces the sequence ``G_0, G_1, …, G_m`` with ``|V_0| > |V_1| > … >
|V_m|`` together with the coarse maps that project partitions back up.
Coarsening stops when the graph is small enough (``coarsen_to``), when a
level fails to shrink the graph meaningfully (``coarsen_stall_ratio`` — a
maximal matching on a star matches one edge, so stall detection is what
terminates on such graphs), or at the level cap.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.sanitize import sanitizer
from repro.core.matching import matching_stats
from repro.core.options import DEFAULT_OPTIONS, MatchingScheme
from repro.kernels import resolve_kernels
from repro.obs.tracer import NULL_SPAN
from repro.graph.contract import (
    coarse_map_from_matching,
    collapsed_edge_weight,
)
from repro.utils.rng import as_generator


@dataclass
class CoarseningHierarchy:
    """The result of the coarsening phase.

    Attributes
    ----------
    graphs:
        ``graphs[0]`` is the input graph, ``graphs[-1]`` the coarsest.
    cmaps:
        ``cmaps[i][v]`` is the vertex of ``graphs[i+1]`` that vertex ``v``
        of ``graphs[i]`` collapsed into; ``len(cmaps) == len(graphs) - 1``.
    """

    graphs: list = field(default_factory=list)
    cmaps: list = field(default_factory=list)

    @property
    def nlevels(self) -> int:
        """Number of graphs in the hierarchy (≥ 1)."""
        return len(self.graphs)

    @property
    def coarsest(self):
        """The coarsest graph ``G_m``."""
        return self.graphs[-1]

    def project_to_finest(self, coarse_values: np.ndarray) -> np.ndarray:
        """Map per-vertex values on the coarsest graph to the finest.

        Utility used by tests and by MSB-style algorithms: composes the
        coarse maps so ``result[v] = coarse_values[cmap_{m-1}[… cmap_0[v]]]``.
        """
        values = np.asarray(coarse_values)
        for cmap in reversed(self.cmaps):
            values = values[cmap]
        return values


def coarsen(
    graph, options=DEFAULT_OPTIONS, rng=None, *, faults=None, report=None,
    span=None, kernels=None,
) -> CoarseningHierarchy:
    """Run the coarsening phase on ``graph``.

    Parameters
    ----------
    graph:
        The graph to coarsen (``G_0``).
    options:
        :class:`~repro.core.options.MultilevelOptions`; the fields used here
        are ``matching``, ``coarsen_to``, ``coarsen_stall_ratio`` and
        ``max_coarsen_levels``.
    rng:
        Seed or generator for the randomized matchings.
    faults:
        Optional :class:`~repro.resilience.faults.FaultInjector`; its
        ``matching`` site simulates a degenerate matching (no shrinkage),
        stopping coarsening at the current level.
    report:
        Optional :class:`~repro.resilience.report.ResilienceReport`; a
        ``stall`` event is recorded whenever coarsening stops above
        ``coarsen_to`` — injected or natural — since downstream phases then
        run on a larger-than-intended coarsest graph.
    span:
        Optional open tracer span (the ``CTime`` phase span); when truthy a
        ``coarsen.level`` event is emitted per level with the coarse sizes
        and the :func:`~repro.core.matching.matching_stats` summary, and
        the selected matching/contract backends are recorded on the span.
    kernels:
        Pre-resolved :class:`repro.kernels.KernelSelection` threaded by the
        driver; resolved from ``options`` when omitted.

    Returns
    -------
    CoarseningHierarchy
    """
    rng = as_generator(rng if rng is not None else options.seed)
    san = sanitizer(options)
    if kernels is None:
        kernels = resolve_kernels(options)
    matching_kernel = kernels.kernel("matching")
    contract_kernel = kernels.kernel("contract")
    matching_impl = kernels.backend("matching")
    if span:
        span.set(
            matching_kernel=matching_impl,
            contract_kernel=kernels.backend("contract"),
        )
        fallbacks = kernels.as_dict().get("fallbacks")
        if fallbacks:
            span.set(kernel_fallbacks=fallbacks)
    hierarchy = CoarseningHierarchy(graphs=[graph], cmaps=[])
    current = graph
    cewgt = None
    if options.matching is MatchingScheme.HCM:
        cewgt = np.zeros(graph.nvtxs, dtype=np.int64)

    while (
        current.nvtxs > options.coarsen_to
        and hierarchy.nlevels <= options.max_coarsen_levels
    ):
        level = hierarchy.nlevels - 1
        if faults and faults.trip("matching"):
            if report is not None:
                report.record(
                    "stall",
                    "coarsen",
                    f"injected degenerate matching at {current.nvtxs} "
                    "vertices; coarsening stopped",
                    level=level,
                )
            break
        with (
            span.child(
                "coarsen.match",
                level=level,
                nvtxs=current.nvtxs,
                scheme=MatchingScheme(options.matching).value,
                impl=matching_impl,
            )
            if span
            else NULL_SPAN
        ):
            match = matching_kernel(current, options.matching, rng, cewgt)
        if san:
            san.check_matching(current, match, level=level)
        cmap, ncoarse = coarse_map_from_matching(match)
        if ncoarse >= current.nvtxs * options.coarsen_stall_ratio:
            if report is not None:
                report.record(
                    "stall",
                    "coarsen",
                    f"matching stalled ({current.nvtxs} → {ncoarse} "
                    "vertices); coarsening stopped",
                    level=level,
                )
            break  # matching stalled; further levels would spin
        if options.matching is MatchingScheme.HCM:
            cewgt = collapsed_edge_weight(current, cmap, ncoarse, cewgt)
        coarse = contract_kernel(current, cmap, ncoarse)
        if san:
            san.check_contraction(current, coarse, cmap, level=level)
        hierarchy.graphs.append(coarse)
        hierarchy.cmaps.append(cmap)
        if span:
            span.event(
                "coarsen.level",
                level=level,
                scheme=MatchingScheme(options.matching).value,
                nvtxs=coarse.nvtxs,
                nedges=coarse.nedges,
                **matching_stats(current, match),
            )
        current = coarse
    if span:
        span.set(levels=hierarchy.nlevels, coarsest_nvtxs=current.nvtxs)
    return hierarchy
