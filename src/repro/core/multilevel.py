"""The multilevel bisection driver (§3): coarsen → partition → uncoarsen.

:func:`bisect` wires the three phases together and accounts time the way the
paper's tables do:

* ``CTime`` — coarsening;
* ``ITime`` — initial partition of the coarsest graph;
* ``RTime`` — refinement across all levels;
* ``PTime`` — projecting partitions level to level;
* ``UTime`` — ``ITime + RTime + PTime`` (derived, reported by the bench).

The projected partition of level ``i+1`` is refined on level ``i`` before
projecting further — "after projecting a partition, a partition refinement
algorithm is used" — and the coarsest-level partition itself is also
refined once, which costs nothing (the graph is tiny) and matches the
released implementation of the paper's system.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.sanitize import sanitizer
from repro.core.coarsen import CoarseningHierarchy, coarsen
from repro.core.initial import initial_bisection
from repro.core.options import DEFAULT_OPTIONS
from repro.core.refine import PassStats, refine_bisection
from repro.graph.partition import Bisection, part_weights
from repro.utils.errors import PartitionError
from repro.utils.rng import as_generator
from repro.utils.timing import PhaseTimer


@dataclass
class MultilevelResult:
    """Everything :func:`bisect` learned.

    Attributes
    ----------
    bisection:
        Final bisection of the input graph.
    timers:
        :class:`PhaseTimer` with CTime/ITime/RTime/PTime totals.
    nlevels:
        Number of graphs in the coarsening hierarchy.
    coarsest_nvtxs:
        Size of the coarsest graph.
    initial_cut:
        Cut of the initial partition *on the coarsest graph* — by the edge
        weight construction of §3.1 this is directly comparable with the
        final cut, which is how Table 3 measures coarsening quality.
    stats:
        Aggregated refinement pass statistics.
    """

    bisection: Bisection
    timers: PhaseTimer
    nlevels: int
    coarsest_nvtxs: int
    initial_cut: int
    stats: PassStats = field(default_factory=PassStats)


def project_where(where_coarse, cmap) -> np.ndarray:
    """Project a coarse partition assignment to the finer level."""
    return np.asarray(where_coarse)[cmap]


def bisect(
    graph,
    options=DEFAULT_OPTIONS,
    rng=None,
    *,
    target0=None,
    hierarchy: CoarseningHierarchy | None = None,
) -> MultilevelResult:
    """Multilevel bisection of ``graph``.

    Parameters
    ----------
    graph:
        Graph to bisect (≥ 2 vertices).
    options:
        Phase configuration; see :class:`~repro.core.options.MultilevelOptions`.
    target0:
        Target vertex weight for part 0 (default: half the total).  Part
        weight caps are ``ubfactor ×`` the respective targets.
    hierarchy:
        Pre-computed coarsening hierarchy to reuse (the matching-ablation
        bench coarsens once and tries several refinements); must have been
        built from ``graph``.

    Returns
    -------
    MultilevelResult
    """
    if graph.nvtxs < 2:
        raise PartitionError("cannot bisect a graph with fewer than 2 vertices")
    rng = as_generator(rng if rng is not None else options.seed)
    timers = PhaseTimer()
    stats = PassStats()
    total = graph.total_vwgt()
    if target0 is None:
        target0 = total // 2
    if not (0 < target0 < total):
        raise PartitionError(
            f"target0 must be in (0, {total}); got {target0}"
        )
    target1 = total - target0
    maxpwgt = (
        int(np.ceil(options.ubfactor * target0)),
        int(np.ceil(options.ubfactor * target1)),
    )

    # --- Phase 1: coarsening -----------------------------------------
    if hierarchy is None:
        with timers.phase("CTime"):
            hierarchy = coarsen(graph, options, rng)
    coarsest = hierarchy.coarsest

    # --- Phase 2: initial partition ----------------------------------
    san = sanitizer(options)
    with timers.phase("ITime"):
        bisection = initial_bisection(coarsest, options, rng, target0)
    initial_cut = bisection.cut
    if san:
        san.check_bisection(
            coarsest,
            bisection.where,
            bisection.pwgts,
            bisection.cut,
            phase="initial",
            level=hierarchy.nlevels - 1,
        )

    # --- Phase 3: uncoarsening ---------------------------------------
    with timers.phase("RTime"):
        refine_bisection(
            coarsest,
            bisection,
            options.refinement,
            options,
            maxpwgt=maxpwgt,
            original_nvtxs=graph.nvtxs,
            stats=stats,
        )
    for level in range(hierarchy.nlevels - 2, -1, -1):
        fine = hierarchy.graphs[level]
        with timers.phase("PTime"):
            where = project_where(bisection.where, hierarchy.cmaps[level])
            bisection = Bisection(
                where=where,
                cut=bisection.cut,  # invariant: cut is preserved by projection
                pwgts=part_weights(fine, where, 2),
            )
        if san:
            san.check_bisection(
                fine,
                bisection.where,
                bisection.pwgts,
                bisection.cut,
                phase="project",
                level=level,
            )
        with timers.phase("RTime"):
            refine_bisection(
                fine,
                bisection,
                options.refinement,
                options,
                maxpwgt=maxpwgt,
                original_nvtxs=graph.nvtxs,
                stats=stats,
            )

    return MultilevelResult(
        bisection=bisection,
        timers=timers,
        nlevels=hierarchy.nlevels,
        coarsest_nvtxs=coarsest.nvtxs,
        initial_cut=initial_cut,
        stats=stats,
    )
