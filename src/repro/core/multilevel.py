"""The multilevel bisection driver (§3): coarsen → partition → uncoarsen.

:func:`bisect` wires the three phases together and accounts time the way the
paper's tables do:

* ``CTime`` — coarsening;
* ``ITime`` — initial partition of the coarsest graph;
* ``RTime`` — refinement across all levels;
* ``PTime`` — projecting partitions level to level;
* ``UTime`` — ``ITime + RTime + PTime`` (derived, reported by the bench).

The projected partition of level ``i+1`` is refined on level ``i`` before
projecting further — "after projecting a partition, a partition refinement
algorithm is used" — and the coarsest-level partition itself is also
refined once, which costs nothing (the graph is tiny) and matches the
released implementation of the paper's system.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.sanitize import sanitizer
from repro.core.coarsen import CoarseningHierarchy, coarsen
from repro.core.initial import initial_bisection
from repro.core.options import DEFAULT_OPTIONS, InitialScheme, RefinePolicy
from repro.core.refine import PassStats, refine_bisection
from repro.graph.partition import Bisection, part_weights
from repro.kernels import resolve_kernels
from repro.obs.tracer import resolve_tracer
from repro.resilience.deadline import DeadlineGuard
from repro.resilience.faults import fault_injector
from repro.resilience.report import ResilienceReport
from repro.utils.errors import PartitionError
from repro.utils.rng import as_generator
from repro.utils.timing import PhaseTimer


@dataclass
class MultilevelResult:
    """Everything :func:`bisect` learned.

    Attributes
    ----------
    bisection:
        Final bisection of the input graph.
    timers:
        :class:`PhaseTimer` with CTime/ITime/RTime/PTime totals.
    nlevels:
        Number of graphs in the coarsening hierarchy.
    coarsest_nvtxs:
        Size of the coarsest graph.
    initial_cut:
        Cut of the initial partition *on the coarsest graph* — by the edge
        weight construction of §3.1 this is directly comparable with the
        final cut, which is how Table 3 measures coarsening quality.
    stats:
        Aggregated refinement pass statistics.
    resilience:
        Audit trail of every fallback, retry, degradation and stall that
        fired during the run (empty on a clean run).
    kernels:
        The resolved per-phase kernel backends
        (:meth:`repro.kernels.KernelSelection.as_dict`): the requested
        backend, the backend each phase actually ran on, and the reason
        for any fallback — so bench snapshots and traces always say
        which kernel produced each number.
    """

    bisection: Bisection
    timers: PhaseTimer
    nlevels: int
    coarsest_nvtxs: int
    initial_cut: int
    stats: PassStats = field(default_factory=PassStats)
    resilience: ResilienceReport = field(default_factory=ResilienceReport)
    kernels: dict = field(default_factory=dict)


def project_where(where_coarse, cmap) -> np.ndarray:
    """Project a coarse partition assignment to the finer level."""
    return np.asarray(where_coarse)[cmap]


#: Deadline/fault degradation: each multi-pass refinement policy maps to its
#: single-pass boundary counterpart (same move engine, bounded work).
_DEGRADE = {
    RefinePolicy.BKLR: RefinePolicy.BGR,
    RefinePolicy.BKLGR: RefinePolicy.BGR,
    RefinePolicy.KLR: RefinePolicy.GR,
}


def _effective_policy(policy, guard, faults, report, level):
    """The refinement policy to run at ``level``, degraded when necessary."""
    degraded = _DEGRADE.get(policy)
    if degraded is None:
        return policy
    if faults and faults.trip("refine"):
        if report is not None:
            report.record(
                "degradation",
                "refine",
                f"injected pass-budget exhaustion: {policy.value} → "
                f"{degraded.value}",
                level=level,
            )
        return degraded
    if guard is not None and guard.nearing():
        if report is not None:
            report.record(
                "degradation",
                "refine",
                f"deadline nearing ({guard.remaining():.3f}s of "
                f"{guard.deadline:.3f}s left): {policy.value} → "
                f"{degraded.value}",
                level=level,
            )
        return degraded
    return policy


def _checkpoint(guard, faults, report, hierarchy, bisection, level, phase):
    """Deadline checkpoint at a phase boundary.

    When the guard has expired (or the ``deadline`` fault site forces it
    to), the current coarse bisection — if any — is projected down to the
    finest graph and attached to the raised
    :class:`~repro.utils.errors.DeadlineExceededError` as the best result
    so far, so callers can degrade instead of failing.
    """
    if guard is None:
        return
    # The fault site is consulted only once a bisection exists, so an
    # injected expiry always carries a usable best-so-far.
    if bisection is not None and faults and faults.trip("deadline"):
        guard.force_expire()
    if not guard.expired():
        return
    best = None
    if bisection is not None:
        where = np.asarray(bisection.where)
        for cmap in reversed(hierarchy.cmaps[:level]):
            where = where[cmap]
        best = Bisection.from_where(hierarchy.graphs[0], where)
    guard.check(phase=phase, level=level, best=best, report=report)


def bisect(
    graph,
    options=DEFAULT_OPTIONS,
    rng=None,
    *,
    target0=None,
    hierarchy: CoarseningHierarchy | None = None,
    faults=None,
    report=None,
    guard=None,
    tracer=None,
) -> MultilevelResult:
    """Multilevel bisection of ``graph``.

    Parameters
    ----------
    graph:
        Graph to bisect (≥ 2 vertices).
    options:
        Phase configuration; see :class:`~repro.core.options.MultilevelOptions`.
    target0:
        Target vertex weight for part 0 (default: half the total).  Part
        weight caps are ``ubfactor ×`` the respective targets.
    hierarchy:
        Pre-computed coarsening hierarchy to reuse (the matching-ablation
        bench coarsens once and tries several refinements); must have been
        built from ``graph``.
    faults:
        Fault injector to use; default resolves ``options.faults`` /
        ``REPRO_FAULTS`` via
        :func:`~repro.resilience.faults.fault_injector`.  Recursive drivers
        (k-way, nested dissection) pass one shared injector so clause
        counts span the whole run.
    report:
        :class:`~repro.resilience.report.ResilienceReport` to append to
        (shared by recursive drivers); a fresh one is created otherwise and
        attached to the result as ``result.resilience``.
    guard:
        :class:`~repro.resilience.deadline.DeadlineGuard` spanning an outer
        run; when ``None`` and ``options.deadline`` is set, a guard is
        armed here covering this bisection alone.
    tracer:
        :class:`~repro.obs.tracer.Tracer` threaded by an outer driver
        (k-way, nested dissection) so the whole run forms one span tree;
        default resolves ``options.trace`` / ``REPRO_TRACE`` via
        :func:`~repro.obs.tracer.resolve_tracer` and closes the tracer it
        opened when the bisection finishes.

    Returns
    -------
    MultilevelResult

    Raises
    ------
    repro.utils.errors.DeadlineExceededError
        When a deadline guard expires; ``exc.best`` carries the best
        finest-graph bisection found before the budget ran out (or ``None``
        if none existed yet) and ``exc.report`` the audit trail.
    """
    if graph.nvtxs < 2:
        raise PartitionError("cannot bisect a graph with fewer than 2 vertices")
    rng = as_generator(rng if rng is not None else options.seed)
    timers = PhaseTimer()
    stats = PassStats()
    if faults is None:
        faults = fault_injector(options)
    if report is None:
        report = ResilienceReport()
    if guard is None and options.deadline is not None:
        guard = DeadlineGuard(options.deadline, timer=timers)
    total = graph.total_vwgt()
    if target0 is None:
        target0 = total // 2
    if not (0 < target0 < total):
        raise PartitionError(
            f"target0 must be in (0, {total}); got {target0}"
        )
    target1 = total - target0
    maxpwgt = (
        int(np.ceil(options.ubfactor * target0)),
        int(np.ceil(options.ubfactor * target1)),
    )

    # One selection per driver entry: the env knob is read and the numba
    # probe run here, never in the per-level hot paths.
    kernels = resolve_kernels(options)

    trc, owned_trace = resolve_tracer(
        tracer, options, run="bisect", nvtxs=graph.nvtxs, nedges=graph.nedges
    )
    try:
        # --- Phase 1: coarsening -------------------------------------
        if hierarchy is None:
            with timers.phase("CTime"), trc.span("coarsen", phase="CTime") as sp:
                hierarchy = coarsen(
                    graph, options, rng, faults=faults, report=report, span=sp,
                    kernels=kernels,
                )
        coarsest = hierarchy.coarsest
        _checkpoint(guard, faults, report, hierarchy, None, hierarchy.nlevels - 1, "coarsen")

        # --- Phase 2: initial partition ------------------------------
        san = sanitizer(options)
        with timers.phase("ITime"), trc.span("initial", phase="ITime") as sp:
            bisection = initial_bisection(
                coarsest, options, rng, target0,
                faults=faults, report=report, span=sp,
            )
            if sp:
                sp.set(
                    scheme=InitialScheme(options.initial).value,
                    cut=int(bisection.cut),
                )
        initial_cut = bisection.cut
        if san:
            san.check_bisection(
                coarsest,
                bisection.where,
                bisection.pwgts,
                bisection.cut,
                phase="initial",
                level=hierarchy.nlevels - 1,
            )

        # --- Phase 3: uncoarsening -----------------------------------
        coarsest_level = hierarchy.nlevels - 1
        with timers.phase("RTime"), trc.span(
            "refine", phase="RTime", level=coarsest_level
        ) as sp:
            refine_bisection(
                coarsest,
                bisection,
                _effective_policy(options.refinement, guard, faults, report, coarsest_level),
                options,
                maxpwgt=maxpwgt,
                original_nvtxs=graph.nvtxs,
                stats=stats,
                span=sp,
                kernels=kernels,
            )
        _checkpoint(guard, faults, report, hierarchy, bisection, coarsest_level, "initial")
        for level in range(hierarchy.nlevels - 2, -1, -1):
            fine = hierarchy.graphs[level]
            with timers.phase("PTime"), trc.span(
                "project", phase="PTime", level=level
            ):
                where = project_where(bisection.where, hierarchy.cmaps[level])
                bisection = Bisection(
                    where=where,
                    cut=bisection.cut,  # invariant: cut is preserved by projection
                    pwgts=part_weights(fine, where, 2),
                )
            if san:
                san.check_bisection(
                    fine,
                    bisection.where,
                    bisection.pwgts,
                    bisection.cut,
                    phase="project",
                    level=level,
                )
            with timers.phase("RTime"), trc.span(
                "refine", phase="RTime", level=level
            ) as sp:
                refine_bisection(
                    fine,
                    bisection,
                    _effective_policy(options.refinement, guard, faults, report, level),
                    options,
                    maxpwgt=maxpwgt,
                    original_nvtxs=graph.nvtxs,
                    stats=stats,
                    span=sp,
                    kernels=kernels,
                )
            _checkpoint(guard, faults, report, hierarchy, bisection, level, "refine")

        if trc:
            trc.counter("bisect.calls", 1)
            trc.counter("fm.moves", stats.moves_tried)
            trc.counter("fm.rejected", stats.moves_rejected)
            trc.counter("fm.kept", stats.moves_kept)

        return MultilevelResult(
            bisection=bisection,
            timers=timers,
            nlevels=hierarchy.nlevels,
            coarsest_nvtxs=coarsest.nvtxs,
            initial_cut=initial_cut,
            stats=stats,
            resilience=report,
            kernels=kernels.as_dict(),
        )
    finally:
        if owned_trace:
            trc.close()
