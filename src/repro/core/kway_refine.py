"""Direct k-way refinement — the paper's stated future direction.

Recursive bisection refines each bisection in isolation: once parts are
split, a vertex can never move between cousins.  The paper's conclusion
(and the authors' 1998 follow-up, which became METIS's k-way refinement)
is that refining the *k-way* partition directly recovers that loss.  This
module implements greedy k-way boundary refinement in that spirit:

* for each boundary vertex, the **gain** of moving it to neighbouring part
  ``p`` is (edge weight to ``p``) − (edge weight to its own part);
* passes sweep the boundary in random order, applying the best positive-
  gain move that keeps every part under its weight cap (or any move that
  strictly repairs an overweight part), updating neighbours incrementally;
* passes repeat until a sweep makes no move (with a pass cap).

This is a *greedy* (no hill-climbing, no rollback) refiner — boundary
sweeps with positive-gain moves only — so each pass strictly decreases the
cut and termination is immediate.  On recursive-bisection partitions it
typically shaves a few percent off the cut at negligible cost.
"""

from __future__ import annotations

import numpy as np

from repro.core.options import DEFAULT_OPTIONS
from repro.graph.partition import KWayPartition, edge_cut, part_weights
from repro.utils.rng import as_generator


def refine_kway(
    graph,
    partition: KWayPartition,
    options=DEFAULT_OPTIONS,
    rng=None,
    *,
    max_passes: int = 8,
) -> KWayPartition:
    """Greedily refine a k-way partition in place; returns the same object.

    Parameters
    ----------
    partition:
        The :class:`KWayPartition` to improve; ``where``/``cut``/``pwgts``
        are updated in place.
    options:
        ``ubfactor`` bounds every part at ``ubfactor × total / k``.
    max_passes:
        Upper bound on boundary sweeps (each pass is monotone, so this is
        a safety cap, not a tuning knob).
    """
    rng = as_generator(rng if rng is not None else options.seed)
    n = graph.nvtxs
    k = partition.nparts
    if n == 0 or k < 2:
        return partition
    where = partition.where
    xadj, adjncy, adjwgt, vwgt = graph.xadj, graph.adjncy, graph.adjwgt, graph.vwgt
    pwgts = part_weights(graph, where, k)
    maxpwgt = int(np.ceil(options.ubfactor * graph.total_vwgt() / k))
    cut = partition.cut

    from repro.graph.partition import boundary_mask

    for _ in range(max_passes):
        moved = 0
        pass_gain = 0
        # Only boundary vertices can have positive-gain moves; sweep them
        # in random order (O(m) NumPy to find them, Python only on the
        # boundary).
        candidates = np.flatnonzero(boundary_mask(graph, where))
        if len(candidates) == 0:
            break
        for v in candidates[rng.permutation(len(candidates))]:
            v = int(v)
            s, e = xadj[v], xadj[v + 1]
            nbr_parts = where[adjncy[s:e]]
            my = where[v]
            if not np.any(nbr_parts != my):
                continue  # became interior earlier this pass
            # Edge weight of v toward each adjacent part.
            w = adjwgt[s:e]
            parts, inverse = np.unique(nbr_parts, return_inverse=True)
            toward = np.bincount(inverse, weights=w)
            my_idx = np.flatnonzero(parts == my)
            internal = float(toward[my_idx[0]]) if len(my_idx) else 0.0
            w_v = int(vwgt[v])

            must_repair = pwgts[my] > maxpwgt
            best_part = -1
            best_gain = -np.inf
            for p, tw in zip(parts, toward):
                if p == my:
                    continue
                gain = tw - internal
                fits = pwgts[p] + w_v <= maxpwgt
                repairs = must_repair and pwgts[p] + w_v < pwgts[my]
                if not (fits or repairs):
                    continue
                if gain > best_gain or (
                    gain == best_gain and best_part != -1
                    and pwgts[p] < pwgts[best_part]
                ):
                    best_part, best_gain = int(p), gain
            if best_part == -1:
                continue
            # Positive-gain moves always; non-positive gains only as
            # balance repair (the greedy refiner never hill-climbs).
            if best_gain <= 0 and not must_repair:
                continue
            where[v] = best_part
            pwgts[my] -= w_v
            pwgts[best_part] += w_v
            pass_gain += int(best_gain)
            cut -= int(best_gain)
            moved += 1
        if moved == 0:
            break
        # Diminishing returns: stop once a whole pass recovers less than
        # 0.1 % of the cut — later passes cost full sweeps for crumbs.
        if pass_gain < max(1, cut // 1000):
            break

    partition.cut = edge_cut(graph, where)  # exact, guards vs drift
    partition.pwgts = part_weights(graph, where, k)
    return partition


def partition_refined(graph, nparts, options=DEFAULT_OPTIONS, rng=None):
    """Recursive bisection followed by direct k-way refinement.

    Convenience wrapper used by the ablation bench comparing the paper's
    pipeline with its stated future extension.
    """
    from repro.core.kway import partition as _partition

    rng = as_generator(rng if rng is not None else options.seed)
    result = _partition(graph, nparts, options, rng)
    return refine_kway(graph, result, options, rng)
