"""Direct k-way refinement — the paper's stated future direction.

Recursive bisection refines each bisection in isolation: once parts are
split, a vertex can never move between cousins.  The paper's conclusion
(and the authors' 1998 follow-up, which became METIS's k-way refinement)
is that refining the *k-way* partition directly recovers that loss.  This
module implements greedy k-way boundary refinement in that spirit:

* for each boundary vertex, the **gain** of moving it to neighbouring part
  ``p`` is (edge weight to ``p``) − (edge weight to its own part);
* passes sweep the boundary in random order, applying the best positive-
  gain move that keeps every part under its weight cap (or any move that
  strictly repairs an overweight part), updating neighbours incrementally;
* passes repeat until a sweep makes no move (with a pass cap).

This is a *greedy* (no hill-climbing, no rollback) refiner: on a balanced
input every accepted move has positive gain, so each pass strictly
decreases the cut and termination is immediate.  On an *overweight* input
repair moves may trade cut for balance — they pick the cheapest eviction
from the heavy part (interior and isolated vertices included, where the
cost can be zero) and never increase the total overweight.  On
recursive-bisection partitions it typically shaves a few percent off the
cut at negligible cost.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.sanitize import sanitizer
from repro.core.options import DEFAULT_OPTIONS
from repro.graph.partition import KWayPartition, edge_cut, part_weights
from repro.kernels import kway_kernel, resolve_kernels
from repro.obs.tracer import resolve_tracer
from repro.utils.rng import as_generator


def _python_sweep(graph, where, pwgts, maxpwgt, k, order):
    """One boundary sweep over ``order``; returns ``(moved, pass_gain)``.

    The reference (``loop``) k-way sweep kernel: applies the best
    admissible move per candidate, updating ``where``/``pwgts`` in place.
    The jitted backend (:func:`repro.kernels.numba_backend.kway_sweep_numba`)
    is move-for-move identical.
    """
    xadj, adjncy, adjwgt, vwgt = graph.xadj, graph.adjncy, graph.adjwgt, graph.vwgt
    moved = 0
    pass_gain = 0
    for v in order:
        v = int(v)
        s, e = xadj[v], xadj[v + 1]
        nbr_parts = where[adjncy[s:e]]
        my = where[v]
        must_repair = pwgts[my] > maxpwgt
        if not must_repair and not np.any(nbr_parts != my):
            continue  # became interior earlier this pass
        # Edge weight of v toward each adjacent part.  Gains stay in
        # exact integer arithmetic: the running cut is maintained
        # incrementally and must never drift, so the per-part sums
        # accumulate in int64 (bincount's float64 weights round past
        # 2**53).
        w = adjwgt[s:e]
        parts, inverse = np.unique(nbr_parts, return_inverse=True)
        toward = np.zeros(len(parts), dtype=np.int64)
        np.add.at(toward, inverse, w)
        my_idx = np.flatnonzero(parts == my)
        internal = int(toward[my_idx[0]]) if len(my_idx) else 0
        w_v = int(vwgt[v])

        # Destination candidates: adjacent parts (the only targets a
        # positive-gain move can have); under repair pressure *every*
        # part qualifies — a non-adjacent destination costs exactly
        # ``internal``, which is 0 for an interior-of-nothing vertex.
        tw_by_part = dict(zip(parts.tolist(), toward.tolist()))
        dests = range(k) if must_repair else parts.tolist()
        best_part = -1
        best_key = None
        for p in dests:
            if p == my:
                continue
            gain = int(tw_by_part.get(p, 0)) - internal
            fits = pwgts[p] + w_v <= maxpwgt
            repairs = must_repair and pwgts[p] + w_v < pwgts[my]
            if not (fits or repairs):
                continue
            # Maximise gain; ties toward the lighter destination.
            key = (gain, -int(pwgts[p]))
            if best_key is None or key > best_key:
                best_part, best_key = int(p), key
        if best_part == -1:
            continue
        best_gain = best_key[0]
        # Positive-gain moves always; non-positive gains only as
        # balance repair (the greedy refiner never hill-climbs).
        if best_gain <= 0 and not must_repair:
            continue
        where[v] = best_part
        pwgts[my] -= w_v
        pwgts[best_part] += w_v
        pass_gain += best_gain
        moved += 1
    return moved, pass_gain


def refine_kway(
    graph,
    partition: KWayPartition,
    options=DEFAULT_OPTIONS,
    rng=None,
    *,
    max_passes: int = 8,
    tracer=None,
) -> KWayPartition:
    """Greedily refine a k-way partition in place; returns the same object.

    Parameters
    ----------
    partition:
        The :class:`KWayPartition` to improve; ``where``/``cut``/``pwgts``
        are updated in place.
    options:
        ``ubfactor`` bounds every part at ``ubfactor × total / k``.
    max_passes:
        Upper bound on boundary sweeps (each pass is monotone, so this is
        a safety cap, not a tuning knob).
    tracer:
        Optional threaded :class:`~repro.obs.tracer.Tracer`; default
        resolves ``options.trace`` / ``REPRO_TRACE``.  Emits one
        ``kway.pass`` event per boundary sweep.
    """
    rng = as_generator(rng if rng is not None else options.seed)
    n = graph.nvtxs
    k = partition.nparts
    if n == 0 or k < 2:
        return partition
    where = partition.where
    pwgts = part_weights(graph, where, k)
    maxpwgt = int(np.ceil(options.ubfactor * graph.total_vwgt() / k))
    cut = partition.cut

    # The sweep kernel is selected once per entry; the jitted backend is
    # move-for-move identical to the Python sweep (same RNG consumption:
    # one permutation per pass), so any backend yields the same partition.
    kernels = resolve_kernels(options)
    sweep = kway_kernel(kernels) or _python_sweep
    fm_backend = kernels.backend("fm")

    from repro.graph.partition import boundary_mask

    trc, owned_trace = resolve_tracer(
        tracer, options, run="kway-refine", nvtxs=n, nparts=k
    )
    try:
        with trc.span("kway-refine", nparts=k, cut_in=int(cut)) as sp:
            if sp:
                sp.set(kernel=fm_backend if sweep is not _python_sweep else "loop")
            for _ in range(max_passes):
                # Only boundary vertices can have positive-gain moves;
                # vertices of overweight parts are repair candidates whether
                # or not they sit on the boundary — an interior (or isolated)
                # vertex is often the *cheapest* one to evict.  Sweep in
                # random order (O(m) NumPy to find candidates, the kernel
                # only touches the candidate set).
                cand_mask = boundary_mask(graph, where)
                heavy = np.flatnonzero(pwgts > maxpwgt)
                if len(heavy):
                    cand_mask = cand_mask | np.isin(where, heavy)
                candidates = np.flatnonzero(cand_mask)
                if len(candidates) == 0:
                    break
                order = candidates[rng.permutation(len(candidates))]
                moved, pass_gain = sweep(graph, where, pwgts, maxpwgt, k, order)
                cut -= pass_gain
                if sp:
                    sp.event(
                        "kway.pass",
                        moved=moved,
                        gain=pass_gain,
                        boundary=len(candidates),
                        cut=int(cut),
                    )
                if moved == 0:
                    break
                # Diminishing returns: stop once a whole pass recovers less
                # than 0.1 % of the cut — later passes cost full sweeps for
                # crumbs.  Never stop early while a part is still
                # overweight: repair passes recover balance, not cut, and
                # may legitimately gain nothing.
                if pass_gain < max(1, cut // 1000) and not np.any(
                    pwgts > maxpwgt
                ):
                    break
            if sp:
                sp.set(cut_out=int(cut))
    finally:
        if owned_trace:
            trc.close()

    san = sanitizer(options)
    if san:
        san.check_kway(graph, where, pwgts, cut, k, phase="kway-refine")
    partition.cut = edge_cut(graph, where)  # exact, guards vs drift
    partition.pwgts = part_weights(graph, where, k)
    return partition


def partition_refined(graph, nparts, options=DEFAULT_OPTIONS, rng=None):
    """Recursive bisection followed by direct k-way refinement.

    Convenience wrapper used by the ablation bench comparing the paper's
    pipeline with its stated future extension.
    """
    from repro.core.kway import partition as _partition

    rng = as_generator(rng if rng is not None else options.seed)
    result = _partition(graph, nparts, options, rng)
    return refine_kway(graph, result, options, rng)
