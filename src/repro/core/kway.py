"""k-way partitioning by recursive bisection (§2).

"The k-way partition problem is most frequently solved by recursive
bisection … After log k phases, graph G is partitioned into k parts."  For
non-power-of-two ``k`` the split targets ⌈k/2⌉ : ⌊k/2⌋ of the vertex
weight, so every leaf ends up with ≈ 1/k of the total — the same device
METIS uses.

The recursion extracts induced subgraphs (boundary edges between already
separated parts can never be un-cut, so dropping them is exact) and gives
each subproblem an independent RNG stream, *pre-spawned before either side
runs*, making the result invariant to evaluation order — including
evaluation in other processes: with ``options.workers`` (or
``REPRO_WORKERS``) above 1, the independent branches at the top of the
recursion tree are fanned across a supervised process pool
(:class:`~repro.resilience.supervisor.BranchSupervisor`) and the
partition vector is bit-identical to the sequential run.  The supervisor
bounds each branch wait by ``worker_timeout`` and the remaining deadline
budget, retries crashed or hung workers, and degrades stubborn branches
to in-process sequential execution — so a dead worker can cost time but
never a hang, a leak or a different partition.  Only a caller-supplied
bisector closure (unpicklable) or a fault spec naming in-process phase
sites still forces sequential execution, with identical results.
"""

from __future__ import annotations

import numpy as np

from repro.core.initial import split_at_weighted_median
from repro.core.multilevel import bisect
from repro.core.options import DEFAULT_OPTIONS
from repro.graph.components import extract_subgraph
from repro.graph.partition import KWayPartition, edge_cut, part_weights
from repro.obs.tracer import NULL as NULL_TRACER
from repro.obs.tracer import resolve_tracer
from repro.perf.workers import (
    fan_depth_for,
    resolve_worker_timeout,
    resolve_workers,
)
from repro.resilience.deadline import DeadlineGuard
from repro.resilience.faults import fault_injector, worker_faults_only
from repro.resilience.report import ResilienceReport
from repro.resilience.supervisor import BranchSupervisor
from repro.utils.errors import (
    DeadlineExceededError,
    PartitionError,
    SpectralConvergenceError,
)
from repro.utils.rng import as_generator, spawn_child
from repro.utils.timing import PhaseTimer


def partition(
    graph,
    nparts: int,
    options=DEFAULT_OPTIONS,
    rng=None,
    *,
    bisector=None,
) -> KWayPartition:
    """Partition ``graph`` into ``nparts`` parts of roughly equal weight.

    Parameters
    ----------
    graph:
        The graph to partition.
    nparts:
        Number of parts ``k ≥ 1``.
    options:
        Multilevel configuration used for every bisection.
    bisector:
        Optional override: a callable ``(graph, options, rng, target0) →
        MultilevelResult``-like object with a ``bisection`` attribute and a
        ``timers`` :class:`PhaseTimer`.  The spectral baselines plug in
        here so Figures 1–4 compare k-way against k-way.

    Returns
    -------
    repro.graph.partition.KWayPartition
        With ``timers`` carrying the accumulated CTime/ITime/RTime/PTime
        and ``resilience`` holding the run's
        :class:`~repro.resilience.report.ResilienceReport`.  Unlike
        :func:`~repro.core.multilevel.bisect`, an expired deadline never
        raises here: the remaining subproblems degrade to weight-contiguous
        assignment and the partition completes.
    """
    if nparts < 1:
        raise PartitionError(f"nparts must be >= 1, got {nparts}")
    if nparts > graph.nvtxs:
        raise PartitionError(
            f"cannot cut {graph.nvtxs} vertices into {nparts} parts"
        )
    rng = as_generator(rng if rng is not None else options.seed)
    # Imbalance compounds multiplicatively down the ⌈log₂ k⌉ bisection
    # levels, so give each level the root of the overall tolerance.
    depth = max(1, int(np.ceil(np.log2(nparts)))) if nparts > 1 else 1
    options = options.with_(ubfactor=float(options.ubfactor) ** (1.0 / depth))
    where = np.zeros(graph.nvtxs, dtype=np.int32)
    timers = PhaseTimer()
    faults = fault_injector(options)
    report = ResilienceReport()
    guard = None
    if options.deadline is not None:
        guard = DeadlineGuard(options.deadline, timer=timers)
    trc, owned_trace = resolve_tracer(
        None, options, run="partition",
        nvtxs=graph.nvtxs, nedges=graph.nedges, nparts=nparts,
    )
    # Parallel fan-out needs picklable branch state: a caller-supplied
    # bisector closure cannot be shipped to workers, and a fault spec
    # naming in-process phase sites carries injector countdowns the
    # workers could not share.  Everything else — tracer, deadline guard,
    # worker-site faults — is handled by the supervisor in the parent.
    # The RNG tree is identical either way, so sequential and parallel
    # runs are bit-identical.
    workers = resolve_workers(options)
    parallel = (
        workers > 1
        and nparts > 1
        and bisector is None
        and worker_faults_only(faults)
    )
    try:
        with trc.span("partition", nparts=nparts) as root:
            vmap = np.arange(graph.nvtxs, dtype=np.int64)
            if parallel:
                with BranchSupervisor(
                    workers,
                    fan_depth=fan_depth_for(workers),
                    timeout=resolve_worker_timeout(options),
                    guard=guard,
                    max_retries=options.worker_retries,
                    report=report,
                    span=root,
                    faults=faults,
                ) as par:
                    _recurse(graph, nparts, 0, where, vmap,
                             options, rng, timers, bisector, faults, report,
                             guard, trc, par=par)
                    for meta, branch in par.drain():
                        first_part, branch_vmap = meta
                        sub_where, totals, sub_report = branch
                        where[branch_vmap] = first_part + sub_where
                        for phase_name, seconds in totals.items():
                            timers.add(phase_name, seconds)
                            if root:
                                # Splice the worker-measured phase time
                                # into the span tree so traced workers=N
                                # runs still reconcile with result.timers.
                                root.record(
                                    "worker.phase", seconds,
                                    phase=phase_name,
                                )
                        report.merge(sub_report)
            else:
                _recurse(graph, nparts, 0, where, vmap,
                         options, rng, timers, bisector, faults, report,
                         guard, trc)
            result = KWayPartition(
                where=where,
                nparts=nparts,
                cut=edge_cut(graph, where),
                pwgts=part_weights(graph, where, nparts),
            )
            if root:
                root.set(cut=int(result.cut))
        result.timers = timers.totals()
        result.resilience = report
        return result
    finally:
        if owned_trace:
            trc.close()


def _assign_by_weight(graph, k) -> np.ndarray:
    """Deadline-degraded k-way assignment: contiguous vertex-id ranges of
    roughly equal weight — O(n), no bisections, never fails."""
    total = max(int(graph.total_vwgt()), 1)
    cum = np.cumsum(graph.vwgt) - graph.vwgt  # exclusive prefix weights
    part = (cum * k) // total
    return np.minimum(part, k - 1).astype(np.int32)


def _branch_job(graph, k, options, rng, *, guard=None):
    """Partition one recursion branch in a pool worker.

    Runs the same ``_recurse`` with branch-local accumulators (parts are
    numbered from 0; the parent offsets them when merging) and returns
    everything the parent must fold back: the branch partition vector, the
    phase-timer totals and the resilience events.  Tracing is explicitly
    off (the parent owns the span tree and splices worker timings back as
    synthetic spans).  ``guard`` is only passed by the supervisor's
    sequential fallback, which runs this in the *parent* process under
    the remaining deadline budget; pool submissions never carry one —
    their time budget is enforced parent-side via future timeouts.
    """
    where = np.zeros(graph.nvtxs, dtype=np.int32)
    timers = PhaseTimer()
    report = ResilienceReport()
    _recurse(graph, k, 0, where, np.arange(graph.nvtxs, dtype=np.int64),
             options, rng, timers, None, fault_injector(options), report,
             guard, NULL_TRACER)
    return where, timers.totals(), report


def _recurse(graph, k, first_part, where, vmap, options, rng, timers, bisector,
             faults, report, guard, trc=NULL_TRACER, *, par=None, depth=0):
    """Assign parts ``first_part .. first_part+k-1`` to ``graph``'s vertices.

    ``vmap`` maps this subgraph's vertices to the original graph; ``where``
    is the original-graph partition vector being filled in.  ``par`` (a
    :class:`~repro.resilience.supervisor.BranchSupervisor`) ships whole
    subtrees at ``depth >= par.fan_depth`` to supervised pool workers
    instead of recursing.
    """
    if k == 1:
        where[vmap] = first_part
        return
    if k == graph.nvtxs:
        # One vertex per part; no bisection needed (k = n base case).
        where[vmap] = first_part + np.arange(k, dtype=np.int32)
        return
    if (
        par is not None
        and depth >= par.fan_depth
        and (guard is None or not guard.expired())
    ):
        # Workers receive no guard object; their time budget is enforced
        # parent-side by the supervisor's future timeouts.  An expired
        # guard skips submission and falls through to cheap assignment.
        par.submit(_branch_job, graph, k, options, rng,
                   meta=(first_part, vmap))
        return
    if guard is not None and guard.expired():
        # Budget gone: finish this whole subtree with the cheap assignment.
        where[vmap] = first_part + _assign_by_weight(graph, k)
        report.record(
            "degradation",
            "kway",
            f"deadline expired; weight-contiguous assignment of parts "
            f"{first_part}..{first_part + k - 1}",
        )
        return
    k_left = (k + 1) // 2
    target0 = (graph.total_vwgt() * k_left) // k

    # Pre-spawn every stream this node will use *before* any of them runs:
    # each branch owns an independent generator, so the two sides may be
    # evaluated in any order — or in other processes — bit-identically.
    child_rng = spawn_child(rng)
    rng_left = spawn_child(rng)
    rng_right = spawn_child(rng)
    try:
        if bisector is None:
            result = bisect(graph, options, child_rng, target0=target0,
                            faults=faults, report=report, guard=guard,
                            tracer=trc)
        else:
            try:
                result = bisector(graph, options, child_rng, target0)
            except SpectralConvergenceError as exc:
                report.record(
                    "fallback",
                    "kway",
                    f"bisector failed ({exc}); multilevel bisection fallback",
                )
                result = bisect(graph, options, spawn_child(child_rng),
                                target0=target0, faults=faults, report=report,
                                guard=guard, tracer=trc)
        timers.merge(result.timers)
        side = np.asarray(result.bisection.where).copy()
    except DeadlineExceededError as exc:
        report.record(
            "degradation",
            "kway",
            "deadline expired mid-bisection; continuing from "
            + ("best-so-far split" if exc.best is not None
               else "weighted-median split"),
        )
        if exc.best is not None:
            side = np.asarray(exc.best.where).copy()
        else:
            side = np.asarray(
                split_at_weighted_median(graph, np.arange(graph.nvtxs), target0).where
            ).copy()

    # Each side must hold at least as many vertices as parts it will be
    # split into; top up a too-small side from the other (k close to n).
    k_right = k - k_left
    for needy, donor_label, needed in ((0, 1, k_left), (1, 0, k_right)):
        ids = np.flatnonzero(side == needy)
        if len(ids) < needed:
            donors = np.flatnonzero(side == donor_label)
            take = needed - len(ids)
            side[donors[:take]] = needy

    left = np.flatnonzero(side == 0).astype(np.int64)
    right = np.flatnonzero(side == 1).astype(np.int64)
    if len(left) == 0 or len(right) == 0:
        raise PartitionError("bisection produced an empty side")

    sub_left, _ = extract_subgraph(graph, left)
    sub_right, _ = extract_subgraph(graph, right)
    with trc.span("kway.branch", side=0, k=k_left, nvtxs=len(left),
                  depth=depth):
        _recurse(sub_left, k_left, first_part, where, vmap[left],
                 options, rng_left, timers, bisector, faults, report, guard,
                 trc, par=par, depth=depth + 1)
    with trc.span("kway.branch", side=1, k=k - k_left, nvtxs=len(right),
                  depth=depth):
        _recurse(sub_right, k - k_left, first_part + k_left, where,
                 vmap[right], options, rng_right, timers, bisector, faults,
                 report, guard, trc, par=par, depth=depth + 1)
