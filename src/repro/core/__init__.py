"""The paper's primary contribution: multilevel graph bisection and k-way
partitioning by recursive bisection.

Public surface:

* :func:`bisect` — multilevel 2-way partition with configurable phases;
* :func:`partition` — k-way partition by recursive bisection;
* :class:`MultilevelOptions` and the phase enums
  (:class:`MatchingScheme`, :class:`InitialScheme`, :class:`RefinePolicy`);
* phase building blocks for study/ablation: :func:`coarsen`,
  :func:`compute_matching`, :func:`initial_bisection`,
  :func:`refine_bisection`.
"""

from repro.core.coarsen import CoarseningHierarchy, coarsen
from repro.core.initial import (
    ggp_bisection,
    gggp_bisection,
    initial_bisection,
    sbp_bisection,
    split_at_weighted_median,
)
from repro.core.kway import partition
from repro.core.kway_refine import partition_refined, refine_kway
from repro.core.matching import (
    compute_matching,
    hcm_matching,
    hem_matching,
    is_maximal_matching,
    is_valid_matching,
    lem_matching,
    rm_matching,
)
from repro.core.multilevel import MultilevelResult, bisect
from repro.core.options import (
    DEFAULT_OPTIONS,
    InitialScheme,
    MatchingScheme,
    MultilevelOptions,
    RefinePolicy,
)
from repro.core.refine import fm_pass, refine_bisection

__all__ = [
    "bisect",
    "partition",
    "MultilevelResult",
    "MultilevelOptions",
    "DEFAULT_OPTIONS",
    "MatchingScheme",
    "InitialScheme",
    "RefinePolicy",
    "coarsen",
    "CoarseningHierarchy",
    "compute_matching",
    "rm_matching",
    "hem_matching",
    "lem_matching",
    "hcm_matching",
    "is_valid_matching",
    "is_maximal_matching",
    "initial_bisection",
    "ggp_bisection",
    "gggp_bisection",
    "sbp_bisection",
    "split_at_weighted_median",
    "refine_bisection",
    "fm_pass",
    "refine_kway",
    "partition_refined",
]
