"""The four maximal-matching schemes of §3.1.

All four share the same randomized skeleton: visit the vertices in a random
order; when an unmatched vertex ``u`` is reached, pick one of its unmatched
neighbours ``v`` according to the scheme's criterion and match the pair; if
no unmatched neighbour exists, ``u`` stays unmatched.  The result is a
*maximal* matching (no edge can be added) in O(|E|).

Schemes differ only in the neighbour choice:

* **RM** — uniformly random unmatched neighbour;
* **HEM** — the unmatched neighbour joined by the heaviest edge, which
  maximises (greedily) the matching weight ``W(M)`` and therefore minimises
  the coarse graph's total edge weight ``W(E_{i+1}) = W(E_i) − W(M)``;
* **LEM** — the lightest edge (the paper's deliberately adversarial
  control: it leaves the coarse graph heavy and high-degree);
* **HCM** — the neighbour maximising the *edge density* of the merged
  multinode, approximating clique-clustering coarseners.  This needs the
  contracted edge weight (``cewgt``) of each multinode, which the
  coarsening driver threads through the levels.

A matching is returned in involution form: ``match[v]`` is ``v``'s partner,
or ``v`` itself when unmatched.
"""

from __future__ import annotations

import numpy as np

from repro.core.options import MatchingScheme
from repro.utils.rng import as_generator

UNMATCHED = -1


def _match_loop(graph, rng, pick):
    """Shared randomized maximal-matching skeleton.

    ``pick(candidates, weights, slice)`` chooses the index (into the
    neighbour slice) of the partner among unmatched candidates, or -1 to
    leave the vertex unmatched (never happens when candidates exist).
    """
    n = graph.nvtxs
    xadj, adjncy = graph.xadj, graph.adjncy
    match = np.full(n, UNMATCHED, dtype=np.int64)
    for u in rng.permutation(n):
        if match[u] != UNMATCHED:
            continue
        s, e = xadj[u], xadj[u + 1]
        nbrs = adjncy[s:e]
        free = match[nbrs] == UNMATCHED
        if not free.any():
            match[u] = u  # stays unmatched; copied to the coarse graph
            continue
        idx = pick(u, nbrs, free, s, e)
        v = int(nbrs[idx])
        match[u] = v
        match[v] = u
    # Vertices never visited as 'u' but also never chosen as partners keep
    # UNMATCHED only if the permutation missed them — it cannot, so any
    # remaining UNMATCHED means an isolated vertex already handled above.
    return match


def rm_matching(graph, rng=None) -> np.ndarray:
    """Random matching (RM): uniformly random unmatched neighbour."""
    rng = as_generator(rng)

    def pick(u, nbrs, free, s, e):
        candidates = np.flatnonzero(free)
        return int(candidates[rng.integers(len(candidates))])

    return _match_loop(graph, rng, pick)


def hem_matching(graph, rng=None) -> np.ndarray:
    """Heavy-edge matching (HEM): heaviest edge to an unmatched neighbour.

    Ties are broken by position in the adjacency list, which is effectively
    random for the shuffled graphs our generators emit; the visiting order
    is random regardless.
    """
    rng = as_generator(rng)
    adjwgt = graph.adjwgt

    def pick(u, nbrs, free, s, e):
        w = adjwgt[s:e].copy()
        w[~free] = -1
        return int(np.argmax(w))

    return _match_loop(graph, rng, pick)


def lem_matching(graph, rng=None) -> np.ndarray:
    """Light-edge matching (LEM): lightest edge to an unmatched neighbour."""
    rng = as_generator(rng)
    adjwgt = graph.adjwgt
    big = np.int64(np.iinfo(np.int64).max)

    def pick(u, nbrs, free, s, e):
        w = adjwgt[s:e].copy()
        w[~free] = big
        return int(np.argmin(w))

    return _match_loop(graph, rng, pick)


def hcm_matching(graph, rng=None, cewgt=None) -> np.ndarray:
    """Heavy-clique matching (HCM): maximise merged edge density.

    The edge density of a would-be multinode ``{u, v}`` with unit-vertex
    counts ``nu = vwgt[u]``, ``nv = vwgt[v]`` and internal edge weight
    ``cewgt[u] + cewgt[v] + w(u, v)`` is::

        2 * (cewgt[u] + cewgt[v] + w(u, v)) / ((nu + nv) * (nu + nv - 1))

    which is 1 exactly when the multinode is a clique of the original
    (unit-weight) graph.  ``cewgt`` defaults to zeros, which is exact for an
    uncoarsened unit-weight graph.
    """
    rng = as_generator(rng)
    adjwgt, vwgt = graph.adjwgt, graph.vwgt
    if cewgt is None:
        cewgt = np.zeros(graph.nvtxs, dtype=np.int64)

    def pick(u, nbrs, free, s, e):
        nu = vwgt[u]
        sizes = vwgt[nbrs] + nu
        internal = cewgt[nbrs] + cewgt[u] + adjwgt[s:e]
        denom = sizes * (sizes - 1)
        density = np.where(denom > 0, 2.0 * internal / np.maximum(denom, 1), 0.0)
        density = np.where(free, density, -1.0)
        return int(np.argmax(density))

    return _match_loop(graph, rng, pick)


_SCHEMES = {
    MatchingScheme.RM: rm_matching,
    MatchingScheme.HEM: hem_matching,
    MatchingScheme.LEM: lem_matching,
    MatchingScheme.HCM: hcm_matching,
}


def loop_matching(graph, scheme, rng=None, cewgt=None) -> np.ndarray:
    """The reference per-vertex matching kernel for ``scheme``.

    This is the ``loop`` backend's matching kernel in the
    :mod:`repro.kernels` registry — bit-exact with the paper's published
    runs and the terminal fallback of every backend chain.
    """
    scheme = MatchingScheme(scheme)
    if scheme is MatchingScheme.HCM:
        return hcm_matching(graph, rng, cewgt)
    return _SCHEMES[scheme](graph, rng)


def compute_matching(graph, scheme, rng=None, cewgt=None, impl="loop") -> np.ndarray:
    """Dispatch to the matching scheme named by ``scheme``.

    ``impl`` names a kernel backend in the :mod:`repro.kernels` registry:
    ``"loop"`` is the per-vertex visitation loop above (bit-exact with the
    paper's published runs); ``"vectorized"`` is the batched
    proposal-round kernel; ``"numba"`` the jitted loop (falling back to
    ``vectorized`` → ``loop`` when numba is unavailable).  All backends
    satisfy the same validity/maximality oracles; only ``loop`` is
    bit-exact with the published runs.
    """
    scheme = MatchingScheme(scheme)
    if impl == "loop":
        return loop_matching(graph, scheme, rng, cewgt)
    from repro.kernels import matching_kernel_for

    return matching_kernel_for(impl)(graph, scheme, rng, cewgt)


def matching_stats(graph, match) -> dict:
    """Vectorised per-level matching summary for the tracer.

    Returns ``matched_frac`` (fraction of vertices in a matched pair),
    ``matched_weight`` (total weight of matched edges — the ``W(M)``
    removed from the coarser graph) and ``heavy_share`` (``W(M)`` as a
    fraction of the level's total edge weight).  O(|E|) NumPy work, no
    Python loop — cheap enough to run once per coarsening level when
    tracing is on.
    """
    match = np.asarray(match)
    n = graph.nvtxs
    if n == 0:
        return {"matched_frac": 0.0, "matched_weight": 0, "heavy_share": 0.0}
    arange = np.arange(n, dtype=np.int64)
    match = np.where(match < 0, arange, match)
    src = graph.edge_sources()
    pair = (match[src] == graph.adjncy) & (src < graph.adjncy)
    matched_weight = int(graph.adjwgt[pair].sum())
    total = int(graph.adjwgt.sum()) // 2
    return {
        "matched_frac": float((match != arange).mean()),
        "matched_weight": matched_weight,
        "heavy_share": float(matched_weight / total) if total else 0.0,
    }


def is_valid_matching(graph, match) -> bool:
    """Check involution + adjacency: every matched pair is a real edge."""
    match = np.asarray(match)
    n = graph.nvtxs
    if len(match) != n:
        return False
    if not np.array_equal(match[match], np.arange(n)):
        return False
    for v in range(n):
        u = int(match[v])
        if u != v and not graph.has_edge(v, u):
            return False
    return True


def is_maximal_matching(graph, match) -> bool:
    """Check maximality: no edge joins two unmatched vertices."""
    match = np.asarray(match)
    unmatched = match == np.arange(graph.nvtxs)
    src = graph.edge_sources()
    both_free = unmatched[src] & unmatched[graph.adjncy]
    return not bool(both_free.any())
