"""KL/FM refinement of a bisection during uncoarsening (§3.3).

One **pass** follows the Fiduccia–Mattheyses organisation of Kernighan–Lin
that the paper's implementation uses ("similar to that described in [6]"):

1. seed the gain tables — every vertex (GR/KLR) or only boundary vertices
   (BGR/BKLR/BKLGR);
2. repeatedly extract the highest-gain movable vertex (from either side,
   respecting the balance constraint), move it, lock it for the rest of the
   pass, and update its neighbours' gains incrementally;
3. keep moving even through negative gains — that is what lets KL climb out
   of local minima — but stop after ``x`` consecutive moves that fail to
   improve on the best state seen (``x = 50`` in the paper) and undo the
   trailing non-improving moves.

Moved-vertex bookkeeping keeps the external/internal degree arrays exact at
all times, so the running cut is ``cut −= gain`` per move and never needs
recomputation; the pass returns the improvement it achieved.

The five policies stack passes differently:

========  ========================================================
GR        one pass, all vertices seeded
KLR       passes until a pass yields no improvement
BGR       one pass, boundary seeded
BKLR      boundary-seeded passes until no improvement
BKLGR     BKLR while the boundary holds ≤ 2 % of the *original*
          graph's vertices, BGR otherwise (§3.3's hybrid)
========  ========================================================

On boundary insertion: the paper inserts newly-boundary neighbours "if they
have positive gain"; we insert every newly-boundary unlocked neighbour
regardless of gain sign, because negative-gain boundary vertices are
exactly what balance-restoring moves need.  This is also what the released
METIS does, and it only ever enlarges the candidate set the paper used.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.sanitize import sanitizer
from repro.core.gains import external_internal_degrees, make_gain_tables
from repro.core.options import DEFAULT_OPTIONS, RefinePolicy
from repro.graph.partition import Bisection


@dataclass
class PassStats:
    """Statistics of one refinement pass (exposed for the ablation bench).

    Attributes
    ----------
    moves_tried:
        Moves actually *executed* (the vertex changed sides), including
        those later undone.  Candidates popped from the gain tables but
        rejected by the empty-side or balance gates are **not** counted
        here — they never move anything — and land in ``moves_rejected``
        instead.
    moves_rejected:
        Candidates rejected by the empty-side / balance gates before any
        state changed.
    moves_kept:
        Executed moves surviving the end-of-pass undo (the best prefix).
    improvement:
        Total lexicographic ``(overweight, cut)`` improvement achieved.
    """

    moves_tried: int = 0
    moves_rejected: int = 0
    moves_kept: int = 0
    improvement: int = 0


def _balance_key(pwgts, maxpwgt, cut):
    """Rank partition states: balanced-with-small-cut first.

    Lexicographic key ``(overweight, cut)`` where ``overweight`` is the
    total weight above the per-part caps (0 for a balanced state).  Using
    total overweight lets refinement *repair* an unbalanced projected
    partition before optimising the cut.
    """
    over = max(0, int(pwgts[0]) - maxpwgt[0]) + max(0, int(pwgts[1]) - maxpwgt[1])
    return (over, cut)


def fm_pass(
    graph,
    where,
    pwgts,
    maxpwgt,
    cut,
    *,
    boundary_only,
    early_exit,
    ed=None,
    id_=None,
    stats=None,
    eager=False,
    gain_table="heap",
    san=None,
    span=None,
):
    """Run one FM pass in place; return the (non-negative) improvement.

    Parameters
    ----------
    graph, where, pwgts, cut:
        The bisection state; ``where`` and ``pwgts`` are mutated in place
        and left at the best state found (which may be the initial state).
    maxpwgt:
        Two-element sequence of per-part weight caps.
    boundary_only:
        Seed only boundary vertices (the B* policies).
    early_exit:
        The paper's ``x``: stop after this many consecutive non-improving
        moves.
    ed, id_:
        Optional pre-computed degree arrays (recomputed when omitted).
    san:
        Optional active :class:`repro.analysis.sanitize.Sanitizer`; when
        set, the incrementally-maintained degrees and running cut are
        validated against a from-scratch recomputation at the end of the
        move loop (before the undo step).
    span:
        Optional open :class:`repro.obs.tracer.Span` (the enclosing
        refinement span); when truthy a ``refine.pass`` event with the
        pass statistics is emitted at the end of the pass.  The move loop
        itself is never instrumented — per-pass only, so the hot path is
        identical with tracing on or off.

    Returns
    -------
    (new_cut, improvement):
        ``improvement`` measures the lexicographic state key, reported as
        the cut decrease plus any balance repair (> 0 means the pass helped).
    """
    n = graph.nvtxs
    xadj, adjncy, adjwgt, vwgt = graph.xadj, graph.adjncy, graph.adjwgt, graph.vwgt
    if ed is None or id_ is None:
        ed, id_ = external_internal_degrees(graph, where)

    tables = make_gain_tables(gain_table, graph, ed, id_)
    if boundary_only:
        seeds = np.flatnonzero(ed > 0)
    else:
        seeds = np.arange(n)
    gains = ed - id_
    where_arr = np.asarray(where)
    for side in (0, 1):
        mine = seeds[where_arr[seeds] == side]
        tables[side].bulk_load(mine, gains[mine])

    locked = np.zeros(n, dtype=bool)
    moved: list[int] = []
    best_prefix = 0
    start_key = _balance_key(pwgts, maxpwgt, cut)
    best_key = start_key
    since_best = 0
    # Per-pass counters (folded into the cumulative ``stats`` at the end so
    # the traced event can report this pass alone, not the running totals).
    tried = 0
    rejected = 0
    boundary0 = int((ed > 0).sum()) if span else 0

    def pop_valid(side):
        """Best unlocked vertex of ``side`` with an up-to-date gain.

        Gains in the tables are *lazy*: neighbour updates do not touch the
        heap.  A popped entry whose stored gain is stale is re-pushed with
        the current gain and the pop retried — the amortised cost matches
        eager updates while the per-move bookkeeping drops to O(deg) NumPy
        work.
        """
        table = tables[side]
        while True:
            item = table.pop_best()
            if item is None:
                return None
            v, gain = item
            if locked[v]:
                continue
            gain_now = int(ed[v] - id_[v])
            # Both sides are exact ints (ed/id_ are int64 arrays).
            if gain_now != gain:  # repro: noqa[RP004]
                table.push(v, gain_now)
                continue
            return v, gain

    while since_best < early_exit:
        c0 = pop_valid(0)
        c1 = pop_valid(1)
        if c0 is None and c1 is None:
            break
        # Prefer the higher gain; break ties toward the heavier side so the
        # pass drifts toward balance.
        if c0 is None:
            side = 1
        elif c1 is None:
            side = 0
        elif c0[1] > c1[1]:
            side = 0
        elif c1[1] > c0[1]:
            side = 1
        else:
            side = 0 if pwgts[0] >= pwgts[1] else 1
        v, gain = (c0, c1)[side]
        unchosen = (c0, c1)[1 - side]
        if unchosen is not None:
            tables[1 - side].push(unchosen[0], unchosen[1])
        other = 1 - side
        w_v = int(vwgt[v])
        if int(pwgts[side]) == w_v:
            locked[v] = True  # moving v would empty its side
            rejected += 1
            continue
        dest_after = int(pwgts[other]) + w_v
        # Balance gate: the move must keep the destination under its cap,
        # unless it strictly reduces total overweight (repair move).
        if dest_after > maxpwgt[other]:
            over_before = max(0, int(pwgts[0]) - maxpwgt[0]) + max(
                0, int(pwgts[1]) - maxpwgt[1]
            )
            over_after = max(0, int(pwgts[side]) - w_v - maxpwgt[side]) + max(
                0, dest_after - maxpwgt[other]
            )
            if over_after >= over_before:
                locked[v] = True  # unusable this pass
                rejected += 1
                continue

        # Execute the move.
        tried += 1
        where[v] = other
        pwgts[side] -= w_v
        pwgts[other] += w_v
        cut -= gain
        ed[v], id_[v] = id_[v], ed[v]
        locked[v] = True
        moved.append(v)

        # Vectorised neighbour degree update; under lazy gains the tables
        # are only told about *new* boundary vertices (stale entries are
        # corrected at pop time); under the 1995-style eager mode every
        # unlocked neighbour's table entry is refreshed on the spot.
        s, e = xadj[v], xadj[v + 1]
        nbrs = adjncy[s:e]
        w = adjwgt[s:e]
        became_internal = where[nbrs] == other
        delta = np.where(became_internal, -w, w)
        was_interior = ed[nbrs] == 0
        ed[nbrs] += delta
        id_[nbrs] -= delta
        # The gain/side/degree lookups for the touched neighbours are done
        # as single fancy-indexing gathers (one NumPy call each) instead of
        # per-vertex scalar indexing; only the unavoidable per-entry heap
        # pushes remain as Python-level iteration, over plain ints.
        if eager:
            active = nbrs[~locked[nbrs]]
            if len(active):
                gains_a = (ed[active] - id_[active]).tolist()
                eds_a = ed[active].tolist()
                sides_a = where_arr[active].tolist()
                for u, s_u, g_u, e_u in zip(
                    active.tolist(), sides_a, gains_a, eds_a
                ):
                    table_u = tables[s_u]
                    if u in table_u:
                        table_u.update(u, g_u)
                    elif not boundary_only or e_u > 0:
                        table_u.push(u, g_u)
        elif boundary_only:
            fresh = nbrs[was_interior & (delta > 0) & ~locked[nbrs]]
            if len(fresh):
                gains_f = (ed[fresh] - id_[fresh]).tolist()
                sides_f = where_arr[fresh].tolist()
                for u, s_u, g_u in zip(fresh.tolist(), sides_f, gains_f):
                    tables[s_u].push(u, g_u)

        key = _balance_key(pwgts, maxpwgt, cut)
        if key < best_key:
            best_key = key
            best_prefix = len(moved)
            since_best = 0
        else:
            since_best += 1

    # All moves are applied and the degree arrays are final for this pass:
    # validate the incremental bookkeeping before the undo step (after it,
    # ed/id_ are intentionally stale — the next pass recomputes them).
    if san:
        san.check_degrees(graph, where, ed, id_, cut, phase="refine")

    # Undo the moves past the best prefix ("Since the last x vertex moves
    # did not decrease the edge-cut they are undone").
    for v in reversed(moved[best_prefix:]):
        side = int(where[v])
        other = 1 - side
        w_v = int(vwgt[v])
        where[v] = other
        pwgts[side] -= w_v
        pwgts[other] += w_v

    # Reconstruct the best-state cut: best_key[1] is exactly it.
    improvement = (start_key[0] - best_key[0]) + (start_key[1] - best_key[1])

    if stats is not None:
        stats.moves_tried += tried
        stats.moves_rejected += rejected
        stats.moves_kept += best_prefix
        stats.improvement += improvement

    if span:
        span.event(
            "refine.pass",
            moves=tried,
            rejected=rejected,
            kept=best_prefix,
            undo=len(moved) - best_prefix,
            boundary=boundary0,
            improvement=improvement,
            cut=best_key[1],
            table=gain_table,
        )

    return best_key[1], improvement


def refine_bisection(
    graph,
    bisection: Bisection,
    policy=RefinePolicy.BKLGR,
    options=DEFAULT_OPTIONS,
    *,
    maxpwgt=None,
    original_nvtxs=None,
    stats=None,
    span=None,
    kernels=None,
) -> Bisection:
    """Refine ``bisection`` in place according to ``policy``.

    Parameters
    ----------
    maxpwgt:
        Per-part weight caps; defaults to ``ubfactor × total/2`` rounded up.
    original_nvtxs:
        |V₀| of the multilevel run, used by BKLGR's 2 % switch; defaults to
        this graph's size (i.e. flat refinement).
    span:
        Optional open tracer span; annotated with the resolved policy and
        the selected FM kernel backend, and forwarded to the pass kernel
        for per-pass events.
    kernels:
        Pre-resolved :class:`repro.kernels.KernelSelection` threaded by
        the driver; resolved from ``options`` when omitted.  The ``fm``
        phase selects the pass kernel: :func:`fm_pass` for ``loop``, the
        jitted bucket-array pass for ``numba``.

    Returns
    -------
    Bisection
        The same object, with ``cut`` and ``pwgts`` updated.
    """
    policy = RefinePolicy(policy)
    if policy is RefinePolicy.NONE or graph.nvtxs == 0:
        return bisection
    total = graph.total_vwgt()
    if maxpwgt is None:
        cap = int(np.ceil(options.ubfactor * total / 2.0))
        maxpwgt = (cap, cap)
    if original_nvtxs is None:
        original_nvtxs = graph.nvtxs

    where = bisection.where
    pwgts = bisection.pwgts
    cut = bisection.cut
    x = options.kl_early_exit
    san = sanitizer(options)
    if kernels is None:
        from repro.kernels import resolve_kernels

        kernels = resolve_kernels(options)
    pass_kernel = kernels.kernel("fm")
    fm_backend = kernels.backend("fm")

    if policy is RefinePolicy.BKLGR:
        ed, _ = external_internal_degrees(graph, where)
        boundary_count = int((ed > 0).sum())
        policy = (
            RefinePolicy.BKLR
            if boundary_count <= options.bklgr_boundary_fraction * original_nvtxs
            else RefinePolicy.BGR
        )

    boundary_only = policy in (RefinePolicy.BGR, RefinePolicy.BKLR)
    multi_pass = policy in (RefinePolicy.KLR, RefinePolicy.BKLR)

    if span:
        span.set(
            policy=policy.value, nvtxs=graph.nvtxs, cut_in=cut,
            kernel=fm_backend,
        )

    passes = options.max_kl_passes if multi_pass else 1
    for _ in range(passes):
        cut, improvement = pass_kernel(
            graph,
            where,
            pwgts,
            maxpwgt,
            cut,
            boundary_only=boundary_only,
            early_exit=x,
            stats=stats,
            eager=options.eager_gains,
            gain_table=options.gain_table,
            san=san or None,
            span=span,
        )
        if improvement <= 0:
            break

    if span:
        span.set(cut_out=cut)
    bisection.cut = cut
    return bisection
