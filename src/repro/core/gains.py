"""Gain bookkeeping for KL/FM refinement.

For a bisection, each vertex ``v`` has an *external degree* ``ed[v]`` (total
weight of its cut edges) and an *internal degree* ``id[v]`` (total weight of
its uncut edges).  The **gain** of moving ``v`` to the other side is
``ed[v] − id[v]``; the edge-cut after the move drops by exactly that amount.
A vertex is on the **boundary** iff ``ed[v] > 0``.

The paper stores gains "in a hash table that allows insertions, updates, and
extraction of the vertex with maximum gain in constant time".
:class:`GainTable` provides the same operations with a lazy binary heap:
stale entries are skipped at pop time, which keeps every operation O(log n)
amortised and — more importantly for Python — keeps the constant factors in
NumPy/heapq C code.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.graph.partition import exact_weight_bincount
from repro.utils.errors import ConfigurationError


def external_internal_degrees(graph, where):
    """Vectorised ``(ed, id)`` arrays for the bisection ``where``.

    O(m); called once per refinement pass, after which the pass maintains
    the arrays incrementally as vertices move.  The CSR source expansion
    comes from the graph's cached :meth:`~repro.graph.csr.CSRGraph.edge_sources`
    — built once per graph, not once per call.
    """
    where = np.asarray(where)
    src = graph.edge_sources()
    cross = where[src] != where[graph.adjncy]
    w = graph.adjwgt
    # Upper bound on either directed-edge weight sum (total_adjwgt is the
    # undirected half-sum); an over-estimate only ever forces the slower
    # exact path, never the inexact one.
    total = 2 * graph.total_adjwgt()
    ed = exact_weight_bincount(
        src, np.where(cross, w, 0), minlength=graph.nvtxs, total=total
    )
    id_ = exact_weight_bincount(
        src, np.where(cross, 0, w), minlength=graph.nvtxs, total=total
    )
    return ed, id_


class GainTable:
    """Max-priority queue over vertices keyed by gain, with lazy updates.

    ``push``/``update`` append a stamped heap entry; ``pop_best`` discards
    entries whose stamp no longer matches the vertex's latest.  ``remove``
    bumps the stamp so all of a vertex's entries become stale.  Ties in gain
    are broken by insertion order (earlier wins), making refinement
    deterministic for a fixed RNG stream.
    """

    __slots__ = ("_heap", "_stamp", "_live", "_counter")

    def __init__(self) -> None:
        self._heap: list = []
        self._stamp: dict[int, int] = {}
        self._live = 0
        self._counter = 0

    def push(self, v: int, gain: int) -> None:
        """Insert ``v`` with ``gain`` (replaces any previous entry)."""
        if v not in self._stamp:
            self._live += 1
        self._counter += 1
        self._stamp[v] = self._counter
        heapq.heappush(self._heap, (-gain, self._counter, v))

    # update is push with replace semantics; alias for readability at call sites
    update = push

    def bulk_load(self, vertices, gains) -> None:
        """Seed many (vertex, gain) pairs at once.

        ``heapify`` on a prebuilt list is O(k) in C, versus k × O(log k)
        Python-level pushes — this is how refinement passes seed their
        tables.  Only valid on an empty table (the refinement use case).
        """
        if self._heap:
            for v, g in zip(vertices, gains):
                self.push(int(v), int(g))
            return
        counter = self._counter
        heap = []
        stamp = self._stamp
        for v, g in zip(vertices, gains):
            counter += 1
            v = int(v)
            heap.append((-int(g), counter, v))
            stamp[v] = counter
        self._counter = counter
        heapq.heapify(heap)
        self._heap = heap
        self._live = len(stamp)

    def remove(self, v: int) -> None:
        """Invalidate all entries for ``v`` (no-op if absent)."""
        if v in self._stamp:
            del self._stamp[v]
            self._live -= 1

    def __contains__(self, v: int) -> bool:
        return v in self._stamp

    def __len__(self) -> int:
        """Number of live vertices in the table."""
        return self._live

    def pop_best(self):
        """Remove and return ``(v, gain)`` with maximal gain, or ``None``."""
        heap = self._heap
        stamp = self._stamp
        while heap:
            neg_gain, counter, v = heapq.heappop(heap)
            if stamp.get(v) == counter:
                del stamp[v]
                self._live -= 1
                return v, -neg_gain
        return None

    def peek_best_gain(self):
        """Best live gain without removal, or ``None`` when empty."""
        heap = self._heap
        stamp = self._stamp
        while heap:
            neg_gain, counter, v = heap[0]
            if stamp.get(v) == counter:
                return -neg_gain
            heapq.heappop(heap)
        return None


class BucketGainTable:
    """The classical FM bucket array, as an alternative to the heap.

    Fiduccia–Mattheyses' original structure: an array of buckets indexed
    by gain (offset by the maximum possible |gain|, which is bounded by
    the maximum weighted degree), a moving max-gain pointer, and O(1)
    insert/update/remove.  Each bucket is an insertion-ordered ``dict``
    used as a linked set; pops are LIFO within a bucket, FM's classic
    tie-breaking (most-recently-touched vertex moves first).

    Same interface as :class:`GainTable`; selected via
    ``MultilevelOptions.gain_table = "bucket"``.  Worthwhile when gains
    span a small range (unit-weight graphs); the heap wins when weights
    make the gain range huge and sparse.
    """

    __slots__ = ("_offset", "_buckets", "_gain", "_maxptr")

    def __init__(self, max_abs_gain: int) -> None:
        if max_abs_gain < 0:
            raise ConfigurationError("max_abs_gain must be non-negative")
        self._offset = int(max_abs_gain)
        self._buckets: list[dict] = [dict() for _ in range(2 * self._offset + 1)]
        self._gain: dict[int, int] = {}
        self._maxptr = -1  # index of highest non-empty bucket, or -1

    def _index(self, gain: int) -> int:
        idx = gain + self._offset
        if not (0 <= idx < len(self._buckets)):
            raise ConfigurationError(
                f"gain {gain} outside the declared range ±{self._offset}"
            )
        return idx

    def push(self, v: int, gain: int) -> None:
        """Insert ``v`` with ``gain`` (replacing any previous entry)."""
        old = self._gain.get(v)
        if old is not None:
            del self._buckets[old + self._offset][v]
        idx = self._index(gain)
        self._buckets[idx][v] = None
        self._gain[v] = gain
        if idx > self._maxptr:
            self._maxptr = idx

    update = push

    def remove(self, v: int) -> None:
        """Remove ``v`` (no-op if absent)."""
        old = self._gain.pop(v, None)
        if old is not None:
            del self._buckets[old + self._offset][v]

    def __contains__(self, v: int) -> bool:
        return v in self._gain

    def __len__(self) -> int:
        return len(self._gain)

    def _settle_maxptr(self):
        while self._maxptr >= 0 and not self._buckets[self._maxptr]:
            self._maxptr -= 1

    def pop_best(self):
        """Remove and return ``(v, gain)`` with maximal gain, or ``None``."""
        self._settle_maxptr()
        if self._maxptr < 0:
            return None
        bucket = self._buckets[self._maxptr]
        v, _ = bucket.popitem()  # LIFO
        gain = self._maxptr - self._offset
        del self._gain[v]
        return v, gain

    def peek_best_gain(self):
        """Best gain without removal, or ``None`` when empty."""
        self._settle_maxptr()
        if self._maxptr < 0:
            return None
        return self._maxptr - self._offset

    def bulk_load(self, vertices, gains) -> None:
        """Seed many (vertex, gain) pairs (no empty-table requirement)."""
        for v, g in zip(vertices, gains):
            self.push(int(v), int(g))


def make_gain_tables(kind: str, graph, ed, id_):
    """Construct a pair of gain tables of the configured ``kind``.

    ``"heap"`` needs no bounds; ``"bucket"`` is sized to the maximum
    weighted degree, the hard bound on any |gain| during a pass.
    """
    if kind == "heap":
        return GainTable(), GainTable()
    if kind == "bucket":
        bound = int((ed + id_).max(initial=0))
        return BucketGainTable(bound), BucketGainTable(bound)
    raise ConfigurationError(f"unknown gain table kind {kind!r}; 'heap' or 'bucket'")
