"""Configuration for the multilevel partitioner.

Every knob the paper varies in its experiments is a field here, with the
paper's chosen default:

* matching scheme — HEM ("we selected the HEM as our matching scheme of
  choice because of its consistent good behavior", §4.1);
* initial partitioner — GGGP with 5 trials (GGP uses 10, §3.2);
* refinement policy — BKLGR with the 2 % boundary-size switch (§3.3);
* coarsest-graph size — "a few hundred vertices", |Vm| < 100 used in §3.2;
* KL early-exit — x = 50 ("The choice of x = 50 works quite well", §3.3).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from enum import Enum

from repro.utils.errors import ConfigurationError


class MatchingScheme(str, Enum):
    """Coarsening matching schemes of §3.1."""

    RM = "rm"  #: random matching
    HEM = "hem"  #: heavy-edge matching (paper's choice)
    LEM = "lem"  #: light-edge matching (control)
    HCM = "hcm"  #: heavy-clique matching (edge-density driven)


class InitialScheme(str, Enum):
    """Coarsest-graph partitioners of §3.2."""

    SBP = "sbp"  #: spectral bisection of the coarsest graph
    GGP = "ggp"  #: graph growing (BFS), best of ``ggp_trials`` seeds
    GGGP = "gggp"  #: greedy graph growing, best of ``gggp_trials`` seeds


class RefinePolicy(str, Enum):
    """Uncoarsening refinement policies of §3.3."""

    NONE = "none"  #: project only (used for the Table 3 experiment)
    GR = "gr"  #: greedy refinement — one KL pass, all vertices seeded
    KLR = "klr"  #: Kernighan–Lin refinement — passes until converged
    BGR = "bgr"  #: boundary greedy — one pass, boundary seeded
    BKLR = "bklr"  #: boundary KL — passes until converged, boundary seeded
    BKLGR = "bklgr"  #: hybrid: BKLR while boundary ≤ switch threshold, else BGR


@dataclass(frozen=True)
class MultilevelOptions:
    """Options controlling :func:`repro.core.multilevel.bisect`.

    Attributes
    ----------
    matching, initial, refinement:
        Phase selections; defaults are the paper's recommended combination
        (HEM + GGGP + BKLGR).
    coarsen_to:
        Stop coarsening once the graph has at most this many vertices.
    coarsen_stall_ratio:
        Abort coarsening early if a level shrinks the vertex count by less
        than this factor (guards against matching-resistant graphs such as
        stars, where maximal matchings stop making progress).
    max_coarsen_levels:
        Hard cap on the number of coarsening levels.
    ggp_trials, gggp_trials:
        Number of random seeds tried by the graph-growing partitioners; the
        best cut wins (paper: 10 and 5 respectively).
    kl_early_exit:
        The paper's ``x``: a KL pass stops after this many consecutive moves
        that fail to improve on the best cut seen in the pass, and those
        trailing moves are undone.
    max_kl_passes:
        Cap on KL/BKLR passes per level (each pass is monotone, so this only
        guards pathological oscillation; the paper's runs converge in a few).
    ubfactor:
        Allowed part weight is ``ubfactor ×`` the target part weight.
    bklgr_boundary_fraction:
        BKLGR runs multi-pass BKLR while the boundary of the current level
        holds at most this fraction of the *original* graph's vertices
        (paper: 2 %), then switches to single-pass BGR.
    eager_gains:
        When true, every move eagerly updates all unlocked neighbours'
        gains in the tables — the 1995 implementation's cost model, under
        which the boundary policies' *time* advantage (Table 4) appears.
        The default (false) uses lazy gains validated at pop time, which
        is faster overall and cut-for-cut identical in quality.
    gain_table:
        ``"heap"`` (lazy binary heap, default) or ``"bucket"`` (the
        classical FM bucket array — O(1) operations, gain-range memory).
    kernels:
        Kernel backend for the three hot phases (matching, FM gain
        maintenance, contraction), dispatched through the
        :mod:`repro.kernels` registry: ``"loop"`` (bit-exact reference),
        ``"vectorized"`` (whole-array NumPy) or ``"numba"`` (optional
        ``@njit`` kernels; falls back per phase along
        ``numba → vectorized → loop`` when numba is absent or a phase
        has no jitted implementation).  ``None`` (the default) defers to
        the ``REPRO_KERNELS`` environment variable, then to
        ``matching_impl``, then to ``"loop"`` everywhere.  The resolved
        per-phase selection lands in ``MultilevelResult.kernels``.
    matching_impl:
        Legacy matching-phase-only switch, kept for compatibility (and
        honoured only when ``kernels`` is unset): ``"loop"`` (default)
        is the per-vertex visitation loop that reproduces the paper's
        published runs bit-for-bit; ``"vectorized"`` is the batched
        proposal-round kernel — same schemes, same validity/maximality
        guarantees, different (still deterministic) tie-breaking, and
        several times faster on large graphs; ``"numba"`` selects the
        jitted matching kernel when available.
    workers:
        Process count for fanning the independent subgraph branches of
        recursive bisection (:func:`repro.core.kway.partition`) and MLND
        nested dissection across a ``ProcessPoolExecutor``.  Per-branch
        child RNGs are pre-seeded so ``workers=N`` is bit-identical to
        ``workers=1``.  ``None`` (the default) defers to the
        ``REPRO_WORKERS`` environment variable; when that is also unset,
        everything runs in-process.
    worker_timeout:
        Per-branch wall-clock budget in seconds enforced by the branch
        supervisor (:mod:`repro.resilience.supervisor`) on work shipped
        to pool workers.  A branch that overruns it is retried and, past
        ``worker_retries``, re-run sequentially in the parent.  ``None``
        (the default) defers to the ``REPRO_WORKER_TIMEOUT`` environment
        variable; when that is also unset, branch waits are bounded only
        by ``deadline`` (when set).
    worker_retries:
        How many times a crashed or timed-out worker branch is retried
        (with the same pre-seeded RNG stream, so retries stay
        bit-identical) before the supervisor degrades that branch to
        in-process sequential execution.
    seed:
        Default RNG seed used when the caller does not supply one.
    sanitize:
        Enable the runtime invariant sanitizer
        (:mod:`repro.analysis.sanitize`): O(n+m) checks at every phase
        boundary that raise :class:`~repro.utils.errors.SanitizerError`
        when the incremental bookkeeping drifts.  Also enabled globally by
        ``REPRO_SANITIZE=1``; free when off.
    faults:
        Fault-injection spec (:mod:`repro.resilience.faults`), e.g.
        ``"lanczos"`` or ``"initial:2;seed=7"`` — deterministic, seeded
        failures at phase boundaries for exercising the fallback chains.
        ``None`` (the default) defers to the ``REPRO_FAULTS`` environment
        variable; when that is also unset, injection is off and free.
    trace:
        Structured-trace target (:mod:`repro.obs`): a file path receiving
        JSONL records, or ``-`` for stdout.  ``None`` (the default) defers
        to the ``REPRO_TRACE`` environment variable; when that is also
        unset, tracing is off — results are bit-identical and the null
        tracer adds no work to the refinement hot loop.
    deadline:
        Wall-clock budget in seconds for one driver entry (``bisect``,
        ``partition``, an ordering).  Refinement degrades (BKLR → BGR) as
        the deadline nears; ``bisect`` raises
        :class:`~repro.utils.errors.DeadlineExceededError` carrying the
        best-so-far bisection once it expires, while ``partition`` and
        nested dissection degrade to cheap assignment instead of raising.
        ``None`` (default) disables the guard entirely.
    max_init_retries:
        How many times an initial bisection that fails validation (wrong
        shape, empty side, gross imbalance) is retried with a fresh seed
        before falling back to the next scheme in the chain.
    """

    matching: MatchingScheme = MatchingScheme.HEM
    initial: InitialScheme = InitialScheme.GGGP
    refinement: RefinePolicy = RefinePolicy.BKLGR
    coarsen_to: int = 100
    coarsen_stall_ratio: float = 0.95
    max_coarsen_levels: int = 40
    ggp_trials: int = 10
    gggp_trials: int = 5
    kl_early_exit: int = 50
    max_kl_passes: int = 8
    ubfactor: float = 1.10
    bklgr_boundary_fraction: float = 0.02
    eager_gains: bool = False
    gain_table: str = "heap"
    kernels: str | None = None
    matching_impl: str = "loop"
    workers: int | None = None
    worker_timeout: float | None = None
    worker_retries: int = 2
    seed: int = 4242
    sanitize: bool = False
    faults: str | None = None
    trace: str | None = None
    deadline: float | None = None
    max_init_retries: int = 3

    def with_(self, **kwargs) -> "MultilevelOptions":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)

    def __post_init__(self):
        if self.coarsen_to < 2:
            raise ConfigurationError("coarsen_to must be at least 2")
        if not (0.0 < self.coarsen_stall_ratio <= 1.0):
            raise ConfigurationError("coarsen_stall_ratio must be in (0, 1]")
        if self.ubfactor < 1.0:
            raise ConfigurationError("ubfactor must be >= 1.0")
        if self.kl_early_exit < 1:
            raise ConfigurationError("kl_early_exit must be positive")
        if self.ggp_trials < 1 or self.gggp_trials < 1:
            raise ConfigurationError("trial counts must be positive")
        if self.gain_table not in ("heap", "bucket"):
            raise ConfigurationError("gain_table must be 'heap' or 'bucket'")
        if self.kernels is not None and self.kernels not in (
            "loop",
            "vectorized",
            "numba",
        ):
            raise ConfigurationError(
                "kernels must be 'loop', 'vectorized' or 'numba' when set"
            )
        if self.matching_impl not in ("loop", "vectorized", "numba"):
            raise ConfigurationError(
                "matching_impl must be 'loop', 'vectorized' or 'numba'"
            )
        if self.workers is not None and self.workers < 1:
            raise ConfigurationError("workers must be >= 1 when set")
        if self.worker_timeout is not None and self.worker_timeout <= 0:
            raise ConfigurationError("worker_timeout must be positive when set")
        if self.worker_retries < 0:
            raise ConfigurationError("worker_retries must be >= 0")
        if self.deadline is not None and self.deadline <= 0:
            raise ConfigurationError("deadline must be positive when set")
        if self.max_init_retries < 0:
            raise ConfigurationError("max_init_retries must be >= 0")
        if self.faults is not None:
            # Validate eagerly so a bad spec fails at configuration time,
            # not halfway through a partition.  Local import: resilience
            # depends only on utils, so there is no cycle.
            from repro.resilience.faults import parse_fault_spec

            parse_fault_spec(self.faults)


#: The paper's recommended configuration (HEM + GGGP + BKLGR).
DEFAULT_OPTIONS = MultilevelOptions()


#: Option fields that determine the *bits* of a partitioning result.
#: Everything else — ``workers`` / ``worker_timeout`` / ``worker_retries``
#: (bit-identical by construction), ``trace`` and ``sanitize`` (observers) —
#: is deliberately excluded, so a cached result can serve requests that
#: differ only in how the answer would have been computed or observed.
CACHE_KEY_FIELDS = (
    "matching",
    "initial",
    "refinement",
    "coarsen_to",
    "coarsen_stall_ratio",
    "max_coarsen_levels",
    "ggp_trials",
    "gggp_trials",
    "kl_early_exit",
    "max_kl_passes",
    "ubfactor",
    "bklgr_boundary_fraction",
    "eager_gains",
    "gain_table",
    "matching_impl",
    "seed",
    "deadline",
    "max_init_retries",
)


def cache_key_payload(options: MultilevelOptions) -> dict:
    """Stable, JSON-able serialization of the partition-relevant options.

    This is the options half of the content-addressed result-cache key
    (:mod:`repro.service.cache`): two options objects map to the same
    payload exactly when they are guaranteed to produce bit-identical
    partitions on the same graph.  Fields that defer to environment
    variables (``kernels`` → ``REPRO_KERNELS``, ``faults`` →
    ``REPRO_FAULTS``) are resolved here, because the ambient value changes
    the result bits just as surely as the explicit one.  Enum fields
    serialize as their string values; key order is fixed by
    :data:`CACHE_KEY_FIELDS`.
    """
    payload = {}
    for name in CACHE_KEY_FIELDS:
        value = getattr(options, name)
        if isinstance(value, Enum):
            value = value.value
        payload[name] = value
    kernels = options.kernels
    if kernels is None:
        kernels = os.environ.get("REPRO_KERNELS", "").strip() or None
    payload["kernels"] = kernels
    faults = options.faults
    if faults is None:
        faults = os.environ.get("REPRO_FAULTS", "").strip() or None
    payload["faults"] = faults
    return payload
