"""Sparse Cholesky factorization ``P A Pᵀ = L Lᵀ``.

A left-looking numeric factorization over the exact symbolic structure
computed by :func:`repro.ordering.elimination.symbolic_structure`:

* column ``j`` is assembled into a dense scratch vector from the original
  matrix entries plus the updates of every earlier column ``k`` with
  ``L[j,k] ≠ 0``;
* those columns are found without search through the classical *row link*
  lists: after column ``k`` contributes to row ``j``, it is re-filed under
  its next nonzero row — each (column, row) pair is visited exactly once,
  so the factorization runs in O(flops) with the per-column inner work in
  NumPy.

The factor object solves systems by forward/backward substitution and
reports the numbers the paper's §4.3 experiments are about (nonzeros,
flops actually performed), so the ordering comparisons can be validated
against a *numeric* factorization, not just symbolic counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ordering.elimination import symbolic_structure
from repro.utils.errors import ReproError


class FactorizationError(ReproError):
    """The matrix is not positive definite (non-positive pivot)."""


@dataclass
class CholeskyFactor:
    """The factor ``L`` (unit-pattern CSC-ish storage) plus the ordering.

    Attributes
    ----------
    structs:
        Per column, sorted below-diagonal row indices (new labels).
    values:
        Per column, the numeric values parallel to ``structs``.
    diag:
        Diagonal of L.
    perm:
        new→old permutation used (identity when factoring as-is).
    """

    structs: list
    values: list
    diag: np.ndarray
    perm: np.ndarray

    @property
    def n(self) -> int:
        return len(self.diag)

    def nnz(self) -> int:
        """Nonzeros of L including the diagonal."""
        return self.n + int(sum(len(s) for s in self.structs))

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Solve ``A x = b`` using the computed factorization."""
        b = np.asarray(b, dtype=np.float64)
        y = b[self.perm].copy()  # P b
        n = self.n
        # Forward: L y' = P b.
        for j in range(n):
            y[j] /= self.diag[j]
            rows = self.structs[j]
            if len(rows):
                y[rows] -= self.values[j] * y[j]
        # Backward: Lᵀ z = y'.
        for j in range(n - 1, -1, -1):
            rows = self.structs[j]
            if len(rows):
                y[j] -= float(np.dot(self.values[j], y[rows]))
            y[j] /= self.diag[j]
        x = np.empty(n)
        x[self.perm] = y  # undo the permutation
        return x

    def log_determinant(self) -> float:
        """``log det A = 2 Σ log diag(L)`` (a free by-product)."""
        return 2.0 * float(np.log(self.diag).sum())


def sparse_cholesky(A, perm=None) -> CholeskyFactor:
    """Factor the SPD matrix ``A`` (a :class:`~repro.linalg.system.SparseSPD`).

    Parameters
    ----------
    perm:
        Optional fill-reducing ordering (new→old).  ``None`` factors in
        the natural order.

    Raises
    ------
    FactorizationError
        If a pivot is non-positive (matrix not positive definite).
    """
    n = A.n
    if perm is None:
        perm = np.arange(n, dtype=np.int64)
    else:
        perm = np.asarray(perm, dtype=np.int64)
    Ap = A.permuted(perm) if not np.array_equal(perm, np.arange(n)) else A
    graph = Ap.graph

    structs, _ = symbolic_structure(graph, np.arange(n))
    values = [np.zeros(len(s)) for s in structs]
    diag = np.zeros(n)

    # rowlink[r] holds (column k, offset into structs[k]) pairs whose next
    # unconsumed row is r.
    rowlink: list[list] = [[] for _ in range(n)]
    w = np.zeros(n)  # dense scratch, reset sparsely after each column

    xadj, adjncy = graph.xadj, graph.adjncy
    offdiag = Ap.offdiag
    for j in range(n):
        # Scatter A's column j (rows ≥ j).
        w[j] = Ap.diag[j]
        s, e = xadj[j], xadj[j + 1]
        nbrs = adjncy[s:e]
        below = nbrs > j
        w[nbrs[below]] = offdiag[s:e][below]

        # Apply updates from all columns with a nonzero in row j.
        for k, off in rowlink[j]:
            ljk = values[k][off]
            rows = structs[k][off:]
            w[rows] -= ljk * values[k][off:]
            nxt = off + 1
            if nxt < len(structs[k]):
                rowlink[structs[k][nxt]].append((k, nxt))
        rowlink[j] = []  # consumed

        pivot = w[j]
        if pivot <= 0.0:
            raise FactorizationError(
                f"non-positive pivot {pivot:.3e} at column {j}; matrix is "
                "not positive definite"
            )
        dj = float(np.sqrt(pivot))
        diag[j] = dj
        rows_j = structs[j]
        values[j] = w[rows_j] / dj
        if len(rows_j):
            rowlink[rows_j[0]].append((j, 0))
        # Sparse reset of the scratch vector.
        w[rows_j] = 0.0
        w[j] = 0.0

    return CholeskyFactor(structs=structs, values=values, diag=diag, perm=perm)
