"""Sparse linear algebra consumers of the partitioner and the orderings.

The paper's motivation (§1–2) is solving ``Ax = b``: iterative methods
need a partition that minimises matvec communication; direct methods need
a fill-reducing ordering.  This subpackage closes the loop by actually
*solving systems* with both approaches, entirely in NumPy:

* :func:`sparse_cholesky` / :class:`CholeskyFactor` — left-looking sparse
  Cholesky over the symbolic structure from
  :mod:`repro.ordering.elimination`, with forward/backward substitution;
* :func:`conjugate_gradient` — CG with optional Jacobi preconditioning;
* :func:`laplacian_system` — an SPD test system (graph Laplacian + I);
* :func:`simulate_parallel_matvec` — per-iteration cost model of a
  partitioned matvec (compute + halo words + message startups), turning
  partition metrics into simulated solver time.
"""

from repro.linalg.cg import conjugate_gradient
from repro.linalg.cholesky import CholeskyFactor, sparse_cholesky
from repro.linalg.model import MatvecCost, simulate_parallel_matvec
from repro.linalg.system import SparseSPD, laplacian_system

__all__ = [
    "sparse_cholesky",
    "CholeskyFactor",
    "conjugate_gradient",
    "laplacian_system",
    "SparseSPD",
    "simulate_parallel_matvec",
    "MatvecCost",
]
