"""Conjugate gradients — the iterative side of the paper's motivation.

§1: "the solution of a sparse system of linear equations Ax = b via
iterative methods on a parallel computer gives rise to a graph
partitioning problem.  A key step in each iteration of these methods is
the multiplication of a sparse matrix and a (dense) vector."  This module
provides that iterative method so partitions can be judged by what they
do to a real solver (see :mod:`repro.linalg.model` for the parallel cost
model and ``examples/iterative_solver.py`` for the comparison).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class CGResult:
    """Outcome of a CG solve."""

    x: np.ndarray
    iterations: int
    converged: bool
    residual_norm: float
    residual_history: list


def conjugate_gradient(
    A,
    b,
    *,
    x0=None,
    tol: float = 1e-8,
    maxiter: int | None = None,
    jacobi: bool = False,
) -> CGResult:
    """Solve ``A x = b`` by (optionally Jacobi-preconditioned) CG.

    Parameters
    ----------
    A:
        Anything with a ``matvec(x)`` method and (for ``jacobi``) a
        ``diag`` attribute — :class:`~repro.linalg.system.SparseSPD` fits.
    tol:
        Relative residual target ``‖r‖ / ‖b‖``.
    maxiter:
        Iteration cap (default ``10 n``).

    Returns
    -------
    CGResult
    """
    b = np.asarray(b, dtype=np.float64)
    n = len(b)
    if maxiter is None:
        maxiter = 10 * n
    x = np.zeros(n) if x0 is None else np.asarray(x0, dtype=np.float64).copy()
    r = b - A.matvec(x)
    bnorm = float(np.linalg.norm(b)) or 1.0
    inv_diag = None
    if jacobi:
        inv_diag = 1.0 / np.asarray(A.diag, dtype=np.float64)
    z = r * inv_diag if jacobi else r
    p = z.copy()
    rz = float(np.dot(r, z))
    history = [float(np.linalg.norm(r)) / bnorm]

    iterations = 0
    while history[-1] > tol and iterations < maxiter:
        Ap = A.matvec(p)
        alpha = rz / float(np.dot(p, Ap))
        x += alpha * p
        r -= alpha * Ap
        z = r * inv_diag if jacobi else r
        rz_new = float(np.dot(r, z))
        beta = rz_new / rz
        rz = rz_new
        p = z + beta * p
        iterations += 1
        history.append(float(np.linalg.norm(r)) / bnorm)

    return CGResult(
        x=x,
        iterations=iterations,
        converged=history[-1] <= tol,
        residual_norm=history[-1],
        residual_history=history,
    )
