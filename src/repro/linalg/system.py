"""Symmetric positive-definite systems built on graphs.

The canonical SPD matrix over a graph is its Laplacian; adding the
identity (or any positive diagonal shift) makes it strictly positive
definite.  This mirrors how the paper's matrices arise (FE stiffness
matrices share the graph's pattern), while staying exactly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class SparseSPD:
    """A symmetric positive-definite matrix with the pattern of a graph.

    Stored redundantly for the two consumers: CSR-style arrays for fast
    matvecs (iterative side) and per-entry access helpers for the
    factorization (direct side).

    Attributes
    ----------
    graph:
        The pattern graph (off-diagonal structure).
    diag:
        Diagonal values, length ``n``.
    offdiag:
        Values parallel to ``graph.adjncy`` (symmetric:
        the two directed copies of an edge carry equal values).
    """

    graph: object
    diag: np.ndarray
    offdiag: np.ndarray

    @property
    def n(self) -> int:
        return self.graph.nvtxs

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``y = A x`` via the CSR arrays (vectorised)."""
        g = self.graph
        src = np.repeat(np.arange(g.nvtxs, dtype=np.int64), np.diff(g.xadj))
        ax = np.bincount(src, weights=self.offdiag * x[g.adjncy], minlength=g.nvtxs)
        return self.diag * x + ax

    def dense(self) -> np.ndarray:
        """Dense copy (test oracle; small systems only)."""
        g = self.graph
        out = np.zeros((g.nvtxs, g.nvtxs))
        src = np.repeat(np.arange(g.nvtxs, dtype=np.int64), np.diff(g.xadj))
        out[src, g.adjncy] = self.offdiag
        out[np.arange(g.nvtxs), np.arange(g.nvtxs)] = self.diag
        return out

    def permuted(self, perm) -> "SparseSPD":
        """``P A Pᵀ`` for a new→old permutation ``perm``."""
        from repro.graph.permute import permute_graph

        perm = np.asarray(perm, dtype=np.int64)
        g = self.graph
        # permute_graph merges by summing, but a simple graph has no
        # duplicates, so values pass through unchanged; rebuild offdiag in
        # the permuted adjacency order explicitly to stay value-exact.
        iperm = np.empty(g.nvtxs, dtype=np.int64)
        iperm[perm] = np.arange(g.nvtxs)
        new_graph = permute_graph(g, perm)
        # Map each new directed edge back to its old value.
        value_of = {}
        src = np.repeat(np.arange(g.nvtxs, dtype=np.int64), np.diff(g.xadj))
        for s, d, val in zip(src, g.adjncy, self.offdiag):
            value_of[(int(iperm[s]), int(iperm[d]))] = float(val)
        new_src = np.repeat(
            np.arange(new_graph.nvtxs, dtype=np.int64), np.diff(new_graph.xadj)
        )
        new_vals = np.array(
            [value_of[(int(s), int(d))] for s, d in zip(new_src, new_graph.adjncy)]
        )
        return SparseSPD(new_graph, self.diag[perm].copy(), new_vals)


def laplacian_system(graph, shift: float = 1.0, rng=None):
    """Build ``(A, b, x_true)`` with ``A = L(graph) + shift·I``.

    ``x_true`` is a random smooth-ish vector and ``b = A x_true``, so
    solvers can be checked against a known solution.
    """
    from repro.utils.rng import as_generator

    rng = as_generator(rng)
    n = graph.nvtxs
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.xadj))
    wdeg = np.bincount(src, weights=graph.adjwgt.astype(float), minlength=n)
    A = SparseSPD(
        graph=graph,
        diag=wdeg + shift,
        offdiag=-graph.adjwgt.astype(np.float64),
    )
    x_true = rng.standard_normal(n)
    b = A.matvec(x_true)
    return A, b, x_true
