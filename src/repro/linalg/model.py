"""Parallel matvec cost model: what a partition buys the iterative solver.

§2: "Because the partition assigns equal number of computational tasks to
each processor the work is balanced … and because it minimizes the
edge-cut, the communication overhead is also minimized."  This model puts
numbers on that: one matvec step on processor ``p`` costs

``flops_p · t_flop  +  halo_p · t_word  +  messages_p · t_startup``

and the step time is the maximum over processors (bulk-synchronous).  The
default machine constants are in flop units and loosely shaped like a
mid-90s message-passing machine (words cost tens of flops, startups cost
thousands), which is exactly the regime in which minimising cut/halos
matters; they are parameters, not claims.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.metrics import halo_sizes, subdomain_connectivity


@dataclass(frozen=True)
class MatvecCost:
    """Per-iteration simulated cost of a partitioned matvec."""

    step_time: float
    compute_max: float
    comm_max: float
    serial_time: float

    @property
    def speedup(self) -> float:
        """Serial flops / parallel step time."""
        return self.serial_time / self.step_time if self.step_time else 1.0

    @property
    def communication_fraction(self) -> float:
        """Fraction of the critical processor's step spent communicating."""
        return self.comm_max / self.step_time if self.step_time else 0.0


def simulate_parallel_matvec(
    graph,
    where,
    nparts=None,
    *,
    t_flop: float = 1.0,
    t_word: float = 30.0,
    t_startup: float = 2000.0,
) -> MatvecCost:
    """Simulate one ``y = A x`` under partition ``where``.

    Per-processor flops are ``2·(local nonzeros) + local rows`` (multiply
    and add per entry plus the diagonal); communication is the halo words
    plus per-neighbour message startups.
    """
    where = np.asarray(where)
    if nparts is None:
        nparts = int(where.max()) + 1 if len(where) else 1

    src = np.repeat(np.arange(graph.nvtxs, dtype=np.int64), np.diff(graph.xadj))
    # Each directed edge is one off-diagonal nonzero owned by its row.
    nnz_per_part = np.bincount(where[src], minlength=nparts).astype(np.float64)
    rows_per_part = np.bincount(where, minlength=nparts).astype(np.float64)
    flops = 2.0 * nnz_per_part + rows_per_part

    halos = halo_sizes(graph, where, nparts).astype(np.float64)
    conn = subdomain_connectivity(graph, where, nparts).astype(np.float64)

    compute = flops * t_flop
    comm = halos * t_word + conn * t_startup
    step = float((compute + comm).max(initial=0.0))
    serial = float(flops.sum()) * t_flop
    worst = int(np.argmax(compute + comm)) if nparts else 0
    return MatvecCost(
        step_time=step,
        compute_max=float(compute[worst]),
        comm_max=float(comm[worst]),
        serial_time=serial,
    )
