"""Randomness plumbing.

The 1995 paper runs every experiment with a *fixed seed* ("Since the nature
of the multilevel algorithm discussed is randomized, we performed all
experiments with fixed seed").  We reproduce that discipline: every public
entry point takes a ``seed`` argument that may be ``None`` (fresh
entropy), an ``int``, or an existing :class:`numpy.random.Generator`, and
the helpers here convert it to a concrete generator exactly once at the API
boundary.  Internal code only ever sees ``Generator`` objects.
"""

from __future__ import annotations

import numpy as np

SeedLike = "int | None | np.random.Generator | np.random.SeedSequence"


def as_generator(seed=None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` (OS entropy), an integer seed, a ``SeedSequence``, or an
        existing ``Generator`` (returned unchanged so state is shared with
        the caller).

    Returns
    -------
    numpy.random.Generator
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_child(rng: np.random.Generator) -> np.random.Generator:
    """Derive an independent child generator from ``rng``.

    Used by recursive bisection so each subproblem gets its own stream:
    results then do not depend on the *order* in which subproblems are
    solved, only on the recursion path.
    """
    # Drawing a 128-bit seed from the parent gives a statistically
    # independent child stream without sharing mutable state.
    seed = rng.integers(0, 2**63 - 1, size=2, dtype=np.int64)
    return np.random.default_rng(np.random.SeedSequence(entropy=[int(s) for s in seed]))


def random_permutation(rng: np.random.Generator, n: int) -> np.ndarray:
    """A random permutation of ``range(n)`` as int64 (thin wrapper for reuse)."""
    return rng.permutation(n)
