"""Exception hierarchy for the :mod:`repro` package.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything the library may raise with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.

Every class in the hierarchy pickles round-trip, whatever its constructor
signature — :class:`ReproError` defines ``__reduce__`` in terms of
``__new__`` plus instance state, so subclasses with required keyword-only
parameters (:class:`SanitizerError`, :class:`DeadlineExceededError`) survive
the result pipe of a ``ProcessPoolExecutor`` intact.  Lint rule RP018
enforces the same property structurally for everything reachable from a
pool submit site.
"""


def _rebuild_error(cls, args, state):
    """Reconstruct a :class:`ReproError` from its pickled pieces.

    Bypasses ``__init__`` (whose signature may demand keyword-only
    arguments the default ``Exception.__reduce__`` cannot supply) and
    restores ``args`` and the instance ``__dict__`` directly.
    """
    exc = cls.__new__(cls)
    exc.args = args
    exc.__dict__.update(state)
    return exc


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""

    def __reduce__(self):
        return (_rebuild_error, (type(self), self.args, dict(self.__dict__)))


class GraphValidationError(ReproError):
    """A graph's CSR arrays are structurally inconsistent.

    Raised by :func:`repro.graph.validate.validate_graph` and by constructors
    that validate their inputs: non-symmetric adjacency, out-of-range vertex
    ids, negative weights, self-loops, or malformed ``xadj``.
    """


class PartitionError(ReproError):
    """A partitioning request cannot be satisfied.

    Examples: ``k`` larger than the number of vertices, target part weights
    that do not sum to the total vertex weight, or an unbalanceable graph
    (a single vertex heavier than the allowed part weight).
    """


class OrderingError(ReproError):
    """A fill-reducing ordering request cannot be satisfied."""


class SpectralConvergenceError(ReproError):
    """An eigensolver failed to produce a usable eigenvector.

    Raised by :mod:`repro.spectral` when Lanczos exhausts its restarts with
    a residual far above tolerance, or when any solver path produces a
    non-finite eigenpair — instead of silently returning garbage that would
    become a plausible-looking but meaningless bisection.  The SBP → GGGP →
    GGP fallback chain in :func:`repro.core.initial.initial_bisection`
    catches this type (and only this type) to degrade gracefully.

    Attributes
    ----------
    method:
        Solver path that failed (``"lanczos"`` or ``"dense"``).
    residual:
        Relative residual at failure, or ``None`` when not applicable.
    tol:
        Tolerance the solver was asked for, or ``None``.
    injected:
        True when the failure was produced by the fault-injection
        framework (:mod:`repro.resilience.faults`) rather than the solver.
    """

    def __init__(
        self, message: str, *, method="lanczos", residual=None, tol=None,
        injected=False,
    ):
        self.method = method
        self.residual = residual
        self.tol = tol
        self.injected = injected
        super().__init__(f"[method={method}] {message}")


class DeadlineExceededError(ReproError):
    """A partitioning run overran its wall-clock deadline.

    Raised by :func:`repro.core.multilevel.bisect` at a phase boundary when
    ``MultilevelOptions.deadline`` has elapsed.  The error carries the best
    valid bisection found so far (projected to the finest graph), so a
    caller under deadline pressure can still use the partial result —
    :func:`repro.core.kway.partition` and nested dissection do exactly
    that instead of propagating the error.

    Attributes
    ----------
    deadline, elapsed:
        The budget in seconds and the wall-clock spent when it fired.
    phase:
        Pipeline phase that hit the deadline (``"coarsen"``, ``"initial"``,
        ``"refine"``).
    level:
        Coarsening level at the checkpoint, or ``None``.
    best:
        Best-so-far :class:`~repro.graph.partition.Bisection` of the
        *finest* graph, or ``None`` when the deadline fired before any
        partition existed.
    report:
        The :class:`~repro.resilience.report.ResilienceReport` of the run,
        including the deadline event itself.
    """

    def __init__(
        self, message: str, *, deadline, elapsed, phase=None, level=None,
        best=None, report=None,
    ):
        self.deadline = deadline
        self.elapsed = elapsed
        self.phase = phase
        self.level = level
        self.best = best
        self.report = report
        at = f"deadline={deadline:.3g}s, elapsed={elapsed:.3g}s"
        if phase is not None:
            at += f", phase={phase}"
        super().__init__(f"[{at}] {message}")


class ConfigurationError(ReproError, ValueError):
    """An option, parameter, or knob value is invalid.

    Also derives from :class:`ValueError` so pre-existing callers (and the
    stdlib idiom for bad argument values) keep working unchanged.
    """


class UnknownWorkloadError(ReproError, KeyError):
    """A suite/workload name does not exist in the registry.

    Also derives from :class:`KeyError`, the conventional type for registry
    lookups, so ``except KeyError`` call sites keep working.
    """


class TraceError(ReproError):
    """A trace file or record violates the observability schema.

    Raised by :func:`repro.obs.schema.validate_record` (and the readers
    built on it) when a JSONL trace is malformed: wrong schema version,
    unknown record kind, missing or mistyped fields.  See
    ``docs/OBSERVABILITY.md``.

    Attributes
    ----------
    line:
        1-based line number of the offending record in its file, or
        ``None`` when validating a free-standing record.
    """

    def __init__(self, message: str, *, line=None):
        self.line = line
        at = "" if line is None else f"[line {line}] "
        super().__init__(f"{at}{message}")


class SanitizerError(ReproError):
    """A runtime invariant check of the multilevel pipeline failed.

    Raised only when the sanitizer is enabled (``REPRO_SANITIZE=1`` or
    ``MultilevelOptions.sanitize=True``); see :mod:`repro.analysis.sanitize`.

    Attributes
    ----------
    phase:
        Pipeline phase whose invariant broke (``"matching"``,
        ``"contraction"``, ``"initial"``, ``"project"``, ``"refine"``,
        ``"kway-refine"``, ``"separator"``).
    level:
        Coarsening level (or dissection depth) at which it broke, or
        ``None`` when the phase has no level structure.
    """

    def __init__(self, message: str, *, phase: str, level=None):
        self.phase = phase
        self.level = level
        at = f"phase={phase}" + ("" if level is None else f", level={level}")
        super().__init__(f"[{at}] {message}")
