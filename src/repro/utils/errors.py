"""Exception hierarchy for the :mod:`repro` package.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything the library may raise with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphValidationError(ReproError):
    """A graph's CSR arrays are structurally inconsistent.

    Raised by :func:`repro.graph.validate.validate_graph` and by constructors
    that validate their inputs: non-symmetric adjacency, out-of-range vertex
    ids, negative weights, self-loops, or malformed ``xadj``.
    """


class PartitionError(ReproError):
    """A partitioning request cannot be satisfied.

    Examples: ``k`` larger than the number of vertices, target part weights
    that do not sum to the total vertex weight, or an unbalanceable graph
    (a single vertex heavier than the allowed part weight).
    """


class OrderingError(ReproError):
    """A fill-reducing ordering request cannot be satisfied."""


class ConfigurationError(ReproError, ValueError):
    """An option, parameter, or knob value is invalid.

    Also derives from :class:`ValueError` so pre-existing callers (and the
    stdlib idiom for bad argument values) keep working unchanged.
    """


class UnknownWorkloadError(ReproError, KeyError):
    """A suite/workload name does not exist in the registry.

    Also derives from :class:`KeyError`, the conventional type for registry
    lookups, so ``except KeyError`` call sites keep working.
    """


class SanitizerError(ReproError):
    """A runtime invariant check of the multilevel pipeline failed.

    Raised only when the sanitizer is enabled (``REPRO_SANITIZE=1`` or
    ``MultilevelOptions.sanitize=True``); see :mod:`repro.analysis.sanitize`.

    Attributes
    ----------
    phase:
        Pipeline phase whose invariant broke (``"matching"``,
        ``"contraction"``, ``"initial"``, ``"project"``, ``"refine"``,
        ``"kway-refine"``, ``"separator"``).
    level:
        Coarsening level (or dissection depth) at which it broke, or
        ``None`` when the phase has no level structure.
    """

    def __init__(self, message: str, *, phase: str, level=None):
        self.phase = phase
        self.level = level
        at = f"phase={phase}" + ("" if level is None else f", level={level}")
        super().__init__(f"[{at}] {message}")
