"""Exception hierarchy for the :mod:`repro` package.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything the library may raise with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphValidationError(ReproError):
    """A graph's CSR arrays are structurally inconsistent.

    Raised by :func:`repro.graph.validate.validate_graph` and by constructors
    that validate their inputs: non-symmetric adjacency, out-of-range vertex
    ids, negative weights, self-loops, or malformed ``xadj``.
    """


class PartitionError(ReproError):
    """A partitioning request cannot be satisfied.

    Examples: ``k`` larger than the number of vertices, target part weights
    that do not sum to the total vertex weight, or an unbalanceable graph
    (a single vertex heavier than the allowed part weight).
    """


class OrderingError(ReproError):
    """A fill-reducing ordering request cannot be satisfied."""
