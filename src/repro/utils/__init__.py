"""Shared utilities: seeded randomness, timing, and error types.

Everything in :mod:`repro` that makes a random choice threads a
:class:`numpy.random.Generator` through explicitly; these helpers normalise
the many ways a caller may express "which RNG" into a concrete generator.
"""

from repro.utils.errors import (
    ConfigurationError,
    GraphValidationError,
    PartitionError,
    ReproError,
    SanitizerError,
    TraceError,
    UnknownWorkloadError,
)
from repro.utils.rng import as_generator, spawn_child
from repro.utils.timing import Stopwatch, PhaseTimer

__all__ = [
    "ReproError",
    "ConfigurationError",
    "GraphValidationError",
    "PartitionError",
    "SanitizerError",
    "TraceError",
    "UnknownWorkloadError",
    "as_generator",
    "spawn_child",
    "Stopwatch",
    "PhaseTimer",
]
