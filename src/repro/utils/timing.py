"""Lightweight timing helpers used by the multilevel driver and benchmarks.

The paper reports per-phase times (CTime = coarsening, UTime = uncoarsening,
with UTime further split into ITime/RTime/PTime).  :class:`PhaseTimer`
accumulates named phase durations so the driver can report the same split.
"""

from __future__ import annotations

import time
from collections import defaultdict
from contextlib import contextmanager


class Stopwatch:
    """A resettable wall-clock stopwatch based on ``time.perf_counter``."""

    def __init__(self) -> None:
        self._start = time.perf_counter()

    def reset(self) -> None:
        """Restart the stopwatch from zero."""
        self._start = time.perf_counter()

    def elapsed(self) -> float:
        """Seconds elapsed since construction or the last :meth:`reset`."""
        return time.perf_counter() - self._start


class PhaseTimer:
    """Accumulates wall-clock time per named phase.

    Example
    -------
    >>> t = PhaseTimer()
    >>> with t.phase("coarsen"):
    ...     pass
    >>> t.total("coarsen") >= 0.0
    True
    """

    def __init__(self) -> None:
        self._totals: dict[str, float] = defaultdict(float)
        self._counts: dict[str, int] = defaultdict(int)

    @contextmanager
    def phase(self, name: str):
        """Context manager that adds the block's duration to phase ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self._totals[name] += time.perf_counter() - start
            self._counts[name] += 1

    def add(self, name: str, seconds: float) -> None:
        """Manually credit ``seconds`` to phase ``name``."""
        self._totals[name] += seconds
        self._counts[name] += 1

    def total(self, name: str) -> float:
        """Total seconds accumulated under ``name`` (0.0 if never seen)."""
        return self._totals.get(name, 0.0)

    def count(self, name: str) -> int:
        """How many times phase ``name`` was entered."""
        return self._counts.get(name, 0)

    def totals(self) -> dict[str, float]:
        """A copy of all phase totals."""
        return dict(self._totals)

    def grand_total(self) -> float:
        """Sum of all phase totals (what a deadline guard accounts against)."""
        return sum(self._totals.values())

    def merge(self, other: "PhaseTimer") -> None:
        """Fold another timer's totals into this one (used by recursion)."""
        for name, secs in other._totals.items():
            self._totals[name] += secs
            self._counts[name] += other._counts[name]
