"""Bounded job execution for the partitioning service.

Partitioning is CPU-bound library code; the HTTP layer is an asyncio event
loop.  :class:`JobQueue` bridges the two: jobs run on a fixed-size thread
pool (each job may itself fan branches across a *process* pool via
``options.workers`` — the :class:`~repro.resilience.supervisor.
BranchSupervisor` semantics are unchanged inside a job), and admission is
bounded — at most ``workers`` jobs running plus ``backlog`` waiting.  A
request arriving past that bound is rejected immediately with a 503
(:class:`~repro.service.schema.ServiceRequestError`), which is the
degradation a saturated service owes its callers: a fast "try again"
instead of an unbounded queue that converts overload into timeouts.

Per-request deadlines ride inside the job itself: ``options.deadline``
makes :func:`repro.core.kway.partition` and the orderings degrade and
return a best-effort result rather than overrun, so the queue never needs
to kill a job to honour a deadline.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor

from repro.service.schema import ServiceRequestError

__all__ = ["JobQueue"]


class JobQueue:
    """Admission-bounded thread-pool job runner for the service.

    Parameters
    ----------
    workers:
        Concurrently *running* jobs (thread-pool size).
    backlog:
        Jobs allowed to wait for a thread beyond the running ones;
        admission past ``workers + backlog`` raises a 503.
    """

    def __init__(self, workers: int = 2, backlog: int = 16):
        if workers < 1:
            raise ServiceRequestError(
                f"job queue needs at least one worker, got {workers}"
            )
        if backlog < 0:
            raise ServiceRequestError(f"backlog must be >= 0, got {backlog}")
        self.workers = workers
        self.backlog = backlog
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-service"
        )
        self._lock = threading.Lock()
        self._pending = 0
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.rejected = 0

    async def run(self, fn, *args):
        """Run ``fn(*args)`` on the pool; await and return its result.

        Raises
        ------
        ServiceRequestError
            With status 503 when the queue is saturated.  Exceptions the
            job raises propagate unchanged.
        """
        with self._lock:
            if self._pending >= self.workers + self.backlog:
                self.rejected += 1
                raise ServiceRequestError(
                    f"job queue saturated ({self._pending} jobs pending); "
                    "try again shortly",
                    status=503,
                )
            self._pending += 1
            self.submitted += 1
        loop = asyncio.get_running_loop()
        try:
            result = await loop.run_in_executor(self._pool, lambda: fn(*args))
        except Exception:
            with self._lock:
                self._pending -= 1
                self.failed += 1
            raise
        with self._lock:
            self._pending -= 1
            self.completed += 1
        return result

    def stats(self) -> dict:
        """Occupancy and outcome counters, JSON-ready for ``/stats``."""
        with self._lock:
            return {
                "workers": self.workers,
                "backlog": self.backlog,
                "pending": self._pending,
                "submitted": self.submitted,
                "completed": self.completed,
                "failed": self.failed,
                "rejected": self.rejected,
            }

    def shutdown(self) -> None:
        """Stop accepting work and release the pool threads."""
        self._pool.shutdown(wait=True, cancel_futures=True)
