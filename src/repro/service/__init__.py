"""repro.service — partitioning-as-a-service over the multilevel library.

See ``docs/SERVICE.md`` for the full story.  In one paragraph: a small
asyncio HTTP/JSON server (:mod:`repro.service.app`) accepts a graph —
inline CSR arrays or a named :mod:`repro.matrices` workload — plus
:class:`~repro.core.options.MultilevelOptions` fields, runs the job on an
admission-bounded thread pool (:mod:`repro.service.jobs`), and answers
with the partition/ordering, timers, kernel selection and the run's
:class:`~repro.resilience.report.ResilienceReport`.  In front sits a
content-addressed result cache (:mod:`repro.service.cache`): the key is a
SHA-256 over the canonical CSR bytes plus the stable options
serialization from :func:`repro.core.options.cache_key_payload`, so a
repeated request is served bit-identically without re-running the
partitioner.  Cache and job decisions surface as ``service.*`` trace
events in the schema of :mod:`repro.obs`.
"""

from repro.service.app import BackgroundServer, PartitionService, serve
from repro.service.cache import (
    ResultCache,
    graph_digest,
    request_key,
    where_digest,
)
from repro.service.jobs import JobQueue
from repro.service.schema import (
    ORDER_METHODS,
    ServiceRequestError,
    graph_from_request,
    ordering_response,
    parse_options,
    partition_response,
    resilience_payload,
)

__all__ = [
    "PartitionService",
    "BackgroundServer",
    "serve",
    "ResultCache",
    "graph_digest",
    "request_key",
    "where_digest",
    "JobQueue",
    "ServiceRequestError",
    "ORDER_METHODS",
    "parse_options",
    "graph_from_request",
    "resilience_payload",
    "partition_response",
    "ordering_response",
]
