"""Partitioning-as-a-service: the async HTTP/JSON application layer.

A deliberately thin server — stdlib :mod:`asyncio` streams, no framework —
in front of the library's drivers:

* ``POST /partition`` — k-way partition an inline CSR graph or a named
  :mod:`repro.matrices` workload; ``POST /order`` — a fill-reducing
  ordering (mlnd/mmd/snd).  Jobs run on the bounded
  :class:`~repro.service.jobs.JobQueue`; per-request ``options.deadline``
  degrades gracefully inside the job (the response carries the
  :class:`~repro.resilience.report.ResilienceReport`, never a 500).
* A **content-addressed result cache**
  (:class:`~repro.service.cache.ResultCache`) keyed by the CSR bytes plus
  the canonical options serialization.  A hit replays the stored response
  bit-identically — same ``where`` vector, same ``where_sha256`` — with
  no partitioner phase spans emitted.  Identical requests arriving while
  the first is still computing coalesce onto the same job (single-flight).
  Requests with a ``deadline`` bypass the cache entirely: their results
  depend on wall-clock, so they are neither stored nor served from store.
* **Progress streaming** — ``"stream": true`` answers with newline-
  delimited JSON: the tracer records of the running job (spans/events from
  :mod:`repro.obs`) as ``progress`` lines, then one ``result`` line.
* **Observability** — when the service is started with a trace target,
  every request, cache decision and job lands in the service's own JSONL
  trace as ``service.*`` events/counters, and fresh jobs splice their
  CTime/ITime/RTime/PTime back as ``job.phase`` spans (the
  ``worker.phase`` device), so ``repro trace`` profiles a serving window
  end to end.

``GET /healthz`` and ``GET /stats`` expose liveness and the cache/queue
counters; ``DELETE /cache`` drops every cached result (an ops knob for
rolling out changed defaults).  See ``docs/SERVICE.md``.
"""

from __future__ import annotations

import asyncio
import json
import os
import tempfile
import threading
import time

import numpy as np

from repro.core.kway import partition as kway_partition
from repro.core.kway_refine import refine_kway
from repro.core.options import cache_key_payload
from repro.obs.export import read_trace
from repro.obs.schema import PHASE_KEYS
from repro.obs.tracer import NULL as NULL_TRACER
from repro.obs.tracer import open_tracer
from repro.service.cache import ResultCache, request_key
from repro.service.jobs import JobQueue
from repro.service.schema import (
    ORDER_METHODS,
    ServiceRequestError,
    graph_from_request,
    ordering_response,
    parse_options,
    partition_response,
)
from repro.utils.errors import (
    ConfigurationError,
    GraphValidationError,
    OrderingError,
    PartitionError,
    ReproError,
    TraceError,
)

__all__ = ["PartitionService", "serve", "BackgroundServer"]

#: Library errors a request can legitimately provoke, mapped to 400.
_BAD_REQUEST_ERRORS = (
    PartitionError,
    GraphValidationError,
    ConfigurationError,
    OrderingError,
)

#: Cache-event name -> trace counter suffix (matches ResultCache.stats()).
_CACHE_COUNTER_NAMES = {
    "hit": "hits",
    "miss": "misses",
    "evict": "evictions",
    "expire": "expirations",
    "coalesce": "coalesces",
}

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class PartitionService:
    """The service core: routing, cache, job queue and tracing.

    Parameters
    ----------
    cache_size, cache_ttl:
        :class:`~repro.service.cache.ResultCache` capacity and entry
        lifetime (``ttl=None`` disables expiry, ``cache_size=0`` disables
        caching).
    queue_workers, backlog:
        :class:`~repro.service.jobs.JobQueue` bounds.
    trace:
        Optional JSONL trace target (path, or ``-`` for stdout) for the
        service's own tracer; ``None`` falls back to ``REPRO_TRACE``.
    max_body:
        Request-body byte cap; larger posts answer 413.
    """

    def __init__(self, *, cache_size: int = 128, cache_ttl: float | None = None,
                 queue_workers: int = 2, backlog: int = 16,
                 trace: str | None = None, max_body: int = 64 << 20):
        if trace is None:
            trace = os.environ.get("REPRO_TRACE", "").strip() or None
        self.tracer = (
            open_tracer(trace, run="service") if trace else NULL_TRACER
        )
        self.cache = ResultCache(
            cache_size, cache_ttl, on_event=self._cache_event
        )
        self.queue = JobQueue(queue_workers, backlog)
        self.max_body = max_body
        self.started_at = time.monotonic()
        #: key -> Future for in-flight jobs (single-flight coalescing).
        self._inflight: dict[str, asyncio.Future] = {}

    # -- observability -------------------------------------------------

    def _cache_event(self, name: str, *, key: str) -> None:
        if self.tracer:
            self.tracer.event(f"service.cache.{name}", key=key)
            plural = _CACHE_COUNTER_NAMES.get(name, f"{name}s")
            self.tracer.counter(f"service.cache.{plural}")

    def _event(self, name: str, **fields) -> None:
        if self.tracer:
            self.tracer.event(name, **fields)
            self.tracer.counter(f"{name}s")

    def close(self) -> None:
        """Release the job pool and close the tracer (flushes counters)."""
        self.queue.shutdown()
        self.tracer.close()

    # -- job execution -------------------------------------------------

    def _job_trace_path(self) -> str | None:
        """A fresh temp file for one job's trace, or ``None`` when unused."""
        fd, path = tempfile.mkstemp(prefix="repro-job-", suffix=".jsonl")
        os.close(fd)
        return path

    def _splice_job_trace(self, path: str) -> list[dict]:
        """Fold a finished job's trace into the service trace.

        Phase-tagged spans come back as ``job.phase`` spans (the
        ``worker.phase`` idiom), so a traced serving window still
        reconciles phase totals; returns the raw records for callers that
        stream them.
        """
        try:
            records = read_trace(path)
        except (OSError, TraceError):
            return []
        if self.tracer:
            for rec in records:
                if rec.get("t") != "span":
                    continue
                phase = rec.get("fields", {}).get("phase")
                if phase in PHASE_KEYS:
                    self.tracer.record_span(
                        "job.phase", float(rec["dur"]), phase=phase
                    )
        return records

    async def _run_coalesced(self, key: str, job, trace_path: str | None,
                             *, consume_trace: bool = True):
        """Run ``job`` once per key; concurrent identical requests share it.

        With ``consume_trace`` (the JSON path) the job's trace file is
        spliced into the service trace and removed here; the streaming
        path passes ``False`` and does both itself after a final tail.
        """
        existing = self._inflight.get(key)
        if existing is not None:
            self._cache_event("coalesce", key=key)
            if trace_path is not None:  # ours would never be written
                _unlink_quiet(trace_path)
            return await asyncio.shield(existing), False
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        self._inflight[key] = future
        try:
            response = await self.queue.run(job)
            self._event("service.job.run", key=key)
            future.set_result(response)
            return response, True
        except BaseException as exc:
            if isinstance(exc, ServiceRequestError) and exc.status == 503:
                self._event("service.job.rejected", key=key)
            future.set_exception(exc)
            # A coalesced waiter may never await the future; don't warn.
            future.exception()
            raise
        finally:
            self._inflight.pop(key, None)
            if trace_path is not None and consume_trace:
                self._splice_job_trace(trace_path)
                _unlink_quiet(trace_path)

    # -- request handlers ----------------------------------------------

    def _prepare_partition(self, body: dict):
        """Parse a /partition body into (graph, options, job, key)."""
        graph = graph_from_request(body)
        options = parse_options(body.get("options"))
        try:
            nparts = int(body.get("nparts", 2))
        except (TypeError, ValueError):
            raise ServiceRequestError("nparts must be an integer") from None
        kway = bool(body.get("kway_refine", False))
        if nparts < 1:
            raise ServiceRequestError(f"nparts must be >= 1, got {nparts}")
        if nparts > graph.nvtxs:
            raise ServiceRequestError(
                f"cannot cut {graph.nvtxs} vertices into {nparts} parts"
            )
        payload = {
            "options": cache_key_payload(options),
            "nparts": nparts,
            "kway_refine": kway,
        }
        key = request_key("partition", graph, payload)

        def job(trace_path=None):
            opts = options
            if trace_path is not None:
                opts = opts.with_(trace=trace_path)
            result = kway_partition(graph, nparts, opts)
            if kway:
                refine_kway(
                    graph, result, opts, np.random.default_rng(opts.seed)
                )
            return partition_response(graph, result, key=key)

        return options, job, key

    def _prepare_order(self, body: dict):
        """Parse an /order body into (graph, options, job, key)."""
        graph = graph_from_request(body)
        options = parse_options(body.get("options"))
        method = body.get("method", "mlnd")
        if method not in ORDER_METHODS:
            raise ServiceRequestError(
                f"unknown ordering method {method!r}; "
                f"expected one of {ORDER_METHODS}"
            )
        payload = {"options": cache_key_payload(options), "method": method}
        key = request_key("order", graph, payload)

        def job(trace_path=None):
            opts = options
            if trace_path is not None:
                opts = opts.with_(trace=trace_path)
            if method == "mmd":
                from repro.ordering import mmd_ordering

                ordering = mmd_ordering(graph)
            elif method == "snd":
                from repro.ordering import snd_ordering

                ordering = snd_ordering(graph, opts)
            else:
                from repro.ordering import mlnd_ordering

                ordering = mlnd_ordering(graph, opts)
            return ordering_response(ordering, key=key, method=method)

        return options, job, key

    async def _serve_product(self, kind: str, body: dict):
        """Shared /partition + /order flow: cache front, job behind."""
        prepare = self._prepare_partition if kind == "partition" else self._prepare_order
        options, job, key = prepare(body)
        # Deadline runs depend on wall-clock: bypass the cache both ways.
        use_cache = options.deadline is None
        if use_cache:
            cached = self.cache.get(key)
            if cached is not None:
                self._cache_event("hit", key=key)
                return {**cached, "cached": True}
            self._cache_event("miss", key=key)
        trace_path = self._job_trace_path() if self.tracer else None
        response, ran_here = await self._run_coalesced(
            key, lambda: job(trace_path), trace_path
        )
        if use_cache and ran_here:
            self.cache.put(key, response)
        return {**response, "cached": False}

    async def _stream_product(self, prepared):
        """ndjson progress stream for /partition + /order requests.

        ``prepared`` is the ``(options, job, key)`` triple from the
        ``_prepare_*`` step — parsing happens *before* the 200 header goes
        out, so malformed requests still get a clean 400.
        """
        options, job, key = prepared
        use_cache = options.deadline is None
        if use_cache:
            cached = self.cache.get(key)
            if cached is not None:
                self._cache_event("hit", key=key)
                yield {"t": "accepted", "key": key, "cached": True}
                yield {"t": "result", "result": {**cached, "cached": True}}
                return
            self._cache_event("miss", key=key)
        yield {"t": "accepted", "key": key, "cached": False}
        # Streaming always needs the job trace, tracer or not.
        trace_path = self._job_trace_path()
        task = asyncio.ensure_future(
            self._run_coalesced(
                key, lambda: job(trace_path), trace_path, consume_trace=False
            )
        )
        offset = 0
        try:
            try:
                while not task.done():
                    await asyncio.wait({task}, timeout=0.05)
                    records, offset = _tail_jsonl(trace_path, offset)
                    for rec in records:
                        yield {"t": "progress", "record": rec}
                # The job tracer flushes on close: one final tail picks up
                # what the poll missed (for a fast job, the whole trace).
                records, offset = _tail_jsonl(trace_path, offset)
                for rec in records:
                    yield {"t": "progress", "record": rec}
            finally:
                self._splice_job_trace(trace_path)
                _unlink_quiet(trace_path)
            response, ran_here = task.result()
        except ServiceRequestError as exc:
            yield {"t": "error", "status": exc.status, "message": str(exc)}
            return
        except _BAD_REQUEST_ERRORS as exc:
            yield {"t": "error", "status": 400, "message": str(exc)}
            return
        except Exception as exc:  # repro: noqa[RP003] - the 200 header is
            # already on the wire; the only way to surface a crashed job
            # to a streaming client is an in-band error line.
            yield {"t": "error", "status": 500, "message": str(exc)}
            return
        if use_cache and ran_here:
            self.cache.put(key, response)
        yield {"t": "result", "result": {**response, "cached": False}}

    # -- routing -------------------------------------------------------

    async def dispatch(self, method: str, path: str, body: dict | None):
        """Route one request.

        Returns ``(status, payload, stream)`` where ``stream`` is an async
        generator of ndjson dicts for streaming responses (``payload`` is
        then ``None``).
        """
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "use GET"}, None
            return 200, {"status": "ok", "uptime": time.monotonic() - self.started_at}, None
        if path == "/stats":
            if method != "GET":
                return 405, {"error": "use GET"}, None
            return 200, {
                "cache": self.cache.stats(),
                "queue": self.queue.stats(),
                "inflight": len(self._inflight),
                "uptime": time.monotonic() - self.started_at,
            }, None
        if path == "/cache":
            if method != "DELETE":
                return 405, {"error": "use DELETE"}, None
            return 200, {"cleared": self.cache.clear()}, None
        if path in ("/partition", "/order"):
            if method != "POST":
                return 405, {"error": "use POST"}, None
            kind = path.lstrip("/")
            if body is None:
                return 400, {"error": "request body must be a JSON object"}, None
            try:
                if body.get("stream"):
                    prepare = (
                        self._prepare_partition
                        if kind == "partition"
                        else self._prepare_order
                    )
                    return 200, None, self._stream_product(prepare(body))
                payload = await self._serve_product(kind, body)
            except ServiceRequestError as exc:
                return exc.status, {"error": str(exc)}, None
            except _BAD_REQUEST_ERRORS as exc:
                return 400, {"error": str(exc)}, None
            except ReproError as exc:
                return 500, {"error": str(exc)}, None
            return 200, payload, None
        return 404, {"error": f"unknown path {path!r}"}, None

    async def handle_request(self, method: str, path: str, raw_body: bytes):
        """Decode, dispatch and account one request."""
        body = None
        if raw_body:
            try:
                body = json.loads(raw_body)
            except json.JSONDecodeError as exc:
                self._event("service.request", path=path, status=400)
                return 400, {"error": f"invalid JSON body: {exc}"}, None
            if not isinstance(body, dict):
                self._event("service.request", path=path, status=400)
                return 400, {"error": "request body must be a JSON object"}, None
        status, payload, stream = await self.dispatch(method, path, body)
        self._event("service.request", path=path, status=status)
        return status, payload, stream


def _unlink_quiet(path: str) -> None:
    try:
        os.unlink(path)
    except OSError:
        pass


def _tail_jsonl(path: str, offset: int):
    """New complete JSONL records in ``path`` past ``offset``.

    Only consumes up to the last newline, so a partially-flushed record is
    picked up whole on the next call.  Returns ``(records, new_offset)``.
    """
    try:
        with open(path, "rb") as fh:
            fh.seek(offset)
            chunk = fh.read()
    except OSError:
        return [], offset
    if not chunk:
        return [], offset
    complete, _, _ = chunk.rpartition(b"\n")
    if not complete:
        return [], offset
    records = []
    for line in complete.split(b"\n"):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            continue
    return records, offset + len(complete) + 1


# ----------------------------------------------------------------------
# HTTP plumbing (asyncio streams)
# ----------------------------------------------------------------------

_IDLE_TIMEOUT = 60.0  #: seconds a keep-alive connection may sit silent


def _http_head(status: int, *, length: int | None, keep_alive: bool,
               content_type: str = "application/json") -> bytes:
    reason = _REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
    ]
    if length is not None:
        lines.append(f"Content-Length: {length}")
    lines.append(
        "Connection: keep-alive" if keep_alive else "Connection: close"
    )
    return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")


async def _read_request(reader, max_body: int):
    """Parse one HTTP/1.1 request; ``None`` on clean EOF.

    Returns ``(method, path, headers, body, too_large)``; ``too_large``
    signals the caller to answer 413 and close without reading the body.
    """
    line = await asyncio.wait_for(reader.readline(), _IDLE_TIMEOUT)
    if not line:
        return None
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3:
        raise ServiceRequestError(f"malformed request line {line!r}")
    method, target, _version = parts
    headers = {}
    while True:
        hline = await asyncio.wait_for(reader.readline(), _IDLE_TIMEOUT)
        if hline in (b"\r\n", b"\n", b""):
            break
        name, sep, value = hline.decode("latin-1").partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0") or "0")
    except ValueError:
        raise ServiceRequestError("malformed Content-Length") from None
    if length > max_body:
        return method, target, headers, b"", True
    body = (
        await asyncio.wait_for(reader.readexactly(length), _IDLE_TIMEOUT)
        if length
        else b""
    )
    path = target.split("?", 1)[0]
    return method, path, headers, body, False


async def _handle_connection(service: PartitionService, reader, writer):
    """Serve one client connection (keep-alive loop)."""
    try:
        while True:
            try:
                request = await _read_request(reader, service.max_body)
            except (asyncio.TimeoutError, TimeoutError,
                    asyncio.IncompleteReadError):
                return
            except ServiceRequestError as exc:
                payload = json.dumps({"error": str(exc)}).encode()
                writer.write(
                    _http_head(400, length=len(payload), keep_alive=False)
                    + payload
                )
                await writer.drain()
                return
            if request is None:
                return
            method, path, headers, raw_body, too_large = request
            if too_large:
                payload = json.dumps(
                    {"error": f"body exceeds {service.max_body} bytes"}
                ).encode()
                writer.write(
                    _http_head(413, length=len(payload), keep_alive=False)
                    + payload
                )
                await writer.drain()
                return
            keep_alive = headers.get("connection", "").lower() != "close"
            try:
                status, payload, stream = await service.handle_request(
                    method, path, raw_body
                )
            except Exception as exc:  # repro: noqa[RP003] - a crashed
                # handler must answer 500 and keep the server alive; the
                # failure is surfaced via the trace, not a dead socket.
                service._event("service.error", path=path, error=str(exc))
                body = json.dumps({"error": f"internal error: {exc}"}).encode()
                writer.write(
                    _http_head(500, length=len(body), keep_alive=False) + body
                )
                await writer.drain()
                return
            if stream is not None:
                writer.write(
                    _http_head(
                        status, length=None, keep_alive=False,
                        content_type="application/x-ndjson",
                    )
                )
                await writer.drain()
                async for record in stream:
                    writer.write(
                        json.dumps(record, separators=(",", ":")).encode()
                        + b"\n"
                    )
                    await writer.drain()
                return
            body = json.dumps(payload).encode()
            writer.write(
                _http_head(status, length=len(body), keep_alive=keep_alive)
                + body
            )
            await writer.drain()
            if not keep_alive:
                return
    except (ConnectionError, BrokenPipeError, OSError):
        return
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def serve_async(service: PartitionService, host: str = "127.0.0.1",
                      port: int = 8157, *, ready=None, stop=None):
    """Run the server until ``stop`` (an :class:`asyncio.Event`) is set.

    ``ready`` (a callable) receives the bound ``(host, port)`` once the
    socket is listening — how embedders and tests learn an ephemeral port.
    """
    connections: set[asyncio.Task] = set()

    async def handler(reader, writer):
        task = asyncio.current_task()
        connections.add(task)
        try:
            await _handle_connection(service, reader, writer)
        finally:
            connections.discard(task)

    server = await asyncio.start_server(handler, host, port)
    bound = server.sockets[0].getsockname()[:2]
    if ready is not None:
        ready(bound)
    if stop is None:
        stop = asyncio.Event()
    async with server:
        await stop.wait()
    # Idle keep-alive connections would otherwise outlive the loop and
    # close their transports after loop.close() (an unraisable error).
    for task in list(connections):
        task.cancel()
    if connections:
        await asyncio.gather(*connections, return_exceptions=True)


def serve(host: str = "127.0.0.1", port: int = 8157, **config) -> None:
    """Blocking entry point: build a :class:`PartitionService` and serve.

    ``config`` forwards to :class:`PartitionService`.  Returns when the
    event loop is interrupted (Ctrl-C).
    """
    service = PartitionService(**config)
    try:
        asyncio.run(serve_async(service, host, port))
    except KeyboardInterrupt:
        pass
    finally:
        service.close()


class BackgroundServer:
    """A service running on its own thread + event loop.

    The test suite's (and embedders') handle: ``start()`` returns the
    bound ``(host, port)``; ``stop()`` shuts the loop down, drains the job
    pool and closes the tracer so counters land in the trace file.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, **config):
        self.service = PartitionService(**config)
        self._host = host
        self._port = port
        self.address: tuple[str, int] | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._ready = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="repro-service-loop", daemon=True
        )

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        self._stop = asyncio.Event()

        def ready(addr):
            self.address = (addr[0], addr[1])
            self._ready.set()

        try:
            loop.run_until_complete(
                serve_async(
                    self.service, self._host, self._port,
                    ready=ready, stop=self._stop,
                )
            )
        finally:
            loop.close()

    def start(self) -> tuple[str, int]:
        """Start serving; block until the socket listens; return address."""
        self._thread.start()
        if not self._ready.wait(timeout=10.0):
            raise ServiceRequestError("service failed to start", status=503)
        assert self.address is not None
        return self.address

    def stop(self) -> None:
        """Stop the loop, join the thread, release pool and tracer."""
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=10.0)
        self.service.close()

    def __enter__(self) -> "BackgroundServer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
