"""Request/response schema of the partitioning service.

Requests are JSON objects.  A graph arrives either **inline** as canonical
CSR arrays::

    {"graph": {"xadj": [...], "adjncy": [...], "adjwgt": [...], "vwgt": [...]}}

(``adjwgt``/``vwgt`` optional, meaning unit weights), or as a **named
workload** from the :mod:`repro.matrices` suite::

    {"workload": {"name": "4ELT", "scale": 0.1, "seed": 0}}

``options`` may carry any :class:`~repro.core.options.MultilevelOptions`
field except ``trace`` (the service owns tracing).  Parsing failures raise
:class:`ServiceRequestError` with the HTTP status the app layer should
answer with — the library's own :class:`~repro.utils.errors.ReproError`
hierarchy maps onto 400/404 rather than leaking as a 500.

Responses are JSON-ready dicts built by :func:`partition_response` /
:func:`ordering_response`; both carry the result-cache ``key``, a
``where_sha256`` / ``perm_sha256`` digest for bit-identity checks, and the
run's :class:`~repro.resilience.report.ResilienceReport` serialized by
:func:`resilience_payload`.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.options import DEFAULT_OPTIONS, MultilevelOptions
from repro.graph.csr import CSRGraph
from repro.service.cache import where_digest
from repro.utils.errors import (
    ConfigurationError,
    GraphValidationError,
    ReproError,
    UnknownWorkloadError,
)

__all__ = [
    "ServiceRequestError",
    "parse_options",
    "graph_from_request",
    "resilience_payload",
    "partition_response",
    "ordering_response",
]

#: Option fields a request may set; ``trace`` is service-owned.
_OPTION_FIELDS = tuple(
    f.name for f in dataclasses.fields(MultilevelOptions) if f.name != "trace"
)

#: Ordering methods the ``/order`` endpoint accepts.
ORDER_METHODS = ("mlnd", "mmd", "snd")


class ServiceRequestError(ReproError):
    """A request cannot be served; carries the HTTP status to answer with.

    Attributes
    ----------
    status:
        HTTP status code (400 for malformed requests, 404 for unknown
        workloads/paths, 413 for oversized bodies, 503 for a saturated
        job queue).
    """

    def __init__(self, message: str, *, status: int = 400):
        self.status = status
        super().__init__(message)


def _expect_mapping(obj, what: str) -> dict:
    if not isinstance(obj, dict):
        raise ServiceRequestError(
            f"{what} must be a JSON object, got {type(obj).__name__}"
        )
    return obj


def parse_options(obj) -> MultilevelOptions:
    """Build options from a request's ``options`` object (or ``None``).

    Unknown fields and invalid values are a 400, not a silent default —
    a caller who misspells ``matching`` should not get the paper default
    cached under their intended key.
    """
    if obj is None:
        return DEFAULT_OPTIONS
    obj = _expect_mapping(obj, "options")
    unknown = set(obj) - set(_OPTION_FIELDS)
    if unknown:
        raise ServiceRequestError(
            f"unknown option field(s) {sorted(unknown)}; "
            f"settable fields: {', '.join(_OPTION_FIELDS)}"
        )
    try:
        return DEFAULT_OPTIONS.with_(**obj)
    except (ConfigurationError, ValueError) as exc:
        raise ServiceRequestError(f"invalid options: {exc}") from exc


def _csr_from_inline(obj) -> CSRGraph:
    obj = _expect_mapping(obj, "graph")
    unknown = set(obj) - {"xadj", "adjncy", "adjwgt", "vwgt"}
    if unknown:
        raise ServiceRequestError(f"unknown graph field(s) {sorted(unknown)}")
    for required in ("xadj", "adjncy"):
        if required not in obj:
            raise ServiceRequestError(f"graph is missing {required!r}")
    try:
        return CSRGraph(
            np.asarray(obj["xadj"], dtype=np.int64),
            np.asarray(obj["adjncy"], dtype=np.int32),
            None if obj.get("adjwgt") is None else np.asarray(obj["adjwgt"], dtype=np.int64),
            None if obj.get("vwgt") is None else np.asarray(obj["vwgt"], dtype=np.int64),
        )
    except GraphValidationError as exc:
        raise ServiceRequestError(f"invalid graph: {exc}") from exc
    except (TypeError, ValueError) as exc:
        raise ServiceRequestError(f"malformed CSR arrays: {exc}") from exc


def _csr_from_workload(obj) -> CSRGraph:
    from repro.matrices import suite

    obj = _expect_mapping(obj, "workload")
    unknown = set(obj) - {"name", "scale", "seed"}
    if unknown:
        raise ServiceRequestError(f"unknown workload field(s) {sorted(unknown)}")
    name = obj.get("name")
    if not isinstance(name, str):
        raise ServiceRequestError("workload needs a string 'name'")
    try:
        scale = float(obj.get("scale", 1.0))
        seed = int(obj.get("seed", 0))
    except (TypeError, ValueError) as exc:
        raise ServiceRequestError(f"malformed workload parameters: {exc}") from exc
    try:
        return suite.load(name, scale=scale, seed=seed)
    except UnknownWorkloadError as exc:
        raise ServiceRequestError(str(exc.args[0]), status=404) from exc


def graph_from_request(body: dict) -> CSRGraph:
    """The request's graph: inline CSR arrays or a named suite workload."""
    has_inline = "graph" in body
    has_workload = "workload" in body
    if has_inline == has_workload:
        raise ServiceRequestError(
            "request needs exactly one of 'graph' (inline CSR) or "
            "'workload' (named suite matrix)"
        )
    if has_inline:
        return _csr_from_inline(body["graph"])
    return _csr_from_workload(body["workload"])


def resilience_payload(report) -> list[dict]:
    """Serialize a :class:`ResilienceReport` (or ``None``) for a response."""
    if not report:
        return []
    return [
        {
            "kind": e.kind,
            "phase": e.phase,
            "detail": e.detail,
            "level": e.level,
        }
        for e in report
    ]


def partition_response(graph, result, *, key: str) -> dict:
    """The JSON-ready body for a completed partition job.

    This is exactly what the cache stores, so a hit replays the original
    response byte-for-byte (the app layer adds only the ``cached`` flag).
    """
    return {
        "kind": "partition",
        "key": key,
        "nparts": int(result.nparts),
        "cut": int(result.cut),
        "balance": float(result.balance(graph)),
        "where": [int(p) for p in result.where],
        "where_sha256": where_digest(result.where),
        "pwgts": [int(w) for w in result.pwgts],
        "timers": {k: float(v) for k, v in (result.timers or {}).items()},
        "kernels": dict(getattr(result, "kernels", {}) or {}),
        "resilience": resilience_payload(getattr(result, "resilience", None)),
    }


def ordering_response(ordering, *, key: str, method: str) -> dict:
    """The JSON-ready body for a completed ordering job."""
    return {
        "kind": "order",
        "key": key,
        "method": method,
        "perm": [int(v) for v in ordering.perm],
        "iperm": [int(v) for v in ordering.iperm],
        "perm_sha256": where_digest(ordering.perm),
        "resilience": resilience_payload(ordering.meta.get("resilience")),
    }
