"""Content-addressed result cache for the partitioning service.

The paper's whole pitch is that multilevel schemes make partitioning cheap
enough to be a *routine* operation; operationally that only pays off when
a repeated request for a hot graph costs nothing.  This module provides
the two halves of that bargain:

* **content addressing** — :func:`graph_digest` hashes the canonical CSR
  arrays (``xadj``/``adjncy``/``adjwgt``/``vwgt`` bytes, each length-
  prefixed so array boundaries cannot alias), and :func:`request_key`
  folds in the request kind plus the stable options serialization from
  :func:`repro.core.options.cache_key_payload`.  Two requests share a key
  exactly when the library guarantees them bit-identical results;
* **bounded retention** — :class:`ResultCache` is an LRU with optional
  TTL.  Hits refresh recency; expired entries are dropped on access (and
  by :meth:`ResultCache.purge_expired`); inserting past capacity evicts
  the least-recently-used entry.  Hit/miss/eviction/expiration counters
  are kept for the ``/stats`` endpoint, and an optional ``on_event``
  callback lets the service surface each decision as a ``service.cache.*``
  trace event.

The cache is synchronous and lock-protected: the service only touches it
from the event-loop thread, but unit tests (and future embedders) may not.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from collections import OrderedDict

import numpy as np

from repro.utils.errors import ConfigurationError

__all__ = ["graph_digest", "request_key", "where_digest", "ResultCache"]


def _update_array(digest, name: str, array) -> None:
    """Feed one CSR array into ``digest``, tagged and length-prefixed."""
    data = np.ascontiguousarray(array)
    digest.update(name.encode("ascii"))
    digest.update(str(data.dtype).encode("ascii"))
    digest.update(len(data.tobytes()).to_bytes(8, "little"))
    digest.update(data.tobytes())


def graph_digest(graph) -> str:
    """SHA-256 over the canonical CSR arrays of ``graph``.

    The four arrays are hashed in a fixed order with name, dtype and byte-
    length prefixes, so ``(xadj, adjncy)`` splits can never collide with
    different-shaped graphs that happen to share a byte stream.
    """
    digest = hashlib.sha256()
    _update_array(digest, "xadj", graph.xadj)
    _update_array(digest, "adjncy", graph.adjncy)
    _update_array(digest, "adjwgt", graph.adjwgt)
    _update_array(digest, "vwgt", graph.vwgt)
    return digest.hexdigest()


def request_key(kind: str, graph, payload: dict) -> str:
    """The content-addressed cache key of one service request.

    ``kind`` names the product (``"partition"`` / ``"order"``), ``graph``
    contributes its CSR digest, and ``payload`` is a JSON-able dict of
    everything else that determines the result bits — the options
    serialization plus request parameters (``nparts``, ``method``, …).
    """
    body = json.dumps(
        {"kind": kind, "graph": graph_digest(graph), "payload": payload},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


def where_digest(where) -> str:
    """SHA-256 of a partition/permutation vector, for bit-identity checks."""
    data = np.ascontiguousarray(where)
    digest = hashlib.sha256()
    digest.update(str(data.dtype).encode("ascii"))
    digest.update(data.tobytes())
    return digest.hexdigest()


class ResultCache:
    """LRU + TTL cache mapping request keys to serialized results.

    Parameters
    ----------
    maxsize:
        Entry capacity; inserting past it evicts the least-recently-used
        entry.  ``0`` disables storage entirely (every ``get`` misses).
    ttl:
        Seconds an entry stays servable, or ``None`` for no expiry.
    clock:
        Monotonic time source, injectable for tests.
    on_event:
        Optional callback ``(name, **fields)`` invoked on every eviction
        and expiration (``"evict"`` / ``"expire"``), which the service
        forwards to the tracer as ``service.cache.*`` events.
    """

    def __init__(self, maxsize: int = 128, ttl: float | None = None, *,
                 clock=time.monotonic, on_event=None):
        if maxsize < 0:
            raise ConfigurationError("maxsize must be >= 0")
        if ttl is not None and ttl <= 0:
            raise ConfigurationError("ttl must be positive when set")
        self.maxsize = maxsize
        self.ttl = ttl
        self._clock = clock
        self._on_event = on_event
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, tuple[float, object]] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0

    def _notify(self, name: str, key: str) -> None:
        if self._on_event is not None:
            self._on_event(name, key=key)

    def get(self, key: str):
        """The cached value, or ``None`` on miss/expiry.  Refreshes LRU."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                stored_at, value = entry
                if self.ttl is not None and self._clock() - stored_at > self.ttl:
                    del self._entries[key]
                    self.expirations += 1
                    self._notify("expire", key)
                else:
                    self._entries.move_to_end(key)
                    self.hits += 1
                    return value
            self.misses += 1
            return None

    def put(self, key: str, value) -> None:
        """Store ``value`` under ``key``, evicting LRU entries past capacity."""
        if self.maxsize == 0:
            return
        with self._lock:
            if key in self._entries:
                del self._entries[key]
            self._entries[key] = (self._clock(), value)
            while len(self._entries) > self.maxsize:
                victim, _ = self._entries.popitem(last=False)
                self.evictions += 1
                self._notify("evict", victim)

    def purge_expired(self) -> int:
        """Drop every expired entry; return how many were dropped."""
        if self.ttl is None:
            return 0
        dropped = 0
        with self._lock:
            now = self._clock()
            for key in [
                k for k, (t, _) in self._entries.items() if now - t > self.ttl
            ]:
                del self._entries[key]
                self.expirations += 1
                dropped += 1
                self._notify("expire", key)
        return dropped

    def clear(self) -> int:
        """Drop everything; return how many entries were dropped."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
        return dropped

    def stats(self) -> dict:
        """Counters and occupancy, JSON-ready for the ``/stats`` endpoint."""
        with self._lock:
            return {
                "size": len(self._entries),
                "maxsize": self.maxsize,
                "ttl": self.ttl,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "expirations": self.expirations,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries
