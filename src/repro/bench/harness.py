"""Benchmark harness: experiment records, environment knobs, formatting.

The paper reports three kinds of artefacts — per-matrix tables (Tables
2–4), per-matrix ratio bars (Figures 1–3, 5) and relative-runtime bars
(Figure 4).  The drivers in :mod:`repro.bench.tables` and
:mod:`repro.bench.figures` produce lists of :class:`Row` records; this
module renders them as aligned text tables and centralises the environment
knobs the pytest benchmarks honour:

``REPRO_BENCH_SCALE``
    Multiplier on the suite's default graph orders (default ``1.0``;
    set ``0.5`` for a quick pass).
``REPRO_BENCH_MATRICES``
    Comma-separated matrix names overriding each experiment's default
    subset; ``all`` selects the experiment's full paper set.
``REPRO_BENCH_SEED``
    Seed for all experiments (default 1995 — "fixed seed" as in §4).
``REPRO_BENCH_DEADLINE``
    Optional per-partition wall-clock budget in seconds (unset = no
    deadline); exercises the deadline-degraded paths of
    docs/RESILIENCE.md under benchmark load.
``REPRO_BENCH_KERNELS``
    Kernel backend for every experiment: ``loop`` (bit-exact reference,
    default), ``vectorized`` or ``numba`` — the ``options.kernels``
    registry switch of docs/PERFORMANCE.md, with per-phase fallback when
    a backend is unavailable.  The CI perf legs run the same table under
    two values and gate on ``repro bench-diff``.
``REPRO_BENCH_IMPL``
    Legacy matching-phase-only kernel switch: ``loop`` (the paper's
    sequential scan, default) or ``vectorized`` (batched proposal
    rounds).  Ignored when ``REPRO_BENCH_KERNELS`` is set.
``REPRO_BENCH_WORKERS``
    Process count for parallel recursive bisection (default 1 =
    sequential; bit-identical results either way).

All ``REPRO_BENCH_*`` variables are recorded in every ``BENCH_*.json``
payload's env block (see :func:`repro.obs.export.bench_env`), so a
snapshot always says which kernel and worker count produced it.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field


@dataclass
class Row:
    """One table/figure row: a matrix × scheme measurement."""

    matrix: str
    scheme: str
    values: dict = field(default_factory=dict)


def bench_scale() -> float:
    """Graph-order multiplier from ``REPRO_BENCH_SCALE``."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def bench_seed() -> int:
    """Experiment seed from ``REPRO_BENCH_SEED``."""
    return int(os.environ.get("REPRO_BENCH_SEED", "1995"))


def bench_deadline() -> float | None:
    """Per-partition wall-clock budget from ``REPRO_BENCH_DEADLINE``."""
    raw = os.environ.get("REPRO_BENCH_DEADLINE", "")
    return float(raw) if raw else None


def bench_options(base=None):
    """Experiment options with the env-selected kernel and worker count.

    Starts from ``base`` (default: :data:`~repro.core.options.DEFAULT_OPTIONS`)
    and applies ``REPRO_BENCH_KERNELS`` / ``REPRO_BENCH_IMPL`` /
    ``REPRO_BENCH_WORKERS`` when set, so every bench driver runs the
    configuration the CI perf legs (or a local A/B run) asked for.
    """
    from repro.core.options import DEFAULT_OPTIONS

    options = base if base is not None else DEFAULT_OPTIONS
    backend = os.environ.get("REPRO_BENCH_KERNELS", "")
    if backend:
        options = options.with_(kernels=backend)
    impl = os.environ.get("REPRO_BENCH_IMPL", "")
    if impl:
        options = options.with_(matching_impl=impl)
    raw_workers = os.environ.get("REPRO_BENCH_WORKERS", "")
    if raw_workers:
        options = options.with_(workers=int(raw_workers))
    return options


def bench_matrices(default: list[str], full: list[str]) -> list[str]:
    """Matrix subset for an experiment.

    ``default`` is the quick subset a plain ``pytest benchmarks/`` run
    uses; ``full`` is the experiment's complete paper set, selected with
    ``REPRO_BENCH_MATRICES=all``.
    """
    raw = os.environ.get("REPRO_BENCH_MATRICES", "")
    if not raw:
        return list(default)
    if raw.strip().lower() == "all":
        return list(full)
    return [name.strip() for name in raw.split(",") if name.strip()]


def format_table(rows: list[Row], columns: list[str], *, title: str = "") -> str:
    """Render rows as an aligned text table (matrix, scheme, columns…)."""
    headers = ["matrix", "scheme", *columns]
    table = [headers]
    for row in rows:
        cells = [row.matrix, row.scheme]
        for col in columns:
            value = row.values.get(col, "")
            if isinstance(value, float):
                cells.append(f"{value:.3f}")
            else:
                cells.append(str(value))
        table.append(cells)
    widths = [max(len(line[i]) for line in table) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    for i, line in enumerate(table):
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(line, widths)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def pivot(rows: list[Row], value_key: str) -> dict[str, dict[str, object]]:
    """``{matrix: {scheme: value}}`` view of a row list."""
    out: dict[str, dict[str, object]] = {}
    for row in rows:
        out.setdefault(row.matrix, {})[row.scheme] = row.values.get(value_key)
    return out
