"""Perf-regression gate: diff two ``BENCH_<table>.json`` snapshots.

The bench harness persists every table as a versioned JSON payload
(``repro-bench/1``, see :mod:`repro.obs.export`); this module compares two
such snapshots — or two directories of them — cell by cell and classifies
each delta, which is what turns the exported artefacts into an actual
performance trajectory:

* **time-like** columns (name contains ``time``/``seconds``/``ms``) —
  lower is better; a regression is ``new > old × (1 + time_tol)``, with
  cells under ``min_time`` seconds on both sides ignored as noise;
* **quality** columns (``cut``/``fill``/``opcount``/``nnz``/``sep``) —
  lower is better; a regression is ``new > old × (1 + cut_tol)``;
* everything else is **informational** — reported, never gating.

Rows are keyed by ``(matrix, scheme)``; rows present on only one side are
reported but do not gate (a shrunk matrix list usually means a different
``REPRO_BENCH_*`` configuration, which the payload's env block shows).
The CLI surface is ``repro bench-diff OLD NEW [--fail-on-regress]``.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

from repro.utils.errors import ConfigurationError

__all__ = [
    "CellDiff",
    "DiffReport",
    "classify_column",
    "diff_payloads",
    "load_payloads",
    "diff_paths",
    "format_report",
    "format_markdown",
    "DEFAULT_TIME_TOL",
    "DEFAULT_CUT_TOL",
    "DEFAULT_MIN_TIME",
]

#: Default relative tolerance for time-like columns (25 %: wall-clock on
#: shared runners is noisy; the CI gate widens this further).
DEFAULT_TIME_TOL = 0.25
#: Default relative tolerance for quality columns (cuts are seeded and
#: deterministic, so 5 % headroom only covers intentional algorithm drift).
DEFAULT_CUT_TOL = 0.05
#: Time cells below this many seconds on both sides are ignored (noise).
DEFAULT_MIN_TIME = 0.05

_TIME_HINTS = ("time", "seconds", "_ms", "secs")
_QUALITY_HINTS = ("cut", "fill", "opcount", "nnz", "sep", "opc")


def classify_column(name: str) -> str:
    """``"time"``, ``"quality"`` or ``"info"`` for a bench column name."""
    lowered = name.lower()
    if any(hint in lowered for hint in _TIME_HINTS):
        return "time"
    if any(hint in lowered for hint in _QUALITY_HINTS):
        return "quality"
    return "info"


@dataclass(frozen=True)
class CellDiff:
    """One compared cell: a (table, row, column) triple across snapshots."""

    table: str
    matrix: str
    scheme: str
    column: str
    kind: str  #: "time" | "quality" | "info"
    old: float
    new: float
    regressed: bool

    @property
    def ratio(self) -> float:
        """``new / old`` (inf when old is 0 and new is not)."""
        if self.old == 0:
            return float("inf") if self.new else 1.0
        return self.new / self.old


@dataclass
class DiffReport:
    """The full comparison result of two snapshots."""

    cells: list = field(default_factory=list)
    missing_rows: list = field(default_factory=list)  #: in old only
    added_rows: list = field(default_factory=list)  #: in new only
    missing_tables: list = field(default_factory=list)
    added_tables: list = field(default_factory=list)

    @property
    def regressions(self) -> list:
        """Cells classified as regressions, worst ratio first."""
        return sorted(
            (c for c in self.cells if c.regressed),
            key=lambda c: c.ratio,
            reverse=True,
        )

    @property
    def ok(self) -> bool:
        """True when no cell regressed."""
        return not any(c.regressed for c in self.cells)


def _rows_by_key(payload: dict) -> dict:
    rows = {}
    for row in payload.get("rows", []):
        key = (str(row.get("matrix", "")), str(row.get("scheme", "")))
        rows[key] = row.get("values", {})
    return rows


def _numeric(value):
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value)


def diff_payloads(
    old: dict,
    new: dict,
    *,
    time_tol: float = DEFAULT_TIME_TOL,
    cut_tol: float = DEFAULT_CUT_TOL,
    min_time: float = DEFAULT_MIN_TIME,
    report: DiffReport | None = None,
) -> DiffReport:
    """Diff two ``repro-bench/1`` payloads of the same table."""
    report = report if report is not None else DiffReport()
    table = str(new.get("table") or old.get("table") or "?")
    old_rows = _rows_by_key(old)
    new_rows = _rows_by_key(new)
    for key in old_rows:
        if key not in new_rows:
            report.missing_rows.append((table, *key))
    for key in new_rows:
        if key not in old_rows:
            report.added_rows.append((table, *key))
    for key in old_rows:
        if key not in new_rows:
            continue
        matrix, scheme = key
        before, after = old_rows[key], new_rows[key]
        for column in before:
            if column not in after:
                continue
            o, n = _numeric(before[column]), _numeric(after[column])
            if o is None or n is None:
                continue
            kind = classify_column(column)
            regressed = False
            if kind == "time":
                if not (o < min_time and n < min_time):
                    regressed = n > o * (1.0 + time_tol)
            elif kind == "quality":
                regressed = n > o * (1.0 + cut_tol)
            report.cells.append(
                CellDiff(table, matrix, scheme, column, kind, o, n, regressed)
            )
    return report


def load_payloads(path: str) -> dict:
    """Load ``table → payload`` from a snapshot file or directory.

    A file holds one payload; a directory contributes every
    ``BENCH_*.json`` it contains.
    """
    if os.path.isdir(path):
        payloads = {}
        for name in sorted(os.listdir(path)):
            if name.startswith("BENCH_") and name.endswith(".json"):
                payload = _read_payload(os.path.join(path, name))
                payloads[str(payload.get("table", name))] = payload
        if not payloads:
            raise ConfigurationError(f"no BENCH_*.json files in {path!r}")
        return payloads
    payload = _read_payload(path)
    return {str(payload.get("table", os.path.basename(path))): payload}


def _read_payload(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as fh:
            payload = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigurationError(f"cannot read bench snapshot {path!r}: {exc}")
    if not isinstance(payload, dict):
        raise ConfigurationError(f"{path!r} is not a bench payload object")
    return payload


def diff_paths(
    old_path: str,
    new_path: str,
    *,
    time_tol: float = DEFAULT_TIME_TOL,
    cut_tol: float = DEFAULT_CUT_TOL,
    min_time: float = DEFAULT_MIN_TIME,
) -> DiffReport:
    """Diff two snapshot files or directories (matched per table)."""
    old_tables = load_payloads(old_path)
    new_tables = load_payloads(new_path)
    report = DiffReport()
    for table in old_tables:
        if table not in new_tables:
            report.missing_tables.append(table)
    for table in new_tables:
        if table not in old_tables:
            report.added_tables.append(table)
    for table, old_payload in old_tables.items():
        if table in new_tables:
            diff_payloads(
                old_payload,
                new_tables[table],
                time_tol=time_tol,
                cut_tol=cut_tol,
                min_time=min_time,
                report=report,
            )
    return report


def format_report(report: DiffReport, *, verbose: bool = False) -> str:
    """Human-readable rendering of a :class:`DiffReport`."""
    lines = []
    compared = len(report.cells)
    regressions = report.regressions
    lines.append(
        f"compared {compared} cells: "
        f"{len(regressions)} regression(s)"
    )
    for cell in regressions:
        lines.append(
            f"  REGRESS {cell.table}/{cell.matrix}/{cell.scheme} "
            f"{cell.column} [{cell.kind}]: {cell.old:g} -> {cell.new:g} "
            f"(x{cell.ratio:.2f})"
        )
    if verbose:
        for cell in report.cells:
            if not cell.regressed:
                lines.append(
                    f"  ok      {cell.table}/{cell.matrix}/{cell.scheme} "
                    f"{cell.column} [{cell.kind}]: {cell.old:g} -> "
                    f"{cell.new:g} (x{cell.ratio:.2f})"
                )
    for table in report.missing_tables:
        lines.append(f"  note: table {table} present only in OLD")
    for table in report.added_tables:
        lines.append(f"  note: table {table} present only in NEW")
    for table, matrix, scheme in report.missing_rows:
        lines.append(f"  note: row {table}/{matrix}/{scheme} only in OLD")
    for table, matrix, scheme in report.added_rows:
        lines.append(f"  note: row {table}/{matrix}/{scheme} only in NEW")
    return "\n".join(lines)


def format_markdown(report: DiffReport, *, verbose: bool = False) -> str:
    """GitHub-flavored markdown rendering of a :class:`DiffReport`.

    Designed to be appended to ``$GITHUB_STEP_SUMMARY``: a status
    headline, a table of the regressed cells (all compared cells with
    ``verbose``), and the row/table mismatch notes as a bullet list.
    """
    regressions = report.regressions
    status = "✅ no regressions" if report.ok else (
        f"❌ {len(regressions)} regression(s)"
    )
    lines = [
        "### Bench diff",
        "",
        f"{status} across {len(report.cells)} compared cells.",
    ]
    listed = report.cells if verbose else regressions
    if listed:
        lines += [
            "",
            "| status | table | matrix | scheme | column | kind | old | new | ratio |",
            "| --- | --- | --- | --- | --- | --- | ---: | ---: | ---: |",
        ]
        for cell in listed:
            flag = "REGRESS" if cell.regressed else "ok"
            lines.append(
                f"| {flag} | {cell.table} | {cell.matrix} | {cell.scheme} "
                f"| {cell.column} | {cell.kind} | {cell.old:g} "
                f"| {cell.new:g} | x{cell.ratio:.2f} |"
            )
    notes = [
        *(f"table `{t}` present only in OLD" for t in report.missing_tables),
        *(f"table `{t}` present only in NEW" for t in report.added_tables),
        *(
            f"row `{t}/{m}/{s}` only in OLD"
            for t, m, s in report.missing_rows
        ),
        *(f"row `{t}/{m}/{s}` only in NEW" for t, m, s in report.added_rows),
    ]
    if notes:
        lines.append("")
        lines += [f"- {note}" for note in notes]
    return "\n".join(lines)
