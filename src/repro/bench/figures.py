"""Drivers regenerating Figures 1–5 of the paper.

Figures 1–3 plot, per matrix, the ratio of our multilevel algorithm's
edge-cut to a baseline's (MSB, MSB-KL, Chaco-ML) for three part counts;
bars under 1.0 mean the multilevel algorithm wins.  Figure 4 plots the
baselines' 256-way runtimes relative to ours (bars above 1.0 mean we are
faster by that factor).  Figure 5 plots ordering opcount ratios MMD/MLND
and SND/MLND (bars above 1.0 mean MLND produces the better ordering).

Part counts are scaled with the graphs: the suite graphs are ~1/10 the
paper's orders, so the paper's (64, 128, 256) becomes (16, 32, 64) by
default — the vertices-per-part ratio, which is what drives the curves,
is preserved.  Pass ``nparts_list`` explicitly to override.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench.harness import Row, bench_options, bench_seed
from repro.core import partition
from repro.matrices import suite
from repro.ordering import factor_stats, mlnd_ordering, mmd_ordering, snd_ordering
from repro.spectral.chaco_ml import chaco_ml_partition
from repro.spectral.msb import msb_partition
from repro.utils.errors import ConfigurationError

#: Paper part counts (64, 128, 256) scaled to the suite's graph orders.
DEFAULT_NPARTS = (16, 32, 64)


def _ml_cut(graph, nparts, seed, options):
    result = partition(graph, nparts, options, np.random.default_rng(seed))
    return result


def cut_ratio_rows(
    matrices,
    baseline: str,
    *,
    nparts_list=DEFAULT_NPARTS,
    scale=1.0,
    seed=None,
) -> list[Row]:
    """Figures 1–3: edge-cut ratios ML / baseline per matrix and k.

    ``baseline`` is ``"msb"``, ``"msb-kl"`` or ``"chaco-ml"``.
    """
    seed = bench_seed() if seed is None else seed
    options = bench_options()
    runners = {
        "msb": lambda g, k, s: msb_partition(
            g, k, options, np.random.default_rng(s)
        ),
        "msb-kl": lambda g, k, s: msb_partition(
            g, k, options, np.random.default_rng(s), kl_refine=True
        ),
        "chaco-ml": lambda g, k, s: chaco_ml_partition(
            g, k, options, np.random.default_rng(s)
        ),
    }
    if baseline not in runners:
        raise ConfigurationError(f"unknown baseline {baseline!r}; one of {sorted(runners)}")
    run_baseline = runners[baseline]

    rows = []
    for name in matrices:
        graph = suite.load(name, scale=scale, seed=0)
        values = {}
        for nparts in nparts_list:
            t0 = time.perf_counter()
            ours = _ml_cut(graph, nparts, seed, options)
            t_ours = time.perf_counter() - t0
            t0 = time.perf_counter()
            theirs = run_baseline(graph, nparts, seed)
            t_theirs = time.perf_counter() - t0
            values[f"ratio_{nparts}"] = (
                ours.cut / theirs.cut if theirs.cut else float("nan")
            )
            values[f"ml_cut_{nparts}"] = ours.cut
            values[f"base_cut_{nparts}"] = theirs.cut
            values[f"ml_time_{nparts}"] = t_ours
            values[f"base_time_{nparts}"] = t_theirs
        rows.append(Row(matrix=name, scheme=baseline, values=values))
    return rows


def runtime_rows(
    matrices,
    *,
    nparts=64,
    scale=1.0,
    seed=None,
) -> list[Row]:
    """Figure 4: baseline runtimes relative to the multilevel algorithm.

    ``nparts=64`` is the scaled analogue of the paper's 256-way runs.
    """
    seed = bench_seed() if seed is None else seed
    options = bench_options()
    rows = []
    for name in matrices:
        graph = suite.load(name, scale=scale, seed=0)
        t0 = time.perf_counter()
        partition(graph, nparts, options, np.random.default_rng(seed))
        t_ml = time.perf_counter() - t0

        t0 = time.perf_counter()
        chaco_ml_partition(graph, nparts, options, np.random.default_rng(seed))
        t_chaco = time.perf_counter() - t0

        t0 = time.perf_counter()
        msb_partition(graph, nparts, options, np.random.default_rng(seed))
        t_msb = time.perf_counter() - t0

        t0 = time.perf_counter()
        msb_partition(
            graph, nparts, options, np.random.default_rng(seed), kl_refine=True
        )
        t_msbkl = time.perf_counter() - t0

        rows.append(
            Row(
                matrix=name,
                scheme="runtime",
                values={
                    "ml_seconds": t_ml,
                    "chaco_ml_rel": t_chaco / t_ml,
                    "msb_rel": t_msb / t_ml,
                    "msb_kl_rel": t_msbkl / t_ml,
                },
            )
        )
    return rows


def ordering_rows(matrices, *, scale=1.0, seed=None) -> list[Row]:
    """Figure 5: opcount of MMD and SND relative to MLND per matrix.

    Also reports the concurrency metrics (§4.3's second argument for MLND):
    elimination-tree available parallelism for each ordering.
    """
    seed = bench_seed() if seed is None else seed
    options = bench_options()
    rows = []
    for name in matrices:
        graph = suite.load(name, scale=scale, seed=0)
        rng = np.random.default_rng(seed)

        t0 = time.perf_counter()
        nd = mlnd_ordering(graph, options, rng)
        t_nd = time.perf_counter() - t0
        s_nd = factor_stats(graph, nd.perm)

        t0 = time.perf_counter()
        md = mmd_ordering(graph)
        t_md = time.perf_counter() - t0
        s_md = factor_stats(graph, md.perm)

        t0 = time.perf_counter()
        sd = snd_ordering(graph, options, np.random.default_rng(seed))
        t_sd = time.perf_counter() - t0
        s_sd = factor_stats(graph, sd.perm)

        rows.append(
            Row(
                matrix=name,
                scheme="ordering",
                values={
                    "mlnd_ops": s_nd.opcount,
                    "mmd_over_mlnd": s_md.opcount / s_nd.opcount,
                    "snd_over_mlnd": s_sd.opcount / s_nd.opcount,
                    "mlnd_parallelism": s_nd.available_parallelism,
                    "mmd_parallelism": s_md.available_parallelism,
                    "snd_parallelism": s_sd.available_parallelism,
                    "mlnd_seconds": t_nd,
                    "mmd_seconds": t_md,
                    "snd_seconds": t_sd,
                },
            )
        )
    return rows
