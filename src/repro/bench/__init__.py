"""Benchmark drivers that regenerate the paper's tables and figures.

See :mod:`repro.bench.tables` (Tables 2–4), :mod:`repro.bench.figures`
(Figures 1–5), :mod:`repro.bench.harness` (records, env knobs,
formatting) and :mod:`repro.bench.regress` (the ``repro bench-diff``
snapshot comparison).  The pytest entry points live in the repository's
``benchmarks/`` directory and call these drivers.
"""

from repro.bench.harness import (
    Row,
    bench_matrices,
    bench_options,
    bench_scale,
    bench_seed,
    format_table,
    pivot,
)
from repro.bench.regress import diff_paths, diff_payloads, format_report
from repro.bench.tables import table2_rows, table3_rows, table4_rows
from repro.bench.figures import cut_ratio_rows, ordering_rows, runtime_rows

__all__ = [
    "Row",
    "bench_scale",
    "bench_seed",
    "bench_matrices",
    "bench_options",
    "format_table",
    "pivot",
    "diff_paths",
    "diff_payloads",
    "format_report",
    "table2_rows",
    "table3_rows",
    "table4_rows",
    "cut_ratio_rows",
    "runtime_rows",
    "ordering_rows",
]
