"""Drivers regenerating Tables 2, 3 and 4 of the paper.

Each driver sweeps one phase's alternatives with the paper's choices fixed
for the other two phases, on (analogues of) the paper's 12-matrix table
set, and reports the same columns:

* Table 2 — matching schemes RM/HEM/LEM/HCM with GGGP + BKLGR fixed;
  columns ``32EC`` (32-way edge-cut), ``CTime``, ``UTime``.
* Table 3 — the same sweep with **no refinement** (``RefinePolicy.NONE``);
  column ``32EC``.  This isolates coarsening quality: how good is the
  projected initial partition by itself.
* Table 4 — refinement policies GR/KLR/BGR/BKLR/BKLGR with HEM + GGGP
  fixed; columns ``32EC``, ``RTime``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench.harness import Row, bench_deadline, bench_options, bench_seed
from repro.core import partition
from repro.core.options import InitialScheme, MatchingScheme, RefinePolicy
from repro.matrices import suite

MATCHING_SCHEMES = [
    MatchingScheme.RM,
    MatchingScheme.HEM,
    MatchingScheme.LEM,
    MatchingScheme.HCM,
]

REFINE_POLICIES = [
    RefinePolicy.GR,
    RefinePolicy.KLR,
    RefinePolicy.BGR,
    RefinePolicy.BKLR,
    RefinePolicy.BKLGR,
]


def run_kway(graph, nparts, options, seed):
    """One timed k-way partition; returns (cut, timers dict, wall seconds).

    Honours ``REPRO_BENCH_DEADLINE``: when set, every benchmark partition
    runs under that wall-clock budget (degrading rather than overrunning).
    """
    deadline = bench_deadline()
    if deadline is not None and options.deadline is None:
        options = options.with_(deadline=deadline)
    start = time.perf_counter()
    result = partition(graph, nparts, options, np.random.default_rng(seed))
    wall = time.perf_counter() - start
    return result, wall


def table2_rows(matrices, *, nparts=32, scale=1.0, seed=None) -> list[Row]:
    """Table 2: matching-scheme sweep (GGGP + BKLGR fixed)."""
    seed = bench_seed() if seed is None else seed
    rows = []
    for name in matrices:
        graph = suite.load(name, scale=scale, seed=0)
        for scheme in MATCHING_SCHEMES:
            options = bench_options().with_(
                matching=scheme,
                initial=InitialScheme.GGGP,
                refinement=RefinePolicy.BKLGR,
            )
            result, wall = run_kway(graph, nparts, options, seed)
            timers = result.timers
            ctime = timers.get("CTime", 0.0)
            utime = (
                timers.get("ITime", 0.0)
                + timers.get("RTime", 0.0)
                + timers.get("PTime", 0.0)
            )
            rows.append(
                Row(
                    matrix=name,
                    scheme=scheme.name,
                    values={
                        "32EC": result.cut,
                        "CTime": ctime,
                        "UTime": utime,
                        "wall": wall,
                        "balance": result.balance(graph),
                    },
                )
            )
    return rows


def table3_rows(matrices, *, nparts=32, scale=1.0, seed=None) -> list[Row]:
    """Table 3: matching-scheme sweep with refinement disabled."""
    seed = bench_seed() if seed is None else seed
    rows = []
    for name in matrices:
        graph = suite.load(name, scale=scale, seed=0)
        for scheme in MATCHING_SCHEMES:
            options = bench_options().with_(
                matching=scheme,
                initial=InitialScheme.GGGP,
                refinement=RefinePolicy.NONE,
            )
            result, wall = run_kway(graph, nparts, options, seed)
            rows.append(
                Row(
                    matrix=name,
                    scheme=scheme.name,
                    values={"32EC": result.cut, "wall": wall},
                )
            )
    return rows


def table4_rows(matrices, *, nparts=32, scale=1.0, seed=None) -> list[Row]:
    """Table 4: refinement-policy sweep (HEM + GGGP fixed).

    Runs with ``eager_gains=True`` — the 1995 implementation's cost model,
    in which moves eagerly maintain all neighbours' table gains.  That is
    the regime whose costs Table 4 compares (the boundary policies exist
    to avoid the eager bookkeeping); the library's default lazy-gain FM
    deliberately erases most of that gap (see EXPERIMENTS.md).
    """
    seed = bench_seed() if seed is None else seed
    rows = []
    for name in matrices:
        graph = suite.load(name, scale=scale, seed=0)
        for policy in REFINE_POLICIES:
            options = bench_options().with_(
                matching=MatchingScheme.HEM,
                initial=InitialScheme.GGGP,
                refinement=policy,
                eager_gains=True,
            )
            result, wall = run_kway(graph, nparts, options, seed)
            rows.append(
                Row(
                    matrix=name,
                    scheme=policy.name,
                    values={
                        "32EC": result.cut,
                        "RTime": result.timers.get("RTime", 0.0),
                        "wall": wall,
                    },
                )
            )
    return rows
