"""VLSI circuit-style graph generators (S38584.1 and MEMPLUS analogues).

Circuit graphs differ from FE meshes in exactly the ways the paper calls
out when motivating HCM: they contain highly connected clusters (standard
cells, register banks) joined by sparser global nets, their degree
distribution is skewed (clock/bus nets touch many gates), and they have no
geometric embedding.  Neither generator attaches coordinates, so the
geometric baseline correctly refuses these graphs — mirroring the paper's
"often the geometric information is not available" argument.
"""

from __future__ import annotations

import numpy as np

from repro.graph.build import from_edge_list
from repro.graph.components import largest_component
from repro.graph.generators_util import simple_edges
from repro.utils.rng import as_generator


def sequential_circuit(n: int = 5500, seed: int = 0, *, module_size: int = 12):
    """Sequential-circuit graph (S38584.1 analogue).

    Gates are grouped into modules; within a module connectivity is dense
    (near-clique on small random subsets, like a synthesised cell cluster),
    modules chain locally (datapath), and a skewed number of global nets
    (clock, reset, scan chains) attach hub vertices to many gates.
    """
    rng = as_generator(seed)
    n_modules = max(2, n // module_size)
    module = rng.integers(n_modules, size=n)
    edges = []

    # Intra-module: each vertex links to ~3 random module-mates.
    for v in range(n):
        mates = np.flatnonzero(module == module[v])
        if len(mates) > 1:
            picks = mates[rng.integers(len(mates), size=min(3, len(mates) - 1))]
            for u in picks:
                if u != v:
                    edges.append((v, int(u)))

    # Module chaining: consecutive modules share a handful of signals.
    reps = [np.flatnonzero(module == m) for m in range(n_modules)]
    for m in range(n_modules - 1):
        a, b = reps[m], reps[m + 1]
        if len(a) and len(b):
            k = min(4, len(a), len(b))
            src = a[rng.integers(len(a), size=k)]
            dst = b[rng.integers(len(b), size=k)]
            edges.extend(zip(src.tolist(), dst.tolist()))

    # Global nets: hubs with Pareto-skewed fanout.
    n_hubs = max(2, n // 500)
    hubs = rng.integers(n, size=n_hubs)
    for hub in hubs:
        fanout = int(min(n - 1, 10 + rng.pareto(1.1) * 40))
        sinks = rng.integers(n, size=fanout)
        for s in sinks:
            if s != hub:
                edges.append((int(hub), int(s)))

    graph = from_edge_list(n, simple_edges(np.asarray(edges, dtype=np.int64)), validate=False)
    sub, _ = largest_component(graph)
    return sub


def memory_circuit(n: int = 4200, seed: int = 0):
    """Memory-circuit graph (MEMPLUS analogue).

    A memory array is a grid of cells wired to shared word lines (rows) and
    bit lines (columns): the line drivers are very high-degree vertices
    while cells have degree ≈ 3–4.  MEMPLUS's hub-heavy structure is what
    makes it hard for every partitioner in Figure 1 — cut any way you like,
    some bus crosses the cut.
    """
    rng = as_generator(seed)
    # Choose array dimensions: rows × cols cells + row drivers + col drivers
    # + a periphery of logic ≈ n.
    side = int(np.sqrt(n * 0.82))
    rows = side
    cols = side
    n_cells = rows * cols
    row_base = n_cells
    col_base = n_cells + rows
    periph_base = col_base + cols
    total = periph_base + max(8, n // 20)

    cell = np.arange(n_cells)
    r = cell // cols
    c = cell % cols
    edges = [
        np.column_stack([cell, row_base + r]),  # word lines
        np.column_stack([cell, col_base + c]),  # bit lines
    ]
    # Neighbour coupling inside the array (layout parasitics).
    grid = cell.reshape(rows, cols)
    edges.append(np.column_stack([grid[:, :-1].ravel(), grid[:, 1:].ravel()]))
    edges.append(np.column_stack([grid[:-1, :].ravel(), grid[1:, :].ravel()]))
    # Periphery logic: random sparse graph attached to the drivers.
    n_periph = total - periph_base
    periph = periph_base + np.arange(n_periph)
    drivers = np.concatenate(
        [row_base + np.arange(rows), col_base + np.arange(cols)]
    )
    attach = drivers[rng.integers(len(drivers), size=n_periph * 2)]
    edges.append(
        np.column_stack([np.repeat(periph, 2), attach])
    )
    mix = np.column_stack(
        [periph[rng.integers(n_periph, size=n_periph * 2)],
         periph[rng.integers(n_periph, size=n_periph * 2)]]
    )
    edges.append(mix[mix[:, 0] != mix[:, 1]])

    graph = from_edge_list(total, simple_edges(np.concatenate(edges)), validate=False)
    sub, _ = largest_component(graph)
    return sub
