"""2-D finite-element-style graph generators.

Stand-ins for the paper's 2-D matrices:

* :func:`grid2d` — structured 5-/9-point grids, the canonical FE pattern;
* :func:`graded_lshape` — the "graded L-shape pattern" of LSHP3466: an
  L-shaped domain whose mesh is geometrically graded toward the re-entrant
  corner (where the solution of the underlying PDE is singular);
* :func:`airfoil` — an unstructured triangulation analogue of 4ELT: points
  concentrated around an airfoil-shaped body, Delaunay-triangulated (SciPy
  when available; a jittered-grid triangulation otherwise, which preserves
  the planar bounded-degree structure that matters to the partitioner).

All generators attach vertex coordinates so the geometric baseline can run
on them, and all return connected graphs.
"""

from __future__ import annotations

import numpy as np

from repro.graph.build import from_edge_list
from repro.graph.components import largest_component
from repro.graph.generators_util import simple_edges
from repro.utils.errors import ConfigurationError
from repro.utils.rng import as_generator


def grid2d(nx: int, ny: int, *, nine_point: bool = False):
    """``nx × ny`` structured grid (5-point, or 9-point with diagonals)."""
    if nx < 1 or ny < 1:
        raise ConfigurationError("grid dimensions must be positive")
    idx = np.arange(nx * ny).reshape(ny, nx)
    edges = []
    edges.append(np.column_stack([idx[:, :-1].ravel(), idx[:, 1:].ravel()]))
    edges.append(np.column_stack([idx[:-1, :].ravel(), idx[1:, :].ravel()]))
    if nine_point:
        edges.append(np.column_stack([idx[:-1, :-1].ravel(), idx[1:, 1:].ravel()]))
        edges.append(np.column_stack([idx[:-1, 1:].ravel(), idx[1:, :-1].ravel()]))
    graph = from_edge_list(nx * ny, np.concatenate(edges), validate=False)
    ys, xs = np.divmod(np.arange(nx * ny), nx)
    graph.coords = np.column_stack([xs.astype(float), ys.astype(float)])
    return graph


def graded_lshape(n_target: int = 3400, *, grading: float = 0.15):
    """Graded L-shape mesh (LSHP3466 analogue).

    Builds a ``(2s+1) × (2s+1)`` grid, removes the open upper-right
    quadrant to form the L, and grades the *coordinates* geometrically
    toward the re-entrant corner.  Connectivity is the 5-point stencil of
    the surviving nodes; ``s`` is chosen so the vertex count approximates
    ``n_target`` (the L keeps ~3/4 of the square).
    """
    side = int(round(np.sqrt(n_target / 0.75)))
    side = max(side | 1, 5)  # odd, so the corner lands on a node
    half = side // 2
    keep = np.ones((side, side), dtype=bool)
    keep[half + 1 :, half + 1 :] = False  # open quadrant removed
    ids = np.full((side, side), -1, dtype=np.int64)
    ids[keep] = np.arange(int(keep.sum()))

    edges = []
    for dy, dx in ((0, 1), (1, 0)):
        a = ids[: side - dy, : side - dx]
        b = ids[dy:, dx:]
        mask = (a >= 0) & (b >= 0)
        edges.append(np.column_stack([a[mask], b[mask]]))
    graph = from_edge_list(int(keep.sum()), np.concatenate(edges), validate=False)

    # Graded coordinates: spacing shrinks geometrically toward the corner.
    t = np.linspace(-1.0, 1.0, side)
    graded = np.sign(t) * np.abs(t) ** (1.0 + grading)
    yy, xx = np.meshgrid(graded, graded, indexing="ij")
    graph.coords = np.column_stack([xx[keep], yy[keep]])
    return graph


def airfoil(n: int = 4000, seed: int = 0):
    """Unstructured 2-D triangulation around an airfoil (4ELT analogue).

    Point density falls off with distance from an elliptic "airfoil", so
    element sizes vary by orders of magnitude exactly as in 4ELT.  The
    points are Delaunay-triangulated when SciPy is importable; otherwise a
    jittered structured triangulation of the same density field is used.
    """
    rng = as_generator(seed)
    # Rejection-sample points with density ~ 1/(r + eps)² around the
    # airfoil surface (a thin ellipse at the origin), iterating until we
    # have enough — the acceptance rate depends on the density field.
    collected = []
    count = 0
    while count < n:
        raw = rng.random((4 * n, 2)) * 2.0 - 1.0  # in [-1, 1]^2
        r = np.sqrt((raw[:, 0] / 0.5) ** 2 + (raw[:, 1] / 0.08) ** 2)
        accept = (rng.random(len(raw)) < 1.0 / (0.3 + r) ** 2) & (r > 1.0)
        pts = raw[accept]
        collected.append(pts)
        count += len(pts)
    pts = np.concatenate(collected)[:n]
    return _triangulate(pts, rng)


def _triangulate(pts: np.ndarray, rng):
    """Triangulate a 2-D point cloud into a mesh graph."""
    try:
        from scipy.spatial import Delaunay  # optional dependency

        tri = Delaunay(pts)
        simplices = tri.simplices
        edges = np.concatenate(
            [simplices[:, [0, 1]], simplices[:, [1, 2]], simplices[:, [0, 2]]]
        )
    except ImportError:  # pragma: no cover - exercised only without scipy
        edges = _knn_edges(pts, k=6)
    graph = from_edge_list(len(pts), simple_edges(edges), validate=False)
    graph.coords = pts.copy()
    sub, vmap = largest_component(graph)
    return sub


def _knn_edges(pts: np.ndarray, k: int) -> np.ndarray:
    """k-nearest-neighbour edges (fallback triangulation substitute)."""
    n = len(pts)
    edges = []
    # Chunked O(n²) distances — acceptable for the sizes we generate.
    for start in range(0, n, 512):
        block = pts[start : start + 512]
        d2 = ((block[:, None, :] - pts[None, :, :]) ** 2).sum(axis=2)
        for i in range(len(block)):
            d2[i, start + i] = np.inf
        nearest = np.argsort(d2, axis=1)[:, :k]
        src = np.repeat(np.arange(start, start + len(block)), k)
        edges.append(np.column_stack([src, nearest.ravel()]))
    return np.concatenate(edges)
