"""The benchmark suite registry: paper matrix names → synthetic analogues.

Every matrix in the paper's Table 1 has an entry.  Default orders are
scaled to roughly **1/8 – 1/20** of the originals so pure-Python runs finish
in seconds per experiment (the paper's C code on a 200 MHz R4400 and our
NumPy on a modern core differ by enough that *relative* comparisons — which
is all the paper's tables assert — are preserved; see DESIGN.md §2).

Use :func:`load` to instantiate by name; graphs are cached per process so a
benchmark sweep generates each workload once.  ``scale`` multiplies the
default order for studies at other sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.matrices import circuits, highway, lp, mesh2d, mesh3d, power
from repro.utils.errors import UnknownWorkloadError


@dataclass(frozen=True)
class SuiteEntry:
    """One benchmark workload.

    Attributes
    ----------
    name:
        Paper matrix name (e.g. ``"BCSSTK31"``).
    short:
        Paper's short code used in the figures (e.g. ``"BC31"``).
    description:
        Table 1's description column.
    paper_order:
        Order of the original matrix (|V|), for the record.
    factory:
        ``factory(n, seed)`` returning a CSRGraph of about ``n`` vertices.
    default_order:
        Scaled-down default |V| used by the benchmarks.
    """

    name: str
    short: str
    description: str
    paper_order: int
    factory: Callable
    default_order: int


def _stiff(dofs, shape=(1.0, 1.0, 1.0)):
    def make(n, seed):
        return mesh3d.stiffness3d(max(24, n // dofs), dofs=dofs, seed=seed, shape=shape)

    return make


def _tet(elongation=(1.0, 1.0, 1.0)):
    def make(n, seed):
        return mesh3d.fe_tet3d(n, seed, elongation=elongation)

    return make


_ENTRIES = [
    SuiteEntry("BCSSTK28", "BC28", "Solid element model", 4410, _stiff(3), 1200),
    SuiteEntry("BCSSTK29", "BC29", "3D Stiffness matrix", 13992, _stiff(3), 1800),
    SuiteEntry("BCSSTK30", "BC30", "3D Stiffness matrix", 28294, _stiff(3), 3000),
    SuiteEntry("BCSSTK31", "BC31", "3D Stiffness matrix", 35588, _stiff(3), 3600),
    SuiteEntry("BCSSTK32", "BC32", "3D Stiffness matrix", 44609, _stiff(3), 4200),
    SuiteEntry("BCSSTK33", "BC33", "3D Stiffness matrix", 8738, _stiff(3), 1500),
    SuiteEntry(
        "BCSPWR10", "BSP10", "Eastern US power network", 5300,
        lambda n, seed: power.power_network(n, seed), 5300,
    ),
    SuiteEntry("BRACK2", "BRCK", "3D Finite element mesh", 62631,
               _tet((2.0, 1.0, 0.7)), 5000),
    SuiteEntry("CANT", "CANT", "3D Stiffness matrix", 54195,
               _stiff(6, (3.0, 1.0, 0.6)), 4800),
    SuiteEntry("COPTER2", "COPT", "3D Finite element mesh", 55476,
               _tet((3.0, 1.5, 0.5)), 5000),
    SuiteEntry("CYLINDER93", "CY93", "3D Stiffness matrix", 45594,
               _stiff(6, (1.0, 1.0, 2.5)), 4200),
    SuiteEntry("FINAN512", "FINC", "Linear programming", 74752,
               lambda n, seed: lp.financial_lp(n, seed), 6000),
    SuiteEntry("4ELT", "4ELT", "2D Finite element mesh", 15606,
               lambda n, seed: mesh2d.airfoil(n, seed), 4000),
    SuiteEntry("INPRO1", "INPR", "3D Stiffness matrix", 46949, _stiff(6), 4200),
    SuiteEntry("LHR71", "LHR", "3D Coefficient matrix", 70304,
               lambda n, seed: lp.process_matrix(n, seed), 5600),
    SuiteEntry("LSHP3466", "LS34", "Graded L-shape pattern", 3466,
               lambda n, seed: mesh2d.graded_lshape(n), 3466),
    SuiteEntry("MAP", "MAP", "Highway network", 267241,
               lambda n, seed: highway.highway_network(n, seed), 9000),
    SuiteEntry("MEMPLUS", "MEM", "Memory circuit", 17758,
               lambda n, seed: circuits.memory_circuit(n, seed), 4200),
    SuiteEntry("ROTOR", "ROTR", "3D Finite element mesh", 99617,
               _tet((4.0, 1.0, 1.0)), 6400),
    SuiteEntry("S38584.1", "S38", "Sequential circuit", 22143,
               lambda n, seed: circuits.sequential_circuit(n, seed), 4600),
    SuiteEntry("SHELL93", "SHEL", "3D Stiffness matrix", 181200,
               _stiff(6, (2.0, 2.0, 0.3)), 6600),
    SuiteEntry("SHYY161", "SHYY", "CFD/Navier-Stokes", 76480,
               lambda n, seed: mesh2d.grid2d(
                   int(round((n * 1.6) ** 0.5)), int(round((n / 1.6) ** 0.5)),
                   nine_point=True), 5800),
    SuiteEntry("TROLL", "TROL", "3D Stiffness matrix", 213453,
               _stiff(6, (1.5, 1.5, 1.0)), 7200),
    SuiteEntry("WAVE", "WAVE", "3D Finite element mesh", 156317,
               _tet((1.5, 1.5, 1.0)), 6800),
]

#: Registry keyed by paper matrix name.
SUITE: dict[str, SuiteEntry] = {e.name: e for e in _ENTRIES}
_SHORT = {e.short: e for e in _ENTRIES}
_CACHE: dict[tuple, object] = {}

#: The 12 matrices used in Tables 2–4.
TABLE_MATRICES = [
    "BCSSTK31", "BCSSTK32", "BRACK2", "CANT", "COPTER2", "CYLINDER93",
    "4ELT", "INPRO1", "ROTOR", "SHELL93", "TROLL", "WAVE",
]

#: The 16 matrices plotted in Figures 1–4.
FIGURE_MATRICES = [
    "BCSSTK30", "BCSSTK32", "BRACK2", "CANT", "COPTER2", "CYLINDER93",
    "FINAN512", "LHR71", "MAP", "MEMPLUS", "ROTOR", "S38584.1",
    "SHELL93", "SHYY161", "TROLL", "WAVE",
]

#: The 18 matrices of Figure 5, in the paper's increasing-order display.
ORDERING_MATRICES = [
    "LSHP3466", "BCSSTK28", "BCSPWR10", "BCSSTK33", "BCSSTK29", "4ELT",
    "BCSSTK30", "BCSSTK31", "BCSSTK32", "CYLINDER93", "INPRO1", "CANT",
    "COPTER2", "BRACK2", "ROTOR", "WAVE", "SHELL93", "TROLL",
]


def suite_names() -> list[str]:
    """All registered matrix names, in Table 1 order."""
    return [e.name for e in _ENTRIES]


def load(name: str, *, scale: float = 1.0, seed: int = 0, cache: bool = True):
    """Instantiate the synthetic analogue of matrix ``name``.

    ``name`` may be a full name (``"BCSSTK31"``) or the short figure code
    (``"BC31"``).  ``scale`` multiplies the default order.  Instances are
    cached by ``(name, scale, seed)``.
    """
    entry = SUITE.get(name) or _SHORT.get(name)
    if entry is None:
        raise UnknownWorkloadError(
            f"unknown suite matrix {name!r}; known: {', '.join(suite_names())}"
        )
    key = (entry.name, scale, seed)
    if cache and key in _CACHE:
        return _CACHE[key]
    n = max(16, int(entry.default_order * scale))
    graph = entry.factory(n, seed)
    if cache:
        _CACHE[key] = graph
    return graph
