"""Power-network generator (BCSPWR10 analogue).

Power transmission grids are near-trees: average degree ≈ 1.5–3, long
chains, a few meshed loops around load centres.  BCSPWR10 (Eastern US) has
5300 vertices and only ~8300 off-diagonal nonzeros ≈ 4150 edges — degree
1.6.  Such graphs are the stress case for matching-based coarsening
(maximal matchings on trees leave many vertices unmatched) and the reason
the paper's nested-dissection comparison calls out BCSPWR10 as the one
matrix where every nested-dissection scheme does poorly.

The generator grows a random geometric spanning tree over clustered sites
(preferring short connections, as real grids do) and closes a small
fraction of short loops.
"""

from __future__ import annotations

import numpy as np

from repro.graph.build import from_edge_list
from repro.graph.generators_util import simple_edges
from repro.utils.rng import as_generator


def power_network(n: int = 5300, seed: int = 0, *, loop_fraction: float = 0.18):
    """Generate an ``n``-vertex power-grid-like graph.

    Parameters
    ----------
    loop_fraction:
        Extra (loop-closing) edges as a fraction of ``n``; 0.18 reproduces
        BCSPWR10's edge/vertex ratio of ≈ 1.56.
    """
    rng = as_generator(seed)
    # Clustered sites: cities with satellite substations.
    n_centers = max(4, n // 150)
    centers = rng.random((n_centers, 2)) * 10.0
    assign = rng.integers(n_centers, size=n)
    pts = centers[assign] + rng.normal(scale=0.45, size=(n, 2))

    # Spanning structure: connect each vertex (in random order) to the
    # nearest already-connected vertex among a random sample — an O(n·s)
    # approximation of the Euclidean MST that keeps edges short.
    order = rng.permutation(n)
    connected = [order[0]]
    edges = []
    sample_size = 24
    connected_arr = np.empty(n, dtype=np.int64)
    connected_arr[0] = order[0]
    count = 1
    for v in order[1:]:
        if count <= sample_size:
            candidates = connected_arr[:count]
        else:
            candidates = connected_arr[rng.integers(count, size=sample_size)]
        d2 = ((pts[candidates] - pts[v]) ** 2).sum(axis=1)
        u = int(candidates[np.argmin(d2)])
        edges.append((int(v), u))
        connected_arr[count] = v
        count += 1

    # Loop closures between nearby vertices.
    n_loops = int(loop_fraction * n)
    a = rng.integers(n, size=n_loops * 4)
    b = rng.integers(n, size=n_loops * 4)
    d2 = ((pts[a] - pts[b]) ** 2).sum(axis=1)
    near = (a != b) & (d2 < 1.0)
    loops = np.column_stack([a[near], b[near]])[:n_loops]
    all_edges = np.concatenate([np.asarray(edges, dtype=np.int64), loops])

    graph = from_edge_list(n, simple_edges(all_edges), validate=False)
    graph.coords = pts
    return graph
