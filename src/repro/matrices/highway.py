"""Highway-network generator (MAP analogue).

Road networks are large, sparse, quasi-planar graphs of very low average
degree (MAP: 267k vertices, ~937k nonzeros ⇒ degree ≈ 3.5) with strong
community structure (cities joined by corridors).  The generator lays out
clustered points, triangulates locally, and thins the triangulation down to
road-like degree by keeping the shortest edges at each vertex.
"""

from __future__ import annotations

import numpy as np

from repro.graph.build import from_edge_list
from repro.graph.components import largest_component
from repro.graph.generators_util import simple_edges
from repro.utils.rng import as_generator


def highway_network(n: int = 8000, seed: int = 0, *, target_degree: float = 3.5):
    """Generate an ``n``-vertex quasi-planar road-network-like graph."""
    rng = as_generator(seed)
    n_cities = max(6, n // 400)
    cities = rng.random((n_cities, 2)) * 50.0
    weights = rng.pareto(1.2, size=n_cities) + 0.5
    weights /= weights.sum()
    assign = rng.choice(n_cities, size=n, p=weights)
    spread = rng.gamma(2.0, 0.8, size=n)[:, None]
    pts = cities[assign] + rng.normal(size=(n, 2)) * spread

    try:
        from scipy.spatial import Delaunay

        tri = Delaunay(pts)
        s = tri.simplices
        edges = np.concatenate([s[:, [0, 1]], s[:, [1, 2]], s[:, [0, 2]]])
    except ImportError:  # pragma: no cover
        from repro.matrices.mesh2d import _knn_edges

        edges = _knn_edges(pts, k=4)

    # Thin to road density: keep each vertex's shortest ⌈target_degree⌉
    # incident edges; an edge survives if either endpoint keeps it (so the
    # graph stays connected along corridors).
    lengths = ((pts[edges[:, 0]] - pts[edges[:, 1]]) ** 2).sum(axis=1)
    canon = np.sort(edges, axis=1)
    uniq, inverse = np.unique(canon, axis=0, return_index=True)
    lengths = lengths[inverse]
    keep_k = int(np.ceil(target_degree))
    keep = np.zeros(len(uniq), dtype=bool)
    order = np.argsort(lengths)
    degree_used = np.zeros(n, dtype=np.int64)
    for ei in order:
        u, v = uniq[ei]
        # Keep an edge when both endpoints still want more roads, or when
        # an endpoint would otherwise be stranded with no road at all.
        if (degree_used[u] < keep_k and degree_used[v] < keep_k) or (
            degree_used[u] == 0 or degree_used[v] == 0
        ):
            keep[ei] = True
            degree_used[u] += 1
            degree_used[v] += 1

    graph = from_edge_list(n, simple_edges(uniq[keep]), validate=False)
    graph.coords = pts
    sub, _ = largest_component(graph)
    return sub
