"""Linear-programming / process-matrix graph generators.

* :func:`financial_lp` — FINAN512 analogue.  FINAN512 is a multistage
  stochastic financial LP: its graph is a balanced scenario *tree* of
  dense blocks — each node of the tree is a clique-ish block of linking
  constraints, children couple to parents through shared variables.  The
  paper's intro uses exactly this class for "there is no geometry
  associated with the graph".
* :func:`process_matrix` — LHR71 analogue (light-hydrocarbon-recovery
  process simulation): a chain of processing-unit blocks, each internally
  dense and coupled to its neighbours through stream variables, plus a few
  recycle streams that jump back along the chain.
"""

from __future__ import annotations

import numpy as np

from repro.graph.build import from_edge_list
from repro.graph.generators_util import simple_edges
from repro.utils.rng import as_generator


def _dense_block_edges(members: np.ndarray, rng, inner_degree: int):
    """Sparse-random near-clique on ``members`` (~inner_degree per vertex)."""
    k = len(members)
    if k < 2:
        return np.empty((0, 2), dtype=np.int64)
    picks = min(inner_degree, k - 1)
    src = np.repeat(members, picks)
    dst = members[rng.integers(k, size=len(src))]
    mask = src != dst
    return np.column_stack([src[mask], dst[mask]])


def financial_lp(
    n: int = 7000,
    seed: int = 0,
    *,
    branching: int = 2,
    depth: int = 7,
    inner_degree: int = 6,
):
    """Scenario-tree LP graph (FINAN512 analogue).

    A complete ``branching``-ary tree of depth ``depth``; each tree node
    owns a block of ≈ ``n / #nodes`` vertices wired as a sparse near-clique,
    and each child block couples to its parent block through a band of
    shared variables.
    """
    rng = as_generator(seed)
    n_nodes = (branching ** (depth + 1) - 1) // (branching - 1) if branching > 1 else depth + 1
    block = max(4, n // n_nodes)
    total = n_nodes * block
    blocks = [np.arange(i * block, (i + 1) * block, dtype=np.int64) for i in range(n_nodes)]

    edges = [_dense_block_edges(b, rng, inner_degree) for b in blocks]
    for child in range(1, n_nodes):
        parent = (child - 1) // branching
        k = max(2, block // 4)
        src = blocks[child][rng.integers(block, size=k)]
        dst = blocks[parent][rng.integers(block, size=k)]
        edges.append(np.column_stack([src, dst]))
    graph = from_edge_list(total, simple_edges(np.concatenate(edges)), validate=False)
    from repro.graph.components import largest_component

    sub, _ = largest_component(graph)
    return sub


def process_matrix(
    n: int = 7000,
    seed: int = 0,
    *,
    n_units: int = 70,
    inner_degree: int = 10,
    recycles: int = 8,
):
    """Process-simulation graph (LHR71 analogue): a chain of dense units."""
    rng = as_generator(seed)
    block = max(6, n // n_units)
    total = n_units * block
    blocks = [np.arange(i * block, (i + 1) * block, dtype=np.int64) for i in range(n_units)]

    edges = [_dense_block_edges(b, rng, inner_degree) for b in blocks]
    for i in range(n_units - 1):  # stream couplings along the chain
        k = max(2, block // 5)
        src = blocks[i][rng.integers(block, size=k)]
        dst = blocks[i + 1][rng.integers(block, size=k)]
        edges.append(np.column_stack([src, dst]))
    for _ in range(recycles):  # recycle streams jump backwards
        i = int(rng.integers(2, n_units))
        j = int(rng.integers(0, i - 1))
        k = max(1, block // 8)
        src = blocks[i][rng.integers(block, size=k)]
        dst = blocks[j][rng.integers(block, size=k)]
        edges.append(np.column_stack([src, dst]))
    graph = from_edge_list(total, simple_edges(np.concatenate(edges)), validate=False)
    from repro.graph.components import largest_component

    sub, _ = largest_component(graph)
    return sub
