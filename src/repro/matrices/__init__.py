"""Synthetic workloads standing in for the paper's Table 1 matrices.

The paper evaluates on Harwell–Boeing-era matrices that are not freely
redistributable; this subpackage generates graphs of the same *classes*
(see DESIGN.md §2 for the substitution argument):

========================  ==============================================
paper matrix (class)      generator
========================  ==============================================
LSHP3466                  :func:`graded_lshape`
4ELT                      :func:`airfoil`
BCSSTK28–33, CANT, …      :func:`stiffness3d` (3-D multi-DOF stiffness)
BRACK2/COPTER2/ROTOR/…    :func:`fe_tet3d` (3-D FE tetrahedral meshes)
BCSPWR10                  :func:`power_network`
MAP                       :func:`highway_network`
MEMPLUS                   :func:`memory_circuit`
S38584.1                  :func:`sequential_circuit`
FINAN512, LHR71           :func:`financial_lp`, :func:`process_matrix`
========================  ==============================================

:mod:`repro.matrices.suite` holds the named registry used by the
benchmarks, with paper-matrix aliases and scaled-down default orders.
"""

from repro.matrices.circuits import memory_circuit, sequential_circuit
from repro.matrices.highway import highway_network
from repro.matrices.lp import financial_lp, process_matrix
from repro.matrices.mesh2d import airfoil, graded_lshape, grid2d
from repro.matrices.mesh3d import fe_tet3d, grid3d, stiffness3d
from repro.matrices.power import power_network
from repro.matrices.suite import SUITE, SuiteEntry, load, suite_names

__all__ = [
    "grid2d",
    "graded_lshape",
    "airfoil",
    "grid3d",
    "stiffness3d",
    "fe_tet3d",
    "power_network",
    "highway_network",
    "sequential_circuit",
    "memory_circuit",
    "financial_lp",
    "process_matrix",
    "SUITE",
    "SuiteEntry",
    "load",
    "suite_names",
]
