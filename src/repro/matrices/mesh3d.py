"""3-D finite-element-style graph generators.

Two families, matching the two 3-D classes in Table 1:

* :func:`grid3d` / :func:`fe_tet3d` — "3D Finite element mesh" graphs
  (BRACK2, COPTER2, ROTOR, WAVE): bounded-degree meshes over a volume;
* :func:`stiffness3d` — "3D Stiffness matrix" graphs (BCSSTK28–33, CANT,
  CYLINDER93, INPRO1, SHELL93, TROLL): each spatial node carries several
  degrees of freedom (3 displacements, possibly rotations) that couple
  densely with every DOF of adjacent nodes, which is why those matrices
  have 20–40 nonzeros per row.  We reproduce that by expanding each mesh
  node into a ``dofs``-clique and joining adjacent nodes' cliques
  completely.
"""

from __future__ import annotations

import numpy as np

from repro.graph.build import from_edge_list
from repro.graph.components import largest_component
from repro.graph.generators_util import simple_edges
from repro.utils.errors import ConfigurationError
from repro.utils.rng import as_generator


def grid3d(nx: int, ny: int, nz: int):
    """``nx × ny × nz`` structured 7-point grid with coordinates."""
    if min(nx, ny, nz) < 1:
        raise ConfigurationError("grid dimensions must be positive")
    idx = np.arange(nx * ny * nz).reshape(nz, ny, nx)
    edges = []
    edges.append(np.column_stack([idx[:, :, :-1].ravel(), idx[:, :, 1:].ravel()]))
    edges.append(np.column_stack([idx[:, :-1, :].ravel(), idx[:, 1:, :].ravel()]))
    edges.append(np.column_stack([idx[:-1, :, :].ravel(), idx[1:, :, :].ravel()]))
    graph = from_edge_list(nx * ny * nz, np.concatenate(edges), validate=False)
    z, rem = np.divmod(np.arange(nx * ny * nz), nx * ny)
    y, x = np.divmod(rem, nx)
    graph.coords = np.column_stack([x, y, z]).astype(float)
    return graph


def fe_tet3d(n: int = 6000, seed: int = 0, *, elongation=(1.0, 1.0, 1.0)):
    """Unstructured 3-D tetrahedral mesh graph (BRACK2/ROTOR/WAVE analogue).

    Random points in a (possibly elongated) box, Delaunay-tetrahedralised
    via SciPy when available (6-neighbour lattice jitter otherwise).
    ``elongation`` stretches the domain, mimicking rotor/bracket shapes
    whose partitions prefer cuts across the short axes.
    """
    rng = as_generator(seed)
    pts = rng.random((n, 3)) * np.asarray(elongation, dtype=float)
    try:
        from scipy.spatial import Delaunay

        tri = Delaunay(pts)
        s = tri.simplices
        edges = np.concatenate(
            [s[:, [0, 1]], s[:, [0, 2]], s[:, [0, 3]],
             s[:, [1, 2]], s[:, [1, 3]], s[:, [2, 3]]]
        )
    except ImportError:  # pragma: no cover
        side = max(2, int(round(n ** (1.0 / 3.0))))
        return grid3d(side, side, side)
    graph = from_edge_list(len(pts), simple_edges(edges), validate=False)
    graph.coords = pts
    sub, _ = largest_component(graph)
    return sub


def stiffness3d(
    n_nodes_target: int = 1500,
    dofs: int = 3,
    seed: int = 0,
    *,
    shape=(1.0, 1.0, 1.0),
):
    """3-D stiffness-matrix graph (BCSSTK/CANT/TROLL analogue).

    A tetrahedral node mesh is generated first; each node then expands into
    ``dofs`` vertices forming a clique, and adjacent nodes' DOF groups are
    joined completely.  The resulting graph has ``n_nodes_target × dofs``
    vertices and the 20–40 average degree characteristic of 3-D stiffness
    matrices, which is what makes HEM/HCM coarsening shine on them.
    """
    node_mesh = fe_tet3d(n_nodes_target, seed, elongation=shape)
    return expand_dofs(node_mesh, dofs)


def expand_dofs(node_graph, dofs: int):
    """Expand every vertex of ``node_graph`` into a ``dofs``-clique.

    DOF vertices of a node form a clique; every DOF of node ``u`` connects
    to every DOF of each neighbouring node ``v``.  Coordinates are copied
    per DOF so geometric methods still work.
    """
    if dofs < 1:
        raise ConfigurationError("dofs must be >= 1")
    n = node_graph.nvtxs
    base = np.arange(n, dtype=np.int64) * dofs
    edges = []
    # Intra-node cliques.
    for a in range(dofs):
        for b in range(a + 1, dofs):
            edges.append(np.column_stack([base + a, base + b]))
    # Inter-node complete bipartite couplings.
    node_edges = node_graph.edge_array()[:, :2]
    for a in range(dofs):
        for b in range(dofs):
            edges.append(
                np.column_stack([node_edges[:, 0] * dofs + a,
                                 node_edges[:, 1] * dofs + b])
            )
    graph = from_edge_list(n * dofs, simple_edges(np.concatenate(edges)), validate=False)
    if node_graph.coords is not None:
        graph.coords = np.repeat(node_graph.coords, dofs, axis=0)
    return graph
