"""Geometric partitioning baselines (§1 discussion).

The paper contrasts multilevel methods with coordinate-based partitioners:
"fast but often yield partitions that are worse than those obtained by
spectral methods … geometric graph partitioning algorithms have limited
applicability because often the geometric information is not available."
Both points are reproducible with the two classical geometric bisectors
here, which require ``graph.coords`` and raise when it is absent.
"""

from repro.geometric.coordinate import (
    coordinate_bisection,
    geometric_partition,
    inertial_bisection,
)

__all__ = [
    "coordinate_bisection",
    "inertial_bisection",
    "geometric_partition",
]
