"""Coordinate and inertial bisection.

* **Coordinate bisection**: split at the weighted median along the
  coordinate axis with the largest extent.  The cheapest partitioner there
  is; quality depends entirely on mesh anisotropy.
* **Inertial bisection**: split along the principal axis of the vertex
  point cloud (the eigenvector of the largest eigenvalue of the d×d
  inertia/covariance matrix), i.e. coordinate bisection in a rotated frame
  that follows the domain's actual shape.

Both need ``graph.coords`` and raise :class:`PartitionError` otherwise —
deliberately, since "often the geometric information is not available" is
the paper's argument for combinatorial methods.
"""

from __future__ import annotations

import numpy as np

from repro.core.initial import split_at_weighted_median
from repro.core.kway import partition as _kway_partition
from repro.core.multilevel import MultilevelResult
from repro.core.refine import PassStats
from repro.graph.partition import Bisection
from repro.utils.errors import PartitionError
from repro.utils.timing import PhaseTimer


def _require_coords(graph):
    if graph.coords is None:
        raise PartitionError(
            "geometric bisection needs vertex coordinates (graph.coords is None)"
        )
    return graph.coords


def coordinate_bisection(graph, target0=None) -> Bisection:
    """Bisect at the weighted median of the longest coordinate axis."""
    coords = _require_coords(graph)
    if graph.nvtxs < 2:
        raise PartitionError("cannot bisect a graph with fewer than 2 vertices")
    if target0 is None:
        target0 = graph.total_vwgt() // 2
    extents = coords.max(axis=0) - coords.min(axis=0)
    axis = int(np.argmax(extents))
    return split_at_weighted_median(graph, coords[:, axis], target0)


def inertial_bisection(graph, target0=None) -> Bisection:
    """Bisect along the principal axis of the vertex point cloud."""
    coords = _require_coords(graph)
    if graph.nvtxs < 2:
        raise PartitionError("cannot bisect a graph with fewer than 2 vertices")
    if target0 is None:
        target0 = graph.total_vwgt() // 2
    w = graph.vwgt.astype(np.float64)
    centroid = (coords * w[:, None]).sum(axis=0) / w.sum()
    centered = coords - centroid
    inertia = (centered * w[:, None]).T @ centered
    _, vecs = np.linalg.eigh(inertia)
    principal = vecs[:, -1]  # largest-variance direction
    return split_at_weighted_median(graph, centered @ principal, target0)


def geometric_partition(graph, nparts, options=None, rng=None, *, inertial=True):
    """k-way partition by recursive geometric bisection.

    Plugs the geometric bisector into the shared recursive-bisection
    driver, so results are directly comparable with the multilevel and
    spectral k-way partitions.
    """
    from repro.core.options import DEFAULT_OPTIONS

    options = options or DEFAULT_OPTIONS
    bisect_fn = inertial_bisection if inertial else coordinate_bisection

    def bisector(g, opts, child_rng, target0):
        timers = PhaseTimer()
        with timers.phase("ITime"):
            bisection = bisect_fn(g, target0)
        return MultilevelResult(
            bisection=bisection,
            timers=timers,
            nlevels=1,
            coarsest_nvtxs=g.nvtxs,
            initial_cut=bisection.cut,
            stats=PassStats(),
        )

    return _kway_partition(graph, nparts, options, rng, bisector=bisector)
