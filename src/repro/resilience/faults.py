"""Deterministic, seeded fault injection at pipeline phase boundaries.

Fallback code is the least-tested code in any system: it only runs when
something rare goes wrong.  This module makes the rare failures
*reproducible on demand* so every declared fallback chain can be driven by
a test (and by the ``REPRO_FAULTS`` CI leg) instead of waiting for a
pathological graph in production.

Fault sites
-----------
``lanczos``
    The Fiedler solver raises
    :class:`~repro.utils.errors.SpectralConvergenceError` (simulating
    Lanczos non-convergence / a NaN eigenvector) — exercises the
    SBP → GGGP → GGP fallback chain.
``matching``
    Coarsening sees a degenerate (empty) matching and stalls — exercises
    stall detection: partition the current level instead of looping.
``initial``
    The initial bisection comes back grossly unbalanced — exercises
    validation plus bounded retry-with-reseed.
``refine``
    A level's refinement-pass budget is exhausted — exercises the
    BKLR → BGR degradation.
``deadline``
    The deadline guard expires at the next checkpoint (only consulted when
    a deadline is configured) — exercises best-so-far recovery.
``worker_crash``
    A branch shipped to a pool worker dies mid-flight (the worker process
    exits hard, breaking the pool) — exercises the supervisor's
    pool-rebuild + retry ladder (:mod:`repro.resilience.supervisor`).
``worker_hang``
    A pool worker stops making progress — exercises the parent-side
    future timeout and the retry-then-sequential degradation.
``worker_slow``
    A pool worker is slowed (but finishes) — exercises timeout tuning
    without breaking the pool.

The ``worker_*`` sites are consulted in the *parent* process, at pool
submission time, so a fault spec stays deterministic regardless of how
the OS schedules the workers.  Unlike the phase sites they do not force
sequential execution — they exist precisely to exercise the parallel
path (see :func:`worker_faults_only`).

Spec grammar
------------
Clauses separated by ``;`` or ``,``::

    spec   := clause ((";" | ",") clause)*
    clause := site [":" count] ["@" prob]  |  "seed=" int
    site   := "lanczos" | "matching" | "initial" | "refine" | "deadline"
            | "worker_crash" | "worker_hang" | "worker_slow"
    count  := positive int | "*"            (times to fire; default 1)
    prob   := float in (0, 1]               (per-consultation; default 1)

Examples: ``"lanczos"`` (first Fiedler solve fails), ``"initial:2"``
(first two initial partitions invalid), ``"refine:*@0.5;seed=7"`` (each
level's refinement budget coin-flipped away, seeded).

Activation mirrors the sanitizer (:mod:`repro.analysis.sanitize`): the
``REPRO_FAULTS`` environment variable or ``MultilevelOptions.faults``;
:func:`fault_injector` returns a falsy null object when neither is set, so
the disabled path costs one truth test per site and **zero** framework
calls.  Each driver entry (``bisect``, ``partition``, an ordering) builds
one injector and threads it through its phases, so counted clauses fire
deterministically per run.
"""

from __future__ import annotations

import math
import os
import re

from repro.utils.errors import ConfigurationError
from repro.utils.rng import as_generator

__all__ = [
    "FAULT_SITES",
    "WORKER_FAULT_SITES",
    "FaultClause",
    "FaultPlan",
    "FaultInjector",
    "NullFaultInjector",
    "parse_fault_spec",
    "fault_injector",
    "faults_enabled",
    "worker_faults_only",
    "NULL",
]

#: Environment variable holding the ambient fault spec.
ENV_VAR = "REPRO_FAULTS"

#: The injectable sites: the in-process phase boundaries plus the
#: parent-side worker-supervision sites.
FAULT_SITES = (
    "lanczos",
    "matching",
    "initial",
    "refine",
    "deadline",
    "worker_crash",
    "worker_hang",
    "worker_slow",
)

#: The sites consulted by the branch supervisor in the parent process.
#: These do not carry per-branch process-local state, so a spec made of
#: worker sites only is compatible with process-parallel fan-out.
WORKER_FAULT_SITES = frozenset({"worker_crash", "worker_hang", "worker_slow"})

_CLAUSE_RE = re.compile(
    r"^(?P<site>[a-z_]+)(?::(?P<count>\*|\d+))?(?:@(?P<prob>[0-9.eE+-]+))?$"
)


class FaultClause:
    """One parsed clause: fire at ``site`` up to ``count`` times w.p. ``prob``."""

    __slots__ = ("site", "count", "prob")

    def __init__(self, site: str, count=1, prob: float = 1.0) -> None:
        self.site = site
        self.count = count  # None = unlimited
        self.prob = prob

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        count = "*" if self.count is None else self.count
        return f"FaultClause({self.site}:{count}@{self.prob})"


class FaultPlan:
    """A parsed fault spec: clauses keyed by site, plus the RNG seed."""

    __slots__ = ("clauses", "seed", "spec")

    def __init__(self, clauses: dict, seed: int, spec: str) -> None:
        self.clauses = clauses
        self.seed = seed
        self.spec = spec


def parse_fault_spec(spec: str) -> FaultPlan:
    """Parse a fault spec string; raise ``ConfigurationError`` when invalid."""
    clauses: dict[str, FaultClause] = {}
    seed = 0
    for raw in re.split(r"[;,]", spec):
        token = raw.strip().lower()
        if not token:
            continue
        if token.startswith("seed="):
            try:
                seed = int(token[len("seed="):])
            except ValueError:
                raise ConfigurationError(
                    f"invalid fault-spec seed clause {raw!r}"
                ) from None
            continue
        m = _CLAUSE_RE.match(token)
        if not m:
            raise ConfigurationError(
                f"invalid fault clause {raw!r}; expected site[:count][@prob] "
                f"with site in {FAULT_SITES}"
            )
        site = m.group("site")
        if site not in FAULT_SITES:
            raise ConfigurationError(
                f"unknown fault site {site!r}; valid sites: {', '.join(FAULT_SITES)}"
            )
        count_s = m.group("count")
        count = None if count_s == "*" else int(count_s) if count_s else 1
        if count is not None and count < 1:
            raise ConfigurationError(f"fault count must be >= 1 in {raw!r}")
        prob_s = m.group("prob")
        try:
            prob = float(prob_s) if prob_s else 1.0
        except ValueError:
            raise ConfigurationError(f"invalid fault probability in {raw!r}") from None
        if not (0.0 < prob <= 1.0):
            raise ConfigurationError(
                f"fault probability must be in (0, 1], got {prob} in {raw!r}"
            )
        if site in clauses:
            raise ConfigurationError(f"duplicate fault clause for site {site!r}")
        clauses[site] = FaultClause(site, count, prob)
    if not clauses:
        raise ConfigurationError(f"fault spec {spec!r} contains no fault clauses")
    return FaultPlan(clauses, seed, spec)


class FaultInjector:
    """Stateful, seeded injector consulted by the pipeline via :meth:`trip`.

    One injector is created per driver entry and threaded through its
    phases; counted clauses therefore fire a deterministic number of times
    per run, and probabilistic clauses draw from a generator seeded by the
    spec's ``seed=`` clause (default 0) — the same spec always injects the
    same faults.
    """

    enabled = True

    def __init__(self, plan: FaultPlan) -> None:
        if isinstance(plan, str):
            plan = parse_fault_spec(plan)
        self.plan = plan
        self._rng = as_generator(plan.seed)
        self._remaining = {
            site: (math.inf if c.count is None else c.count)
            for site, c in plan.clauses.items()
        }
        #: site → number of times :meth:`trip` was called.
        self.consulted: dict[str, int] = {}
        #: site → number of times the fault actually fired.
        self.fired: dict[str, int] = {}

    def __bool__(self) -> bool:
        return True

    def trip(self, site: str) -> bool:
        """Consult the injector at ``site``; True when the fault fires."""
        self.consulted[site] = self.consulted.get(site, 0) + 1
        clause = self.plan.clauses.get(site)
        if clause is None:
            return False
        if self._remaining[site] <= 0:
            return False
        if clause.prob < 1.0 and float(self._rng.random()) >= clause.prob:
            return False
        self._remaining[site] -= 1
        self.fired[site] = self.fired.get(site, 0) + 1
        return True


class NullFaultInjector:
    """Falsy stand-in used when fault injection is disabled.

    Mirrors :class:`FaultInjector`'s surface, but call sites guard with
    ``if faults and faults.trip(site):`` so the disabled path never even
    calls :meth:`trip`.
    """

    enabled = False
    plan = None

    def __bool__(self) -> bool:
        return False

    def trip(self, site: str) -> bool:
        return False


#: Shared null singleton handed out by :func:`fault_injector` when off.
NULL = NullFaultInjector()


def worker_faults_only(faults) -> bool:
    """True when ``faults`` does not require sequential execution.

    The phase sites (``lanczos`` … ``deadline``) consult injector state
    inside the recursion, which cannot be shared with pool workers, so
    any spec containing one forces the drivers sequential.  A falsy
    injector, or one whose clauses are all ``worker_*`` sites (consulted
    only in the parent, at submission time), is safe to combine with
    process-parallel fan-out.
    """
    if not faults:
        return True
    plan = getattr(faults, "plan", None)
    if plan is None:
        return False
    return all(site in WORKER_FAULT_SITES for site in plan.clauses)


def faults_enabled() -> str | None:
    """The ambient ``REPRO_FAULTS`` spec, or ``None`` when unset/empty."""
    raw = os.environ.get(ENV_VAR, "").strip()
    return raw or None


def fault_injector(options=None):
    """Build the injector selected by ``options`` and the environment.

    ``options.faults`` (any object with a ``faults`` attribute, normally a
    :class:`~repro.core.options.MultilevelOptions`) takes precedence over
    the ``REPRO_FAULTS`` environment variable.  Returns the falsy
    :data:`NULL` singleton when neither requests injection, so disabled
    call sites perform no framework calls at all.
    """
    spec = getattr(options, "faults", None) if options is not None else None
    if spec is None:
        spec = faults_enabled()
    if not spec:
        return NULL
    return FaultInjector(parse_fault_spec(spec))
