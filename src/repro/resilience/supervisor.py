"""Supervised branch runtime: timeouts, crash recovery, deadline slicing.

PR 5's process-parallel fan-out shipped recursion branches to a bare
``ProcessPoolExecutor``: a crashed worker surfaced as an unhandled
``BrokenProcessPool`` in the driver, a hung worker blocked ``partition`` /
``mlnd_ordering`` forever, and ``options.deadline`` was enforced only in
the parent process — branches in workers ran unbounded.
:class:`BranchSupervisor` replaces the raw pool + dispatch pair with a
fault-tolerant execution layer:

* **budget slicing** — every wait on a branch future is bounded by the
  smaller of ``options.worker_timeout`` (or ``REPRO_WORKER_TIMEOUT``) and
  the remaining :class:`~repro.resilience.deadline.DeadlineGuard` budget,
  enforced in the parent via ``future.result(timeout=...)``.  The global
  deadline therefore propagates to work the parent cannot see.
* **retry ladder** — on worker crash (``BrokenProcessPool``, a killed
  process) or timeout, the broken pool is torn down (terminate, shut
  down, join — never leaked), rebuilt, and every unfinished branch is
  resubmitted.  The branch's pre-seeded RNG stream is pickled fresh from
  the parent's pristine copy on every submission, so a retry is
  *reseeded-but-deterministic*: bit-identical to what the first attempt
  would have produced.
* **degradation order** — after ``options.worker_retries`` failed
  attempts (or once the deadline guard expires), the branch is demoted to
  in-process sequential execution in the parent, under a deadline guard
  built from the remaining budget — the same code path as ``workers=1``,
  so the result is still bit-identical.  Drivers never hang and never
  observe a ``BrokenProcessPool``.

Every supervision decision is recorded twice: as a ``retry`` /
``degradation`` event (phase ``"worker"``) in the run's
:class:`~repro.resilience.report.ResilienceReport`, and as a ``worker.*``
tracer event on the driver's span (``worker.crash``, ``worker.timeout``,
``worker.retry``, ``worker.degrade``, ``worker.rebuild``,
``worker.fault``), which ``repro trace`` rolls up into the profile.

The ``worker_crash`` / ``worker_hang`` / ``worker_slow`` fault sites
(:mod:`repro.resilience.faults`) are consulted here, in the parent, at
submission time — deterministically, regardless of OS scheduling — and
wrap the shipped callable so the failure happens inside the worker.
See ``docs/RESILIENCE.md`` for the full supervision contract.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool

from repro.perf.workers import branch_executor, fan_depth_for
from repro.resilience.deadline import DeadlineGuard

__all__ = ["BranchSupervisor"]

#: How long an injected ``worker_hang`` sleeps — long enough that only the
#: supervisor's timeout (never the test suite's patience) ends the branch.
HANG_SECONDS = 600.0

#: How long an injected ``worker_slow`` delays before running the branch.
SLOW_SECONDS = 0.25

#: Fallback per-wait timeout applied when a ``worker_hang`` clause is
#: active but neither ``worker_timeout`` nor a deadline guard bounds the
#: wait — guarantees an injected hang can never stall a run forever.
HANG_FALLBACK_TIMEOUT = 5.0

#: Minimum wait slice, so an expired guard still polls a finished future
#: once instead of busy-looping on a zero timeout.
_MIN_WAIT = 0.05

#: Grace period for joining terminated workers before escalating to kill.
_JOIN_WAIT = 5.0

#: Fault site -> injected failure kind, consulted in dispatch order.
_FAULT_KINDS = (
    ("worker_crash", "crash"),
    ("worker_hang", "hang"),
    ("worker_slow", "slow"),
)


def _faulted_call(kind, fn, *args):
    """Run ``fn`` in a pool worker with an injected failure mode.

    ``crash`` exits the worker process hard (the parent sees a broken
    pool, exactly like an OOM kill); ``hang`` sleeps far past any
    reasonable timeout; ``slow`` delays, then completes normally.
    """
    if kind == "crash":
        os._exit(1)
    if kind == "hang":
        time.sleep(HANG_SECONDS)
    elif kind == "slow":
        time.sleep(SLOW_SECONDS)
    return fn(*args)


class _BranchJob:
    """One submitted branch: its callable, bookkeeping, and life state."""

    __slots__ = (
        "index", "fn", "args", "meta", "future",
        "attempts", "demoted", "finished", "yielded",
    )

    def __init__(self, index, fn, args, meta):
        self.index = index
        self.fn = fn
        self.args = args
        self.meta = meta
        self.future = None
        self.attempts = 0
        self.demoted = False
        self.finished = False
        self.yielded = False


class BranchSupervisor:
    """Supervised replacement for ``branch_executor`` + ``BranchDispatch``.

    Context manager.  Drivers ``submit`` branch jobs (same surface as
    :class:`~repro.perf.workers.BranchDispatch`, including ``fan_depth``)
    and ``drain`` ``(meta, result)`` pairs in submission order; crashes,
    hangs and timeouts are absorbed by the retry ladder described in the
    module docstring instead of propagating.  Exceptions *raised by the
    branch itself* (a ``ReproError`` from the pipeline) still propagate
    unchanged — supervision covers the execution substrate, not the
    algorithm.

    Parameters
    ----------
    workers:
        Pool size (> 1; the drivers keep ``workers=1`` sequential).
    fan_depth:
        Recursion depth at which drivers start submitting (default
        ``fan_depth_for(workers)``).
    timeout:
        Per-branch wait budget in seconds (``options.worker_timeout`` /
        ``REPRO_WORKER_TIMEOUT``); ``None`` means waits are bounded only
        by ``guard``.
    guard:
        The driver's :class:`~repro.resilience.deadline.DeadlineGuard`,
        or ``None``.  Bounds every wait by the remaining budget and is
        handed to demoted sequential branches.
    max_retries:
        Failed attempts per branch before demotion to sequential
        (``options.worker_retries``).
    report:
        The run's :class:`~repro.resilience.report.ResilienceReport`;
        every retry / degradation decision is recorded.
    span:
        The driver's open tracer span (or a falsy null span); receives
        the ``worker.*`` events and parents the ``worker.sequential``
        span of demoted branches.
    faults:
        The run's fault injector; only the ``worker_*`` sites are
        consulted, at submission time, in the parent.
    """

    def __init__(self, workers, *, fan_depth=None, timeout=None, guard=None,
                 max_retries=2, report=None, span=None, faults=None):
        self.workers = int(workers)
        self.fan_depth = (
            fan_depth_for(self.workers) if fan_depth is None else fan_depth
        )
        self.timeout = timeout
        self.guard = guard
        self.max_retries = int(max_retries)
        self.report = report
        self.span = span
        self.faults = faults
        self._jobs: list[_BranchJob] = []
        self._pool = None
        self._broken = False
        plan = getattr(faults, "plan", None) if faults else None
        self._hang_fallback = (
            HANG_FALLBACK_TIMEOUT
            if plan is not None and "worker_hang" in plan.clauses
            and timeout is None and guard is None
            else None
        )

    # -- lifecycle -----------------------------------------------------

    def __enter__(self) -> "BranchSupervisor":
        self._pool = branch_executor(self.workers)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        unfinished = any(not job.finished for job in self._jobs)
        if exc_type is not None or unfinished or self._broken:
            # Abnormal exit (driver raised, or jobs never drained): cancel
            # whatever has not started and take the pool down hard so no
            # worker — healthy, hung or half-dead — outlives the driver.
            for job in self._jobs:
                if job.future is not None and not job.finished:
                    job.future.cancel()
            self._kill_pool()
        elif self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        return False

    # -- submission ----------------------------------------------------

    def submit(self, fn, /, *args, meta=None) -> _BranchJob:
        """Queue one branch job; dispatched to the pool immediately.

        ``args`` must be picklable; the branch RNG generator among them is
        serialized per submission from the parent's pristine copy, which
        is what makes retries bit-identical.
        """
        job = _BranchJob(len(self._jobs), fn, args, meta)
        self._jobs.append(job)
        if not self._broken and not self._dispatch(job):
            self._broken = True
        return job

    def _dispatch(self, job) -> bool:
        """Submit ``job`` to the live pool; False when the pool is broken."""
        kind = None
        if self.faults:
            for site, fault_kind in _FAULT_KINDS:
                if self.faults.trip(site):
                    kind = fault_kind
                    break
        try:
            if kind is None:
                job.future = self._pool.submit(job.fn, *job.args)
            else:
                if self.span:
                    self.span.event(
                        "worker.fault", branch=job.index, kind=kind
                    )
                job.future = self._pool.submit(
                    _faulted_call, kind, job.fn, *job.args
                )
        except BrokenProcessPool:
            job.future = None
            return False
        return True

    # -- draining ------------------------------------------------------

    def drain(self):
        """Yield ``(meta, result)`` per job, in submission order.

        Blocks on each branch under the sliced time budget; crashed and
        timed-out branches are retried and, past ``max_retries``, re-run
        sequentially in this process before their result is yielded.
        """
        for job in self._jobs:
            if job.yielded:
                continue
            result = self._await(job)
            job.yielded = True
            yield job.meta, result

    def _await(self, job):
        while True:
            if job.demoted:
                return self._run_sequential(job)
            if self._broken or job.future is None:
                if not self._rebuild():
                    # The fresh pool broke before every branch was even
                    # resubmitted; charge the awaited branch so the
                    # ladder still terminates.
                    self._note_failure(job, "crash")
                continue
            try:
                result = job.future.result(timeout=self._wait_slice())
            except FutureTimeoutError:
                self._note_failure(job, "timeout")
                continue
            except BrokenProcessPool:
                self._note_failure(job, "crash")
                continue
            job.finished = True
            return result

    def _wait_slice(self):
        """Seconds to wait on the next future, or ``None`` (unbounded)."""
        slices = []
        if self.timeout is not None:
            slices.append(self.timeout)
        if self.guard is not None:
            slices.append(max(self.guard.remaining(), _MIN_WAIT))
        if not slices and self._hang_fallback is not None:
            slices.append(self._hang_fallback)
        return min(slices) if slices else None

    def _note_failure(self, job, cause) -> None:
        """Record one failed attempt and decide: retry or demote."""
        job.attempts += 1
        if self.span:
            self.span.event(
                "worker." + cause, branch=job.index, attempts=job.attempts
            )
        # The pool is dead or hosting a runaway worker either way; all
        # unfinished futures die with it and are redispatched on rebuild.
        self._kill_pool()
        for other in self._jobs:
            if not other.finished:
                other.future = None
        self._broken = True
        exhausted = job.attempts > self.max_retries or (
            self.guard is not None and self.guard.expired()
        )
        if exhausted:
            job.demoted = True
            detail = (
                f"branch {job.index} {cause} after {job.attempts} "
                f"attempt(s); degrading to in-process sequential execution"
            )
            if self.report is not None:
                self.report.record("degradation", "worker", detail)
            if self.span:
                self.span.event(
                    "worker.degrade", branch=job.index, cause=cause,
                    attempts=job.attempts,
                )
        else:
            detail = (
                f"branch {job.index} {cause}; retry {job.attempts}/"
                f"{self.max_retries} with the same pre-seeded RNG stream"
            )
            if self.report is not None:
                self.report.record("retry", "worker", detail)
            if self.span:
                self.span.event(
                    "worker.retry", branch=job.index, cause=cause,
                    attempts=job.attempts,
                )

    def _rebuild(self) -> bool:
        """Replace a broken pool and resubmit every unfinished branch."""
        self._kill_pool()
        todo = [j for j in self._jobs if not j.finished and not j.demoted]
        self._broken = False
        if not todo:
            return True
        if self.span:
            self.span.event("worker.rebuild", pending=len(todo))
        self._pool = branch_executor(self.workers)
        for job in todo:
            if not self._dispatch(job):
                self._broken = True
                return False
        return True

    def _run_sequential(self, job):
        """Demoted branch: run ``job`` in-process, deadline-bounded.

        The branch callable receives a ``guard`` keyword — the driver's
        own guard when one exists (the branch shares the remaining global
        budget), else a fresh guard armed with ``timeout`` so even the
        sequential fallback cannot run unbounded.
        """
        guard = self.guard
        if guard is None and self.timeout is not None:
            guard = DeadlineGuard(self.timeout)
        if self.span:
            with self.span.child("worker.sequential", branch=job.index):
                result = job.fn(*job.args, guard=guard)
        else:
            result = job.fn(*job.args, guard=guard)
        job.finished = True
        return result

    def _kill_pool(self) -> None:
        """Tear the pool down without ever blocking on a hung worker.

        Terminate first (interrupts a worker stuck in a syscall), then
        shut the executor down, then join with a bounded grace period and
        escalate to SIGKILL for anything still alive — the supervisor
        never leaks a child process.
        """
        pool, self._pool = self._pool, None
        if pool is None:
            return
        procs = list((getattr(pool, "_processes", None) or {}).values())
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        pool.shutdown(wait=True, cancel_futures=True)
        for proc in procs:
            proc.join(_JOIN_WAIT)
            if proc.is_alive():
                proc.kill()
                proc.join(_JOIN_WAIT)
