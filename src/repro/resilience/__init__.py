"""Resilience engineering for the multilevel pipeline.

The paper's coarsen → initial-partition → refine pipeline assumes every
phase succeeds; production partitioners survive because they engineer
around the failures (Sanders & Schulz; Holtgrewe et al.).  This package is
that engineering for :mod:`repro`:

* **fault injection** (:mod:`repro.resilience.faults`) — deterministic,
  seeded failures at phase boundaries, activated by ``REPRO_FAULTS=<spec>``
  or ``MultilevelOptions.faults``, free when off;
* **deadline guarding** (:mod:`repro.resilience.deadline`) — wall-clock
  budgets that degrade refinement near the limit and raise
  :class:`~repro.utils.errors.DeadlineExceededError` carrying the best
  bisection found so far;
* **the audit trail** (:mod:`repro.resilience.report`) — every fallback,
  retry and degradation that fired, attached to the result object;
* **worker supervision** (:mod:`repro.resilience.supervisor`) — the
  process-pool branch runtime of ``workers=N`` runs: per-branch time
  budgets sliced from the deadline guard, crash/hang recovery with a
  deterministic retry ladder, and degradation to bit-identical in-process
  sequential execution.

See ``docs/RESILIENCE.md`` for the fault-spec grammar, the fallback chain
table, deadline semantics, and the worker-supervision contract.
"""

from repro.resilience.deadline import DeadlineGuard
from repro.resilience.faults import (
    FAULT_SITES,
    WORKER_FAULT_SITES,
    FaultClause,
    FaultInjector,
    FaultPlan,
    NullFaultInjector,
    fault_injector,
    faults_enabled,
    parse_fault_spec,
    worker_faults_only,
)
from repro.resilience.report import EVENT_KINDS, ResilienceEvent, ResilienceReport
from repro.resilience.supervisor import BranchSupervisor

__all__ = [
    "DeadlineGuard",
    "FAULT_SITES",
    "WORKER_FAULT_SITES",
    "FaultClause",
    "FaultPlan",
    "FaultInjector",
    "NullFaultInjector",
    "fault_injector",
    "faults_enabled",
    "parse_fault_spec",
    "worker_faults_only",
    "EVENT_KINDS",
    "ResilienceEvent",
    "ResilienceReport",
    "BranchSupervisor",
]
