"""Resilience engineering for the multilevel pipeline.

The paper's coarsen → initial-partition → refine pipeline assumes every
phase succeeds; production partitioners survive because they engineer
around the failures (Sanders & Schulz; Holtgrewe et al.).  This package is
that engineering for :mod:`repro`:

* **fault injection** (:mod:`repro.resilience.faults`) — deterministic,
  seeded failures at phase boundaries, activated by ``REPRO_FAULTS=<spec>``
  or ``MultilevelOptions.faults``, free when off;
* **deadline guarding** (:mod:`repro.resilience.deadline`) — wall-clock
  budgets that degrade refinement near the limit and raise
  :class:`~repro.utils.errors.DeadlineExceededError` carrying the best
  bisection found so far;
* **the audit trail** (:mod:`repro.resilience.report`) — every fallback,
  retry and degradation that fired, attached to the result object.

See ``docs/RESILIENCE.md`` for the fault-spec grammar, the fallback chain
table, and deadline semantics.
"""

from repro.resilience.deadline import DeadlineGuard
from repro.resilience.faults import (
    FAULT_SITES,
    FaultClause,
    FaultInjector,
    FaultPlan,
    NullFaultInjector,
    fault_injector,
    faults_enabled,
    parse_fault_spec,
)
from repro.resilience.report import EVENT_KINDS, ResilienceEvent, ResilienceReport

__all__ = [
    "DeadlineGuard",
    "FAULT_SITES",
    "FaultClause",
    "FaultPlan",
    "FaultInjector",
    "NullFaultInjector",
    "fault_injector",
    "faults_enabled",
    "parse_fault_spec",
    "EVENT_KINDS",
    "ResilienceEvent",
    "ResilienceReport",
]
