"""The ResilienceReport: an audit trail of every fallback that fired.

Graceful degradation is only trustworthy when it is *visible*: a pipeline
that silently swaps SBP for GGGP, retries a bad initial partition, or cuts
refinement short under deadline pressure produces results whose provenance
the caller can no longer explain.  Every degradation path in
:mod:`repro.core` and :mod:`repro.ordering` therefore records a
:class:`ResilienceEvent` here (lint rule ``RP009`` enforces this for
``except ReproError`` fallbacks), and the report rides on the result
object: ``MultilevelResult.resilience``, ``KWayPartition.resilience``,
``Ordering.meta["resilience"]``.

Event kinds
-----------
``fallback``
    An algorithm failed and a different one took over (SBP → GGGP,
    bisector → MMD in nested dissection).
``retry``
    A stochastic phase was re-run with a fresh seed after producing an
    invalid result.
``degradation``
    A cheaper variant was substituted under budget pressure (BKLR → BGR
    near the deadline, contiguous splits after deadline expiry).
``stall``
    Coarsening stopped early because matchings made no progress.
``deadline``
    The wall-clock deadline fired (paired with a
    :class:`~repro.utils.errors.DeadlineExceededError` in ``bisect``).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ResilienceEvent", "ResilienceReport", "EVENT_KINDS"]

#: The recognised event kinds, in the order documented above.
EVENT_KINDS = ("fallback", "retry", "degradation", "stall", "deadline")


@dataclass(frozen=True)
class ResilienceEvent:
    """One recorded fallback/retry/degradation.

    Attributes
    ----------
    kind:
        One of :data:`EVENT_KINDS`.
    phase:
        Pipeline phase that degraded (``"coarsen"``, ``"initial"``,
        ``"refine"``, ``"kway"``, ``"dissect"``).
    detail:
        Human-readable description of what happened and what took over.
    level:
        Coarsening level / dissection depth, or ``None``.
    """

    kind: str
    phase: str
    detail: str
    level: int | None = None

    def __str__(self) -> str:
        at = f"{self.kind}/{self.phase}"
        if self.level is not None:
            at += f"@L{self.level}"
        return f"[{at}] {self.detail}"


class ResilienceReport:
    """Ordered collection of :class:`ResilienceEvent` records.

    Falsy while empty, so result consumers can guard with
    ``if result.resilience:``.  Reports are shared down recursive drivers
    (k-way recursion, nested dissection) so one report describes the whole
    run; :meth:`merge` folds an independently-collected report in.
    """

    def __init__(self) -> None:
        self.events: list[ResilienceEvent] = []

    def record(self, kind: str, phase: str, detail: str, *, level=None):
        """Append an event and return it."""
        event = ResilienceEvent(kind=kind, phase=phase, detail=detail, level=level)
        self.events.append(event)
        return event

    def count(self, kind=None, phase=None) -> int:
        """Number of events, optionally filtered by kind and/or phase."""
        return sum(
            1
            for e in self.events
            if (kind is None or e.kind == kind)
            and (phase is None or e.phase == phase)
        )

    def merge(self, other: "ResilienceReport") -> None:
        """Fold another report's events into this one (order preserved)."""
        if other is not self:
            self.events.extend(other.events)

    def summary(self) -> str:
        """Multi-line human-readable rendering (empty string if no events)."""
        return "\n".join(str(e) for e in self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResilienceReport({len(self.events)} events)"
