"""Wall-clock deadline guard for deadline-bounded partitioning.

A production partitioner serving interactive traffic must bound its
latency: a request is better served by a slightly worse cut than by a
perfect cut that arrives late (Sanders & Schulz engineer the same
time-quality dial into KaHIP).  :class:`DeadlineGuard` is the repo's
mechanism: the multilevel driver consults it at phase boundaries, degrades
refinement (BKLR → BGR) once the remaining budget falls under
``degrade_fraction`` of the deadline, and raises
:class:`~repro.utils.errors.DeadlineExceededError` — carrying the best
bisection found so far — once the budget is gone.

The guard shares :class:`~repro.utils.timing.PhaseTimer`'s clock
(``time.perf_counter``) and can be handed the driver's timer so the raised
error explains *where* the time went (the per-phase breakdown of the run
that overran).  The ``clock`` parameter exists for deterministic tests.
"""

from __future__ import annotations

import time

from repro.utils.errors import ConfigurationError, DeadlineExceededError

__all__ = ["DeadlineGuard"]


class DeadlineGuard:
    """Tracks one run's wall-clock budget.

    Parameters
    ----------
    deadline:
        Budget in seconds (> 0).
    degrade_fraction:
        Once ``remaining() <= degrade_fraction * deadline`` the driver
        should switch to its cheapest refinement variant; exposed as
        :meth:`nearing`.
    timer:
        Optional :class:`~repro.utils.timing.PhaseTimer` of the guarded
        run; its per-phase totals are included in the error detail.
    clock:
        Monotonic time source (default ``time.perf_counter``); injectable
        so tests can drive the guard deterministically.
    """

    def __init__(
        self,
        deadline: float,
        *,
        degrade_fraction: float = 0.25,
        timer=None,
        clock=time.perf_counter,
    ) -> None:
        if deadline is None or not deadline > 0:
            raise ConfigurationError(f"deadline must be > 0 seconds, got {deadline}")
        if not (0.0 <= degrade_fraction <= 1.0):
            raise ConfigurationError("degrade_fraction must be in [0, 1]")
        self.deadline = float(deadline)
        self.degrade_fraction = float(degrade_fraction)
        self.timer = timer
        self._clock = clock
        self._start = clock()
        self._forced = False

    def elapsed(self) -> float:
        """Seconds since the guard was armed."""
        return self._clock() - self._start

    def remaining(self) -> float:
        """Seconds of budget left (0.0 once expired; never negative)."""
        if self._forced:
            return 0.0
        return max(0.0, self.deadline - self.elapsed())

    def expired(self) -> bool:
        """Whether the budget is exhausted."""
        return self._forced or self.elapsed() >= self.deadline

    def nearing(self) -> bool:
        """Whether the run entered the degradation window near the deadline."""
        return self.remaining() <= self.degrade_fraction * self.deadline

    def force_expire(self) -> None:
        """Expire the guard immediately (used by the ``deadline`` fault site)."""
        self._forced = True

    def check(self, *, phase, level=None, best=None, report=None) -> None:
        """Raise :class:`DeadlineExceededError` if the budget is exhausted.

        ``best`` (a finest-graph bisection or ``None``) and ``report`` are
        attached to the error so the caller can degrade instead of failing.
        """
        if not self.expired():
            return
        elapsed = self.elapsed()
        detail = f"wall-clock deadline exceeded in phase {phase!r}"
        if self.timer is not None:
            spent = ", ".join(
                f"{name}={secs:.3f}s" for name, secs in sorted(self.timer.totals().items())
            )
            if spent:
                detail += f" (phase breakdown: {spent})"
        if report is not None:
            report.record("deadline", phase, detail, level=level)
        raise DeadlineExceededError(
            detail,
            deadline=self.deadline,
            elapsed=elapsed,
            phase=phase,
            level=level,
            best=best,
            report=report,
        )
