"""Connected components and subgraph extraction.

Recursive bisection and nested dissection repeatedly carve subgraphs out of
a parent graph; :func:`extract_subgraph` is the shared kernel for that, and
:func:`connected_components` supports both the generators (which guarantee
connected outputs) and the partitioners (GGP/GGGP need a starting vertex per
component).
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph, INDEX_DTYPE


def connected_components(graph) -> np.ndarray:
    """Label vertices by connected component.

    Returns an int32 array ``comp`` with ``comp[v]`` in ``[0, ncomp)``;
    component ids are assigned in order of discovery (lowest vertex id
    first).  Iterative BFS — no recursion-depth hazards on path graphs.
    """
    n = graph.nvtxs
    comp = np.full(n, -1, dtype=np.int32)
    xadj, adjncy = graph.xadj, graph.adjncy
    current = 0
    stack = np.empty(n, dtype=np.int64)
    for root in range(n):
        if comp[root] != -1:
            continue
        comp[root] = current
        stack[0] = root
        top = 1
        while top:
            top -= 1
            v = stack[top]
            for u in adjncy[xadj[v] : xadj[v + 1]]:
                if comp[u] == -1:
                    comp[u] = current
                    stack[top] = u
                    top += 1
        current += 1
    return comp


def num_components(graph) -> int:
    """Number of connected components."""
    if graph.nvtxs == 0:
        return 0
    return int(connected_components(graph).max()) + 1


def is_connected(graph) -> bool:
    """True when the graph has exactly one connected component."""
    return num_components(graph) <= 1


def extract_subgraph(graph, vertices):
    """Induced subgraph on ``vertices``.

    Parameters
    ----------
    graph:
        The parent :class:`CSRGraph`.
    vertices:
        Array of vertex ids (need not be sorted; must be unique).

    Returns
    -------
    (sub, vmap):
        ``sub`` is the induced subgraph with vertices renumbered
        ``0..len(vertices)-1`` in the order given; ``vmap`` is the input
        array (so ``vmap[i]`` is the parent id of subgraph vertex ``i``).
        Edge and vertex weights are inherited; coordinates, if present, are
        sliced through.
    """
    vertices = np.asarray(vertices, dtype=np.int64)
    n = graph.nvtxs
    local = np.full(n, -1, dtype=np.int64)
    local[vertices] = np.arange(len(vertices), dtype=np.int64)

    xadj, adjncy, adjwgt = graph.xadj, graph.adjncy, graph.adjwgt
    # Gather each kept vertex's adjacency, keeping only in-subgraph targets.
    sub_xadj = np.zeros(len(vertices) + 1, dtype=np.int64)
    chunks_n = []
    chunks_w = []
    for i, v in enumerate(vertices):
        s, e = xadj[v], xadj[v + 1]
        nbrs = local[adjncy[s:e]]
        keep = nbrs >= 0
        chunks_n.append(nbrs[keep])
        chunks_w.append(adjwgt[s:e][keep])
        sub_xadj[i + 1] = sub_xadj[i] + int(keep.sum())
    sub_adjncy = (
        np.concatenate(chunks_n).astype(INDEX_DTYPE)
        if chunks_n
        else np.empty(0, dtype=INDEX_DTYPE)
    )
    sub_adjwgt = (
        np.concatenate(chunks_w) if chunks_w else np.empty(0, dtype=np.int64)
    )
    sub = CSRGraph(
        sub_xadj,
        sub_adjncy,
        sub_adjwgt,
        graph.vwgt[vertices].copy(),
        validate=False,
    )
    if graph.coords is not None:
        sub.coords = graph.coords[vertices].copy()
    return sub, vertices


def largest_component(graph):
    """Induced subgraph on the largest connected component.

    Returns ``(sub, vmap)`` as in :func:`extract_subgraph`.  Generators use
    this to guarantee connected benchmark graphs, as the paper's matrices
    are (pattern-)connected.
    """
    comp = connected_components(graph)
    if graph.nvtxs == 0:
        return graph, np.empty(0, dtype=np.int64)
    sizes = np.bincount(comp)
    keep = np.flatnonzero(comp == sizes.argmax()).astype(np.int64)
    return extract_subgraph(graph, keep)
