"""Constructors that build :class:`~repro.graph.csr.CSRGraph` objects.

These are the supported entry points for getting data *into* the library:
edge lists, adjacency dictionaries, SciPy sparse matrices (pattern of a
symmetric matrix), and NetworkX graphs.  All of them deduplicate parallel
edges by summing weights and drop self-loops (with their weight), matching
what a partitioner wants from a matrix pattern.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph, INDEX_DTYPE, WEIGHT_DTYPE
from repro.utils.errors import GraphValidationError


def from_edge_list(n, edges, weights=None, vwgt=None, *, validate=True) -> CSRGraph:
    """Build a graph from undirected edges.

    Parameters
    ----------
    n:
        Number of vertices.  Vertex ids in ``edges`` must lie in ``[0, n)``.
    edges:
        Iterable of ``(u, v)`` pairs (or an ``(E, 2)`` array).  Each pair is
        one undirected edge; order within a pair is irrelevant.  Duplicate
        pairs are merged by summing their weights; self-loops are dropped.
    weights:
        Optional per-edge weights (default 1 each).
    vwgt:
        Optional vertex weights (default 1 each).

    Returns
    -------
    CSRGraph
    """
    edges = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges)
    if edges.size == 0:
        edges = edges.reshape(0, 2)
    if edges.ndim != 2 or edges.shape[1] != 2:
        raise GraphValidationError(f"edges must be (E, 2); got shape {edges.shape}")
    nedges = len(edges)
    if weights is None:
        weights = np.ones(nedges, dtype=WEIGHT_DTYPE)
    else:
        weights = np.asarray(weights, dtype=WEIGHT_DTYPE)
        if len(weights) != nedges:
            raise GraphValidationError(
                f"{len(weights)} weights for {nedges} edges"
            )
    if nedges and (edges.min() < 0 or edges.max() >= n):
        raise GraphValidationError("edge endpoints out of range")

    # Symmetrise: emit each edge in both directions, then merge duplicates.
    u = np.concatenate([edges[:, 0], edges[:, 1]]).astype(np.int64)
    v = np.concatenate([edges[:, 1], edges[:, 0]]).astype(np.int64)
    w = np.concatenate([weights, weights])
    keep = u != v
    u, v, w = u[keep], v[keep], w[keep]
    return _from_directed_triples(n, u, v, w, vwgt, validate=validate)


def _from_directed_triples(n, u, v, w, vwgt=None, *, validate=False) -> CSRGraph:
    """Assemble CSR from directed (u, v, w) triples, merging duplicates.

    The triples must already be symmetric (every (u, v) has its (v, u)
    mirror with equal weight contribution) and self-loop free.  This is the
    shared back end for the public constructors and the contraction kernel.
    """
    if len(u) == 0:
        xadj = np.zeros(n + 1, dtype=np.int64)
        return CSRGraph(
            xadj,
            np.empty(0, dtype=INDEX_DTYPE),
            np.empty(0, dtype=WEIGHT_DTYPE),
            vwgt if vwgt is not None else np.ones(n, dtype=WEIGHT_DTYPE),
            validate=validate,
        )
    order = np.lexsort((v, u))
    u, v, w = u[order], v[order], w[order]
    # Collapse runs of identical (u, v) by summing weights.
    new_run = np.empty(len(u), dtype=bool)
    new_run[0] = True
    new_run[1:] = (u[1:] != u[:-1]) | (v[1:] != v[:-1])
    starts = np.flatnonzero(new_run)
    uu = u[starts]
    vv = v[starts]
    ww = np.add.reduceat(w, starts)
    counts = np.bincount(uu, minlength=n)
    xadj = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=xadj[1:])
    return CSRGraph(
        xadj,
        vv.astype(INDEX_DTYPE),
        ww.astype(WEIGHT_DTYPE),
        vwgt if vwgt is not None else np.ones(n, dtype=WEIGHT_DTYPE),
        validate=validate,
    )


def from_adjacency(adj, vwgt=None, *, validate=True) -> CSRGraph:
    """Build a graph from ``{u: {v: w, ...}, ...}`` or ``{u: [v, ...], ...}``.

    Vertices are ``0..max_key``; missing keys become isolated vertices.  The
    adjacency need not be symmetric on input: every mention of an edge from
    either endpoint contributes, and when both endpoints mention it (the
    symmetric case) the weight is taken once (the maximum of the mentions).
    """
    if not adj:
        return from_edge_list(0, [])
    n = max(adj.keys()) + 1
    canonical: dict[tuple[int, int], int] = {}
    for u, nbrs in adj.items():
        items = nbrs.items() if isinstance(nbrs, dict) else ((v, 1) for v in nbrs)
        for v, w in items:
            if u == v:
                continue
            key = (u, v) if u < v else (v, u)
            canonical[key] = max(canonical.get(key, 0), int(w))
    edges = list(canonical.keys())
    weights = list(canonical.values())
    return from_edge_list(n, edges, weights, vwgt, validate=validate)


def from_scipy_sparse(matrix, vwgt=None, *, use_values=False) -> CSRGraph:
    """Build the adjacency graph of a sparse symmetric matrix.

    Parameters
    ----------
    matrix:
        Any SciPy sparse matrix.  The *pattern* of ``A + A.T`` is used; the
        diagonal is discarded.  This is exactly the "graph of the matrix"
        used for fill-reducing ordering in the paper.
    use_values:
        When true, ``|A_ij|`` rounded to ``int`` (minimum 1) becomes the edge
        weight; otherwise all edges get weight 1.
    """
    coo = matrix.tocoo()
    mask = coo.row != coo.col
    u = coo.row[mask].astype(np.int64)
    v = coo.col[mask].astype(np.int64)
    if use_values:
        w = np.maximum(1, np.abs(coo.data[mask]).round().astype(WEIGHT_DTYPE))
    else:
        w = np.ones(len(u), dtype=WEIGHT_DTYPE)
    n = matrix.shape[0]
    # Symmetrise (A may store only one triangle) then merge duplicates; the
    # merge sums the two triangles' weights, so halve unit weights back to 1
    # by using max-merge semantics instead: simplest is to merge with sum and
    # then, for unweighted graphs, reset to 1.
    uu = np.concatenate([u, v])
    vv = np.concatenate([v, u])
    ww = np.concatenate([w, w])
    g = _from_directed_triples(n, uu, vv, ww, vwgt, validate=False)
    if not use_values:
        g.adjwgt[:] = 1
    else:
        # Each undirected edge was emitted once per stored triangle entry and
        # mirrored, so a symmetric-storage matrix double-counts: normalise by
        # the number of mirrored copies is ambiguous; we take the summed value
        # as the weight, documented behaviour.
        pass
    from repro.graph.validate import validate_graph

    validate_graph(g)
    return g


def from_networkx(nxgraph, weight_attr="weight", vwgt_attr=None) -> CSRGraph:
    """Build a graph from an undirected NetworkX graph.

    Node labels are mapped to ``0..n-1`` in sorted order when sortable,
    insertion order otherwise.  Returns only the CSR graph; use
    :func:`node_index` semantics via the returned mapping if labels matter.
    """
    nodes = list(nxgraph.nodes())
    try:
        nodes = sorted(nodes)
    except TypeError:
        pass
    index = {node: i for i, node in enumerate(nodes)}
    edges = []
    weights = []
    for a, b, data in nxgraph.edges(data=True):
        if a == b:
            continue
        edges.append((index[a], index[b]))
        weights.append(int(data.get(weight_attr, 1)))
    vwgt = None
    if vwgt_attr is not None:
        vwgt = np.array(
            [int(nxgraph.nodes[node].get(vwgt_attr, 1)) for node in nodes],
            dtype=WEIGHT_DTYPE,
        )
    return from_edge_list(len(nodes), edges, weights, vwgt)


def to_networkx(graph):
    """Convert a :class:`CSRGraph` to a ``networkx.Graph`` (test helper)."""
    import networkx as nx

    g = nx.Graph()
    g.add_nodes_from(range(graph.nvtxs))
    for u, v, w in graph.edges():
        g.add_edge(u, v, weight=w)
    return g
