"""Graph substrate: CSR storage, builders, I/O, contraction, components.

This subpackage is the foundation every partitioning and ordering algorithm
in :mod:`repro` stands on.  The public surface:

* :class:`CSRGraph` — the storage kernel;
* builders — :func:`from_edge_list`, :func:`from_adjacency`,
  :func:`from_scipy_sparse`, :func:`from_networkx`;
* :func:`read_graph` / :func:`write_graph` — Chaco/METIS format I/O;
* :func:`contract` / :func:`coarse_map_from_matching` — coarsening kernel;
* :func:`connected_components`, :func:`extract_subgraph` — structure ops;
* :func:`edge_cut`, :func:`part_weights`, :func:`boundary_mask`,
  :class:`Bisection`, :class:`KWayPartition` — partition metrics/records.
"""

from repro.graph.build import (
    from_adjacency,
    from_edge_list,
    from_networkx,
    from_scipy_sparse,
    to_networkx,
)
from repro.graph.components import (
    connected_components,
    extract_subgraph,
    is_connected,
    largest_component,
    num_components,
)
from repro.graph.contract import coarse_map_from_matching, contract, matching_weight
from repro.graph.csr import CSRGraph
from repro.graph.io import read_graph, read_matrix_market, write_graph
from repro.graph.metrics import (
    PartitionReport,
    communication_volume,
    halo_sizes,
    partition_report,
    subdomain_connectivity,
)
from repro.graph.permute import permute_graph
from repro.graph.partition import (
    Bisection,
    KWayPartition,
    balance,
    boundary_mask,
    edge_cut,
    part_weights,
)
from repro.graph.validate import validate_graph

__all__ = [
    "CSRGraph",
    "from_edge_list",
    "from_adjacency",
    "from_scipy_sparse",
    "from_networkx",
    "to_networkx",
    "read_graph",
    "write_graph",
    "read_matrix_market",
    "contract",
    "coarse_map_from_matching",
    "matching_weight",
    "connected_components",
    "num_components",
    "is_connected",
    "extract_subgraph",
    "largest_component",
    "edge_cut",
    "part_weights",
    "boundary_mask",
    "balance",
    "Bisection",
    "KWayPartition",
    "validate_graph",
    "communication_volume",
    "halo_sizes",
    "subdomain_connectivity",
    "partition_report",
    "PartitionReport",
    "permute_graph",
]
