"""Graph file I/O.

Two formats are supported:

* the **Chaco/METIS ``.graph`` format** the 1995-era tools exchanged:
  a header line ``n m [fmt]`` followed by one line per vertex listing its
  neighbours (1-based), optionally interleaved with weights according to
  ``fmt`` (``1`` = edge weights, ``10`` = vertex weights, ``11`` = both);
* a minimal **MatrixMarket** ``coordinate`` reader that extracts the
  symmetric pattern of a matrix, which is how the paper's Harwell–Boeing
  matrices would enter the pipeline.

Both readers promise :class:`~repro.utils.errors.GraphValidationError` on
*every* malformed input — truncated files, non-numeric tokens, dangling
weight fields, asymmetric adjacency, mismatched duplicate-edge weights —
never a raw ``IndexError``/``ValueError`` leaking from the parse.
"""

from __future__ import annotations

import numpy as np

from repro.graph.build import from_edge_list
from repro.graph.csr import CSRGraph
from repro.utils.errors import GraphValidationError


def write_graph(graph: CSRGraph, path) -> None:
    """Write ``graph`` in Chaco/METIS ``.graph`` format.

    Weights are emitted only when non-trivial, choosing the smallest ``fmt``
    that represents the graph exactly.
    """
    has_vwgt = bool(np.any(graph.vwgt != 1))
    has_ewgt = bool(np.any(graph.adjwgt != 1))
    fmt = f"{int(has_vwgt)}{int(has_ewgt)}"
    with open(path, "w", encoding="ascii") as fh:
        header = f"{graph.nvtxs} {graph.nedges}"
        if fmt != "00":
            header += f" {fmt}"
        fh.write(header + "\n")
        for v in range(graph.nvtxs):
            fields = []
            if has_vwgt:
                fields.append(str(int(graph.vwgt[v])))
            nbrs = graph.neighbors(v)
            wgts = graph.neighbor_weights(v)
            for u, w in zip(nbrs, wgts):
                fields.append(str(int(u) + 1))
                if has_ewgt:
                    fields.append(str(int(w)))
            fh.write(" ".join(fields) + "\n")


def _int_fields(line, path, where):
    """Tokenize one line into ints; malformed tokens raise, never ValueError."""
    fields = []
    for tok in line.split():
        try:
            fields.append(int(tok))
        except ValueError:
            raise GraphValidationError(
                f"{path}: non-integer token {tok!r} in {where}"
            ) from None
    return fields


def read_graph(path) -> CSRGraph:
    """Read a Chaco/METIS ``.graph`` file.

    Comment lines starting with ``%`` (leading whitespace allowed) are
    skipped.  Raises :class:`GraphValidationError` on malformed input: bad
    counts, non-integer tokens, a neighbour entry missing its edge weight,
    self-loops, duplicate neighbour entries, asymmetric adjacency, and
    undirected edges whose two directed copies disagree on the weight.
    """
    with open(path, encoding="ascii") as fh:
        # Strip first so indented comment lines are still comments; keep
        # blank lines — an isolated vertex's adjacency line is empty.
        stripped = (ln.strip() for ln in fh)
        lines = [ln for ln in stripped if not ln.startswith("%")]
    while lines and not lines[0]:  # leading blank lines before the header
        lines.pop(0)
    if not lines:
        raise GraphValidationError(f"{path}: empty graph file")
    header = _int_fields(lines[0], path, "header")
    if len(header) < 2:
        raise GraphValidationError(f"{path}: header needs at least 'n m'")
    n, m = header[0], header[1]
    if n < 0 or m < 0:
        raise GraphValidationError(f"{path}: negative counts in header")
    fmt = str(header[2]) if len(header) > 2 else "00"
    fmt = fmt.zfill(2)
    if len(fmt) != 2 or any(digit not in "01" for digit in fmt):
        raise GraphValidationError(f"{path}: unsupported fmt {fmt!r} in header")
    has_vwgt = fmt[-2] == "1"
    has_ewgt = fmt[-1] == "1"
    body = lines[1:]
    # Tolerate extra trailing blank lines beyond the n adjacency lines.
    while len(body) > n and not body[-1]:
        body.pop()
    if len(body) != n:
        raise GraphValidationError(
            f"{path}: header says {n} vertices but file has {len(body)} lines"
        )
    edges = []  # (v, u) with v < u, in file order
    seen: dict[tuple[int, int], int] = {}  # directed (v, u) -> weight
    vwgt = np.ones(n, dtype=np.int64)
    for v, line in enumerate(body):
        fields = _int_fields(line, path, f"adjacency line of vertex {v + 1}")
        pos = 0
        if has_vwgt:
            if not fields:
                raise GraphValidationError(
                    f"{path}: vertex {v + 1} is missing its vertex weight"
                )
            vwgt[v] = fields[0]
            pos = 1
        step = 2 if has_ewgt else 1
        while pos < len(fields):
            u = fields[pos] - 1
            if has_ewgt:
                if pos + 1 >= len(fields):
                    raise GraphValidationError(
                        f"{path}: vertex {v + 1} lists neighbour {u + 1} "
                        f"without an edge weight (fmt={fmt})"
                    )
                w = fields[pos + 1]
            else:
                w = 1
            if u < 0 or u >= n:
                raise GraphValidationError(f"{path}: neighbour id {u + 1} out of range")
            if u == v:
                raise GraphValidationError(
                    f"{path}: vertex {v + 1} lists itself (self-loop)"
                )
            if (v, u) in seen:
                raise GraphValidationError(
                    f"{path}: vertex {v + 1} lists neighbour {u + 1} twice"
                )
            seen[(v, u)] = w
            if v < u:  # record each undirected edge once
                edges.append((v, u))
            pos += step
    # Symmetry sweep: every directed copy needs its mirror, and the two
    # copies of an undirected edge must agree on the weight.
    for (v, u), w in seen.items():
        mate = seen.get((u, v))
        if mate is None:
            raise GraphValidationError(
                f"{path}: asymmetric adjacency — vertex {v + 1} lists "
                f"{u + 1} but vertex {u + 1} does not list {v + 1}"
            )
        if mate != w:
            raise GraphValidationError(
                f"{path}: edge ({v + 1}, {u + 1}) has weight {w} one way "
                f"and {mate} the other"
            )
    weights = [seen[e] for e in edges]
    graph = from_edge_list(n, edges, weights, vwgt)
    if graph.nedges != m:
        raise GraphValidationError(
            f"{path}: header says {m} edges but adjacency lists give {graph.nedges}"
        )
    return graph


def read_matrix_market(path) -> CSRGraph:
    """Read the symmetric pattern of a MatrixMarket ``coordinate`` file.

    Values (if present) are ignored — the partitioner and the ordering codes
    work on the pattern, as in the paper.  The diagonal is dropped; for a
    ``general`` matrix the pattern of ``A + A^T`` is used.  Truncated files,
    non-numeric tokens and out-of-range indices raise
    :class:`GraphValidationError`.
    """
    with open(path, encoding="ascii") as fh:
        header = fh.readline()
        if not header.startswith("%%MatrixMarket"):
            raise GraphValidationError(f"{path}: missing MatrixMarket header")
        tokens = header.lower().split()
        if "coordinate" not in tokens:
            raise GraphValidationError(f"{path}: only 'coordinate' format supported")

        def next_data_line(what):
            """The next non-blank, non-comment line, or raise on EOF."""
            for raw in fh:
                line = raw.strip()
                if line and not line.startswith("%"):
                    return line
            raise GraphValidationError(f"{path}: truncated file — missing {what}")

        size = _int_fields(next_data_line("size line"), path, "size line")
        if len(size) != 3:
            raise GraphValidationError(
                f"{path}: size line needs 'rows cols nnz', got {len(size)} fields"
            )
        rows, cols, nnz = size
        if rows != cols:
            raise GraphValidationError(f"{path}: matrix must be square, got {rows}x{cols}")
        if nnz < 0:
            raise GraphValidationError(f"{path}: negative entry count {nnz}")
        edges = set()
        for k in range(nnz):
            fields = next_data_line(f"entry {k + 1} of {nnz}").split()
            if len(fields) < 2:
                raise GraphValidationError(
                    f"{path}: entry {k + 1} needs at least 'row col'"
                )
            # Only the indices are parsed; a trailing value may be a real.
            ij = _int_fields(" ".join(fields[:2]), path, f"entry {k + 1}")
            i, j = ij[0] - 1, ij[1] - 1
            if not (0 <= i < rows and 0 <= j < rows):
                raise GraphValidationError(
                    f"{path}: entry {k + 1} index ({i + 1}, {j + 1}) out of range"
                )
            if i == j:
                continue
            edges.add((min(i, j), max(i, j)))
    return from_edge_list(rows, sorted(edges))
