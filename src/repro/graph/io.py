"""Graph file I/O.

Two formats are supported:

* the **Chaco/METIS ``.graph`` format** the 1995-era tools exchanged:
  a header line ``n m [fmt]`` followed by one line per vertex listing its
  neighbours (1-based), optionally interleaved with weights according to
  ``fmt`` (``1`` = edge weights, ``10`` = vertex weights, ``11`` = both);
* a minimal **MatrixMarket** ``coordinate`` reader that extracts the
  symmetric pattern of a matrix, which is how the paper's Harwell–Boeing
  matrices would enter the pipeline.
"""

from __future__ import annotations

import numpy as np

from repro.graph.build import from_edge_list
from repro.graph.csr import CSRGraph
from repro.utils.errors import GraphValidationError


def write_graph(graph: CSRGraph, path) -> None:
    """Write ``graph`` in Chaco/METIS ``.graph`` format.

    Weights are emitted only when non-trivial, choosing the smallest ``fmt``
    that represents the graph exactly.
    """
    has_vwgt = bool(np.any(graph.vwgt != 1))
    has_ewgt = bool(np.any(graph.adjwgt != 1))
    fmt = f"{int(has_vwgt)}{int(has_ewgt)}"
    with open(path, "w", encoding="ascii") as fh:
        header = f"{graph.nvtxs} {graph.nedges}"
        if fmt != "00":
            header += f" {fmt}"
        fh.write(header + "\n")
        for v in range(graph.nvtxs):
            fields = []
            if has_vwgt:
                fields.append(str(int(graph.vwgt[v])))
            nbrs = graph.neighbors(v)
            wgts = graph.neighbor_weights(v)
            for u, w in zip(nbrs, wgts):
                fields.append(str(int(u) + 1))
                if has_ewgt:
                    fields.append(str(int(w)))
            fh.write(" ".join(fields) + "\n")


def read_graph(path) -> CSRGraph:
    """Read a Chaco/METIS ``.graph`` file.

    Comment lines starting with ``%`` are skipped.  Raises
    :class:`GraphValidationError` on malformed input (bad counts, asymmetric
    adjacency, weight mismatches).
    """
    with open(path, encoding="ascii") as fh:
        # Keep blank lines: an isolated vertex's adjacency line is empty.
        lines = [ln.strip() for ln in fh if not ln.startswith("%")]
    while lines and not lines[0]:  # leading blank lines before the header
        lines.pop(0)
    if not lines:
        raise GraphValidationError(f"{path}: empty graph file")
    header = lines[0].split()
    if len(header) < 2:
        raise GraphValidationError(f"{path}: header needs at least 'n m'")
    n, m = int(header[0]), int(header[1])
    fmt = header[2] if len(header) > 2 else "00"
    fmt = fmt.zfill(2)
    has_vwgt = fmt[-2] == "1"
    has_ewgt = fmt[-1] == "1"
    body = lines[1:]
    # Tolerate extra trailing blank lines beyond the n adjacency lines.
    while len(body) > n and not body[-1]:
        body.pop()
    if len(body) != n:
        raise GraphValidationError(
            f"{path}: header says {n} vertices but file has {len(body)} lines"
        )
    lines = [lines[0], *body]
    edges = []
    weights = []
    vwgt = np.ones(n, dtype=np.int64)
    for v, line in enumerate(lines[1:]):
        fields = [int(tok) for tok in line.split()]
        pos = 0
        if has_vwgt:
            vwgt[v] = fields[0]
            pos = 1
        step = 2 if has_ewgt else 1
        while pos < len(fields):
            u = fields[pos] - 1
            w = fields[pos + 1] if has_ewgt else 1
            if u < 0 or u >= n:
                raise GraphValidationError(f"{path}: neighbour id {u + 1} out of range")
            if v < u:  # record each undirected edge once
                edges.append((v, u))
                weights.append(w)
            pos += step
    graph = from_edge_list(n, edges, weights, vwgt)
    if graph.nedges != m:
        raise GraphValidationError(
            f"{path}: header says {m} edges but adjacency lists give {graph.nedges}"
        )
    return graph


def read_matrix_market(path) -> CSRGraph:
    """Read the symmetric pattern of a MatrixMarket ``coordinate`` file.

    Values (if present) are ignored — the partitioner and the ordering codes
    work on the pattern, as in the paper.  The diagonal is dropped; for a
    ``general`` matrix the pattern of ``A + A^T`` is used.
    """
    with open(path, encoding="ascii") as fh:
        header = fh.readline()
        if not header.startswith("%%MatrixMarket"):
            raise GraphValidationError(f"{path}: missing MatrixMarket header")
        tokens = header.lower().split()
        if "coordinate" not in tokens:
            raise GraphValidationError(f"{path}: only 'coordinate' format supported")
        line = fh.readline()
        while line.startswith("%"):
            line = fh.readline()
        rows, cols, nnz = (int(tok) for tok in line.split())
        if rows != cols:
            raise GraphValidationError(f"{path}: matrix must be square, got {rows}x{cols}")
        edges = set()
        for _ in range(nnz):
            fields = fh.readline().split()
            i, j = int(fields[0]) - 1, int(fields[1]) - 1
            if i == j:
                continue
            edges.add((min(i, j), max(i, j)))
    return from_edge_list(rows, sorted(edges))
