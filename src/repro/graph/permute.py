"""Graph permutation: relabel vertices under an ordering.

Fill-reducing orderings are usually *consumed* by a factorization code
that wants the reordered matrix; :func:`permute_graph` produces the graph
of ``P A Pᵀ`` so downstream code (and our tests) can work in the new
labelling directly.  The round-trip law ``permute(permute(g, p), inv(p))
== g`` is property-tested.
"""

from __future__ import annotations

import numpy as np

from repro.graph.build import _from_directed_triples
from repro.utils.errors import OrderingError


def permute_graph(graph, perm):
    """Relabel ``graph``'s vertices so old vertex ``perm[k]`` becomes ``k``.

    ``perm`` is new→old, the convention of
    :class:`repro.ordering.Ordering.perm`: the graph of the reordered
    matrix whose k-th row is the old row ``perm[k]``.
    """
    n = graph.nvtxs
    perm = np.asarray(perm, dtype=np.int64)
    if len(perm) != n or not np.array_equal(np.sort(perm), np.arange(n)):
        raise OrderingError("perm is not a permutation of 0..n-1")
    iperm = np.empty(n, dtype=np.int64)
    iperm[perm] = np.arange(n)

    src = graph.edge_sources()
    new_u = iperm[src]
    new_v = iperm[graph.adjncy]
    out = _from_directed_triples(
        n, new_u, new_v, graph.adjwgt.copy(), graph.vwgt[perm].copy()
    )
    if graph.coords is not None:
        out.coords = graph.coords[perm].copy()
    return out
