"""Shared helpers for the workload generators.

The paper's test graphs are *simple unweighted* graphs (matrix patterns),
but natural generator code emits duplicates — a triangulation lists each
interior edge once per incident element, random attachment may pick the
same pair twice.  :func:`simple_edges` canonicalises an edge array to the
unique undirected simple edges so generators feed
:func:`~repro.graph.build.from_edge_list` exactly one copy per edge (weight
1), instead of having duplicates merge into weight-2 edges.
"""

from __future__ import annotations

import numpy as np


def simple_edges(edges: np.ndarray) -> np.ndarray:
    """Unique undirected edges (u < v) from an ``(E, 2)`` array.

    Drops self-loops and duplicate mentions regardless of orientation.
    """
    edges = np.asarray(edges, dtype=np.int64)
    if edges.size == 0:
        return edges.reshape(0, 2)
    edges = edges[edges[:, 0] != edges[:, 1]]
    lo = np.minimum(edges[:, 0], edges[:, 1])
    hi = np.maximum(edges[:, 0], edges[:, 1])
    canon = np.column_stack([lo, hi])
    return np.unique(canon, axis=0)
