"""Structural validation of CSR graphs.

A :class:`~repro.graph.csr.CSRGraph` must satisfy:

* ``xadj`` is non-decreasing, starts at 0, ends at ``len(adjncy)``;
* every adjacency entry is a valid vertex id and not a self-loop;
* the adjacency is symmetric with matching weights: edge ``(u, v, w)``
  appears in both ``u``'s and ``v``'s list with the same ``w``;
* no duplicate neighbours within one vertex's list;
* vertex weights are positive, edge weights are positive;
* index arrays have integer dtypes (float indices silently truncate);
* weight totals fit comfortably in int64 (the cut/balance arithmetic
  accumulates them with ``np.int64`` and must never wrap).

Validation is O(m log m) (it sorts each adjacency list), so internal callers
skip it on graphs produced by trusted kernels; the test suite exercises it
heavily instead.
"""

from __future__ import annotations

import numpy as np

from repro.utils.errors import GraphValidationError


_INT64_MAX = np.iinfo(np.int64).max


def _check_weight_sum(weights, name: str) -> None:
    """Reject weight arrays whose total could wrap int64 accumulation.

    All cut and balance arithmetic sums these arrays with ``np.int64``;
    NumPy wraps silently on overflow, so guard with the conservative bound
    ``max(w) * len(w) ≤ INT64_MAX`` (exact totals are far below it).
    """
    if not len(weights):
        return
    peak = int(np.max(weights))
    if peak > 0 and peak > _INT64_MAX // len(weights):
        raise GraphValidationError(
            f"{name} values are large enough that their sum may overflow "
            f"int64 accumulation (max={peak}, count={len(weights)})"
        )


def validate_graph(graph) -> None:
    """Raise :class:`GraphValidationError` if ``graph`` is malformed."""
    xadj, adjncy, adjwgt, vwgt = graph.xadj, graph.adjncy, graph.adjwgt, graph.vwgt
    for name, arr in (("xadj", xadj), ("adjncy", adjncy)):
        if not np.issubdtype(np.asarray(arr).dtype, np.integer):
            raise GraphValidationError(
                f"{name} must have an integer dtype, got {np.asarray(arr).dtype}"
            )
    n = len(xadj) - 1
    if n < 0:
        raise GraphValidationError("xadj must have at least one entry")
    if xadj[0] != 0:
        raise GraphValidationError(f"xadj[0] must be 0, got {xadj[0]}")
    if xadj[-1] != len(adjncy):
        raise GraphValidationError(
            f"xadj[-1] ({xadj[-1]}) must equal len(adjncy) ({len(adjncy)})"
        )
    if np.any(np.diff(xadj) < 0):
        raise GraphValidationError("xadj must be non-decreasing")
    if len(adjwgt) != len(adjncy):
        raise GraphValidationError(
            f"adjwgt length {len(adjwgt)} != adjncy length {len(adjncy)}"
        )
    if len(vwgt) != n:
        raise GraphValidationError(f"vwgt length {len(vwgt)} != nvtxs {n}")
    if n == 0:
        return
    if len(adjncy) and (adjncy.min() < 0 or adjncy.max() >= n):
        raise GraphValidationError("adjncy contains out-of-range vertex ids")
    if np.any(vwgt <= 0):
        raise GraphValidationError("vertex weights must be positive")
    if len(adjwgt) and np.any(adjwgt <= 0):
        raise GraphValidationError("edge weights must be positive")
    _check_weight_sum(vwgt, "vwgt")
    _check_weight_sum(adjwgt, "adjwgt")

    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(xadj))
    if np.any(src == adjncy):
        raise GraphValidationError("self-loops are not allowed")

    # Duplicate neighbours: sort (src, dst) pairs and look for equal rows.
    order = np.lexsort((adjncy, src))
    s_sorted = src[order]
    d_sorted = adjncy[order]
    dup = (s_sorted[1:] == s_sorted[:-1]) & (d_sorted[1:] == d_sorted[:-1])
    if np.any(dup):
        i = int(np.flatnonzero(dup)[0])
        raise GraphValidationError(
            f"vertex {int(s_sorted[i])} has duplicate neighbour "
            f"{int(d_sorted[i])} in its adjacency list"
        )

    # Symmetry with matching weights: the multiset of (u, v, w) directed
    # triples must be invariant under swapping u and v.  Compare the sorted
    # forward table against the sorted reversed table.
    w_sorted = adjwgt[order]
    rorder = np.lexsort((src, adjncy))
    rs = adjncy[rorder].astype(np.int64)
    rd = src[rorder]
    rw = adjwgt[rorder]
    d64 = d_sorted.astype(np.int64)
    bad = (s_sorted != rs) | (d64 != rd) | (w_sorted != rw)
    if np.any(bad):
        i = int(np.flatnonzero(bad)[0])
        raise GraphValidationError(
            "adjacency is not symmetric with equal weights: edge "
            f"({int(s_sorted[i])}, {int(d64[i])}, w={int(w_sorted[i])}) has no "
            f"matching reverse entry"
        )
