"""Structural validation of CSR graphs.

A :class:`~repro.graph.csr.CSRGraph` must satisfy:

* ``xadj`` is non-decreasing, starts at 0, ends at ``len(adjncy)``;
* every adjacency entry is a valid vertex id and not a self-loop;
* the adjacency is symmetric with matching weights: edge ``(u, v, w)``
  appears in both ``u``'s and ``v``'s list with the same ``w``;
* no duplicate neighbours within one vertex's list;
* vertex weights are positive, edge weights are positive.

Validation is O(m log m) (it sorts each adjacency list), so internal callers
skip it on graphs produced by trusted kernels; the test suite exercises it
heavily instead.
"""

from __future__ import annotations

import numpy as np

from repro.utils.errors import GraphValidationError


def validate_graph(graph) -> None:
    """Raise :class:`GraphValidationError` if ``graph`` is malformed."""
    xadj, adjncy, adjwgt, vwgt = graph.xadj, graph.adjncy, graph.adjwgt, graph.vwgt
    n = len(xadj) - 1
    if n < 0:
        raise GraphValidationError("xadj must have at least one entry")
    if xadj[0] != 0:
        raise GraphValidationError(f"xadj[0] must be 0, got {xadj[0]}")
    if xadj[-1] != len(adjncy):
        raise GraphValidationError(
            f"xadj[-1] ({xadj[-1]}) must equal len(adjncy) ({len(adjncy)})"
        )
    if np.any(np.diff(xadj) < 0):
        raise GraphValidationError("xadj must be non-decreasing")
    if len(adjwgt) != len(adjncy):
        raise GraphValidationError(
            f"adjwgt length {len(adjwgt)} != adjncy length {len(adjncy)}"
        )
    if len(vwgt) != n:
        raise GraphValidationError(f"vwgt length {len(vwgt)} != nvtxs {n}")
    if n == 0:
        return
    if len(adjncy) and (adjncy.min() < 0 or adjncy.max() >= n):
        raise GraphValidationError("adjncy contains out-of-range vertex ids")
    if np.any(vwgt <= 0):
        raise GraphValidationError("vertex weights must be positive")
    if len(adjwgt) and np.any(adjwgt <= 0):
        raise GraphValidationError("edge weights must be positive")

    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(xadj))
    if np.any(src == adjncy):
        raise GraphValidationError("self-loops are not allowed")

    # Duplicate neighbours: sort (src, dst) pairs and look for equal rows.
    order = np.lexsort((adjncy, src))
    s_sorted = src[order]
    d_sorted = adjncy[order]
    dup = (s_sorted[1:] == s_sorted[:-1]) & (d_sorted[1:] == d_sorted[:-1])
    if np.any(dup):
        i = int(np.flatnonzero(dup)[0])
        raise GraphValidationError(
            f"duplicate edge ({s_sorted[i]}, {d_sorted[i]}) in adjacency list"
        )

    # Symmetry with matching weights: the multiset of (u, v, w) directed
    # triples must be invariant under swapping u and v.  Compare the sorted
    # forward table against the sorted reversed table.
    w_sorted = adjwgt[order]
    rorder = np.lexsort((src, adjncy))
    rs = adjncy[rorder].astype(np.int64)
    rd = src[rorder]
    rw = adjwgt[rorder]
    if not (
        np.array_equal(s_sorted, rs)
        and np.array_equal(d_sorted.astype(np.int64), rd)
        and np.array_equal(w_sorted, rw)
    ):
        raise GraphValidationError("adjacency is not symmetric with equal weights")
