"""The CSR graph kernel.

Every algorithm in this library operates on :class:`CSRGraph`, an undirected
weighted graph stored in the compressed-sparse-row layout that METIS (and
essentially every serious partitioner since) uses:

``xadj``
    ``int64`` array of length ``n + 1``; the adjacency list of vertex ``v``
    occupies ``adjncy[xadj[v]:xadj[v+1]]``.
``adjncy``
    ``int32`` array of length ``2m`` (each undirected edge appears twice,
    once per endpoint).
``adjwgt``
    ``int64`` array parallel to ``adjncy`` with the edge weights.  The two
    copies of an undirected edge carry equal weight.
``vwgt``
    ``int64`` array of length ``n`` with the vertex weights.

Weights are integral, as in the paper: coarsening sums weights, so starting
from unit weights every intermediate weight is an integer, and integer
arithmetic keeps edge-cut comparisons exact.

The class is deliberately a thin, immutable-by-convention record: algorithms
read the arrays directly (that is the fast path in NumPy) rather than going
through per-vertex accessor calls.
"""

from __future__ import annotations

import numpy as np

from repro.utils.errors import GraphValidationError

INDEX_DTYPE = np.int32
WEIGHT_DTYPE = np.int64


class CSRGraph:
    """An undirected weighted graph in CSR form.

    Parameters
    ----------
    xadj, adjncy, adjwgt, vwgt:
        CSR arrays as described in the module docstring.  ``adjwgt`` and
        ``vwgt`` may be ``None``, meaning unit weights.
    validate:
        When true (the default) the arrays are checked for structural
        consistency (symmetry, no self-loops, weight positivity).  Internal
        callers that construct graphs they know to be valid (e.g. the
        contraction kernel) pass ``False`` to skip the O(m log m) check.
    """

    __slots__ = ("xadj", "adjncy", "adjwgt", "vwgt", "_coords", "_degrees", "_src")

    def __init__(self, xadj, adjncy, adjwgt=None, vwgt=None, *, validate=True):
        xadj = np.ascontiguousarray(xadj, dtype=np.int64)
        adjncy = np.ascontiguousarray(adjncy, dtype=INDEX_DTYPE)
        n = len(xadj) - 1
        if adjwgt is None:
            adjwgt = np.ones(len(adjncy), dtype=WEIGHT_DTYPE)
        else:
            adjwgt = np.ascontiguousarray(adjwgt, dtype=WEIGHT_DTYPE)
        if vwgt is None:
            vwgt = np.ones(n, dtype=WEIGHT_DTYPE)
        else:
            vwgt = np.ascontiguousarray(vwgt, dtype=WEIGHT_DTYPE)
        self.xadj = xadj
        self.adjncy = adjncy
        self.adjwgt = adjwgt
        self.vwgt = vwgt
        self._coords = None  # optional vertex coordinates (geometric methods)
        self._degrees = None  # cached np.diff(xadj); see degrees()
        self._src = None  # cached edge-source expansion; see edge_sources()
        if validate:
            from repro.graph.validate import validate_graph

            validate_graph(self)

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def nvtxs(self) -> int:
        """Number of vertices ``n``."""
        return len(self.xadj) - 1

    @property
    def nedges(self) -> int:
        """Number of undirected edges ``m`` (half the adjacency length)."""
        return len(self.adjncy) // 2

    @property
    def coords(self):
        """Optional ``(n, d)`` float array of vertex coordinates, or ``None``.

        Mesh generators attach coordinates so geometric partitioners can be
        compared on the same graphs; purely combinatorial inputs leave this
        unset, mirroring the paper's point that geometric methods have
        limited applicability.
        """
        return self._coords

    @coords.setter
    def coords(self, value) -> None:
        if value is not None:
            value = np.asarray(value, dtype=np.float64)
            if value.ndim != 2 or value.shape[0] != self.nvtxs:
                raise GraphValidationError(
                    f"coords must be (nvtxs, d); got shape {value.shape} "
                    f"for a graph with {self.nvtxs} vertices"
                )
        self._coords = value

    def degree(self, v: int) -> int:
        """Number of neighbours of vertex ``v``."""
        return int(self.xadj[v + 1] - self.xadj[v])

    def degrees(self) -> np.ndarray:
        """All vertex degrees as an int64 array (cached; do not mutate).

        Built once per graph: CSR arrays are immutable by convention
        (lint rule RP002), so the derived array can never go stale.
        """
        if self._degrees is None:
            self._degrees = np.diff(self.xadj)
        return self._degrees

    def edge_sources(self) -> np.ndarray:
        """Source vertex of every directed adjacency entry (cached).

        ``edge_sources()[e]`` is the vertex whose adjacency list holds slot
        ``e``, i.e. the CSR expansion ``np.repeat(arange(n), degrees)``.
        Hot paths (gain seeding, cut evaluation, contraction) index this
        array instead of rebuilding the O(m) expansion per call.  Treat as
        read-only, like the CSR arrays themselves.
        """
        if self._src is None:
            self._src = np.repeat(
                np.arange(self.nvtxs, dtype=np.int64), self.degrees()
            )
        return self._src

    def neighbors(self, v: int) -> np.ndarray:
        """View of vertex ``v``'s adjacency list (do not mutate)."""
        return self.adjncy[self.xadj[v] : self.xadj[v + 1]]

    def neighbor_weights(self, v: int) -> np.ndarray:
        """View of the edge weights parallel to :meth:`neighbors`."""
        return self.adjwgt[self.xadj[v] : self.xadj[v + 1]]

    def total_vwgt(self) -> int:
        """Sum of all vertex weights."""
        return int(self.vwgt.sum())

    def total_adjwgt(self) -> int:
        """Sum of all undirected edge weights, i.e. ``W(E)`` in the paper."""
        return int(self.adjwgt.sum()) // 2

    def average_degree(self) -> float:
        """Mean vertex degree (0.0 for an empty graph)."""
        return 2.0 * self.nedges / self.nvtxs if self.nvtxs else 0.0

    # ------------------------------------------------------------------
    # queries used by tests and examples
    # ------------------------------------------------------------------
    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``(u, v)`` is present."""
        return bool(np.any(self.neighbors(u) == v))

    def edge_weight(self, u: int, v: int) -> int:
        """Weight of edge ``(u, v)``; 0 if absent."""
        nbrs = self.neighbors(u)
        hits = np.flatnonzero(nbrs == v)
        if len(hits) == 0:
            return 0
        return int(self.neighbor_weights(u)[hits[0]])

    def edges(self):
        """Iterate over undirected edges as ``(u, v, w)`` with ``u < v``."""
        for u in range(self.nvtxs):
            nbrs = self.neighbors(u)
            wgts = self.neighbor_weights(u)
            for v, w in zip(nbrs, wgts):
                if u < v:
                    yield int(u), int(v), int(w)

    def edge_array(self):
        """All undirected edges as ``(E, 3)`` int64 array of (u, v, w), u < v.

        Vectorised counterpart of :meth:`edges`; used by writers and tests.
        """
        src = self.edge_sources()
        dst = self.adjncy.astype(np.int64)
        mask = src < dst
        out = np.column_stack([src[mask], dst[mask], self.adjwgt[mask]])
        return out

    # ------------------------------------------------------------------
    # dunder conveniences
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSRGraph(nvtxs={self.nvtxs}, nedges={self.nedges}, "
            f"total_vwgt={self.total_vwgt()}, total_adjwgt={self.total_adjwgt()})"
        )

    def __eq__(self, other) -> bool:
        """Structural equality (same arrays); coordinates are ignored."""
        if not isinstance(other, CSRGraph):
            return NotImplemented
        return (
            np.array_equal(self.xadj, other.xadj)
            and np.array_equal(self.adjncy, other.adjncy)
            and np.array_equal(self.adjwgt, other.adjwgt)
            and np.array_equal(self.vwgt, other.vwgt)
        )

    def __hash__(self):  # graphs are mutable containers; keep them unhashable
        raise TypeError("CSRGraph is not hashable")

    def copy(self) -> "CSRGraph":
        """Deep copy of all arrays (coordinates included)."""
        g = CSRGraph(
            self.xadj.copy(),
            self.adjncy.copy(),
            self.adjwgt.copy(),
            self.vwgt.copy(),
            validate=False,
        )
        if self._coords is not None:
            g.coords = self._coords.copy()
        return g

    # ------------------------------------------------------------------
    # canonical ordering
    # ------------------------------------------------------------------
    def sorted_adjacency(self) -> "CSRGraph":
        """Return a copy whose per-vertex adjacency lists are sorted by id.

        Algorithms do not require sorted lists, but canonical ordering makes
        graph equality well-defined, which the tests rely on.
        """
        xadj = self.xadj
        adjncy = self.adjncy.copy()
        adjwgt = self.adjwgt.copy()
        for v in range(self.nvtxs):
            s, e = xadj[v], xadj[v + 1]
            order = np.argsort(adjncy[s:e], kind="stable")
            adjncy[s:e] = adjncy[s:e][order]
            adjwgt[s:e] = adjwgt[s:e][order]
        g = CSRGraph(xadj.copy(), adjncy, adjwgt, self.vwgt.copy(), validate=False)
        g.coords = None if self._coords is None else self._coords.copy()
        return g
