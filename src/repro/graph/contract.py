"""Graph contraction: build the next-level coarser graph from a matching.

Section 3.1 of the paper defines contraction: matched vertex pairs collapse
into *multinodes*; the multinode's weight is the sum of its constituents'
vertex weights, its adjacency is the union of theirs, and parallel edges
created by the union merge by summing edge weights.  Two invariants follow
and are preserved (and tested) here:

* total vertex weight is conserved:  ``W(V_{i+1}) = W(V_i)``;
* total edge weight drops by the matching weight:
  ``W(E_{i+1}) = W(E_i) − W(M_i)``.

The kernel is fully vectorised: it maps every directed edge through the
coarse map, drops intra-multinode edges, lexsorts the remainder and merges
runs with ``np.add.reduceat`` — O(m log m) with NumPy constants, which is
the difference between usable and unusable in pure Python.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph, INDEX_DTYPE, WEIGHT_DTYPE
from repro.graph.partition import exact_weight_bincount


def coarse_map_from_matching(match) -> tuple[np.ndarray, int]:
    """Number the multinodes induced by a matching.

    Parameters
    ----------
    match:
        int array where ``match[v]`` is the vertex matched with ``v``, or
        ``v`` itself when unmatched.  Must be an involution
        (``match[match[v]] == v``).

    Returns
    -------
    (cmap, ncoarse):
        ``cmap[v]`` is the coarse vertex id of ``v``; matched pairs share an
        id.  Ids are dense ``0..ncoarse-1``, assigned in increasing order of
        each group's smallest member so the numbering is deterministic for a
        given matching.
    """
    match = np.asarray(match, dtype=np.int64)
    n = len(match)
    leader = np.minimum(np.arange(n, dtype=np.int64), match)
    is_leader = leader == np.arange(n)
    cmap = np.empty(n, dtype=np.int64)
    cmap[is_leader] = np.arange(int(is_leader.sum()), dtype=np.int64)
    cmap[~is_leader] = cmap[leader[~is_leader]]
    return cmap, int(is_leader.sum())


def merge_sorted_coarse_edges(cu, cv, w, ncoarse):
    """Merge duplicate runs of *sorted* directed coarse edges into CSR form.

    ``(cu, cv, w)`` must be sorted so equal ``(cu, cv)`` pairs are
    contiguous and ``cu`` is non-decreasing (any such order gives the same
    result: duplicate weights merge by int64 summation, which is
    order-independent).  Returns ``(xadj, adjncy, adjwgt)`` for the coarse
    graph.  Shared by the reference kernel below and the fused-key
    vectorized kernel in :mod:`repro.kernels.vec_backend`.
    """
    new_run = np.empty(len(cu), dtype=bool)
    new_run[0] = True
    new_run[1:] = (cu[1:] != cu[:-1]) | (cv[1:] != cv[:-1])
    starts = np.flatnonzero(new_run)
    mu = cu[starts]
    mv = cv[starts]
    mw = np.add.reduceat(w, starts)

    counts = np.bincount(mu, minlength=ncoarse)
    xadj = np.zeros(ncoarse + 1, dtype=np.int64)
    np.cumsum(counts, out=xadj[1:])
    return xadj, mv.astype(INDEX_DTYPE), mw.astype(WEIGHT_DTYPE)


def contract(graph, cmap, ncoarse) -> CSRGraph:
    """Contract ``graph`` according to the coarse map ``cmap``.

    ``cmap`` may merge any groups of vertices (not just pairs), so the same
    kernel also serves cluster-based coarsening extensions.  Groups must be
    connected or at least disjoint; dense ids ``0..ncoarse-1`` are required.
    """
    n = graph.nvtxs
    cmap = np.asarray(cmap, dtype=np.int64)
    src = graph.edge_sources()
    cu = cmap[src]
    cv = cmap[graph.adjncy]
    keep = cu != cv  # drop collapsed (intra-multinode) edges
    cu, cv = cu[keep], cv[keep]
    w = graph.adjwgt[keep]

    cvwgt = exact_weight_bincount(
        cmap, graph.vwgt, minlength=ncoarse, total=graph.total_vwgt()
    )

    if len(cu) == 0:
        xadj = np.zeros(ncoarse + 1, dtype=np.int64)
        coarse = CSRGraph(
            xadj,
            np.empty(0, dtype=INDEX_DTYPE),
            np.empty(0, dtype=WEIGHT_DTYPE),
            cvwgt,
            validate=False,
        )
        propagate_coords(graph, coarse, cmap, ncoarse, cvwgt)
        return coarse

    order = np.lexsort((cv, cu))
    cu, cv, w = cu[order], cv[order], w[order]
    xadj, cadjncy, cadjwgt = merge_sorted_coarse_edges(cu, cv, w, ncoarse)
    coarse = CSRGraph(xadj, cadjncy, cadjwgt, cvwgt, validate=False)
    propagate_coords(graph, coarse, cmap, ncoarse, cvwgt)
    return coarse


def propagate_coords(graph, coarse, cmap, ncoarse, cvwgt) -> None:
    """Carry coordinates to the coarse graph as weighted centroids.

    Keeps geometric methods usable on coarse graphs (used by the geometric
    baseline only).
    """
    if graph.coords is None:
        return
    d = graph.coords.shape[1]
    sums = np.zeros((ncoarse, d))
    for j in range(d):
        sums[:, j] = np.bincount(
            cmap, weights=graph.coords[:, j] * graph.vwgt, minlength=ncoarse
        )
    coarse.coords = sums / cvwgt[:, None]


def collapsed_edge_weight(graph, cmap, ncoarse, cewgt=None) -> np.ndarray:
    """Per-multinode contracted edge weight (``cewgt``) after contraction.

    The contracted edge weight of a coarse vertex is the total weight of all
    *original-graph* edges that ended up inside it: the cewgt its members
    carried in, plus the weight of the fine edges collapsed by this
    contraction.  Heavy-clique matching (HCM) uses this to estimate edge
    density across levels.
    """
    cmap = np.asarray(cmap, dtype=np.int64)
    n = graph.nvtxs
    if cewgt is None:
        cewgt = np.zeros(n, dtype=np.int64)
    src = graph.edge_sources()
    cu = cmap[src]
    internal = cu == cmap[graph.adjncy]
    # Each collapsed undirected edge appears twice in the directed arrays.
    collapsed = exact_weight_bincount(
        cu[internal], graph.adjwgt[internal], minlength=ncoarse
    )
    carried = exact_weight_bincount(cmap, cewgt, minlength=ncoarse)
    return carried + collapsed // 2


def matching_weight(graph, match) -> int:
    """Total weight ``W(M)`` of the edges in a matching.

    ``match`` is in the involution form of
    :func:`coarse_map_from_matching`.  Counts each matched pair once.
    """
    match = np.asarray(match, dtype=np.int64)
    total = 0
    for v in range(len(match)):
        u = match[v]
        if u > v:
            total += graph.edge_weight(v, int(u))
    return int(total)
