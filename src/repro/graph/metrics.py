"""Partition quality metrics beyond the raw edge-cut.

The paper optimises edge-cut, but its motivating application (§2: matrix ×
vector products on a message-passing machine) really pays for
*communication volume* and the *maximum per-processor halo*.  These
metrics let the examples and benches report what the partition actually
buys the solver:

* :func:`communication_volume` — total number of (vertex, remote part)
  adjacencies: each boundary vertex is sent once to every other part that
  reads it, so this is the total words moved per matvec;
* :func:`halo_sizes` — per-part count of remote vertices read (the
  receive volume bound per step);
* :func:`subdomain_connectivity` — how many other parts each part talks
  to (message count / startup-latency proxy);
* :func:`partition_report` — one record with everything, used by the CLI
  and the examples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.partition import balance as _balance
from repro.graph.partition import edge_cut as _edge_cut
from repro.graph.partition import part_weights


def _directed_cross(graph, where):
    """(src, dst) arrays of directed edges crossing the partition."""
    where = np.asarray(where)
    src = graph.edge_sources()
    dst = graph.adjncy.astype(np.int64)
    mask = where[src] != where[dst]
    return src[mask], dst[mask], where


def communication_volume(graph, where) -> int:
    """Total communication volume of the partition.

    Each vertex ``v`` is sent once to every *distinct* remote part among
    its neighbours, so the volume is ``Σ_v |parts(N(v))  {part(v)}|``.
    Always ≤ edge-cut for unit weights; the gap is largest when boundary
    vertices have many neighbours in the same remote part.
    """
    src, dst, where = _directed_cross(graph, where)
    if len(src) == 0:
        return 0
    pairs = np.unique(np.stack([src, where[dst]], axis=1), axis=0)
    return int(len(pairs))


def halo_sizes(graph, where, nparts=None) -> np.ndarray:
    """Remote vertices each part must receive for a matvec.

    ``halo[p]`` = number of distinct vertices outside part ``p`` adjacent
    to some vertex inside it.
    """
    src, dst, where = _directed_cross(graph, where)
    if nparts is None:
        nparts = int(np.asarray(where).max()) + 1 if graph.nvtxs else 0
    halos = np.zeros(nparts, dtype=np.int64)
    if len(src) == 0:
        return halos
    # (receiving part, remote vertex) pairs, deduplicated.
    pairs = np.unique(np.stack([where[src], dst], axis=1), axis=0)
    counts = np.bincount(pairs[:, 0], minlength=nparts)
    halos[: len(counts)] = counts
    return halos


def subdomain_connectivity(graph, where, nparts=None) -> np.ndarray:
    """Number of distinct neighbouring parts per part (message count)."""
    src, dst, where = _directed_cross(graph, where)
    if nparts is None:
        nparts = int(np.asarray(where).max()) + 1 if graph.nvtxs else 0
    out = np.zeros(nparts, dtype=np.int64)
    if len(src) == 0:
        return out
    pairs = np.unique(np.stack([where[src], where[dst]], axis=1), axis=0)
    counts = np.bincount(pairs[:, 0], minlength=nparts)
    out[: len(counts)] = counts
    return out


@dataclass(frozen=True)
class PartitionReport:
    """Everything a solver engineer asks about a partition."""

    nparts: int
    edge_cut: int
    communication_volume: int
    max_halo: int
    max_connectivity: int
    balance: float
    pwgts: tuple

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"k={self.nparts} cut={self.edge_cut} "
            f"commvol={self.communication_volume} max_halo={self.max_halo} "
            f"max_conn={self.max_connectivity} balance={self.balance:.4f}"
        )


def partition_report(graph, where, nparts=None) -> PartitionReport:
    """Compute a full :class:`PartitionReport` for ``where``."""
    where = np.asarray(where)
    if nparts is None:
        nparts = int(where.max()) + 1 if len(where) else 0
    halos = halo_sizes(graph, where, nparts)
    conn = subdomain_connectivity(graph, where, nparts)
    return PartitionReport(
        nparts=nparts,
        edge_cut=_edge_cut(graph, where),
        communication_volume=communication_volume(graph, where),
        max_halo=int(halos.max(initial=0)),
        max_connectivity=int(conn.max(initial=0)),
        balance=_balance(graph, where, nparts),
        pwgts=tuple(int(w) for w in part_weights(graph, where, nparts)),
    )
