"""Partition objects and the quality metrics the paper reports.

The paper's objective is the **edge-cut**: the total weight of edges whose
endpoints lie in different parts, subject to each part carrying (roughly)
equal vertex weight.  This module provides vectorised edge-cut, balance, and
boundary computations plus small result records used across the library.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.errors import PartitionError


def edge_cut(graph, where) -> int:
    """Total weight of edges crossing the partition ``where``.

    ``where`` is an integer array of length ``nvtxs`` assigning each vertex
    a part id.  Works for any number of parts.  O(m), fully vectorised.
    """
    where = np.asarray(where)
    src = graph.edge_sources()
    crossing = where[src] != where[graph.adjncy]
    # Each undirected crossing edge is seen from both endpoints.
    return int(graph.adjwgt[crossing].sum()) // 2


#: Largest total weight for which float64 accumulation is still exact:
#: every partial sum of non-negative integers bounded by 2**53 is an
#: integer 2**53 or below, and all of those are representable exactly.
_FLOAT64_EXACT_LIMIT = 2**53


def exact_weight_bincount(idx, weights, minlength=0, total=None) -> np.ndarray:
    """``np.bincount(idx, weights=...)`` with exact int64 accumulation.

    ``np.bincount`` always sums its weights in float64, which silently
    rounds once a partial sum exceeds 2**53.  This helper is the one
    blessed way to bin integer weight data (RP012 flags raw unguarded
    calls): it takes the fast bincount path only when the total weight
    provably fits the float64-exact range, and an ``np.add.at`` int64
    path otherwise.  Bit-identical to bincount below the limit.

    Parameters
    ----------
    idx:
        Non-negative bin indices, one per weight.
    weights:
        Integer weights to accumulate.
    minlength:
        Minimum length of the output array.
    total:
        The exact sum of ``weights``, when the caller already holds it
        (e.g. ``graph.total_vwgt()``) — avoids one O(n) reduction.
    """
    idx = np.asarray(idx)
    weights = np.asarray(weights)
    if total is None:
        total = int(weights.sum(dtype=np.int64)) if len(weights) else 0
    if total <= _FLOAT64_EXACT_LIMIT:
        return np.bincount(idx, weights=weights, minlength=minlength).astype(
            np.int64
        )
    length = max(int(minlength), int(idx.max()) + 1 if len(idx) else 0)
    out = np.zeros(length, dtype=np.int64)
    np.add.at(out, idx, weights.astype(np.int64))
    return out


def part_weights(graph, where, nparts=None) -> np.ndarray:
    """Vertex weight carried by each part, as an int64 array of length k.

    Accumulation stays in exact integer arithmetic for any int64 vertex
    weights via :func:`exact_weight_bincount`; the graph's cached total
    vertex weight picks the fast float64 path whenever it provably fits.
    """
    where = np.asarray(where)
    if nparts is None:
        nparts = int(where.max()) + 1 if len(where) else 0
    if len(where) == 0:
        return np.zeros(nparts, dtype=np.int64)
    return exact_weight_bincount(
        where, graph.vwgt, minlength=nparts, total=graph.total_vwgt()
    )


def boundary_mask(graph, where) -> np.ndarray:
    """Boolean mask of boundary vertices.

    A vertex is on the boundary if at least one of its edges is cut — the
    definition §3.3 of the paper uses for the boundary refinement variants.
    """
    where = np.asarray(where)
    src = graph.edge_sources()
    crossing = where[src] != where[graph.adjncy]
    mask = np.zeros(graph.nvtxs, dtype=bool)
    mask[src[crossing]] = True
    return mask


def balance(graph, where, nparts=None) -> float:
    """Load imbalance: ``k * max_part_weight / total_weight`` (1.0 = perfect)."""
    pw = part_weights(graph, where, nparts)
    total = graph.total_vwgt()
    if total == 0 or len(pw) == 0:
        return 1.0
    return float(len(pw) * pw.max() / total)


@dataclass
class Bisection:
    """Result of a 2-way partition.

    Attributes
    ----------
    where:
        int8 array, ``where[v] ∈ {0, 1}``.
    cut:
        Edge-cut of the bisection (kept in sync by the refinement code).
    pwgts:
        Two-element array of part vertex weights.
    """

    where: np.ndarray
    cut: int
    pwgts: np.ndarray

    @classmethod
    def from_where(cls, graph, where) -> "Bisection":
        """Build a consistent record from a raw assignment array."""
        where = np.asarray(where, dtype=np.int8)
        if len(where) != graph.nvtxs:
            raise PartitionError(
                f"where has length {len(where)} for a {graph.nvtxs}-vertex graph"
            )
        if len(where) and not np.isin(where, (0, 1)).all():
            raise PartitionError("bisection part ids must be 0 or 1")
        return cls(
            where=where,
            cut=edge_cut(graph, where),
            pwgts=part_weights(graph, where, 2),
        )

    def verify(self, graph) -> None:
        """Re-derive cut and weights; raise if the cached values drifted."""
        fresh = Bisection.from_where(graph, self.where)
        # Exact int comparison: both cuts come from edge_cut's int64 sum.
        if fresh.cut != self.cut or not np.array_equal(  # repro: noqa[RP004]
            fresh.pwgts, self.pwgts
        ):
            raise PartitionError(
                f"inconsistent bisection record: cached (cut={self.cut}, "
                f"pwgts={self.pwgts.tolist()}) vs actual (cut={fresh.cut}, "
                f"pwgts={fresh.pwgts.tolist()})"
            )


@dataclass
class KWayPartition:
    """Result of a k-way partition produced by recursive bisection.

    Attributes
    ----------
    where:
        int32 array of part ids in ``[0, k)``.
    nparts:
        Number of parts ``k``.
    cut:
        Total edge-cut.
    pwgts:
        Part weights, length ``k``.
    timers:
        Optional accumulated per-phase times (CTime/ITime/RTime/PTime keys
        mirroring the paper's tables).
    """

    where: np.ndarray
    nparts: int
    cut: int
    pwgts: np.ndarray
    timers: dict = field(default_factory=dict)

    @classmethod
    def from_where(cls, graph, where, nparts=None) -> "KWayPartition":
        where = np.asarray(where, dtype=np.int32)
        if nparts is None:
            nparts = int(where.max()) + 1 if len(where) else 1
        if len(where) and (where.min() < 0 or where.max() >= nparts):
            raise PartitionError("part ids out of range")
        return cls(
            where=where,
            nparts=nparts,
            cut=edge_cut(graph, where),
            pwgts=part_weights(graph, where, nparts),
        )

    def balance(self, graph) -> float:
        """Load imbalance of this partition on ``graph``."""
        return balance(graph, self.where, self.nparts)
