"""Correctness tooling: static lint pass + runtime invariant sanitizer.

Production partitioners ship correctness tooling alongside the algorithms —
METIS has ``CheckGraph`` and graded debug levels, KaHIP a hierarchy of
assertion tiers — because the multilevel machinery fails *silently*: a
wrong gain update or a non-conserving contraction produces a plausible but
suboptimal cut, not a crash.  This package is that tooling for
:mod:`repro`:

* **Static lint** (:mod:`repro.analysis.engine`,
  :mod:`repro.analysis.rules`) — a whole-program rule engine: per-file
  rules (``RP001`` … ``RP011``) over one shared AST traversal per module,
  plus dataflow rules (``RP012`` … ``RP016``) over a project-wide symbol
  table and call graph (:mod:`repro.analysis.project`,
  :mod:`repro.analysis.callgraph`, :mod:`repro.analysis.dataflow`)
  covering exact int64 weight arithmetic, RNG-seed threading, and
  process-pool worker purity.  Findings carry call-path traces and render
  as text, JSON, or SARIF 2.1.0 with baseline suppression
  (:mod:`repro.analysis.report`).  Run it with
  ``python -m repro.analysis`` / ``repro lint``.
* **Runtime sanitizer** (:mod:`repro.analysis.sanitize`) — O(n + m)
  invariant checkers hooked into every phase boundary of the multilevel
  pipeline, enabled with ``REPRO_SANITIZE=1`` or
  ``MultilevelOptions(sanitize=True)``, and free when disabled.

See ``docs/ANALYSIS.md`` for the rule table, suppression syntax, and
measured sanitizer overhead.
"""

from repro.analysis.callgraph import CallGraph, build_call_graph
from repro.analysis.engine import Finding, format_findings, lint_file, lint_paths
from repro.analysis.project import ProjectModel, build_project
from repro.analysis.report import (
    findings_to_json,
    findings_to_sarif,
    rules_markdown_table,
    validate_sarif,
)
from repro.analysis.rules import RULES, default_rules, rule_table
from repro.analysis.sanitize import (
    NullSanitizer,
    Sanitizer,
    SanitizerError,
    sanitize_enabled,
    sanitizer,
)

__all__ = [
    "Finding",
    "lint_paths",
    "lint_file",
    "format_findings",
    "RULES",
    "default_rules",
    "rule_table",
    "ProjectModel",
    "build_project",
    "CallGraph",
    "build_call_graph",
    "findings_to_json",
    "findings_to_sarif",
    "validate_sarif",
    "rules_markdown_table",
    "Sanitizer",
    "NullSanitizer",
    "SanitizerError",
    "sanitizer",
    "sanitize_enabled",
]
