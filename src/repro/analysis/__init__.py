"""Correctness tooling: static lint pass + runtime invariant sanitizer.

Production partitioners ship correctness tooling alongside the algorithms —
METIS has ``CheckGraph`` and graded debug levels, KaHIP a hierarchy of
assertion tiers — because the multilevel machinery fails *silently*: a
wrong gain update or a non-conserving contraction produces a plausible but
suboptimal cut, not a crash.  This package is that tooling for
:mod:`repro`:

* **Static lint** (:mod:`repro.analysis.engine`,
  :mod:`repro.analysis.rules`) — an AST rule engine with eight
  repo-specific rules (``RP001`` … ``RP008``) covering seeded randomness,
  CSR immutability, exception discipline, exact cut arithmetic, the
  ``ReproError`` hierarchy, stdout hygiene, ``__all__`` declarations, and
  paper-section citations.  Run it with ``python -m repro.analysis`` /
  ``repro lint``.
* **Runtime sanitizer** (:mod:`repro.analysis.sanitize`) — O(n + m)
  invariant checkers hooked into every phase boundary of the multilevel
  pipeline, enabled with ``REPRO_SANITIZE=1`` or
  ``MultilevelOptions(sanitize=True)``, and free when disabled.

See ``docs/ANALYSIS.md`` for the rule table, suppression syntax, and
measured sanitizer overhead.
"""

from repro.analysis.engine import Finding, format_findings, lint_file, lint_paths
from repro.analysis.rules import RULES, default_rules, rule_table
from repro.analysis.sanitize import (
    NullSanitizer,
    Sanitizer,
    SanitizerError,
    sanitize_enabled,
    sanitizer,
)

__all__ = [
    "Finding",
    "lint_paths",
    "lint_file",
    "format_findings",
    "RULES",
    "default_rules",
    "rule_table",
    "Sanitizer",
    "NullSanitizer",
    "SanitizerError",
    "sanitizer",
    "sanitize_enabled",
]
