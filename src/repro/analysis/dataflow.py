"""Dataflow checkers over the project model: RP012 … RP018.

Four checker families, all built on the :mod:`~repro.analysis.project`
symbol table and the :mod:`~repro.analysis.callgraph` call graph:

**dtype/overflow lattice (RP012, RP013).**  The pipeline's correctness
contract is that vertex/edge weights, part weights, gains and cuts are
*exact int64 arithmetic* — ``np.bincount(..., weights=...)`` accumulates
in float64 and silently rounds once a partial sum exceeds 2**53 (the bug
class PR 4 fixed by hand in ``part_weights``).  A small abstract
interpreter assigns every expression a lattice value ``(dtype, weight)``
where ``dtype ∈ {int, float, unknown}`` and ``weight`` marks data that
originated from a weight array (``vwgt``/``adjwgt``/``pwgts``/gains/cuts,
by name).  RP012 flags float64 *accumulation* of integer weight data that
is not dominated by an explicit 2**53 exact-limit guard; RP013 flags
*narrowing or precision-losing casts* (``.astype(np.int32)``,
``.astype(float)``) and float-dtype allocation of weight accumulators.

**RNG determinism (RP014).**  Two whole-program checks: a project call
site that omits the ``rng`` argument of a function whose body converts a
missing ``rng`` into fresh entropy (``as_generator(rng)`` with default
``None``) severs the seed thread — results stop responding to ``seed=``;
and no unseeded / legacy / stdlib randomness may be reachable from the
process-pool worker entry points, where it would break ``workers=N``
bit-exactness.

**worker purity (RP015, RP016).**  A race detector for the ``workers=N``
fan-out: every function reachable from a pool branch entry point
(``submit``/``partial`` targets) must not mutate module-level state
(RP015) or ambient process state — ``os.environ``, ``os.chdir``, global
seeding (RP016).  Such mutations are applied in a pool worker's copy of
the interpreter under ``workers=N`` but in the driver's under
``workers=1``, so the two configurations silently diverge.

**worker exception hygiene (RP018).**  Everything a pool branch raises
travels back through the executor's pickled result pipe.  A builtin
exception punches a hole in the ``except ReproError`` contract the
supervisor relies on; a project exception whose ``__init__`` has
required keyword-only parameters and whose class chain defines no
``__reduce__`` cannot be unpickled at all — the default reduction
re-calls ``cls(*args)`` and the parent sees a broken pool instead of
the library error.  RP018 flags both in worker-reachable code.

Findings carry a **call-path trace** (``partition → _recurse →
part_weights``) computed from the call graph, rendered by the reporting
layer both in text and as SARIF ``relatedLocations``.
"""

from __future__ import annotations

import ast
import re

from repro.analysis.engine import ProjectRule

__all__ = [
    "DATAFLOW_RULES",
    "ExactAccumulationRule",
    "NarrowingCastRule",
    "RngThreadRule",
    "WorkerPurityRule",
    "WorkerAmbientStateRule",
    "KernelHygieneRule",
    "WorkerExceptionRule",
    "BUILTIN_EXCEPTIONS",
    "PROTOCOL_EXCEPTIONS",
    "is_weight_name",
]

# --------------------------------------------------------------------------
# Shared exception model (also used by RP005 in rules.py).

#: Builtins that legitimately signal *programming* errors per Python
#: protocol (attribute lookup, argument types, abstract methods) and are
#: therefore exempt from RP005 and RP018.
PROTOCOL_EXCEPTIONS = frozenset(
    {"TypeError", "AttributeError", "NotImplementedError", "StopIteration"}
)

#: Builtin exception names whose raise sites RP005 (per-file) and RP018
#: (worker-reachable code) flag.
BUILTIN_EXCEPTIONS = frozenset(
    {
        "ArithmeticError",
        "AssertionError",
        "BaseException",
        "BufferError",
        "EOFError",
        "Exception",
        "FileExistsError",
        "FileNotFoundError",
        "FloatingPointError",
        "IOError",
        "IndexError",
        "KeyError",
        "LookupError",
        "MemoryError",
        "NameError",
        "OSError",
        "OverflowError",
        "PermissionError",
        "RecursionError",
        "ReferenceError",
        "RuntimeError",
        "SystemError",
        "UnboundLocalError",
        "ValueError",
        "ZeroDivisionError",
    }
)

# --------------------------------------------------------------------------
# Shared RNG API model (also used by RP001 in rules.py).

#: ``np.random`` attributes that are part of the seeded Generator API; any
#: other attribute is the legacy global-state API and non-deterministic.
SEEDED_RANDOM_API = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "MT19937",
        "SFC64",
    }
)


def is_np_random(node) -> bool:
    """Whether ``node`` is the expression ``np.random`` / ``numpy.random``."""
    return (
        isinstance(node, ast.Attribute)
        and node.attr == "random"
        and isinstance(node.value, ast.Name)
        and node.value.id in ("np", "numpy")
    )


# --------------------------------------------------------------------------
# The dtype/weight lattice.

INT = "int"
FLOAT = "float"
UNKNOWN = "unknown"

#: Identifier tokens that mark weight/gain/cut data (exact-int contract).
_WEIGHT_TOKENS = frozenset(
    {
        "vwgt",
        "cvwgt",
        "adjwgt",
        "cewgt",
        "ewgt",
        "wgt",
        "wgts",
        "weight",
        "weights",
        "pwgt",
        "pwgts",
        "wdeg",
        "gain",
        "gains",
        "cut",
        "cuts",
        "mincut",
        "maxcut",
        "edgecut",
    }
)

#: Functions known to return exact int64 weight data.
_EXACT_WEIGHT_FUNCS = frozenset(
    {"exact_weight_bincount", "part_weights", "total_vwgt", "total_adjwgt"}
)

_TOKEN_SPLIT_RE = re.compile(r"[_\d]+")

#: dtype tokens considered *exact and wide enough* for weight data.
_WIDE_INT_TOKENS = frozenset({"int64", "uint64", "int", "intp", "int_", "i8", "object"})

_INT_DTYPE_TOKENS = frozenset(
    {
        "int8", "int16", "int32", "int64", "intp", "int_", "int",
        "uint8", "uint16", "uint32", "uint64", "bool", "bool_",
        "i1", "i2", "i4", "i8", "u1", "u2", "u4", "u8",
    }
)
_FLOAT_DTYPE_TOKENS = frozenset(
    {"float16", "float32", "float64", "float_", "float", "double",
     "f2", "f4", "f8", "longdouble"}
)

#: Packages where the exact-integer weight contract applies.  The spectral
#: and linear-algebra layers do genuine float math on the same arrays and
#: are out of scope.
EXACT_PACKAGES = frozenset({"core", "graph", "ordering", "parallel", "analysis"})


def is_weight_name(name: str) -> bool:
    """Whether an identifier names weight/gain/cut data."""
    return any(
        tok in _WEIGHT_TOKENS for tok in _TOKEN_SPLIT_RE.split(name.lower()) if tok
    )


class Abstract:
    """One lattice value: a dtype class plus a weight-origin flag."""

    __slots__ = ("dtype", "weight")

    def __init__(self, dtype=UNKNOWN, weight=False):
        self.dtype = dtype
        self.weight = weight

    def join(self, other) -> "Abstract":
        if self.dtype == other.dtype:
            dtype = self.dtype
        elif FLOAT in (self.dtype, other.dtype):
            dtype = FLOAT
        else:
            dtype = UNKNOWN
        return Abstract(dtype, self.weight or other.weight)


_UNKNOWN = Abstract()


def _dtype_token(node) -> str | None:
    """Canonical dtype token of a dtype-valued expression, or ``None``."""
    if isinstance(node, ast.Attribute):
        name = node.attr
    elif isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Constant) and isinstance(node.value, str):
        name = node.value
    else:
        return None
    lowered = name.lower()
    if lowered in _INT_DTYPE_TOKENS or lowered in _FLOAT_DTYPE_TOKENS:
        return lowered
    # Repo convention: WEIGHT_DTYPE is int64, INDEX_DTYPE is int32.
    if "weight_dtype" in lowered:
        return "int64"
    if "index_dtype" in lowered:
        return "int32"
    return None


def _dtype_class(token: str | None) -> str:
    if token is None:
        return UNKNOWN
    if token in _FLOAT_DTYPE_TOKENS:
        return FLOAT
    return INT


def _call_attr(call) -> str | None:
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    if isinstance(call.func, ast.Name):
        return call.func.id
    return None


def _keyword(call, name):
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


def _bincount_weights(call):
    """The ``weights=`` operand of a ``bincount`` call, or ``None``."""
    kw = _keyword(call, "weights")
    if kw is not None:
        return kw
    if len(call.args) >= 2:
        return call.args[1]
    return None


class Lattice:
    """Per-function abstract environments, computed once and cached."""

    def __init__(self):
        self._cache: dict[int, dict] = {}

    def env_of(self, func_node) -> dict:
        """name → :class:`Abstract` for ``func_node`` (``None`` → empty)."""
        key = id(func_node)
        if key not in self._cache:
            self._cache[key] = self._build(func_node)
        return self._cache[key]

    def _build(self, func_node) -> dict:
        env: dict[str, Abstract] = {}
        if func_node is None:
            return env
        a = func_node.args
        for p in (*a.posonlyargs, *a.args, *a.kwonlyargs):
            if is_weight_name(p.arg):
                env[p.arg] = Abstract(INT, True)
        # Flow-insensitive pass: last assignment wins.  Precise enough for
        # lint — the rules anchor on the offending expression itself.
        for node in ast.walk(func_node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    env[target.id] = self.infer(node.value, env)
                elif isinstance(target, ast.Tuple):
                    for elt in target.elts:
                        if isinstance(elt, ast.Name) and is_weight_name(elt.id):
                            env.setdefault(elt.id, Abstract(INT, True))
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if isinstance(node.target, ast.Name):
                    env[node.target.id] = self.infer(node.value, env)
        return env

    def infer(self, node, env) -> Abstract:
        """Lattice value of expression ``node`` under ``env``."""
        if isinstance(node, ast.Name):
            if node.id in env:
                return env[node.id]
            if is_weight_name(node.id):
                return Abstract(INT, True)
            return _UNKNOWN
        if isinstance(node, ast.Attribute):
            if is_weight_name(node.attr):
                return Abstract(INT, True)
            return _UNKNOWN
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return Abstract(INT)
            if isinstance(node.value, int):
                return Abstract(INT)
            if isinstance(node.value, float):
                return Abstract(FLOAT)
            return _UNKNOWN
        if isinstance(node, ast.UnaryOp):
            return self.infer(node.operand, env)
        if isinstance(node, ast.BinOp):
            left = self.infer(node.left, env)
            right = self.infer(node.right, env)
            joined = left.join(right)
            if isinstance(node.op, ast.Div):
                # A quotient of weights is a ratio/index, not a weight.
                return Abstract(FLOAT, False)
            if isinstance(node.op, (ast.FloorDiv, ast.Mod)):
                return Abstract(joined.dtype, False)
            return joined
        if isinstance(node, (ast.Compare, ast.BoolOp)):
            return Abstract(INT)
        if isinstance(node, ast.Subscript):
            return self.infer(node.value, env)
        if isinstance(node, ast.IfExp):
            return self.infer(node.body, env).join(self.infer(node.orelse, env))
        if isinstance(node, ast.Call):
            return self._infer_call(node, env)
        return _UNKNOWN

    def _infer_call(self, call, env) -> Abstract:
        attr = _call_attr(call)
        if attr == "astype" and call.args:
            src = self.infer(call.func.value, env)
            return Abstract(_dtype_class(_dtype_token(call.args[0])), src.weight)
        if attr in ("asarray", "array", "ascontiguousarray") and call.args:
            src = self.infer(call.args[0], env)
            dtype = _keyword(call, "dtype")
            if dtype is not None:
                return Abstract(_dtype_class(_dtype_token(dtype)), src.weight)
            return src
        if attr == "bincount":
            weights = _bincount_weights(call)
            if weights is None:
                return Abstract(INT)
            return Abstract(FLOAT, self.infer(weights, env).weight)
        if attr in ("zeros", "ones", "empty", "full"):
            dtype = _keyword(call, "dtype")
            if dtype is None and attr == "full" and len(call.args) >= 2:
                return self.infer(call.args[1], env)
            if dtype is None:
                return Abstract(FLOAT)
            return Abstract(_dtype_class(_dtype_token(dtype)))
        if attr in ("zeros_like", "ones_like", "empty_like", "full_like") and call.args:
            dtype = _keyword(call, "dtype")
            if dtype is not None:
                return Abstract(
                    _dtype_class(_dtype_token(dtype)),
                    self.infer(call.args[0], env).weight,
                )
            return self.infer(call.args[0], env)
        if attr == "where" and len(call.args) == 3:
            return self.infer(call.args[1], env).join(self.infer(call.args[2], env))
        if attr in ("sum", "cumsum", "reduce", "reduceat", "dot", "min", "max",
                    "minimum", "maximum", "abs", "clip", "diff", "repeat",
                    "concatenate", "add"):
            dtype = _keyword(call, "dtype")
            if dtype is not None:
                operand = (
                    self.infer(call.args[0], env)
                    if call.args
                    else (self.infer(call.func.value, env)
                          if isinstance(call.func, ast.Attribute) else _UNKNOWN)
                )
                return Abstract(_dtype_class(_dtype_token(dtype)), operand.weight)
            if isinstance(call.func, ast.Attribute) and not call.args:
                return self.infer(call.func.value, env)  # e.g. ``w.sum()``
            if call.args:
                out = self.infer(call.args[0], env)
                for arg in call.args[1:]:
                    out = out.join(self.infer(arg, env))
                return out
            return _UNKNOWN
        if attr in ("int", "round", "len"):
            src = self.infer(call.args[0], env) if call.args else _UNKNOWN
            return Abstract(INT, src.weight)
        if attr == "float":
            src = self.infer(call.args[0], env) if call.args else _UNKNOWN
            return Abstract(FLOAT, src.weight)
        if attr in _EXACT_WEIGHT_FUNCS:
            return Abstract(INT, True)
        return _UNKNOWN


# --------------------------------------------------------------------------
# Guard detection for RP012.

def _mentions_exact_limit(test_node) -> bool:
    """Whether an ``if`` test references the 2**53 float64-exact bound."""
    for inner in ast.walk(test_node):
        if isinstance(inner, (ast.Name, ast.Attribute)):
            name = inner.id if isinstance(inner, ast.Name) else inner.attr
            lowered = name.lower()
            if "exact" in lowered and "limit" in lowered:
                return True
        if isinstance(inner, ast.BinOp) and isinstance(inner.op, ast.Pow):
            left, right = inner.left, inner.right
            if (
                isinstance(left, ast.Constant) and left.value == 2
                and isinstance(right, ast.Constant) and right.value == 53
            ):
                return True
        if isinstance(inner, ast.Constant) and inner.value == 2**53:
            return True
    return False


def _has_exact_guard(module, node) -> bool:
    for anc in module.ancestors(node):
        if isinstance(anc, (ast.If, ast.IfExp)) and _mentions_exact_limit(anc.test):
            return True
    return False


# --------------------------------------------------------------------------
# Shared whole-program plumbing.

def _in_scope(module, packages=EXACT_PACKAGES) -> bool:
    return bool(packages.intersection(module.parts))


def _enclosing_function(module, node):
    for anc in module.ancestors(node):
        if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return anc
    return None


def _qualname_of_node(project, module, func_node) -> str | None:
    if func_node is None:
        return None
    for info in module.functions.values():
        if info.node is func_node:
            return info.qualname
    return None


def _trace_for(ctx, module, func_node) -> tuple:
    """Entry→function display path for the function containing a finding."""
    qual = _qualname_of_node(ctx.project, module, func_node)
    if qual is None:
        return ()
    path = ctx.graph.display_path(qual)
    return tuple(path) if len(path) > 1 else ()


def _source_snippet(module, node, limit=40) -> str:
    try:
        text = ast.unparse(node)
    except (ValueError, AttributeError):  # pragma: no cover
        text = "<expr>"
    return text if len(text) <= limit else text[: limit - 1] + "…"


# --------------------------------------------------------------------------
# RP012 — float64 accumulation of integer weight data.

class ExactAccumulationRule(ProjectRule):
    """RP012 — integer weight data must not be accumulated in float64.

    ``np.bincount(..., weights=...)`` always sums in float64; on int64
    weight data every partial sum above 2**53 silently rounds, which is
    how ``part_weights`` mis-counted part weights on heavy graphs before
    PR 4.  In the exact-arithmetic packages (``core/``, ``graph/``,
    ``ordering/``, ``parallel/``, ``analysis/``) this rule flags:

    * ``np.bincount`` with a weight-typed ``weights=`` operand that is not
      dominated by an explicit 2**53 exact-limit guard (use
      :func:`repro.graph.partition.exact_weight_bincount`);
    * ``+=`` accumulation of a float-typed value into a weight-named
      variable.

    Findings carry the call path from a driver entry point so the report
    reads "float64 reaches ``part_weights`` via ``kway_refine →
    part_weights``".
    """

    id = "RP012"
    name = "exact-accumulation"
    summary = "float64 accumulation of int64 weight data"
    doc = (
        "In `core/`/`graph/`/`ordering/`/`parallel/`/`analysis/`, no "
        "`np.bincount(..., weights=<int weight data>)` outside an explicit "
        "2**53 exact-limit guard (float64 accumulation rounds above 2**53 — "
        "use `exact_weight_bincount`), and no `+=` of a float value into a "
        "weight/gain/cut variable. Findings carry the driver call path."
    )

    def check_project(self, ctx):
        lattice = Lattice()
        for module in ctx.project.modules.values():
            if not _in_scope(module):
                continue
            for call in module.by_type(ast.Call):
                if _call_attr(call) != "bincount":
                    continue
                weights = _bincount_weights(call)
                if weights is None:
                    continue
                func = _enclosing_function(module, call)
                env = lattice.env_of(func)
                abstract = lattice.infer(weights, env)
                # Only *definitely integer* weight data: float-typed or
                # unknown operands (e.g. weighted float coordinates) are
                # genuine float math, not the overflow bug class.
                if not abstract.weight or abstract.dtype != INT:
                    continue
                if _has_exact_guard(module, call):
                    continue
                yield ctx.finding(
                    module,
                    call,
                    self.id,
                    "np.bincount float64-accumulates integer weight data "
                    f"{_source_snippet(module, weights)!r}; partial sums "
                    "round above 2**53 — use exact_weight_bincount or guard "
                    "with the float64 exact limit",
                    trace=_trace_for(ctx, module, func),
                )
            for node in module.by_type(ast.AugAssign):
                if not isinstance(node.op, (ast.Add, ast.Sub)):
                    continue
                if not (
                    isinstance(node.target, ast.Name)
                    and is_weight_name(node.target.id)
                ):
                    continue
                func = _enclosing_function(module, node)
                env = lattice.env_of(func)
                if lattice.infer(node.value, env).dtype != FLOAT:
                    continue
                yield ctx.finding(
                    module,
                    node,
                    self.id,
                    f"float value accumulated into weight variable "
                    f"{node.target.id!r}; weight/gain/cut arithmetic must "
                    "stay exact int64",
                    trace=_trace_for(ctx, module, func),
                )


# --------------------------------------------------------------------------
# RP013 — narrowing / precision-losing casts on weight data.

#: dtype tokens a weight array may be cast to without losing exactness.
_SAFE_WEIGHT_TOKENS = _WIDE_INT_TOKENS


class NarrowingCastRule(ProjectRule):
    """RP013 — weight data must stay int64: no narrowing/float casts.

    In the exact-arithmetic packages, a weight-typed value cast to a
    narrower integer (``int32`` truncates heavy multinode weights) or to
    any float (``float64`` loses exactness above 2**53, ``float32`` far
    earlier) re-introduces the overflow class at a single call site.
    Also flags weight-named accumulators allocated with numpy's default
    float64 dtype (``pwgts = np.zeros(k)``).
    """

    id = "RP013"
    name = "no-narrowing"
    summary = "narrowing/float cast or float allocation of weight data"
    doc = (
        "In the exact-arithmetic packages, weight/gain/cut data must stay "
        "int64: no `.astype()` / `np.asarray(dtype=)` to a narrower int or "
        "any float dtype, and no weight-named accumulator allocated with "
        "numpy's default float64 (`pwgts = np.zeros(k)`)."
    )

    def check_project(self, ctx):
        lattice = Lattice()
        for module in ctx.project.modules.values():
            if not _in_scope(module):
                continue
            for call in module.by_type(ast.Call):
                attr = _call_attr(call)
                func = _enclosing_function(module, call)
                env = lattice.env_of(func)
                if attr == "astype" and call.args:
                    src = lattice.infer(call.func.value, env)
                    token = _dtype_token(call.args[0])
                    if (
                        src.weight
                        and src.dtype != FLOAT
                        and token is not None
                        and token not in _SAFE_WEIGHT_TOKENS
                    ):
                        yield ctx.finding(
                            module,
                            call,
                            self.id,
                            f"weight data cast to {token}; weights/gains/"
                            "cuts must stay int64 (narrowing loses heavy "
                            "multinode weights, floats lose exactness)",
                            trace=_trace_for(ctx, module, func),
                        )
                elif attr in ("asarray", "array", "ascontiguousarray") and call.args:
                    dtype = _keyword(call, "dtype")
                    token = _dtype_token(dtype) if dtype is not None else None
                    src = lattice.infer(call.args[0], env)
                    if (
                        src.weight
                        and src.dtype != FLOAT
                        and token is not None
                        and token not in _SAFE_WEIGHT_TOKENS
                    ):
                        yield ctx.finding(
                            module,
                            call,
                            self.id,
                            f"weight data re-typed to {token} via np.{attr}; "
                            "weights/gains/cuts must stay int64",
                            trace=_trace_for(ctx, module, func),
                        )
            for node in module.by_type(ast.Assign):
                if len(node.targets) != 1:
                    continue
                target = node.targets[0]
                if not (isinstance(target, ast.Name) and is_weight_name(target.id)):
                    continue
                value = node.value
                if not (
                    isinstance(value, ast.Call)
                    and _call_attr(value) in ("zeros", "ones", "empty", "full")
                ):
                    continue
                func = _enclosing_function(module, node)
                if lattice.infer(value, lattice.env_of(func)).dtype == FLOAT:
                    yield ctx.finding(
                        module,
                        node,
                        self.id,
                        f"weight accumulator {target.id!r} allocated with "
                        "float64 dtype; allocate dtype=np.int64 so "
                        "accumulation stays exact",
                        trace=_trace_for(ctx, module, func),
                    )


# --------------------------------------------------------------------------
# RP014 — RNG determinism across the call graph.

class RngThreadRule(ProjectRule):
    """RP014 — the seed thread must survive every call-graph path.

    Two whole-program checks:

    * **Severed seed thread** — a project call site that omits the ``rng``
      argument of a function whose body turns a missing ``rng`` into fresh
      entropy (``as_generator(rng)`` / ``default_rng(rng)`` with default
      ``None``).  The callee silently stops responding to the caller's
      ``seed=``; every such call must pass the threaded ``Generator``.
    * **Worker-reachable nondeterminism** — no unseeded
      ``np.random.default_rng()``, legacy ``np.random.<fn>`` global-state
      call, or stdlib ``random`` usage may be reachable from a process-pool
      branch entry point: inside the ``workers=N`` fan-out it breaks the
      bit-exactness contract with ``workers=1``.  Findings carry the
      worker→function call path.
    """

    id = "RP014"
    name = "rng-thread"
    summary = "seed thread severed at a call site / entropy in worker code"
    doc = (
        "Whole-program RNG determinism: calls may not omit the `rng` "
        "argument of a function whose body converts a missing `rng` into "
        "fresh entropy (`as_generator(rng)` with default `None`), and no "
        "unseeded/legacy/stdlib randomness may be reachable from the "
        "`workers=N` process-pool entry points (reported with the call "
        "path)."
    )

    def check_project(self, ctx):
        yield from self._check_severed_threads(ctx)
        yield from self._check_worker_entropy(ctx)

    # -- severed seed threads ------------------------------------------

    def _entropy_defaulting(self, info) -> bool:
        """Whether ``info`` turns a missing ``rng`` into fresh entropy."""
        if "rng" not in info.params:
            return False
        default = info.defaults.get("rng")
        from repro.analysis.project import MISSING

        if default is MISSING or not (
            isinstance(default, ast.Constant) and default.value is None
        ):
            return False
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            attr = _call_attr(node)
            if attr not in ("as_generator", "default_rng"):
                continue
            if (
                len(node.args) == 1
                and isinstance(node.args[0], ast.Name)
                and node.args[0].id == "rng"
            ):
                return True
        return False

    def _call_supplies_rng(self, site, info) -> bool:
        call = site.node
        if any(kw.arg is None for kw in call.keywords):  # **kwargs
            return True
        if any(kw.arg == "rng" for kw in call.keywords):
            return True
        if any(isinstance(a, ast.Starred) for a in call.args):
            return True
        try:
            idx = info.params.index("rng")
        except ValueError:
            return True
        return len(call.args) > idx

    def _check_severed_threads(self, ctx):
        cache: dict[str, bool] = {}
        for site in ctx.graph.call_sites:
            info = ctx.project.functions.get(site.callee)
            if info is None:
                continue
            if site.callee not in cache:
                cache[site.callee] = self._entropy_defaulting(info)
            if not cache[site.callee]:
                continue
            if self._call_supplies_rng(site, info):
                continue
            module = ctx.project.modules[site.module]
            caller_node = None
            if site.caller in ctx.project.functions:
                caller_node = ctx.project.functions[site.caller].node
            yield ctx.finding(
                module,
                site.node,
                self.id,
                f"call to {info.name}() omits rng; {info.name} falls back "
                "to fresh entropy and stops responding to the caller's "
                "seed — thread the Generator through",
                trace=_trace_for(ctx, module, caller_node),
            )

    # -- entropy reachable from workers --------------------------------

    def _entropy_sites(self, module, func_node):
        for node in ast.walk(func_node):
            if isinstance(node, ast.Attribute) and is_np_random(node.value):
                if node.attr not in SEEDED_RANDOM_API:
                    yield node, f"legacy global-state call np.random.{node.attr}"
            if isinstance(node, ast.Call):
                attr = _call_attr(node)
                if (
                    attr == "default_rng"
                    and not node.args
                    and not node.keywords
                ):
                    yield node, "unseeded np.random.default_rng()"
                if attr == "urandom":
                    yield node, "os.urandom entropy"
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "random"
                    and module.imports.get("random") == "random"
                ):
                    yield node, f"stdlib random.{func.attr}"

    def _check_worker_entropy(self, ctx):
        reach = ctx.graph.worker_reachable()
        seen = set()
        for qual in sorted(reach):
            info = ctx.project.functions[qual]
            module = ctx.project.modules[info.module]
            for node, what in self._entropy_sites(module, info.node):
                key = (str(module.path), node.lineno, node.col_offset)
                if key in seen:
                    continue
                seen.add(key)
                path = ctx.graph.display_path(qual)
                yield ctx.finding(
                    module,
                    node,
                    self.id,
                    f"{what} is reachable from the workers=N process-pool "
                    "fan-out; worker results would not be bit-identical to "
                    "workers=1",
                    trace=tuple(path),
                )


# --------------------------------------------------------------------------
# RP015 / RP016 — worker purity.

#: Method names that mutate their receiver in place.
_MUTATOR_METHODS = frozenset(
    {
        "append", "extend", "insert", "remove", "pop", "popitem", "clear",
        "add", "discard", "update", "setdefault", "sort", "reverse",
    }
)


def _local_names(func_node) -> set:
    """Names bound inside ``func_node`` (params, assignments, loops, withs)."""
    a = func_node.args
    names = {p.arg for p in (*a.posonlyargs, *a.args, *a.kwonlyargs)}
    if a.vararg:
        names.add(a.vararg.arg)
    if a.kwarg:
        names.add(a.kwarg.arg)
    for node in ast.walk(func_node):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            names.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.comprehension):
            for inner in ast.walk(node.target):
                if isinstance(inner, ast.Name):
                    names.add(inner.id)
    return names


def _walk_worker_functions(ctx):
    """Yield ``(qualname, FunctionInfo, module)`` for worker-reachable code."""
    for qual in sorted(ctx.graph.worker_reachable()):
        info = ctx.project.functions[qual]
        yield qual, info, ctx.project.modules[info.module]


class WorkerPurityRule(ProjectRule):
    """RP015 — worker-reachable code must not mutate module-level state.

    Under ``workers=N`` a branch job runs in a pool worker: any write to
    module-level state (a cache dict, a module counter, a monkeypatched
    module attribute) lands in the *worker's* interpreter and is lost,
    while under ``workers=1`` it lands in the driver's and persists.  The
    two configurations then diverge — exactly the contract
    (``workers=N`` bit-identical to ``workers=1``) PR 5 established.
    Flags, in every function reachable from a pool entry point:
    ``global`` declarations that are stored to, subscript/attribute writes
    through module-level names, in-place mutator calls
    (``.append``/``.update``/…) on module-level names, and attribute
    stores on imported modules.
    """

    id = "RP015"
    name = "worker-pure"
    summary = "module-level state mutated in worker-reachable code"
    doc = (
        "No function reachable from a `workers=N` pool entry point "
        "(`submit`/`partial` branch jobs) may mutate module-level state: "
        "`global` writes, subscript/attribute stores through module-level "
        "names, in-place mutator calls on module-level containers, or "
        "attribute stores on imported modules. Such writes land in the "
        "worker's interpreter under `workers=N` but the driver's under "
        "`workers=1`, silently breaking bit-exactness."
    )

    def check_project(self, ctx):
        for qual, info, module in _walk_worker_functions(ctx):
            locals_ = _local_names(info.node)
            globals_declared = set()
            for node in ast.walk(info.node):
                if isinstance(node, ast.Global):
                    globals_declared.update(node.names)
            path = tuple(ctx.graph.display_path(qual))
            for node in ast.walk(info.node):
                yield from self._check_node(
                    ctx, module, node, locals_, globals_declared, path
                )

    def _module_level(self, module, name, locals_, globals_declared) -> bool:
        if name in globals_declared:
            return True
        return name in module.top_names and name not in locals_

    def _check_node(self, ctx, module, node, locals_, globals_declared, path):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                base = target
                while isinstance(base, (ast.Subscript, ast.Attribute)):
                    base = base.value
                if not isinstance(base, ast.Name):
                    continue
                if base is target:
                    # Bare name store: only a race if declared global.
                    if base.id in globals_declared:
                        yield ctx.finding(
                            module,
                            node,
                            self.id,
                            f"worker-reachable code writes global {base.id!r}; "
                            "the write lands in the pool worker, not the "
                            "driver — workers=N diverges from workers=1",
                            trace=path,
                        )
                elif self._module_level(module, base.id, locals_, globals_declared):
                    yield ctx.finding(
                        module,
                        node,
                        self.id,
                        f"worker-reachable code mutates module-level "
                        f"{base.id!r} in place; shared state is not "
                        "propagated back from pool workers",
                        trace=path,
                    )
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr not in _MUTATOR_METHODS:
                return
            base = node.func.value
            # Imported names are modules/functions, not mutable module
            # state (``np.sort`` returns a copy); only containers *bound*
            # at module level count.
            if (
                isinstance(base, ast.Name)
                and base.id not in module.imports
                and self._module_level(module, base.id, locals_, globals_declared)
            ):
                yield ctx.finding(
                    module,
                    node,
                    self.id,
                    f"worker-reachable code calls {base.id}.{node.func.attr}() "
                    "on module-level state; the mutation is lost in pool "
                    "workers — pass state explicitly and merge results",
                    trace=path,
                )


class WorkerAmbientStateRule(ProjectRule):
    """RP016 — worker-reachable code must not mutate ambient process state.

    Environment variables, the working directory and the global RNG seeds
    are per-process: mutated from a branch job they affect the pool
    worker under ``workers=N`` but the whole driver under ``workers=1``
    (and leak into unrelated branches there).  Flags ``os.environ``
    writes (subscript stores and mutating methods), ``os.putenv`` /
    ``os.unsetenv`` / ``os.chdir``, and global seeding
    (``np.random.seed`` / ``random.seed``) in worker-reachable functions.
    """

    id = "RP016"
    name = "worker-ambient"
    summary = "ambient process state mutated in worker-reachable code"
    doc = (
        "No function reachable from a pool entry point may mutate ambient "
        "process state: `os.environ` writes, `os.putenv`/`os.unsetenv`/"
        "`os.chdir`, or global seeding (`np.random.seed`, `random.seed`). "
        "Per-process state diverges between the `workers=N` pool and the "
        "sequential `workers=1` path."
    )

    _OS_CALLS = frozenset({"putenv", "unsetenv", "chdir"})

    def _is_os_environ(self, node) -> bool:
        return (
            isinstance(node, ast.Attribute)
            and node.attr == "environ"
            and isinstance(node.value, ast.Name)
            and node.value.id == "os"
        )

    def check_project(self, ctx):
        for qual, info, module in _walk_worker_functions(ctx):
            path = tuple(ctx.graph.display_path(qual))
            for node in ast.walk(info.node):
                if isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = (
                        node.targets if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for target in targets:
                        if isinstance(target, ast.Subscript) and self._is_os_environ(
                            target.value
                        ):
                            yield ctx.finding(
                                module,
                                node,
                                self.id,
                                "worker-reachable code writes os.environ; "
                                "per-process state diverges between pool "
                                "workers and the sequential path",
                                trace=path,
                            )
                elif isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Attribute
                ):
                    attr = node.func.attr
                    base = node.func.value
                    if self._is_os_environ(base) and attr in (
                        "update", "pop", "setdefault", "clear", "__setitem__",
                    ):
                        yield ctx.finding(
                            module,
                            node,
                            self.id,
                            f"worker-reachable code mutates os.environ via "
                            f".{attr}(); ambient state diverges across pool "
                            "workers",
                            trace=path,
                        )
                    elif (
                        isinstance(base, ast.Name)
                        and base.id == "os"
                        and attr in self._OS_CALLS
                    ):
                        yield ctx.finding(
                            module,
                            node,
                            self.id,
                            f"worker-reachable code calls os.{attr}(); "
                            "ambient process state diverges across pool "
                            "workers",
                            trace=path,
                        )
                    elif attr == "seed" and (
                        is_np_random(base)
                        or (isinstance(base, ast.Name) and base.id == "random")
                    ):
                        yield ctx.finding(
                            module,
                            node,
                            self.id,
                            "worker-reachable code reseeds a global RNG; "
                            "global seeding is per-process and breaks the "
                            "workers=N bit-exactness contract",
                            trace=path,
                        )


class KernelHygieneRule(ProjectRule):
    """RP017 — kernel backends only via the registry; numba imports lazy.

    The :mod:`repro.kernels` registry owns backend selection: capability
    probing, the fallback chain and the selection metadata that surfaces
    in traces and results.  Two import disciplines keep that true:

    * **backend modules are registry-private** — a module of a ``kernels``
      package (``repro.kernels.vec_backend``, ``repro.kernels.numba_backend``)
      may only be imported from inside that package.  An outside import
      bypasses the probe/fallback logic, so an optional dependency error
      surfaces as a crash instead of a recorded fallback;
    * **numba is imported lazily** — a module-level ``import numba``
      anywhere makes the whole tree unimportable on machines without the
      optional dependency.  Every numba import must sit inside a function
      (the probe or a kernel loader).
    """

    id = "RP017"
    name = "kernel-hygiene"
    summary = "backend module imported outside the registry, or eager numba import"
    doc = (
        "Kernel backend modules (submodules of a `kernels` package) may "
        "only be imported from inside that package — everything else goes "
        "through the registry (`repro.kernels`), which owns capability "
        "probing and the fallback chain. `numba` may never be imported at "
        "module level: the optional dependency must be probed/loaded "
        "inside a function so the tree imports cleanly without it."
    )

    def _resolve_from(self, module, node) -> str:
        """Absolute dotted target of an ``ImportFrom`` (resolves relatives)."""
        if node.level == 0:
            return node.module or ""
        parts = module.name.split(".")
        if module.path.stem != "__init__":
            parts = parts[:-1]
        drop = node.level - 1
        if drop:
            parts = parts[:-drop] if drop < len(parts) else []
        if node.module:
            parts = parts + node.module.split(".")
        return ".".join(parts)

    @staticmethod
    def _is_backend_module(target: str) -> bool:
        """Whether ``target`` names a module *inside* a kernels package."""
        parts = target.split(".")
        return "kernels" in parts[:-1]

    @staticmethod
    def _is_numba(target: str) -> bool:
        return target == "numba" or target.startswith("numba.")

    def _is_lazy(self, module, node) -> bool:
        """Whether the import sits inside a function (lazy by construction)."""
        return any(
            isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef))
            for anc in module.ancestors(node)
        )

    def check_project(self, ctx):
        module_names = {m.name for m in ctx.project.modules.values()}
        for module in ctx.project.modules.values():
            inside_kernels = "kernels" in module.parts
            for node in module.by_type(ast.Import):
                for alias in node.names:
                    yield from self._check_target(
                        ctx, module, node, alias.name, inside_kernels
                    )
            for node in module.by_type(ast.ImportFrom):
                base = self._resolve_from(module, node)
                yield from self._check_target(
                    ctx, module, node, base, inside_kernels
                )
                # ``from pkg.kernels import vec_backend`` imports the
                # backend module itself under a from-import spelling.
                for alias in node.names:
                    dotted = f"{base}.{alias.name}" if base else alias.name
                    if dotted in module_names:
                        yield from self._check_target(
                            ctx, module, node, dotted, inside_kernels
                        )

    def _check_target(self, ctx, module, node, target, inside_kernels):
        if not target:
            return
        if self._is_numba(target) and not self._is_lazy(module, node):
            yield ctx.finding(
                module,
                node,
                self.id,
                "module-level numba import: the optional dependency must "
                "be imported lazily (inside the probe or a kernel loader) "
                "so the tree imports cleanly without it",
            )
        if (
            self._is_backend_module(target)
            and not inside_kernels
            and not self._is_numba(target)
        ):
            yield ctx.finding(
                module,
                node,
                self.id,
                f"backend module {target!r} imported outside its kernels "
                "package; go through the registry package instead — it "
                "owns the capability probe and the fallback chain",
            )


# --------------------------------------------------------------------------
# RP018 — worker exception hygiene.

#: Resolution depth bound for base-class and re-export chains.
_MAX_CLASS_DEPTH = 10


class WorkerExceptionRule(ProjectRule):
    """RP018 — worker-raised exceptions must survive the pool result pipe.

    Everything a ``workers=N`` branch job raises is pickled by the
    executor, shipped through the result pipe, and re-raised in the
    parent — where :class:`~repro.resilience.supervisor.BranchSupervisor`
    decides whether the branch failed cleanly (a library error, re-raise
    it) or the worker died (retry, then degrade).  Two raise patterns
    break that channel:

    * a **builtin exception** escapes the ``except ReproError`` contract
      (RP005's concern), which in worker-reachable code means the
      supervisor cannot tell a library failure from worker damage;
    * a **project exception whose ``__init__`` has required keyword-only
      parameters** and whose class chain defines no ``__reduce__``
      cannot be unpickled at all: the default reduction re-calls
      ``cls(*args)``, the re-call raises ``TypeError`` inside the result
      pipe, and the parent observes a broken pool instead of the error —
      exactly how ``SanitizerError(phase=...)`` used to vanish before
      ``ReproError`` grew its ``__reduce__``.
    """

    id = "RP018"
    name = "worker-exception"
    summary = "worker-raised exception cannot cross the pool result pipe"
    doc = (
        "Worker-reachable code must raise exceptions that survive the "
        "pool result pipe: `ReproError` subclasses (not builtins), and "
        "never a class whose `__init__` has required keyword-only "
        "parameters without a `__reduce__` in its class chain — the "
        "default exception reduction re-calls `cls(*args)`, fails to "
        "unpickle, and the parent sees a broken pool instead of the "
        "library error."
    )

    def check_project(self, ctx):
        classes = self._class_index(ctx)
        seen = set()
        for qual, info, module in _walk_worker_functions(ctx):
            path = tuple(ctx.graph.display_path(qual))
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Raise) or node.exc is None:
                    continue
                expr = node.exc
                if isinstance(expr, ast.Call):
                    expr = expr.func
                key = (str(module.path), node.lineno, node.col_offset)
                if key in seen:
                    continue
                finding = self._check_raise(ctx, classes, module, node, expr, path)
                if finding is not None:
                    seen.add(key)
                    yield finding

    def _check_raise(self, ctx, classes, module, node, expr, path):
        name = expr.attr if isinstance(expr, ast.Attribute) else (
            expr.id if isinstance(expr, ast.Name) else None
        )
        if name is None:
            return None
        if name in BUILTIN_EXCEPTIONS and name not in PROTOCOL_EXCEPTIONS:
            return ctx.finding(
                module,
                node,
                self.id,
                f"worker-reachable code raises builtin {name}; a pool "
                "branch must fail with a ReproError subclass so the "
                "supervisor can tell a library error from worker damage",
                trace=path,
            )
        qual = self._class_qual(ctx, classes, expr, module)
        if qual is None or qual not in classes:
            return None
        problem = self._pickle_problem(ctx, classes, qual)
        if problem is None:
            return None
        return ctx.finding(
            module,
            node,
            self.id,
            f"worker-reachable code raises {qual.rsplit('.', 1)[-1]}, "
            f"whose __init__ requires keyword-only {problem} but whose "
            "class chain defines no __reduce__; the default exception "
            "reduction re-calls cls(*args) and fails to unpickle in the "
            "pool result pipe — the parent sees a broken pool instead "
            "of the error",
            trace=path,
        )

    @staticmethod
    def _class_index(ctx) -> dict:
        """``dotted qualname -> (ClassDef, ModuleInfo)`` for top-level classes."""
        index = {}
        for module in ctx.project.modules.values():
            for node in module.by_type(ast.ClassDef):
                if isinstance(module.parents.get(id(node)), ast.Module):
                    index[f"{module.name}.{node.name}"] = (node, module)
        return index

    def _class_qual(self, ctx, classes, expr, module):
        """Dotted qualname the raised expression refers to, or ``None``."""
        chain = []
        cur = expr
        while isinstance(cur, ast.Attribute):
            chain.append(cur.attr)
            cur = cur.value
        if not isinstance(cur, ast.Name):
            return None
        chain.append(cur.id)
        chain.reverse()
        base = chain[0]
        if len(chain) == 1 and f"{module.name}.{base}" in classes:
            return f"{module.name}.{base}"
        target = module.imports.get(base)
        if target is None:
            return None
        return self._canonical(ctx, classes, ".".join([target] + chain[1:]))

    def _canonical(self, ctx, classes, dotted, depth=0):
        """Follow re-export chains until ``dotted`` names a class def."""
        if dotted in classes or depth > _MAX_CLASS_DEPTH or "." not in dotted:
            return dotted
        base, leaf = dotted.rsplit(".", 1)
        mod = ctx.project.modules.get(base)
        if mod is None:
            return dotted
        target = mod.imports.get(leaf)
        if target is None:
            return dotted
        return self._canonical(ctx, classes, target, depth + 1)

    def _chain(self, ctx, classes, qual, depth=0):
        """Yield ``(ClassDef, ModuleInfo)`` for ``qual`` and visible bases."""
        entry = classes.get(qual)
        if entry is None or depth > _MAX_CLASS_DEPTH:
            return
        yield entry
        node, module = entry
        for base in node.bases:
            bqual = self._class_qual(ctx, classes, base, module)
            if bqual is not None:
                yield from self._chain(ctx, classes, bqual, depth + 1)

    def _pickle_problem(self, ctx, classes, qual):
        """The required keyword-only params that break pickling, or ``None``.

        Safe when any class in the project-visible chain defines
        ``__reduce__``/``__reduce_ex__``, or when the governing
        ``__init__`` (nearest in the chain) has no required keyword-only
        parameters.  Unresolvable external bases are assumed safe.
        """
        governing_init = None
        for node, _module in self._chain(ctx, classes, qual):
            for item in node.body:
                if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if item.name in ("__reduce__", "__reduce_ex__"):
                    return None
                if item.name == "__init__" and governing_init is None:
                    governing_init = item
        if governing_init is None:
            return None
        a = governing_init.args
        required = [
            p.arg
            for p, default in zip(a.kwonlyargs, a.kw_defaults)
            if default is None
        ]
        if not required:
            return None
        return "argument " + ", ".join(repr(n) for n in required)


#: The whole-program rule set, in id order (registered by rules.RULES).
DATAFLOW_RULES = (
    ExactAccumulationRule,
    NarrowingCastRule,
    RngThreadRule,
    WorkerPurityRule,
    WorkerAmbientStateRule,
    KernelHygieneRule,
    WorkerExceptionRule,
)
