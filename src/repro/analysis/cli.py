"""Command line for the static lint pass.

Invoked three ways, all equivalent:

* ``python -m repro.analysis [paths]``
* ``repro lint [paths]`` (subcommand of the main CLI)
* ``repro-lint [paths]`` (console script)

Exit status: 0 when clean, 1 when findings were reported, 2 on usage
errors.  Findings print one per line as ``path:line:col: RPxxx message``.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.engine import format_findings, lint_paths
from repro.analysis.rules import default_rules, rule_table

__all__ = ["build_parser", "main", "run_lint"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST lint pass enforcing the repro codebase idioms "
            "(RP001-RP008; see docs/ANALYSIS.md)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--paper",
        help="explicit PAPER.md for the RP008 section index "
        "(default: discovered upward from the first path)",
    )
    parser.add_argument(
        "--select",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    return parser


def run_lint(args) -> int:
    """Execute a parsed lint invocation; returns the process exit code."""
    if args.list_rules:
        for rule_id, name, summary in rule_table():
            print(f"{rule_id}  {name:16s} {summary}")
        return 0
    rules = default_rules()
    if args.select:
        wanted = {token.strip().upper() for token in args.select.split(",")}
        unknown = wanted - {r.id for r in rules}
        if unknown:
            print(
                f"error: unknown rule id(s): {', '.join(sorted(unknown))}",
                file=sys.stderr,
            )
            return 2
        rules = [r for r in rules if r.id in wanted]
    findings = lint_paths(args.paths, rules=rules, paper=args.paper)
    if findings:
        print(format_findings(findings))
        print(
            f"{len(findings)} finding(s); suppress deliberate exceptions "
            "with '# repro: noqa[RPxxx]' plus a justification",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv=None) -> int:
    return run_lint(build_parser().parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
