"""Command line for the static lint pass.

Invoked three ways, all equivalent:

* ``python -m repro.analysis [paths]``
* ``repro lint [paths]`` (subcommand of the main CLI)
* ``repro-lint [paths]`` (console script)

Exit status: 0 when clean (modulo the baseline), 1 when new findings were
reported, 2 on usage errors.  Findings print one per line as
``path:line:col: RPxxx message``, with ``--json`` / ``--sarif`` switching
to the machine-readable formats of :mod:`repro.analysis.report`.

A checked-in ``lint-baseline.json`` (discovered by walking up from the
first lint path, like ``PAPER.md``) suppresses accepted historical
findings; ``--write-baseline`` regenerates it from the current findings
and ``--no-baseline`` shows everything.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.engine import format_findings, lint_paths
from repro.analysis.report import (
    apply_baseline,
    find_baseline,
    findings_to_json,
    findings_to_sarif,
    rules_markdown_table,
    write_baseline,
)
from repro.analysis.rules import default_rules, rule_table

__all__ = ["build_parser", "main", "run_lint"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "whole-program lint pass enforcing the repro codebase idioms "
            "(RP001-RP018; see docs/ANALYSIS.md)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--paper",
        help="explicit PAPER.md for the RP008 section index "
        "(default: discovered upward from the first path)",
    )
    parser.add_argument(
        "--select",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    parser.add_argument(
        "--rules-md",
        action="store_true",
        help="print the generated docs/ANALYSIS.md rule table and exit",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit findings as a JSON array",
    )
    parser.add_argument(
        "--sarif",
        action="store_true",
        dest="as_sarif",
        help="emit findings as a SARIF 2.1.0 log",
    )
    parser.add_argument(
        "--baseline",
        help="explicit baseline file (default: lint-baseline.json "
        "discovered upward from the first path)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report every finding",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to the baseline file and exit 0",
    )
    return parser


def _resolve_baseline(args):
    if args.no_baseline:
        return None
    if args.baseline:
        p = Path(args.baseline)
        return p if p.is_file() or args.write_baseline else None
    return find_baseline(args.paths[0]) if args.paths else None


def run_lint(args) -> int:
    """Execute a parsed lint invocation; returns the process exit code."""
    if args.list_rules:
        for rule_id, name, summary in rule_table():
            print(f"{rule_id}  {name:18s} {summary}")
        return 0
    if args.rules_md:
        print(rules_markdown_table())
        return 0
    rules = default_rules()
    if args.select:
        wanted = {token.strip().upper() for token in args.select.split(",")}
        unknown = wanted - {r.id for r in rules}
        if unknown:
            print(
                f"error: unknown rule id(s): {', '.join(sorted(unknown))}",
                file=sys.stderr,
            )
            return 2
        rules = [r for r in rules if r.id in wanted]
    findings = lint_paths(args.paths, rules=rules, paper=args.paper)

    if args.write_baseline:
        target = (
            Path(args.baseline)
            if args.baseline
            else (find_baseline(args.paths[0]) if args.paths else None)
        )
        if target is None:
            target = Path.cwd() / "lint-baseline.json"
        write_baseline(findings, target)
        print(
            f"wrote {len(findings)} finding(s) to {target}", file=sys.stderr
        )
        return 0

    baseline_path = _resolve_baseline(args)
    baselined = []
    if baseline_path is not None:
        findings, baselined = apply_baseline(findings, baseline_path)

    if args.as_sarif:
        print(json.dumps(findings_to_sarif(findings), indent=2))
    elif args.as_json:
        print(findings_to_json(findings))
    elif findings:
        print(format_findings(findings))
    if findings:
        note = (
            f"{len(findings)} finding(s); suppress deliberate exceptions "
            "with '# repro: noqa[RPxxx]' plus a justification"
        )
        if baselined:
            note += f" ({len(baselined)} baselined finding(s) hidden)"
        print(note, file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    return run_lint(build_parser().parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
