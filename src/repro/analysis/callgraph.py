"""Best-effort static call graph over a :class:`~repro.analysis.project.ProjectModel`.

The graph is *conservative in the useful direction* for the checkers built
on it: an edge exists only when the callee resolves statically (direct
name, module-attribute chain, nested function, or re-export), so
reachability sets err on the small side and findings come with an actual
witness path.  Dynamic dispatch (methods on objects, callables passed as
values) is out of scope — with two deliberate exceptions that the
worker-purity checkers depend on:

* ``<pool>.submit(fn, ...)`` marks ``fn`` as a **worker entry point**
  (the process-pool fan-out of ``repro.perf.workers``);
* ``functools.partial(fn, ...)`` records an edge to ``fn`` *and* marks it
  as a worker entry, because the drivers ship branch jobs to the pool as
  partials (``mlnd_ordering``'s ``_mlnd_branch_job``).  Over-approximating
  every partial target as worker-reachable is the safe direction for a
  purity checker.

Call-path traces ("``partition → _recurse → part_weights``") are computed
by a backward BFS from the offending function to the nearest **entry
function** (one no project function calls), which is how findings explain
*how* a driver reaches the defect.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass

__all__ = ["CallSite", "CallGraph", "build_call_graph"]


@dataclass(frozen=True)
class CallSite:
    """One resolved project-internal call."""

    caller: str  #: qualname of the calling function ("" for module level)
    callee: str  #: qualname of the resolved callee
    node: object  #: the ``ast.Call``
    module: str  #: dotted name of the module containing the call


class CallGraph:
    """Forward/backward edges plus worker-entry bookkeeping."""

    def __init__(self, project):
        self.project = project
        #: caller qualname -> set of callee qualnames.
        self.edges: dict[str, set] = {}
        #: callee qualname -> set of caller qualnames.
        self.callers: dict[str, set] = {}
        #: every resolved project-internal call.
        self.call_sites: list[CallSite] = []
        #: qualnames handed to ``.submit`` / ``functools.partial``.
        self.worker_entries: set = set()

    def add_edge(self, caller: str, callee: str) -> None:
        self.edges.setdefault(caller, set()).add(callee)
        self.callers.setdefault(callee, set()).add(caller)

    def reachable_from(self, roots) -> set:
        """Transitive closure of ``roots`` over forward edges (roots included)."""
        seen = set()
        queue = deque(r for r in roots if r in self.project.functions)
        seen.update(queue)
        while queue:
            cur = queue.popleft()
            for nxt in self.edges.get(cur, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    queue.append(nxt)
        return seen

    def worker_reachable(self) -> set:
        """Functions reachable from the process-pool branch entry points."""
        return self.reachable_from(self.worker_entries)

    def entry_path_to(self, target: str) -> list:
        """Shortest caller chain from an entry function to ``target``.

        Returns qualnames ``[entry, ..., target]``; ``[target]`` when the
        function is itself an entry (or unreachable — no caller resolves).
        """
        prev = {target: None}
        queue = deque([target])
        best_entry = None
        while queue:
            cur = queue.popleft()
            callers = self.callers.get(cur, set()) - {""}
            if not callers:
                best_entry = cur
                break
            for c in sorted(callers):
                if c not in prev:
                    prev[c] = cur
                    queue.append(c)
        if best_entry is None:
            return [target]
        path = []
        cur = best_entry
        while cur is not None:
            path.append(cur)
            cur = prev[cur]
        return path

    def display_path(self, target: str) -> list:
        """:meth:`entry_path_to` with short (unqualified) function names."""
        return [q.rsplit(".", 1)[-1] for q in self.entry_path_to(target)]


def _enclosing_scope(module, node):
    """Chain of FunctionInfo enclosing ``node``, outermost first."""
    funcs = []
    for anc in module.ancestors(node):
        if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
            funcs.append(anc)
    funcs.reverse()
    infos, prefix = [], module.name
    for f in funcs:
        # Reconstruct the qualname the project model registered.
        qual = f"{prefix}.{f.name}"
        info = module.functions.get(qual)
        if info is None:
            # Method or conditionally-scoped def: search by node identity.
            info = next(
                (i for i in module.functions.values() if i.node is f), None
            )
        if info is not None:
            infos.append(info)
            prefix = info.qualname
        else:
            prefix = qual
    return tuple(infos)


def build_call_graph(project) -> CallGraph:
    """Resolve every call in ``project`` into a :class:`CallGraph`."""
    graph = CallGraph(project)
    for module in project.modules.values():
        for call in module.by_type(ast.Call):
            scope = _enclosing_scope(module, call)
            caller = scope[-1].qualname if scope else ""
            callee = project.resolve_call(call.func, module, scope)
            if callee is not None:
                graph.add_edge(caller, callee.qualname)
                graph.call_sites.append(
                    CallSite(caller, callee.qualname, call, module.name)
                )
            _note_worker_entry(project, graph, module, call, scope)
    return graph


def _note_worker_entry(project, graph, module, call, scope) -> None:
    """Mark ``fn`` in ``pool.submit(fn, ...)`` / ``partial(fn, ...)``."""
    func = call.func
    is_submit = isinstance(func, ast.Attribute) and func.attr == "submit"
    is_partial = False
    if isinstance(func, ast.Name) or isinstance(func, ast.Attribute):
        dotted = project.dotted_of(func, module, scope)
        if dotted in ("functools.partial", "partial"):
            is_partial = True
    if not (is_submit or is_partial) or not call.args:
        return
    target = project.resolve_call(call.args[0], module, scope)
    if target is None:
        return
    caller = scope[-1].qualname if scope else ""
    graph.worker_entries.add(target.qualname)
    graph.add_edge(caller, target.qualname)
