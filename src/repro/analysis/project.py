"""The whole-program project model: parse once, resolve names once.

The per-file rules (``RP001`` … ``RP011``) only ever needed one module's
AST, so the original engine handed each rule a freshly parsed tree.  The
whole-program rules (``RP012`` … ``RP016``) need to see *across* modules —
"which functions can a pool worker reach?", "does every caller thread its
``rng``?" — so this module builds the shared substrate exactly once per
lint invocation:

* :class:`ModuleInfo` — one parsed module: source, AST, a single cached
  ``ast.walk`` node list (every rule filters this list instead of
  re-walking), a node→parent map, the suppression table, the import
  bindings and the module-level name set;
* :class:`ProjectModel` — all modules keyed by dotted name and by path,
  a symbol table of every function (nested ones included), import and
  re-export resolution, and the call-site resolver the call graph and
  dataflow passes are built on.

Module names are computed relative to the *package root*: for a directory
that is itself a package (has ``__init__.py``) the root is its parent, so
``src/repro/core/kway.py`` becomes ``repro.core.kway``; fixture trees
without ``__init__.py`` files resolve the same way relative to the linted
directory's parent, so synthetic packages in tests behave like the real
tree.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.suppress import collect_suppressions

__all__ = [
    "FunctionInfo",
    "ModuleInfo",
    "ProjectModel",
    "build_project",
    "MISSING",
]

#: Sentinel for "parameter has no default" in :attr:`FunctionInfo.defaults`.
MISSING = object()

#: Resolution depth bound for re-export chains (``from a import b`` where
#: ``a.b`` is itself ``from c import b`` …).  Real chains are 1–2 deep.
_MAX_REEXPORT_DEPTH = 10


@dataclass
class FunctionInfo:
    """One function (or method, or nested function) in the project."""

    qualname: str  #: fully dotted, e.g. ``repro.core.kway._branch_job``
    module: str  #: dotted module name
    node: object  #: the ``ast.FunctionDef`` / ``ast.AsyncFunctionDef``
    #: positional + keyword-only parameter names, in declaration order
    #: (``self``/``cls`` included for methods — callers index accordingly).
    params: tuple = ()
    #: parameter name → default AST node, or :data:`MISSING`.
    defaults: dict = field(default_factory=dict)
    has_vararg: bool = False
    has_kwarg: bool = False
    #: qualnames of nested functions defined directly inside this one.
    children: tuple = ()

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]


@dataclass
class ModuleInfo:
    """One parsed module plus everything the rules may ask about it."""

    name: str  #: dotted module name
    path: Path
    source: str
    tree: ast.AST
    parts: tuple = ()  #: path components (location-based rule scoping)
    #: single cached traversal: ``list(ast.walk(tree))`` — rules filter
    #: this instead of re-walking the tree.
    nodes: list = field(default_factory=list)
    #: ``id(node) -> parent node`` for ancestor walks (guard detection).
    parents: dict = field(default_factory=dict)
    #: per-line ``# repro: noqa`` suppression table.
    suppressions: dict = field(default_factory=dict)
    #: local name → dotted target ("np" → "numpy",
    #: "part_weights" → "repro.graph.partition.part_weights").
    imports: dict = field(default_factory=dict)
    #: names bound at module level (assignments, defs, imports) — the
    #: state the worker-purity rules protect.
    top_names: set = field(default_factory=set)
    #: function qualname → :class:`FunctionInfo` for functions defined here.
    functions: dict = field(default_factory=dict)
    #: lazily built ``type -> [nodes]`` index over :attr:`nodes`.
    _by_type: dict = field(default_factory=dict)

    def by_type(self, *types):
        """All nodes of the given AST types, from the shared traversal."""
        out = []
        for t in types:
            if t not in self._by_type:
                self._by_type[t] = [n for n in self.nodes if type(n) is t]
            out.extend(self._by_type[t])
        return out

    def ancestors(self, node):
        """Yield ``node``'s ancestors, innermost first."""
        cur = self.parents.get(id(node))
        while cur is not None:
            yield cur
            cur = self.parents.get(id(cur))

    def line_text(self, lineno: int) -> str:
        lines = self.source.splitlines()
        if 1 <= lineno <= len(lines):
            return lines[lineno - 1].strip()
        return ""


def _module_name_for(path: Path, root_hint: Path | None = None) -> str:
    """Dotted module name for ``path``.

    Walks up while ``__init__.py`` marks package directories; when
    ``root_hint`` is given (the linted directory), it is treated as a
    package root even without ``__init__.py`` so fixture trees resolve.
    """
    path = path.resolve()
    root = root_hint.resolve() if root_hint is not None else None
    parts = [path.stem] if path.stem != "__init__" else []
    cur = path.parent
    while True:
        is_pkg = (cur / "__init__.py").is_file()
        hinted = root is not None and (cur == root or root in cur.parents)
        if is_pkg or hinted:
            parts.insert(0, cur.name)
            if cur == root and not is_pkg:
                break
            cur = cur.parent
        else:
            break
    return ".".join(parts) if parts else path.stem


def _build_parents(tree) -> dict:
    parents: dict[int, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[id(child)] = node
    return parents


def _collect_functions(module: ModuleInfo) -> None:
    """Register every function in ``module``, nested defs included."""

    def visit(node, prefix, parent_info):
        children = []
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}.{child.name}"
                info = _function_info(qual, module.name, child)
                module.functions[qual] = info
                children.append(qual)
                visit(child, qual, info)
            elif isinstance(child, ast.ClassDef):
                visit(child, f"{prefix}.{child.name}", None)
            elif isinstance(
                child, (ast.If, ast.Try, ast.With, ast.For, ast.While)
            ):
                # Conditionally defined functions still belong to the scope.
                visit(child, prefix, parent_info)
        if parent_info is not None:
            parent_info.children = tuple(children)

    visit(module.tree, module.name, None)


def _function_info(qualname, module_name, node) -> FunctionInfo:
    a = node.args
    params = [p.arg for p in (*a.posonlyargs, *a.args, *a.kwonlyargs)]
    defaults: dict[str, object] = {p: MISSING for p in params}
    pos = [*a.posonlyargs, *a.args]
    for param, default in zip(pos[len(pos) - len(a.defaults):], a.defaults):
        defaults[param.arg] = default
    for param, default in zip(a.kwonlyargs, a.kw_defaults):
        if default is not None:
            defaults[param.arg] = default
    return FunctionInfo(
        qualname=qualname,
        module=module_name,
        node=node,
        params=tuple(params),
        defaults=defaults,
        has_vararg=a.vararg is not None,
        has_kwarg=a.kwarg is not None,
    )


def _collect_imports(module: ModuleInfo) -> None:
    for node in module.by_type(ast.Import):
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            target = alias.name if alias.asname else alias.name.split(".")[0]
            module.imports[local] = target
            module.top_names.add(local)
    pkg_parts = module.name.split(".")
    for node in module.by_type(ast.ImportFrom):
        if node.level:
            # Relative import: resolve against this module's package.
            base_parts = pkg_parts[: len(pkg_parts) - node.level]
            base = ".".join(base_parts + ([node.module] if node.module else []))
        else:
            base = node.module or ""
        for alias in node.names:
            if alias.name == "*":
                continue
            local = alias.asname or alias.name
            module.imports[local] = f"{base}.{alias.name}" if base else alias.name
            module.top_names.add(local)


def _collect_top_names(module: ModuleInfo) -> None:
    for node in module.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            module.top_names.add(node.name)
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for t in targets:
                for inner in ast.walk(t):
                    if isinstance(inner, ast.Name):
                        module.top_names.add(inner.id)


class ProjectModel:
    """All linted modules plus cross-module name resolution."""

    def __init__(self):
        self.modules: dict[str, ModuleInfo] = {}
        self.modules_by_path: dict[Path, ModuleInfo] = {}
        #: every function in the project, keyed by dotted qualname.
        self.functions: dict[str, FunctionInfo] = {}
        #: files the parser rejected: ``[(path, lineno, col, message)]``.
        self.errors: list = []

    # -- construction --------------------------------------------------

    def add_file(self, path: Path, root_hint: Path | None = None) -> None:
        path = Path(path)
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            self.errors.append((path, 1, 1, f"cannot read file: {exc}"))
            return
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            self.errors.append(
                (path, exc.lineno or 1, exc.offset or 1, f"syntax error: {exc.msg}")
            )
            return
        module = ModuleInfo(
            name=_module_name_for(path, root_hint),
            path=path,
            source=source,
            tree=tree,
            parts=path.parts,
            nodes=list(ast.walk(tree)),
            parents=_build_parents(tree),
            suppressions=collect_suppressions(source),
        )
        _collect_imports(module)
        _collect_top_names(module)
        _collect_functions(module)
        self.modules[module.name] = module
        self.modules_by_path[path] = module
        self.functions.update(module.functions)

    # -- resolution ----------------------------------------------------

    def resolve_dotted(self, dotted: str, _depth: int = 0):
        """Resolve a dotted name to a :class:`FunctionInfo`, following
        re-export chains through package ``__init__`` modules.

        Returns ``None`` for external names (numpy, stdlib) and anything
        the static model cannot see.
        """
        if _depth > _MAX_REEXPORT_DEPTH:
            return None
        if dotted in self.functions:
            return self.functions[dotted]
        if "." not in dotted:
            return None
        base, leaf = dotted.rsplit(".", 1)
        module = self.modules.get(base)
        if module is None:
            # ``base`` may itself be a re-exported name one level up.
            resolved_base = self._resolve_module(base, _depth + 1)
            module = resolved_base
        if module is None:
            return None
        qual = f"{module.name}.{leaf}"
        if qual in self.functions:
            return self.functions[qual]
        target = module.imports.get(leaf)
        if target is not None:
            return self.resolve_dotted(target, _depth + 1)
        return None

    def _resolve_module(self, dotted: str, _depth: int = 0):
        if _depth > _MAX_REEXPORT_DEPTH:
            return None
        if dotted in self.modules:
            return self.modules[dotted]
        if "." not in dotted:
            return None
        base, leaf = dotted.rsplit(".", 1)
        parent = self._resolve_module(base, _depth + 1)
        if parent is None:
            return None
        target = parent.imports.get(leaf)
        if target is None:
            return None
        return self._resolve_module(target, _depth + 1)

    def dotted_of(self, node, module: ModuleInfo, scope=()) -> str | None:
        """Dotted name a Name/Attribute expression refers to, or ``None``.

        ``scope`` is the chain of enclosing :class:`FunctionInfo` objects,
        outermost first, used to resolve references to nested functions.
        """
        chain = []
        cur = node
        while isinstance(cur, ast.Attribute):
            chain.append(cur.attr)
            cur = cur.value
        if not isinstance(cur, ast.Name):
            return None
        chain.append(cur.id)
        chain.reverse()
        base = chain[0]
        # Innermost enclosing scope first: nested function references.
        for info in reversed(scope):
            child_qual = f"{info.qualname}.{base}"
            if child_qual in self.functions:
                return ".".join([child_qual] + chain[1:])
        # Module top-level definition.
        top_qual = f"{module.name}.{base}"
        if top_qual in self.functions:
            return ".".join([top_qual] + chain[1:])
        # Import binding.
        target = module.imports.get(base)
        if target is not None:
            return ".".join([target] + chain[1:])
        return None

    def resolve_call(self, func_expr, module: ModuleInfo, scope=()):
        """Resolve a call's function expression to a :class:`FunctionInfo`."""
        dotted = self.dotted_of(func_expr, module, scope)
        if dotted is None:
            return None
        return self.resolve_dotted(dotted)


def build_project(files, roots=None) -> ProjectModel:
    """Parse ``files`` (each exactly once) into a :class:`ProjectModel`.

    ``roots`` maps each file to the directory it was discovered under, so
    fixture trees without ``__init__.py`` markers still get dotted names.
    """
    project = ProjectModel()
    roots = roots or {}
    for path in files:
        project.add_file(Path(path), root_hint=roots.get(Path(path)))
    return project
