"""The repo-specific lint rules (``RP001`` … ``RP018``).

Each rule encodes an idiom this codebase relies on for *correctness* — the
delicate incremental machinery of the multilevel pipeline fails silently
(plausible but wrong cuts) rather than loudly, so the conventions below are
load-bearing, not stylistic:

========  ============================================================
RP001     randomness must be seeded and threaded through
          :mod:`repro.utils.rng` (determinism of every experiment)
RP002     CSR arrays (``xadj``/``adjncy``/``adjwgt``/``vwgt``) are
          immutable outside ``graph/`` (algorithms share views)
RP003     no bare ``except:`` / no silently-swallowed ``except
          Exception`` (invariant violations must surface)
RP004     no ``==``/``!=`` on float literals or gain/cut values
          (cut arithmetic is exact integer arithmetic)
RP005     raised exceptions derive from ``ReproError`` (callers catch
          the library with one clause)
RP006     no ``print()`` in library code (CLI and bench excepted)
RP007     package ``__init__`` modules declare ``__all__``
RP008     ``§N.M`` docstring citations must exist in ``PAPER.md``
RP009     a ``ReproError`` fallback handler in ``core/``/``ordering/``
          must record the event to a ``ResilienceReport`` or re-raise
          (silent fallbacks make degraded results unauditable)
RP010     tracer spans are entered with ``with`` (never called bare)
          and ``core/`` emits events through an open span, not directly
          on a tracer (keeps the trace a well-nested span tree)
RP011     hot paths use the cached CSR expansions (``graph.degrees()``,
          ``graph.edge_sources()``) instead of rebuilding them
RP012     integer weight data is never accumulated in float64
          (``np.bincount(weights=...)`` rounds above 2**53)
RP013     weight data stays int64 — no narrowing or float casts
RP014     the seed thread survives every call-graph path, and no
          entropy is reachable from the ``workers=N`` pool entries
RP015     worker-reachable code never mutates module-level state
RP016     worker-reachable code never mutates ambient process state
          (``os.environ``, ``os.chdir``, global RNG seeds)
RP017     kernel backend modules are reachable only through the
          :mod:`repro.kernels` registry, and ``numba`` is never
          imported at module level (optional-dependency hygiene)
RP018     worker-reachable code raises only exceptions that survive
          the pool result pipe: ``ReproError`` subclasses, never a
          class that the default exception pickling cannot rebuild
========  ============================================================

``RP001`` … ``RP011`` are per-file rules over one module's AST;
``RP012`` … ``RP018`` are whole-program rules over the project model and
call graph (:mod:`repro.analysis.project`, :mod:`repro.analysis.dataflow`).
This table is rendered into ``docs/ANALYSIS.md`` by
:func:`repro.analysis.report.rules_markdown_table` — regenerate with
``repro lint --rules-md`` instead of editing the doc by hand.

Suppress a deliberate exception with ``# repro: noqa[RPxxx]`` plus a
justification comment (see :mod:`repro.analysis.suppress`).
"""

from __future__ import annotations

import ast

from repro.analysis.engine import Rule
from repro.analysis.dataflow import (
    BUILTIN_EXCEPTIONS as _BUILTIN_EXCEPTIONS,
    DATAFLOW_RULES,
    PROTOCOL_EXCEPTIONS as _PROTOCOL_EXCEPTIONS,
    SEEDED_RANDOM_API as _SEEDED_RANDOM_API,
    is_np_random as _is_np_random,
)

__all__ = ["Rule", "default_rules", "RULES", "PER_FILE_RULES", "rule_table"]

#: The CSR array attribute names protected by RP002.
CSR_ARRAYS = frozenset({"xadj", "adjncy", "adjwgt", "vwgt"})


def _operand_name(node):
    """Identifier of a Name/Attribute operand, else ``None``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


class SeededRandomRule(Rule):
    """RP001 — unseeded or literal-seeded randomness outside utils/rng.py.

    Every experiment in the paper runs with a fixed, *threaded* seed.  The
    repo idiom is: public entry points accept ``seed``/``rng`` and convert
    once via :func:`repro.utils.rng.as_generator`; internal code only ever
    receives ``Generator`` objects.  Flagged:

    * ``np.random.default_rng()`` with no argument — fresh entropy, the
      run is unreproducible;
    * ``np.random.default_rng(<literal>)`` — a hard-coded seed severs the
      caller's seed thread (results stop responding to ``seed=``);
    * any legacy ``np.random.<fn>`` global-state call (``rand``,
      ``shuffle``, ``seed``, …).
    """

    id = "RP001"
    name = "seeded-random"
    summary = "unseeded/hard-coded RNG outside utils/rng.py"
    doc = (
        "No unseeded `np.random.default_rng()`, no hard-coded seed "
        "severing the caller's seed thread, no legacy `np.random.<fn>` "
        "global-state calls. Thread a Generator via "
        "`repro.utils.rng.as_generator`. In `tests/`/`benchmarks/` a "
        "literal seed is the deterministic idiom and is allowed."
    )

    #: Directories where a hard-coded literal seed *is* the deterministic
    #: idiom (a test fixture pinning its own stream) and is not flagged.
    _LITERAL_SEED_OK_DIRS = frozenset({"tests", "benchmarks", "bench"})

    def check(self, ctx):
        if len(ctx.parts) >= 2 and ctx.parts[-2:] == ("utils", "rng.py"):
            return
        literal_ok = bool(self._LITERAL_SEED_OK_DIRS.intersection(ctx.parts))
        for node in ctx.walk():
            if not isinstance(node, ast.Attribute) or not _is_np_random(node.value):
                continue
            if node.attr not in _SEEDED_RANDOM_API:
                yield ctx.finding(
                    node,
                    self.id,
                    f"legacy global-state RNG call np.random.{node.attr}; "
                    "thread a Generator via repro.utils.rng.as_generator",
                )
        for node in ctx.walk():
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "default_rng"
                and _is_np_random(node.func.value)
            ):
                continue
            if not node.args and not node.keywords:
                yield ctx.finding(
                    node,
                    self.id,
                    "unseeded np.random.default_rng(): run is not "
                    "reproducible; accept a seed/rng parameter and use "
                    "repro.utils.rng.as_generator",
                )
            elif (
                node.args
                and isinstance(node.args[0], ast.Constant)
                and not literal_ok
            ):
                yield ctx.finding(
                    node,
                    self.id,
                    "hard-coded seed "
                    f"np.random.default_rng({node.args[0].value!r}) ignores "
                    "the caller's seed; thread a seed/rng parameter through "
                    "repro.utils.rng.as_generator",
                )


class CSRMutationRule(Rule):
    """RP002 — mutation of CSR arrays outside ``graph/``.

    ``CSRGraph`` is immutable by convention: algorithms alias its arrays
    (``xadj = graph.xadj``) and share views across hierarchy levels, so an
    in-place write anywhere corrupts every holder of the graph.  Only the
    ``graph/`` package (the constructors and the contraction kernel) may
    write to arrays named ``xadj``/``adjncy``/``adjwgt``/``vwgt``.
    """

    id = "RP002"
    name = "csr-immutable"
    summary = "CSR array mutated outside graph/"
    doc = (
        "`CSRGraph` arrays (`xadj`/`adjncy`/`adjwgt`/`vwgt`) are shared "
        "views across hierarchy levels; only `graph/` (constructors and "
        "the contraction kernel) may write to them — everyone else builds "
        "a new graph."
    )

    def check(self, ctx):
        if "graph" in ctx.parts:
            return
        for node in ctx.walk():
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    yield from self._check_target(ctx, target)

    def _check_target(self, ctx, target):
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                yield from self._check_target(ctx, elt)
            return
        if isinstance(target, ast.Starred):
            yield from self._check_target(ctx, target.value)
            return
        if isinstance(target, ast.Subscript):
            name = _operand_name(target.value)
            if name in CSR_ARRAYS:
                yield ctx.finding(
                    target,
                    self.id,
                    f"in-place write to CSR array {name!r}; CSR graphs are "
                    "immutable outside graph/ — build a new graph instead",
                )
        elif isinstance(target, ast.Attribute) and target.attr in CSR_ARRAYS:
            yield ctx.finding(
                target,
                self.id,
                f"rebinding CSR attribute .{target.attr}; CSR graphs are "
                "immutable outside graph/ — construct a new CSRGraph",
            )


class ExceptionSwallowRule(Rule):
    """RP003 — bare ``except:`` or swallowed ``except Exception``.

    The sanitizer and validators communicate exclusively through
    exceptions; a handler that catches everything and does not re-raise
    turns an invariant violation into a silent wrong answer.
    """

    id = "RP003"
    name = "no-swallow"
    summary = "bare except / except Exception without re-raise"
    doc = (
        "No bare `except:` and no `except Exception` that fails to "
        "re-raise — the sanitizer and validators communicate through "
        "exceptions, and a swallowed one turns an invariant violation "
        "into a silent wrong answer."
    )

    _BROAD = ("Exception", "BaseException")

    def check(self, ctx):
        for node in ctx.walk():
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield ctx.finding(
                    node,
                    self.id,
                    "bare 'except:' swallows everything including "
                    "SanitizerError; catch a specific exception",
                )
                continue
            names = []
            types = (
                node.type.elts if isinstance(node.type, ast.Tuple) else [node.type]
            )
            for t in types:
                name = _operand_name(t)
                if name in self._BROAD:
                    names.append(name)
            if names and not any(
                isinstance(inner, ast.Raise) for inner in ast.walk(node)
            ):
                yield ctx.finding(
                    node,
                    self.id,
                    f"'except {names[0]}' without re-raise swallows "
                    "library errors; catch a ReproError subclass or "
                    "re-raise",
                )


class FloatEqualityRule(Rule):
    """RP004 — ``==``/``!=`` against float literals or on gain/cut values.

    Edge-cut arithmetic is exact *integer* arithmetic (the paper's weights
    are integral and coarsening only sums them); a float creeping into a
    gain or cut comparison makes refinement decisions platform-dependent.
    Flagged: equality comparisons with a float literal operand, and
    equality between two operands whose names mention gain/cut (if both
    really are ints, suppress with a justified noqa).
    """

    id = "RP004"
    name = "exact-compare"
    summary = "float == / equality on gain-cut values"
    doc = (
        "No `==`/`!=` against float literals, and no equality between "
        "gain/cut-named operands unless both are provably exact integers "
        "(suppress with a justified noqa if so) — refinement decisions "
        "must not become platform-dependent."
    )

    _KEYWORDS = ("gain", "cut")

    def check(self, ctx):
        for node in ctx.walk():
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            operands = [node.left, *node.comparators]
            for operand in operands:
                if isinstance(operand, ast.Constant) and isinstance(
                    operand.value, float
                ):
                    yield ctx.finding(
                        node,
                        self.id,
                        f"equality comparison with float literal "
                        f"{operand.value!r}; cut/gain arithmetic must stay "
                        "integral (or compare with an explicit tolerance)",
                    )
                    break
            else:
                named = [
                    n
                    for n in map(_operand_name, operands)
                    if n and any(k in n.lower() for k in self._KEYWORDS)
                ]
                if len(named) >= 2:
                    yield ctx.finding(
                        node,
                        self.id,
                        f"equality comparison on gain/cut values "
                        f"({', '.join(named)}); ensure both sides are exact "
                        "integers (suppress with a justified noqa if so)",
                    )


class ErrorHierarchyRule(Rule):
    """RP005 — raised exceptions must derive from ``ReproError``.

    Callers catch everything the library may raise with one
    ``except ReproError`` clause.  Raising a builtin (``ValueError``,
    ``KeyError``, …) punches a hole in that contract.  ``TypeError``,
    ``AttributeError``, ``NotImplementedError`` and ``StopIteration`` are
    exempt: Python protocol semantics require those exact types.
    """

    id = "RP005"
    name = "error-hierarchy"
    summary = "builtin exception raised instead of a ReproError"
    doc = (
        "Raised exceptions derive from `ReproError` (see "
        "`repro.utils.errors`) so callers can catch the library with one "
        "clause; `TypeError`/`AttributeError`/`NotImplementedError`/"
        "`StopIteration` are exempt (Python protocol semantics)."
    )

    def check(self, ctx):
        for node in ctx.walk():
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            if isinstance(exc, ast.Call):
                exc = exc.func
            name = _operand_name(exc)
            if name in _BUILTIN_EXCEPTIONS and name not in _PROTOCOL_EXCEPTIONS:
                yield ctx.finding(
                    node,
                    self.id,
                    f"raises builtin {name}; raise a ReproError subclass "
                    "(see repro.utils.errors, e.g. ConfigurationError) so "
                    "callers can catch the library with one clause",
                )


class NoPrintRule(Rule):
    """RP006 — no ``print()`` in library code.

    Library output belongs to the caller; stray prints corrupt the CLI's
    machine-readable output and pollute pytest.  The CLI front-ends
    (``cli.py``, ``__main__.py``) and the bench/reporting layers are
    exempt — writing to stdout is their job.
    """

    id = "RP006"
    name = "no-print"
    summary = "print() in library code"
    doc = (
        "No `print()` in library code — stray output corrupts the CLI's "
        "machine-readable output. The CLI front-ends and bench/reporting "
        "layers own stdout and are exempt."
    )

    _EXEMPT_FILES = frozenset({"cli.py", "__main__.py"})
    _EXEMPT_DIRS = frozenset({"bench", "benchmarks"})

    def check(self, ctx):
        if ctx.parts and ctx.parts[-1] in self._EXEMPT_FILES:
            return
        if self._EXEMPT_DIRS.intersection(ctx.parts):
            return
        for node in ctx.walk():
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield ctx.finding(
                    node,
                    self.id,
                    "print() in library code; return values or raise — "
                    "only cli/bench layers own stdout",
                )


class DunderAllRule(Rule):
    """RP007 — package ``__init__`` modules must declare ``__all__``.

    The ``__init__`` modules are the public API surface; an explicit
    ``__all__`` keeps re-exports deliberate and lets the API doc stay in
    sync.  Only ``__init__.py`` files with actual content (imports or
    definitions) are required to declare one.
    """

    id = "RP007"
    name = "declare-all"
    summary = "public package __init__ without __all__"
    doc = (
        "Package `__init__` modules with content must declare `__all__` — "
        "the export surface stays deliberate and the API doc stays in "
        "sync."
    )

    def check(self, ctx):
        if not ctx.parts or ctx.parts[-1] != "__init__.py":
            return
        has_content = False
        for node in ctx.tree.body:
            if isinstance(
                node,
                (
                    ast.Import,
                    ast.ImportFrom,
                    ast.FunctionDef,
                    ast.AsyncFunctionDef,
                    ast.ClassDef,
                ),
            ):
                has_content = True
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for t in targets:
                    if isinstance(t, ast.Name) and t.id == "__all__":
                        return
                has_content = True
        if has_content:
            yield ctx.finding(
                1,
                self.id,
                "public package __init__ defines names but no __all__; "
                "declare the intended export surface",
            )


class PaperSectionRule(Rule):
    """RP008 — ``§N.M`` docstring citations must exist in PAPER.md.

    Docstrings ground every algorithm in the paper ("the coarsening phase
    (§3.1)"); a citation to a non-existent section means the docstring and
    the paper drifted apart.  Skipped when no ``PAPER.md`` is found.
    """

    id = "RP008"
    name = "paper-section"
    summary = "docstring cites a paper section missing from PAPER.md"
    doc = (
        "Every `§N.M` docstring citation must exist in `PAPER.md`'s "
        "section outline; a dangling citation means docstring and paper "
        "drifted apart. Skipped when no `PAPER.md` is found."
    )

    def check(self, ctx):
        from repro.analysis.sections import section_tokens

        if ctx.sections is None:
            return
        for node in ctx.walk():
            if not isinstance(
                node,
                (ast.Module, ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef),
            ):
                continue
            doc = ast.get_docstring(node, clean=False)
            if not doc:
                continue
            doc_node = node.body[0].value
            for offset, text in enumerate(doc.splitlines()):
                for token in sorted(section_tokens(text)):
                    if token not in ctx.sections:
                        line = getattr(doc_node, "lineno", 1) + offset
                        yield ctx.finding(
                            line,
                            self.id,
                            f"docstring cites §{token}, which PAPER.md does "
                            "not declare; fix the citation or update the "
                            "section outline",
                        )


#: ``ReproError`` and its subclasses — the names RP009 treats as library
#: fallback catches (mirrors :mod:`repro.utils.errors`).
_REPRO_ERRORS = frozenset(
    {
        "ReproError",
        "ConfigurationError",
        "GraphValidationError",
        "PartitionError",
        "OrderingError",
        "SpectralConvergenceError",
        "DeadlineExceededError",
        "SanitizerError",
        "TraceError",
        "UnknownWorkloadError",
    }
)


class FallbackRecordRule(Rule):
    """RP009 — fallback handlers in the pipeline must leave an audit trail.

    The resilience design (docs/RESILIENCE.md) promises that every
    degraded result says *how* it degraded: a ``ResilienceReport`` event
    for each fallback.  An ``except ReproError``-family handler inside
    ``core/`` or ``ordering/`` that neither re-raises nor calls
    ``*.record(...)`` breaks that promise — the run silently produces a
    different (worse) answer with no trace.  Handlers that re-raise (even
    conditionally) are exempt, as are modules outside the pipeline
    packages.
    """

    id = "RP009"
    name = "record-fallback"
    summary = "ReproError fallback without a ResilienceReport record"
    doc = (
        "An `except ReproError`-family handler in `core/`/`ordering/` "
        "must re-raise or call `report.record(...)` — every degraded "
        "result must say how it degraded (docs/RESILIENCE.md)."
    )

    _PACKAGES = frozenset({"core", "ordering"})

    def check(self, ctx):
        if not self._PACKAGES.intersection(ctx.parts):
            return
        for node in ctx.walk():
            if not isinstance(node, ast.ExceptHandler) or node.type is None:
                continue
            types = (
                node.type.elts if isinstance(node.type, ast.Tuple) else [node.type]
            )
            caught = [n for n in map(_operand_name, types) if n in _REPRO_ERRORS]
            if not caught:
                continue
            reraises = any(isinstance(inner, ast.Raise) for inner in ast.walk(node))
            records = any(
                isinstance(inner, ast.Call)
                and isinstance(inner.func, ast.Attribute)
                and inner.func.attr == "record"
                for inner in ast.walk(node)
            )
            if not reraises and not records:
                yield ctx.finding(
                    node,
                    self.id,
                    f"'except {caught[0]}' falls back without recording to a "
                    "ResilienceReport; call report.record(...) or re-raise "
                    "so degraded results stay auditable",
                )


class ObsHygieneRule(Rule):
    """RP010 — tracing hygiene: spans are ``with``-entered, events nested.

    The trace schema (docs/OBSERVABILITY.md) is a *well-nested span tree*:
    ``Tracer.span`` is a context manager whose exit writes the span record,
    so calling it without entering it silently drops the span (and its
    duration) from the trace.  Similarly, pipeline code in ``core/`` emits
    per-level/per-pass events through the *span* handed down by the driver
    — an event fired directly on a tracer there floats outside every phase
    span and breaks the per-phase reconciliation ``repro trace`` performs.
    Two checks:

    * anywhere: ``<tracer>.span(...)`` must appear as a ``with`` item;
    * in ``core/``: ``<tracer>.event(...)`` must sit lexically inside a
      ``with <tracer>.span(...)`` block.

    Receivers named ``sp``/``span`` are span objects, not tracers, and are
    exempt — ``if span: span.event(...)`` is the blessed call-site idiom.
    """

    id = "RP010"
    name = "obs-hygiene"
    summary = "bare Tracer.span() call or un-nested tracer event in core/"
    doc = (
        "`Tracer.span(...)` must be entered with `with` (the record is "
        "written on exit), and `core/` emits events through the span "
        "handed down by the driver so the trace stays a well-nested span "
        "tree (docs/OBSERVABILITY.md)."
    )

    _TRACER_NAMES = frozenset({"trc", "tracer"})

    def _tracerish(self, node) -> bool:
        """Whether ``node`` reads like a tracer receiver (not a span)."""
        if isinstance(node, ast.Name):
            return node.id in self._TRACER_NAMES
        return isinstance(node, ast.Attribute) and node.attr == "tracer"

    def check(self, ctx):
        entered = set()   # span-call nodes used as with-items
        spanning = []     # (lineno, end_lineno) of with-blocks opening a span
        for node in ctx.walk():
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            for item in node.items:
                call = item.context_expr
                if (
                    isinstance(call, ast.Call)
                    and isinstance(call.func, ast.Attribute)
                    and call.func.attr == "span"
                    and self._tracerish(call.func.value)
                ):
                    entered.add(id(call))
                    spanning.append((node.lineno, node.end_lineno))
        in_core = "core" in ctx.parts
        for node in ctx.walk():
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and self._tracerish(node.func.value)
            ):
                continue
            if node.func.attr == "span" and id(node) not in entered:
                yield ctx.finding(
                    node,
                    self.id,
                    "Tracer.span(...) called outside a 'with' statement; "
                    "the span record is only written when the context "
                    "manager exits",
                )
            elif node.func.attr == "event" and in_core:
                inside = any(
                    lo <= node.lineno <= hi for lo, hi in spanning
                )
                if not inside:
                    yield ctx.finding(
                        node,
                        self.id,
                        "tracer event emitted outside any span in core/; "
                        "emit through the span passed down by the driver "
                        "so the event nests under its phase",
                    )


class CachedExpansionRule(Rule):
    """RP011 — hot paths must use the cached CSR expansion arrays.

    :class:`~repro.graph.csr.CSRGraph` caches its per-vertex degree array
    (``graph.degrees()``) and the edge-source expansion
    (``graph.edge_sources()``), so rebuilding either one inline —
    ``np.diff(xadj)`` or ``np.repeat(arange(n), degrees)`` — inside the
    pipeline packages re-materialises an O(n)/O(m) array on every call of
    a per-level routine.  That is exactly the allocation churn the
    vectorized kernels removed (docs/PERFORMANCE.md); this rule keeps it
    from creeping back.  Two checks, in ``core/`` modules only:

    * ``np.diff(...)`` over an ``xadj``-ish operand — use
      ``graph.degrees()``;
    * ``np.repeat(...)`` whose repeat-count operand is a degree array
      (a ``degrees()``/``np.diff(xadj)`` call or a ``degree``-named
      variable) — use ``graph.edge_sources()``.

    Pre-construction code (``graph/validate.py`` runs before a CSRGraph
    exists) and the operator packages, which hold their own caches, are
    out of scope.
    """

    id = "RP011"
    name = "cached-expansion"
    summary = "np.diff(xadj)/np.repeat degree expansion rebuilt in core/"
    doc = (
        "Hot paths in `core/` must use the cached CSR expansions — "
        "`graph.degrees()` instead of `np.diff(xadj)`, "
        "`graph.edge_sources()` instead of a degree-array `np.repeat` — "
        "to keep the allocation churn the vectorized kernels removed "
        "from creeping back (docs/PERFORMANCE.md)."
    )

    def _xadjish(self, node) -> bool:
        """Whether ``node`` mentions an ``xadj`` array."""
        for inner in ast.walk(node):
            if isinstance(inner, ast.Name) and "xadj" in inner.id:
                return True
            if isinstance(inner, ast.Attribute) and "xadj" in inner.attr:
                return True
        return False

    def _degreeish(self, node) -> bool:
        """Whether ``node`` reads like a per-vertex degree array."""
        for inner in ast.walk(node):
            if isinstance(inner, ast.Name) and "degree" in inner.id.lower():
                return True
            if isinstance(inner, ast.Attribute) and "degree" in inner.attr.lower():
                return True
            if (
                isinstance(inner, ast.Call)
                and isinstance(inner.func, ast.Attribute)
                and inner.func.attr == "diff"
                and inner.args
                and self._xadjish(inner.args[0])
            ):
                return True
        return False

    def check(self, ctx):
        if "core" not in ctx.parts:
            return
        for node in ctx.walk():
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
            ):
                continue
            if (
                node.func.attr == "diff"
                and node.args
                and self._xadjish(node.args[0])
            ):
                yield ctx.finding(
                    node,
                    self.id,
                    "np.diff over xadj rebuilds the degree array; use the "
                    "cached graph.degrees() instead",
                )
            elif node.func.attr == "repeat":
                operands = list(node.args) + [kw.value for kw in node.keywords]
                if any(self._degreeish(arg) for arg in operands[1:]):
                    yield ctx.finding(
                        node,
                        self.id,
                        "np.repeat over a degree array rebuilds the edge-"
                        "source expansion; use the cached "
                        "graph.edge_sources() instead",
                    )


#: The per-file rules (one module's AST at a time), in id order.
PER_FILE_RULES = (
    SeededRandomRule,
    CSRMutationRule,
    ExceptionSwallowRule,
    FloatEqualityRule,
    ErrorHierarchyRule,
    NoPrintRule,
    DunderAllRule,
    PaperSectionRule,
    FallbackRecordRule,
    ObsHygieneRule,
    CachedExpansionRule,
)

#: The full rule set — per-file rules plus the whole-program dataflow
#: rules (:data:`repro.analysis.dataflow.DATAFLOW_RULES`) — in id order.
RULES = PER_FILE_RULES + DATAFLOW_RULES


def default_rules():
    """Fresh instances of every registered rule, in id order."""
    return [cls() for cls in RULES]


def rule_table():
    """``(id, name, summary)`` rows for docs and ``--list-rules``."""
    return [(cls.id, cls.name, cls.summary) for cls in RULES]
