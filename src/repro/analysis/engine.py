"""The lint engine: file discovery, rule dispatch, suppression, reporting.

The engine is deliberately small and dependency-free (stdlib ``ast`` only):
it parses each file once, hands the tree to every registered rule, filters
findings through the per-line suppression table, and formats the survivors
as ``path:line:col: RPxxx message`` — the shape editors and CI annotate.

Suppression syntax
------------------
A finding on line L is suppressed by a comment on that line::

    risky_call()  # repro: noqa[RP001]
    other_call()  # repro: noqa[RP001,RP004]
    anything()    # repro: noqa

The bare form suppresses every rule on the line; the bracketed form only
the listed ids.  Suppressions should carry a justification in the
surrounding comment — the point is an audited exception, not an off switch.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.sections import find_paper_md, load_sections

__all__ = [
    "Finding",
    "FileContext",
    "lint_paths",
    "lint_file",
    "format_findings",
]

#: Rule id used for files the engine cannot parse at all.
PARSE_ERROR_ID = "RP000"

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<ids>[A-Za-z0-9_,\s]+)\])?", re.IGNORECASE
)

#: Sentinel stored in the suppression table for a bare ``# repro: noqa``.
SUPPRESS_ALL = "*"


@dataclass(frozen=True)
class Finding:
    """One lint finding, sortable into report order."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def format(self) -> str:
        """Render as ``path:line:col: RPxxx message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def sort_key(self):
        return (self.path, self.line, self.col, self.rule_id)


@dataclass
class FileContext:
    """Everything a rule may inspect about one source file."""

    path: Path
    source: str
    tree: ast.AST
    #: Path components of ``path`` (used for location-based exemptions such
    #: as "``graph/`` may mutate CSR arrays").
    parts: tuple = ()
    #: Valid paper section numbers, or ``None`` when no PAPER.md was found
    #: (RP008 then skips).
    sections: set | None = None
    #: line number → set of suppressed rule ids (or ``{"*"}`` for all).
    suppressions: dict = field(default_factory=dict)

    def finding(self, node_or_line, rule_id, message, col=None) -> Finding:
        """Build a :class:`Finding` anchored at an AST node or line number."""
        if hasattr(node_or_line, "lineno"):
            line = node_or_line.lineno
            col = node_or_line.col_offset + 1 if col is None else col
        else:
            line = int(node_or_line)
            col = 1 if col is None else col
        return Finding(str(self.path), line, col, rule_id, message)


def collect_suppressions(source: str) -> dict:
    """Per-line suppression table from ``# repro: noqa[...]`` comments."""
    table: dict[int, set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _NOQA_RE.search(line)
        if not m:
            continue
        ids = m.group("ids")
        if ids is None:
            table[lineno] = {SUPPRESS_ALL}
        else:
            table[lineno] = {
                token.strip().upper() for token in ids.split(",") if token.strip()
            }
    return table


def is_suppressed(finding: Finding, suppressions: dict) -> bool:
    """Whether the suppression table silences ``finding``."""
    ids = suppressions.get(finding.line)
    if not ids:
        return False
    return SUPPRESS_ALL in ids or finding.rule_id.upper() in ids


def iter_python_files(paths):
    """Expand files/directories into a sorted, de-duplicated ``.py`` list."""
    seen = []
    seen_set = set()
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            candidates = sorted(p.rglob("*.py"))
        else:
            candidates = [p]
        for c in candidates:
            if c not in seen_set:
                seen_set.add(c)
                seen.append(c)
    return seen


def lint_file(path, rules, sections=None) -> list:
    """Run every rule over one file; returns unsuppressed findings."""
    path = Path(path)
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        return [Finding(str(path), 1, 1, PARSE_ERROR_ID, f"cannot read file: {exc}")]
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            Finding(
                str(path),
                exc.lineno or 1,
                (exc.offset or 1),
                PARSE_ERROR_ID,
                f"syntax error: {exc.msg}",
            )
        ]
    ctx = FileContext(
        path=path,
        source=source,
        tree=tree,
        parts=path.parts,
        sections=sections,
        suppressions=collect_suppressions(source),
    )
    findings = []
    for rule in rules:
        findings.extend(rule.check(ctx))
    return sorted(
        (f for f in findings if not is_suppressed(f, ctx.suppressions)),
        key=Finding.sort_key,
    )


def lint_paths(paths, rules=None, paper=None) -> list:
    """Lint every Python file under ``paths`` with ``rules``.

    Parameters
    ----------
    paths:
        Files and/or directories (directories are walked recursively).
    rules:
        Rule instances; defaults to the full repo rule set
        (:func:`repro.analysis.rules.default_rules`).
    paper:
        Explicit ``PAPER.md`` path for the RP008 section index; when
        omitted it is discovered by walking up from the first path.

    Returns
    -------
    list[Finding]
        All unsuppressed findings, in report order.
    """
    if rules is None:
        from repro.analysis.rules import default_rules

        rules = default_rules()
    files = iter_python_files(paths)
    if paper is None and files:
        paper = find_paper_md(files[0])
    sections = load_sections(paper) if paper else None
    findings = []
    for path in files:
        findings.extend(lint_file(path, rules, sections))
    return findings


def format_findings(findings) -> str:
    """Human/CI-readable report, one finding per line."""
    return "\n".join(f.format() for f in findings)
