"""The lint engine: discovery, the project model, rule dispatch, reporting.

The engine parses every file **exactly once** into a
:class:`~repro.analysis.project.ProjectModel` (shared AST, one cached
``ast.walk`` per module, one suppression table), then runs two rule
families over it:

* **per-file rules** (:class:`Rule`, ``RP001`` … ``RP011``) receive a
  :class:`FileContext` backed by the module's cached traversal;
* **whole-program rules** (:class:`ProjectRule`, ``RP012`` … ``RP016``)
  receive a :class:`ProjectContext` carrying the full project model and
  the static call graph, and may attach **call-path traces** to findings.

Findings are filtered through the per-line suppression table
(``# repro: noqa[RPxxx]`` — see :mod:`repro.analysis.suppress`), and
rendered as ``path:line:col: RPxxx message`` — the shape editors and CI
annotate.  The reporting layer (:mod:`repro.analysis.report`) adds JSON
and SARIF 2.1.0 output plus baseline suppression on top of the same
finding list.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.sections import find_paper_md, load_sections
from repro.analysis.suppress import (  # noqa: F401  (re-exported API)
    SUPPRESS_ALL,
    collect_suppressions,
    is_suppressed,
)

__all__ = [
    "Finding",
    "FileContext",
    "ProjectContext",
    "Rule",
    "ProjectRule",
    "lint_paths",
    "lint_file",
    "format_findings",
    "iter_python_files",
    "collect_suppressions",
    "is_suppressed",
    "SUPPRESS_ALL",
    "PARSE_ERROR_ID",
]

#: Rule id used for files the engine cannot parse at all.
PARSE_ERROR_ID = "RP000"


@dataclass(frozen=True)
class Finding:
    """One lint finding, sortable into report order."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    #: call-path trace (display names, entry first) for whole-program
    #: findings — ``("partition", "_recurse", "part_weights")``.
    trace: tuple = ()

    def format(self) -> str:
        """Render as ``path:line:col: RPxxx message``."""
        text = f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"
        if self.trace:
            text += f" [call path: {' -> '.join(self.trace)}]"
        return text

    def sort_key(self):
        return (self.path, self.line, self.col, self.rule_id)


class Rule:
    """Per-file rule base: subclasses set ``id``/``name``/``summary``/``doc``
    and implement :meth:`check` over a :class:`FileContext`."""

    id = "RP000"
    name = "base"
    summary = ""
    #: one-paragraph markdown description for the generated rule table.
    doc = ""

    def check(self, ctx):
        """Yield :class:`Finding` objects for one file."""
        raise NotImplementedError


class ProjectRule(Rule):
    """Whole-program rule base: implement :meth:`check_project` over a
    :class:`ProjectContext` (runs once per lint invocation, not per file)."""

    def check(self, ctx):  # pragma: no cover - project rules don't run per-file
        return ()

    def check_project(self, ctx):
        """Yield :class:`Finding` objects across the whole project."""
        raise NotImplementedError


@dataclass
class FileContext:
    """Everything a per-file rule may inspect about one source file."""

    path: Path
    source: str
    tree: ast.AST
    #: Path components of ``path`` (used for location-based exemptions such
    #: as "``graph/`` may mutate CSR arrays").
    parts: tuple = ()
    #: Valid paper section numbers, or ``None`` when no PAPER.md was found
    #: (RP008 then skips).
    sections: set | None = None
    #: line number → set of suppressed rule ids (or ``{"*"}`` for all).
    suppressions: dict = field(default_factory=dict)
    #: the backing :class:`~repro.analysis.project.ModuleInfo`, when the
    #: context came from a project model (carries the cached traversal).
    module: object = None
    #: rule ids restricted for this file (directory-scoped rule sets, e.g.
    #: determinism-only linting of ``tests/``); ``None`` means all rules.
    only_rules: frozenset | None = None

    def walk(self):
        """The module's node list — one shared traversal, never re-walked."""
        if self.module is not None:
            return self.module.nodes
        return list(ast.walk(self.tree))

    def finding(self, node_or_line, rule_id, message, col=None) -> Finding:
        """Build a :class:`Finding` anchored at an AST node or line number."""
        if hasattr(node_or_line, "lineno"):
            line = node_or_line.lineno
            col = node_or_line.col_offset + 1 if col is None else col
        else:
            line = int(node_or_line)
            col = 1 if col is None else col
        return Finding(str(self.path), line, col, rule_id, message)


@dataclass
class ProjectContext:
    """Everything a whole-program rule may inspect."""

    project: object  #: the :class:`~repro.analysis.project.ProjectModel`
    graph: object  #: the :class:`~repro.analysis.callgraph.CallGraph`
    sections: set | None = None

    def finding(
        self, module, node_or_line, rule_id, message, col=None, trace=()
    ) -> Finding:
        """Build a :class:`Finding` in ``module`` with a call-path trace."""
        if hasattr(node_or_line, "lineno"):
            line = node_or_line.lineno
            col = node_or_line.col_offset + 1 if col is None else col
        else:
            line = int(node_or_line)
            col = 1 if col is None else col
        return Finding(str(module.path), line, col, rule_id, message, tuple(trace))


def iter_python_files(paths):
    """Expand files/directories into a sorted, de-duplicated ``.py`` list."""
    files, _ = discover_python_files(paths)
    return files


def discover_python_files(paths):
    """Like :func:`iter_python_files`, also returning per-file root dirs.

    The root map (file → the directory argument it was discovered under)
    lets the project model give fixture trees without ``__init__.py``
    markers proper dotted module names.
    """
    seen = []
    seen_set = set()
    roots: dict[Path, Path] = {}
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            candidates = sorted(p.rglob("*.py"))
        else:
            candidates = [p]
        for c in candidates:
            if c not in seen_set:
                seen_set.add(c)
                seen.append(c)
                if p.is_dir():
                    roots[c] = p
    return seen, roots


def _split_rules(rules):
    per_file = [r for r in rules if not isinstance(r, ProjectRule)]
    project_rules = [r for r in rules if isinstance(r, ProjectRule)]
    return per_file, project_rules


def _parse_error_findings(project):
    return [
        Finding(str(path), line, col, PARSE_ERROR_ID, message)
        for path, line, col, message in project.errors
    ]


def lint_project(project, rules, sections=None, graph=None, only_rules=None):
    """Run ``rules`` over an already-built project model.

    ``only_rules`` optionally maps ``str(path)`` → frozenset of rule ids
    allowed for that file (directory-scoped rule restriction); project
    rules honour it per finding.
    """
    per_file, project_rules = _split_rules(rules)
    findings = _parse_error_findings(project)
    suppressions = {}
    for module in project.modules_by_path.values():
        suppressions[str(module.path)] = module.suppressions
        allowed = (only_rules or {}).get(str(module.path))
        ctx = FileContext(
            path=module.path,
            source=module.source,
            tree=module.tree,
            parts=module.parts,
            sections=sections,
            suppressions=module.suppressions,
            module=module,
            only_rules=allowed,
        )
        for rule in per_file:
            if allowed is not None and rule.id not in allowed:
                continue
            findings.extend(rule.check(ctx))
    if project_rules:
        if graph is None:
            from repro.analysis.callgraph import build_call_graph

            graph = build_call_graph(project)
        pctx = ProjectContext(project=project, graph=graph, sections=sections)
        for rule in project_rules:
            for f in rule.check_project(pctx):
                allowed = (only_rules or {}).get(f.path)
                if allowed is not None and f.rule_id not in allowed:
                    continue
                findings.append(f)
    out, seen = [], set()
    for f in findings:
        key = (f.path, f.line, f.col, f.rule_id, f.message)
        if key in seen:
            continue
        seen.add(key)
        if not is_suppressed(f, suppressions.get(f.path, {})):
            out.append(f)
    return sorted(out, key=Finding.sort_key)


def lint_paths(paths, rules=None, paper=None, only_rules=None) -> list:
    """Lint every Python file under ``paths`` with ``rules``.

    Parameters
    ----------
    paths:
        Files and/or directories (directories are walked recursively).
    rules:
        Rule instances; defaults to the full repo rule set
        (:func:`repro.analysis.rules.default_rules`).
    paper:
        Explicit ``PAPER.md`` path for the RP008 section index; when
        omitted it is discovered by walking up from the first path.
    only_rules:
        Optional ``str(path) -> frozenset(rule ids)`` restriction map
        (used to lint ``tests/``/``benchmarks/`` with the determinism
        rules only).

    Returns
    -------
    list[Finding]
        All unsuppressed findings, in report order.
    """
    from repro.analysis.project import build_project

    if rules is None:
        from repro.analysis.rules import default_rules

        rules = default_rules()
    files, roots = discover_python_files(paths)
    if paper is None and files:
        paper = find_paper_md(files[0])
    sections = load_sections(paper) if paper else None
    project = build_project(files, roots)
    return lint_project(project, rules, sections=sections, only_rules=only_rules)


def lint_file(path, rules, sections=None) -> list:
    """Run ``rules`` over one file; returns unsuppressed findings.

    Kept for API compatibility — routes through a single-file project
    model so per-file and whole-program rules both work.
    """
    from repro.analysis.project import build_project

    project = build_project([Path(path)])
    return lint_project(project, rules, sections=sections)


def format_findings(findings) -> str:
    """Human/CI-readable report, one finding per line."""
    return "\n".join(f.format() for f in findings)
