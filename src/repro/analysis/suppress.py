"""Per-line ``# repro: noqa`` suppression parsing and matching.

Split out of the engine so the project model (which caches the table per
module) and the engine (which filters findings through it) can share one
implementation without an import cycle.

Suppression syntax — a finding on line L is suppressed by a comment on
that line::

    risky_call()  # repro: noqa[RP001]
    other_call()  # repro: noqa[RP001,RP004]
    anything()    # repro: noqa

The bare form suppresses every rule on the line; the bracketed form only
the listed ids.  Suppressions should carry a justification in the
surrounding comment — the point is an audited exception, not an off
switch.
"""

from __future__ import annotations

import re

__all__ = ["SUPPRESS_ALL", "collect_suppressions", "is_suppressed"]

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<ids>[A-Za-z0-9_,\s]+)\])?", re.IGNORECASE
)

#: Sentinel stored in the suppression table for a bare ``# repro: noqa``.
SUPPRESS_ALL = "*"


def collect_suppressions(source: str) -> dict:
    """Per-line suppression table from ``# repro: noqa[...]`` comments."""
    table: dict[int, set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _NOQA_RE.search(line)
        if not m:
            continue
        ids = m.group("ids")
        if ids is None:
            table[lineno] = {SUPPRESS_ALL}
        else:
            table[lineno] = {
                token.strip().upper() for token in ids.split(",") if token.strip()
            }
    return table


def is_suppressed(finding, suppressions: dict) -> bool:
    """Whether the suppression table silences ``finding``."""
    ids = suppressions.get(finding.line)
    if not ids:
        return False
    return SUPPRESS_ALL in ids or finding.rule_id.upper() in ids
