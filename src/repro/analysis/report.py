"""Reporting layer: JSON / SARIF 2.1.0 output, baselines, the rule table.

Three consumers of the same :class:`~repro.analysis.engine.Finding` list:

* ``repro lint --json`` — a stable machine-readable array for scripts;
* ``repro lint --sarif`` — SARIF 2.1.0, the interchange format CI code
  scanners ingest (GitHub code scanning renders findings inline on PRs);
  call-path traces become ``relatedLocations`` so the "how does a driver
  reach this" witness survives into the UI;
* the **baseline** — a checked-in suppression file
  (``lint-baseline.json``) listing historical findings that are accepted
  for now.  Entries are fingerprinted by ``(rule, relative path, stripped
  source line text)`` rather than line numbers, so unrelated edits above
  a baselined finding do not resurrect it.  CI fails only on findings
  *not* in the baseline, which lets new rules land with existing debt
  explicitly recorded instead of silently grandfathered.

The SARIF writer is validated (in tests) against a vendored subset of the
SARIF 2.1.0 schema by :func:`validate_sarif` — stdlib-only, because the
lint pass deliberately has no third-party dependencies.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = [
    "findings_to_json",
    "findings_to_sarif",
    "validate_sarif",
    "Baseline",
    "find_baseline",
    "apply_baseline",
    "write_baseline",
    "rules_markdown_table",
    "BASELINE_NAME",
]

#: Canonical baseline file name, discovered by walking up from the lint
#: target (the same discovery rule ``PAPER.md`` uses).
BASELINE_NAME = "lint-baseline.json"

_SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


# --------------------------------------------------------------------------
# JSON


def findings_to_json(findings) -> str:
    """Stable machine-readable JSON array of findings."""
    rows = [
        {
            "path": f.path,
            "line": f.line,
            "col": f.col,
            "rule": f.rule_id,
            "message": f.message,
            "trace": list(f.trace),
        }
        for f in findings
    ]
    return json.dumps(rows, indent=2, sort_keys=True)


# --------------------------------------------------------------------------
# SARIF 2.1.0


def _rule_descriptors():
    from repro.analysis.rules import RULES

    return [
        {
            "id": cls.id,
            "name": cls.name,
            "shortDescription": {"text": cls.summary},
            "fullDescription": {"text": cls.doc or cls.summary},
            "defaultConfiguration": {"level": "error"},
        }
        for cls in RULES
    ]


def _location(path: str, line: int, col: int, message=None) -> dict:
    loc = {
        "physicalLocation": {
            "artifactLocation": {"uri": Path(path).as_posix()},
            "region": {"startLine": int(line), "startColumn": int(col)},
        }
    }
    if message is not None:
        loc["message"] = {"text": message}
    return loc


def findings_to_sarif(findings, tool_version="0") -> dict:
    """Render findings as a SARIF 2.1.0 log (one run, one tool)."""
    results = []
    for f in findings:
        result = {
            "ruleId": f.rule_id,
            "level": "error",
            "message": {"text": f.message},
            "locations": [_location(f.path, f.line, f.col)],
        }
        if f.trace:
            # The call-path witness: one relatedLocation per hop, anchored
            # at the finding (SARIF has no span info for the hops
            # themselves — the names carry the path).
            result["relatedLocations"] = [
                _location(f.path, f.line, f.col, message=f"call path [{i}]: {name}")
                for i, name in enumerate(f.trace)
            ]
        results.append(result)
    return {
        "$schema": _SARIF_SCHEMA_URI,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "https://example.invalid/repro",
                        "version": str(tool_version),
                        "rules": _rule_descriptors(),
                    }
                },
                "results": results,
            }
        ],
    }


#: Subset of the SARIF 2.1.0 schema covering everything this tool emits.
#: Vendored because the lint pass is stdlib-only by design; tests
#: additionally validate against the full schema when ``jsonschema``
#: happens to be importable.
SARIF_SUBSET_SCHEMA = {
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "$schema": {"type": "string"},
        "version": {"enum": ["2.1.0"]},
        "runs": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["tool", "results"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name"],
                                "properties": {
                                    "name": {"type": "string"},
                                    "version": {"type": "string"},
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                            "properties": {
                                                "id": {"type": "string"},
                                                "name": {"type": "string"},
                                            },
                                        },
                                    },
                                },
                            }
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["message"],
                            "properties": {
                                "ruleId": {"type": "string"},
                                "level": {
                                    "enum": ["none", "note", "warning", "error"]
                                },
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                    "properties": {"text": {"type": "string"}},
                                },
                                "locations": {
                                    "type": "array",
                                    "items": {"$ref": "#/definitions/location"},
                                },
                                "relatedLocations": {
                                    "type": "array",
                                    "items": {"$ref": "#/definitions/location"},
                                },
                            },
                        },
                    },
                },
            },
        },
    },
    "definitions": {
        "location": {
            "type": "object",
            "properties": {
                "physicalLocation": {
                    "type": "object",
                    "properties": {
                        "artifactLocation": {
                            "type": "object",
                            "properties": {"uri": {"type": "string"}},
                        },
                        "region": {
                            "type": "object",
                            "properties": {
                                "startLine": {"type": "integer", "minimum": 1},
                                "startColumn": {"type": "integer", "minimum": 1},
                            },
                        },
                    },
                },
                "message": {
                    "type": "object",
                    "required": ["text"],
                    "properties": {"text": {"type": "string"}},
                },
            },
        }
    },
}


def _validate(doc, schema, root, path="$"):
    """Minimal JSON-Schema-subset validator; returns a list of errors."""
    errors = []
    if "$ref" in schema:
        target = root
        for part in schema["$ref"].lstrip("#/").split("/"):
            target = target[part]
        return _validate(doc, target, root, path)
    stype = schema.get("type")
    if stype == "object":
        if not isinstance(doc, dict):
            return [f"{path}: expected object, got {type(doc).__name__}"]
        for req in schema.get("required", ()):
            if req not in doc:
                errors.append(f"{path}: missing required property {req!r}")
        for key, sub in schema.get("properties", {}).items():
            if key in doc:
                errors.extend(_validate(doc[key], sub, root, f"{path}.{key}"))
    elif stype == "array":
        if not isinstance(doc, list):
            return [f"{path}: expected array, got {type(doc).__name__}"]
        items = schema.get("items")
        if items:
            for i, item in enumerate(doc):
                errors.extend(_validate(item, items, root, f"{path}[{i}]"))
    elif stype == "string":
        if not isinstance(doc, str):
            errors.append(f"{path}: expected string, got {type(doc).__name__}")
    elif stype == "integer":
        if not isinstance(doc, int) or isinstance(doc, bool):
            errors.append(f"{path}: expected integer, got {type(doc).__name__}")
        elif "minimum" in schema and doc < schema["minimum"]:
            errors.append(f"{path}: {doc} below minimum {schema['minimum']}")
    if "enum" in schema and doc not in schema["enum"]:
        errors.append(f"{path}: {doc!r} not one of {schema['enum']}")
    return errors


def validate_sarif(doc) -> list:
    """Validate a SARIF dict against the vendored 2.1.0 subset schema.

    Returns a list of error strings — empty means valid.
    """
    return _validate(doc, SARIF_SUBSET_SCHEMA, SARIF_SUBSET_SCHEMA)


# --------------------------------------------------------------------------
# Baseline suppression


class Baseline:
    """A multiset of accepted findings, fingerprinted content-wise.

    The fingerprint is ``(rule id, path relative to the baseline file's
    directory, stripped source text of the flagged line)`` — stable under
    line-number drift, invalidated the moment the flagged line itself
    changes (which is when the finding deserves a fresh look).
    """

    def __init__(self, entries=(), root: Path | None = None):
        self.root = Path(root) if root is not None else Path(".")
        self._counts: dict[tuple, int] = {}
        for e in entries:
            key = (e["rule"], e["path"], e["line_text"])
            self._counts[key] = self._counts.get(key, 0) + int(e.get("count", 1))

    @classmethod
    def load(cls, path) -> "Baseline":
        path = Path(path)
        data = json.loads(path.read_text(encoding="utf-8"))
        return cls(data.get("findings", ()), root=path.parent)

    def _key_for(self, finding) -> tuple:
        path = Path(finding.path)
        try:
            rel = path.resolve().relative_to(self.root.resolve()).as_posix()
        except ValueError:
            rel = path.as_posix()
        try:
            lines = path.read_text(encoding="utf-8").splitlines()
            text = lines[finding.line - 1].strip() if finding.line <= len(lines) else ""
        except OSError:
            text = ""
        return (finding.rule_id, rel, text)

    def filter(self, findings):
        """Split ``findings`` into (new, baselined) against this baseline."""
        remaining = dict(self._counts)
        new, baselined = [], []
        for f in findings:
            key = self._key_for(f)
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                baselined.append(f)
            else:
                new.append(f)
        return new, baselined

    @staticmethod
    def entries_for(findings, root) -> list:
        """Baseline entry rows for ``findings`` (for ``--write-baseline``)."""
        root = Path(root).resolve()
        counts: dict[tuple, int] = {}
        for f in findings:
            path = Path(f.path)
            try:
                rel = path.resolve().relative_to(root).as_posix()
            except ValueError:
                rel = path.as_posix()
            try:
                lines = path.read_text(encoding="utf-8").splitlines()
                text = lines[f.line - 1].strip() if f.line <= len(lines) else ""
            except OSError:
                text = ""
            key = (f.rule_id, rel, text)
            counts[key] = counts.get(key, 0) + 1
        return [
            {"rule": rule, "path": rel, "line_text": text, "count": count}
            for (rule, rel, text), count in sorted(counts.items())
        ]


def find_baseline(start) -> Path | None:
    """Walk up from ``start`` looking for :data:`BASELINE_NAME`."""
    cur = Path(start).resolve()
    if cur.is_file():
        cur = cur.parent
    for candidate in (cur, *cur.parents):
        p = candidate / BASELINE_NAME
        if p.is_file():
            return p
    return None


def apply_baseline(findings, baseline_path):
    """(new, baselined) findings under the baseline at ``baseline_path``."""
    baseline = Baseline.load(baseline_path)
    return baseline.filter(findings)


def write_baseline(findings, path) -> None:
    """Write ``findings`` as the new baseline file at ``path``."""
    path = Path(path)
    doc = {
        "comment": (
            "Accepted historical lint findings. Entries are matched by "
            "(rule, path, stripped line text); editing a flagged line "
            "invalidates its entry. Regenerate with: repro lint "
            "--write-baseline <paths>"
        ),
        "findings": Baseline.entries_for(findings, path.parent),
    }
    path.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")


# --------------------------------------------------------------------------
# Generated rule table (docs/ANALYSIS.md)


def rules_markdown_table() -> str:
    """The docs/ANALYSIS.md rule table, generated from the registry."""
    from repro.analysis.rules import RULES

    lines = [
        "| Rule | Name | Checks |",
        "|------|------|--------|",
    ]
    for cls in RULES:
        body = (cls.doc or cls.summary).strip().replace("\n", " ")
        lines.append(f"| {cls.id} | `{cls.name}` | {body} |")
    return "\n".join(lines)
