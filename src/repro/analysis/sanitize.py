"""Runtime invariant sanitizer for the multilevel pipeline.

The multilevel machinery is incremental by design: matchings drive
contractions, contractions conserve weights (§3.1), and FM refinement
maintains gains, degrees and the running cut move by move (§3.3).  A silent
off-by-one in any of that bookkeeping produces a *plausible but wrong*
partition rather than a crash — exactly the failure mode production
partitioners guard with toggleable assertion tiers (METIS's ``CheckGraph``
and debug levels, KaHIP's assertion hierarchy).

This module is that tier for :mod:`repro`.  Every checker is O(n + m), runs
at a phase boundary (once per level, never per move), and raises
:class:`~repro.utils.errors.SanitizerError` naming the phase and level where
the invariant broke.

Enabling
--------
Off by default.  Enable with either:

* the environment variable ``REPRO_SANITIZE=1`` (checked per pipeline
  entry; ``0``/``false``/empty disable), or
* ``MultilevelOptions(sanitize=True)`` / ``options.with_(sanitize=True)``.

When disabled, :func:`sanitizer` returns a falsy null object and the hooks
in the pipeline are ``if san: san.check_…`` guards, so the disabled cost is
one truth test per phase boundary and **zero** checker calls.

Checked invariants
------------------
* **matching** — the matching is a valid involution, every matched pair is
  a real edge (no matched self-pairs), and the matching is maximal;
* **contraction** — vertex weight is conserved per multinode and in total,
  and coarse edge weight equals fine edge weight minus the collapsed
  (intra-multinode) weight, i.e. non-cut edge weight is conserved;
* **initial / project** — the bisection assignment is a 0/1 array, both
  sides are non-empty, and the stored ``pwgts``/``cut`` equal a
  from-scratch recomputation (projection must preserve the cut exactly);
* **refine** — the incrementally-maintained external/internal degree
  arrays (hence all gains and the implicit boundary set) and the running
  cut equal a from-scratch recomputation;
* **kway-refine** — the k-way assignment is in range and the incrementally
  maintained ``pwgts``/``cut`` match a recomputation;
* **separator** — a nested-dissection separator actually separates: the
  three sets partition the vertices and no edge joins the two sides.
"""

from __future__ import annotations

import os

import numpy as np

from repro.utils.errors import SanitizerError

__all__ = [
    "Sanitizer",
    "NullSanitizer",
    "sanitizer",
    "sanitize_enabled",
    "SanitizerError",
]

#: Environment variable that force-enables (``1``) the sanitizer.
ENV_VAR = "REPRO_SANITIZE"

_FALSY = {"", "0", "false", "no", "off"}


def sanitize_enabled() -> bool:
    """Whether ``REPRO_SANITIZE`` requests sanitizing (read per call)."""
    return os.environ.get(ENV_VAR, "").strip().lower() not in _FALSY


def sanitizer(options=None):
    """Return the sanitizer selected by ``options`` and the environment.

    Parameters
    ----------
    options:
        Anything with a boolean ``sanitize`` attribute (normally a
        :class:`~repro.core.options.MultilevelOptions`), or ``None`` to
        consult only the environment.

    Returns
    -------
    Sanitizer | NullSanitizer
        The active singleton when enabled; the falsy null singleton
        otherwise.  Call sites guard with ``if san:`` so the disabled path
        performs no checker calls at all.
    """
    if (options is not None and getattr(options, "sanitize", False)) or (
        sanitize_enabled()
    ):
        return ACTIVE
    return NULL


def _fail(message, *, phase, level=None):
    raise SanitizerError(message, phase=phase, level=level)


def _directed_src(graph) -> np.ndarray:
    """Source vertex of every directed CSR edge (O(m))."""
    return graph.edge_sources()


class Sanitizer:
    """The active invariant checker set (every method O(n + m))."""

    enabled = True

    def __bool__(self) -> bool:
        return True

    # ------------------------------------------------------------------
    # coarsening
    # ------------------------------------------------------------------
    def check_matching(self, graph, match, *, level=None) -> None:
        """Validate a matching produced by the coarsening phase (§3.1)."""
        phase = "matching"
        match = np.asarray(match)
        n = graph.nvtxs
        ident = np.arange(n, dtype=match.dtype)
        if len(match) != n:
            _fail(
                f"matching has {len(match)} entries for {n} vertices",
                phase=phase, level=level,
            )
        if match.min(initial=0) < 0 or match.max(initial=-1) >= max(n, 1):
            _fail("matching contains out-of-range vertex ids",
                  phase=phase, level=level)
        invol = match[match] == ident
        if not invol.all():
            v = int(np.flatnonzero(~invol)[0])
            _fail(
                f"matching is not an involution at vertex {v}: "
                f"match[{v}]={int(match[v])} but "
                f"match[{int(match[v])}]={int(match[int(match[v])])}",
                phase=phase, level=level,
            )
        # Every matched pair must be joined by a real edge (in particular a
        # vertex can never be "matched with itself" through a self-loop).
        src = _directed_src(graph)
        hit = match[src] == graph.adjncy
        has_edge_to_mate = np.zeros(n, dtype=bool)
        has_edge_to_mate[src[hit]] = True
        matched = match != ident
        bad = matched & ~has_edge_to_mate
        if bad.any():
            v = int(np.flatnonzero(bad)[0])
            _fail(
                f"vertex {v} is matched with {int(match[v])} but shares no "
                "edge with it",
                phase=phase, level=level,
            )
        # Maximality: no edge may join two unmatched vertices.
        unmatched = ~matched
        loose = unmatched[src] & unmatched[graph.adjncy]
        if loose.any():
            i = int(np.flatnonzero(loose)[0])
            _fail(
                f"matching is not maximal: edge ({int(src[i])}, "
                f"{int(graph.adjncy[i])}) joins two unmatched vertices",
                phase=phase, level=level,
            )

    def check_contraction(self, fine, coarse, cmap, *, level=None) -> None:
        """Validate weight conservation across one contraction (§3.1)."""
        phase = "contraction"
        cmap = np.asarray(cmap)
        nc = coarse.nvtxs
        if len(cmap) != fine.nvtxs:
            _fail(
                f"coarse map has {len(cmap)} entries for {fine.nvtxs} "
                "fine vertices",
                phase=phase, level=level,
            )
        if cmap.min(initial=0) < 0 or cmap.max(initial=-1) >= max(nc, 1):
            _fail("coarse map contains out-of-range multinode ids",
                  phase=phase, level=level)
        from repro.graph.partition import exact_weight_bincount

        expect_vwgt = exact_weight_bincount(
            cmap, fine.vwgt, minlength=nc, total=fine.total_vwgt()
        )
        if not np.array_equal(expect_vwgt, coarse.vwgt):
            v = int(np.flatnonzero(expect_vwgt != coarse.vwgt)[0])
            _fail(
                f"vertex weight not conserved at multinode {v}: expected "
                f"{int(expect_vwgt[v])}, coarse graph has "
                f"{int(coarse.vwgt[v])}",
                phase=phase, level=level,
            )
        src = _directed_src(fine)
        internal = cmap[src] == cmap[fine.adjncy]
        collapsed = int(fine.adjwgt[internal].sum()) // 2
        expect_w = fine.total_adjwgt() - collapsed
        got_w = coarse.total_adjwgt()
        if got_w != expect_w:
            _fail(
                f"edge weight not conserved: W(E_fine)={fine.total_adjwgt()}"
                f" minus collapsed {collapsed} should give {expect_w}, "
                f"coarse graph carries {got_w}",
                phase=phase, level=level,
            )
        csrc = _directed_src(coarse)
        if len(coarse.adjncy) and np.any(csrc == coarse.adjncy):
            v = int(csrc[np.flatnonzero(csrc == coarse.adjncy)[0]])
            _fail(f"coarse graph has a self-loop at multinode {v}",
                  phase=phase, level=level)

    # ------------------------------------------------------------------
    # bisection state (initial partition / projection)
    # ------------------------------------------------------------------
    def check_bisection(
        self, graph, where, pwgts, cut, *, phase="project", level=None
    ) -> None:
        """Validate a bisection state against a from-scratch recomputation."""
        from repro.graph.partition import edge_cut, part_weights

        where = np.asarray(where)
        if len(where) != graph.nvtxs:
            _fail(
                f"partition vector has {len(where)} entries for "
                f"{graph.nvtxs} vertices",
                phase=phase, level=level,
            )
        if graph.nvtxs and not np.isin(where, (0, 1)).all():
            v = int(np.flatnonzero(~np.isin(where, (0, 1)))[0])
            _fail(
                f"partition is not 0/1: where[{v}]={int(where[v])}",
                phase=phase, level=level,
            )
        if graph.nvtxs >= 2 and (not (where == 0).any() or not (where == 1).any()):
            _fail("one side of the bisection is empty", phase=phase, level=level)
        true_pwgts = part_weights(graph, where, 2)
        if not np.array_equal(np.asarray(pwgts, dtype=np.int64), true_pwgts):
            _fail(
                f"part weights drifted: stored {list(map(int, pwgts))}, "
                f"recomputed {true_pwgts.tolist()}",
                phase=phase, level=level,
            )
        true_cut = edge_cut(graph, where)
        if int(cut) != true_cut:
            _fail(
                f"cut drifted: stored {int(cut)}, recomputed {true_cut}",
                phase=phase, level=level,
            )

    # ------------------------------------------------------------------
    # refinement
    # ------------------------------------------------------------------
    def check_degrees(
        self, graph, where, ed, id_, cut, *, phase="refine", level=None
    ) -> None:
        """Validate incrementally-maintained degrees/gains/boundary (§3.3).

        ``ed``/``id_`` are the external/internal degree arrays a refinement
        pass maintains move by move; the gain of every vertex is
        ``ed − id`` and the boundary set is ``ed > 0``, so checking the
        arrays checks both derived structures.
        """
        from repro.core.gains import external_internal_degrees
        from repro.graph.partition import edge_cut

        true_ed, true_id = external_internal_degrees(graph, where)
        if not np.array_equal(np.asarray(ed), true_ed):
            v = int(np.flatnonzero(np.asarray(ed) != true_ed)[0])
            _fail(
                f"external degree of vertex {v} drifted: maintained "
                f"{int(ed[v])}, recomputed {int(true_ed[v])} "
                f"(gain off by {int(ed[v]) - int(true_ed[v])})",
                phase=phase, level=level,
            )
        if not np.array_equal(np.asarray(id_), true_id):
            v = int(np.flatnonzero(np.asarray(id_) != true_id)[0])
            _fail(
                f"internal degree of vertex {v} drifted: maintained "
                f"{int(id_[v])}, recomputed {int(true_id[v])}",
                phase=phase, level=level,
            )
        true_cut = edge_cut(graph, where)
        if int(cut) != true_cut:
            _fail(
                f"running cut drifted during refinement: maintained "
                f"{int(cut)}, recomputed {true_cut}",
                phase=phase, level=level,
            )

    def check_kway(
        self, graph, where, pwgts, cut, nparts, *, phase="kway-refine"
    ) -> None:
        """Validate an incrementally-maintained k-way partition state."""
        from repro.graph.partition import edge_cut, part_weights

        where = np.asarray(where)
        if graph.nvtxs and (where.min() < 0 or where.max() >= nparts):
            v = int(np.flatnonzero((where < 0) | (where >= nparts))[0])
            _fail(
                f"part id out of range: where[{v}]={int(where[v])} "
                f"with k={nparts}",
                phase=phase,
            )
        true_pwgts = part_weights(graph, where, nparts)
        if not np.array_equal(np.asarray(pwgts, dtype=np.int64), true_pwgts):
            p = int(np.flatnonzero(np.asarray(pwgts) != true_pwgts)[0])
            _fail(
                f"weight of part {p} drifted: maintained "
                f"{int(pwgts[p])}, recomputed {int(true_pwgts[p])}",
                phase=phase,
            )
        true_cut = edge_cut(graph, where)
        if int(cut) != true_cut:
            _fail(
                f"running cut drifted: maintained {int(cut)}, "
                f"recomputed {true_cut}",
                phase=phase,
            )

    # ------------------------------------------------------------------
    # nested dissection
    # ------------------------------------------------------------------
    def check_separator(self, graph, a_ids, b_ids, sep, *, level=None) -> None:
        """Validate that a vertex separator separates (§2).

        ``a_ids``/``b_ids``/``sep`` must partition the vertex set, and no
        edge may join an A-vertex with a B-vertex.
        """
        phase = "separator"
        n = graph.nvtxs
        label = np.full(n, -1, dtype=np.int8)
        for mark, ids in ((0, a_ids), (1, b_ids), (2, sep)):
            ids = np.asarray(ids, dtype=np.int64)
            if len(ids) and (ids.min() < 0 or ids.max() >= n):
                _fail("separator labelling has out-of-range vertex ids",
                      phase=phase, level=level)
            if np.any(label[ids] != -1):
                v = int(ids[np.flatnonzero(label[ids] != -1)[0]])
                _fail(
                    f"vertex {v} appears in two of the A/B/separator sets",
                    phase=phase, level=level,
                )
            label[ids] = mark
        if np.any(label == -1):
            v = int(np.flatnonzero(label == -1)[0])
            _fail(
                f"vertex {v} is in none of the A/B/separator sets",
                phase=phase, level=level,
            )
        src = _directed_src(graph)
        crossing = (label[src] == 0) & (label[graph.adjncy] == 1)
        if crossing.any():
            i = int(np.flatnonzero(crossing)[0])
            _fail(
                f"separator does not separate: edge ({int(src[i])}, "
                f"{int(graph.adjncy[i])}) joins the two sides",
                phase=phase, level=level,
            )


class NullSanitizer:
    """Falsy stand-in returned when sanitizing is disabled.

    Mirrors the :class:`Sanitizer` surface with no-op methods so unguarded
    call sites still work, but is falsy so the ``if san:`` hooks in the
    pipeline skip even the method call.
    """

    enabled = False

    def __bool__(self) -> bool:
        return False

    @staticmethod
    def _noop(*args, **kwargs) -> None:
        return None

    check_matching = _noop
    check_contraction = _noop
    check_bisection = _noop
    check_degrees = _noop
    check_kway = _noop
    check_separator = _noop


#: Shared singletons handed out by :func:`sanitizer`.
ACTIVE = Sanitizer()
NULL = NullSanitizer()
